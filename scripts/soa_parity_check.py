"""Quick twin-run parity probe: object vs soa engines, same scenario.

Dev tool, not a test: runs both backends side by side and reports the
first divergence in draw fingerprints, RoundStats, trace content and
peer state.  The pinned variants live in tests/soa/.
"""

from __future__ import annotations

import argparse
import hashlib
import sys

from repro.simulator.checkpoint import draw_fingerprint
from repro.simulator.system import SystemConfig, UUSeeSystem
from repro.traces.store import InMemoryTraceStore


def trace_sha(store: InMemoryTraceStore) -> str:
    digest = hashlib.sha256()
    for report in store:
        digest.update(report.to_json().encode())
        digest.update(b"\n")
    return digest.hexdigest()


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--seed", type=int, default=31)
    ap.add_argument("--concurrency", type=float, default=120.0)
    ap.add_argument("--rounds", type=int, default=18)
    ap.add_argument("--overlay", default="")
    ap.add_argument("--engine", default="soa-exact")
    args = ap.parse_args()

    def build(engine: str) -> tuple[UUSeeSystem, InMemoryTraceStore]:
        store = InMemoryTraceStore()
        config = SystemConfig(
            seed=args.seed,
            base_concurrency=args.concurrency,
            flash_crowd=None,
            overlay=args.overlay,
            engine=engine,
        )
        return UUSeeSystem(config, store), store

    obj, obj_store = build("object")
    soa, soa_store = build(args.engine)
    dt = obj.config.protocol.round_seconds
    ok = True
    for rnd in range(args.rounds):
        obj.run(seconds=dt)
        soa.run(seconds=dt)
        fp_o, fp_s = draw_fingerprint(obj), draw_fingerprint(soa)
        stats_o, stats_s = obj.round_stats[-1], soa.round_stats[-1]
        if fp_o != fp_s:
            print(f"round {rnd}: FINGERPRINT diverged {fp_o[:12]} {fp_s[:12]}")
            ok = False
        if stats_o != stats_s:
            print(f"round {rnd}: RoundStats diverged:\n  {stats_o}\n  {stats_s}")
            ok = False
        if len(obj_store) != len(soa_store):
            print(
                f"round {rnd}: report counts diverged "
                f"{len(obj_store)} vs {len(soa_store)}"
            )
            ok = False
        if not ok:
            # First divergence: dump a couple of peers for debugging.
            for pid in list(obj.peers)[:3]:
                po = obj.peers[pid]
                ps = soa.peers.get(pid)
                print(f"  obj peer {pid}: h={po.health!r} b={po.buffer_fill!r}")
                if ps is not None:
                    print(f"  soa peer {pid}: h={ps.health!r} b={ps.buffer_fill!r}")
            return 1
    sha_o, sha_s = trace_sha(obj_store), trace_sha(soa_store)
    print(f"rounds={args.rounds} reports={len(obj_store)}")
    print(f"fingerprint object == soa: {draw_fingerprint(obj) == draw_fingerprint(soa)}")
    print(f"trace sha object: {sha_o}")
    print(f"trace sha soa:    {sha_s}")
    if sha_o != sha_s:
        for i, (a, b) in enumerate(zip(obj_store, soa_store)):
            if a != b:
                print(f"first differing report #{i}:\n  {a}\n  {b}")
                break
        return 1
    # Deep peer-state comparison at the end.
    if set(obj.peers) != set(soa.peers):
        print("peer id sets differ")
        return 1
    for pid, po in obj.peers.items():
        ps = soa.peers[pid]
        for name in (
            "health",
            "buffer_fill",
            "recv_rate_kbps",
            "sent_rate_kbps",
            "playback_position",
            "depth",
            "next_report",
            "suppliers",
        ):
            vo, vs = getattr(po, name), getattr(ps, name)
            if vo != vs:
                print(f"peer {pid}.{name}: {vo!r} != {vs!r}")
                return 1
        if set(po.partners) != set(ps.partners):
            print(f"peer {pid} partner sets differ")
            return 1
        for qid, lo in po.partners.items():
            ls = ps.partners[qid]
            for name in (
                "rtt_ms",
                "cap_kbps",
                "est_kbps",
                "penalty",
                "sent_segments",
                "recv_segments",
                "reported_sent",
                "reported_recv",
                "established_at",
                "partner_ip",
            ):
                vo, vs = getattr(lo, name), getattr(ls, name)
                if vo != vs:
                    print(f"peer {pid} link {qid}.{name}: {vo!r} != {vs!r}")
                    return 1
    print("PARITY OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
