"""Public API surface checks: importability, __all__ hygiene, docstrings.

A downstream user must be able to reach every advertised name from the
package namespaces, and every public module/class/function must be
documented.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro

SUBPACKAGES = [
    "repro.graph",
    "repro.network",
    "repro.workloads",
    "repro.simulator",
    "repro.traces",
    "repro.core",
    "repro.obs",
]


def iter_all_modules():
    names = ["repro", "repro.stats", "repro.cli"]
    for pkg_name in SUBPACKAGES:
        names.append(pkg_name)
        pkg = importlib.import_module(pkg_name)
        for info in pkgutil.iter_modules(pkg.__path__):
            names.append(f"{pkg_name}.{info.name}")
    return names


class TestImports:
    @pytest.mark.parametrize("module_name", iter_all_modules())
    def test_module_imports(self, module_name):
        module = importlib.import_module(module_name)
        assert module is not None

    @pytest.mark.parametrize("pkg_name", SUBPACKAGES)
    def test_all_names_resolve(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert hasattr(pkg, "__all__") and pkg.__all__
        for name in pkg.__all__:
            assert hasattr(pkg, name), f"{pkg_name}.__all__ lists missing {name}"

    @pytest.mark.parametrize("pkg_name", SUBPACKAGES)
    def test_no_duplicate_all_entries(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        assert len(pkg.__all__) == len(set(pkg.__all__))


class TestDocstrings:
    @pytest.mark.parametrize("module_name", iter_all_modules())
    def test_module_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__ and module.__doc__.strip(), f"{module_name} undocumented"

    @pytest.mark.parametrize("pkg_name", SUBPACKAGES)
    def test_public_objects_documented(self, pkg_name):
        pkg = importlib.import_module(pkg_name)
        undocumented = []
        for name in pkg.__all__:
            obj = getattr(pkg, name)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not (obj.__doc__ and obj.__doc__.strip()):
                    undocumented.append(name)
                if inspect.isclass(obj):
                    for mname, member in inspect.getmembers(obj):
                        if mname.startswith("_") or not (
                            inspect.isfunction(member) or isinstance(member, property)
                        ):
                            continue
                        doc = (
                            member.fget.__doc__
                            if isinstance(member, property)
                            else member.__doc__
                        )
                        if not (doc and doc.strip()):
                            undocumented.append(f"{name}.{mname}")
        assert not undocumented, f"undocumented public API: {undocumented}"


class TestPackageMetadata:
    def test_package_docstring(self):
        assert repro.__doc__

    def test_cli_entrypoint_exists(self):
        from repro.cli import main

        assert callable(main)
