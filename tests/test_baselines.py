"""Tests for the Gnutella comparison baselines."""

import statistics

import pytest

from repro.baselines import (
    GnutellaConfig,
    legacy_gnutella_snapshot,
    modern_gnutella_snapshot,
)
from repro.baselines.gnutella import ultrapeer_ids
from repro.graph import (
    DegreeDistribution,
    average_clustering,
    largest_component,
    powerlaw_fit,
    small_world_metrics,
)


def degree_dist(graph, nodes=None):
    targets = nodes if nodes is not None else list(graph.nodes())
    return DegreeDistribution.from_degrees(graph.degree(n) for n in targets)


class TestLegacyGnutella:
    @pytest.fixture(scope="class")
    def graph(self):
        return legacy_gnutella_snapshot(GnutellaConfig(num_peers=3000, seed=1))

    def test_size_and_connectivity(self, graph):
        assert graph.num_nodes == 3000
        assert largest_component(graph).num_nodes == 3000

    def test_power_law_degrees(self, graph):
        # the defining contrast with UUSee (paper Sec. 4.2.1)
        dist = degree_dist(graph)
        fit = powerlaw_fit(dist, min_degree=3)
        assert fit.exponent < -1.2
        assert fit.r_squared > 0.7  # strongly linear on log-log axes
        assert dist.mode() == 3  # mass at the minimum degree, no spike

    def test_heavy_tail_hubs(self, graph):
        dist = degree_dist(graph)
        assert dist.max_degree() > 15 * dist.quantile(0.5)

    def test_small_world(self, graph):
        m = small_world_metrics(graph, seed=0, path_sample_sources=32)
        assert m.path_length_ratio < 1.5
        assert m.clustering_ratio > 1.0

    def test_deterministic(self):
        a = legacy_gnutella_snapshot(GnutellaConfig(num_peers=400, seed=9))
        b = legacy_gnutella_snapshot(GnutellaConfig(num_peers=400, seed=9))
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))


class TestModernGnutella:
    CFG = GnutellaConfig(num_peers=3000, seed=2)

    @pytest.fixture(scope="class")
    def graph(self):
        return modern_gnutella_snapshot(self.CFG)

    def test_two_tier_structure(self, graph):
        ultra = set(ultrapeer_ids(self.CFG))
        leaves = [n for n in graph.nodes() if n not in ultra]
        leaf_degrees = [graph.degree(n) for n in leaves]
        assert statistics.mean(leaf_degrees) == pytest.approx(
            self.CFG.leaf_parents, abs=0.2
        )

    def test_ultrapeer_spike_near_30(self, graph):
        # Stutzbach et al.: the ultrapeer-to-ultrapeer degree is not a
        # power law; it spikes near the client's target of 30
        ultra = set(ultrapeer_ids(self.CFG))
        top_mesh = graph.subgraph(ultra)
        dist = degree_dist(top_mesh)
        assert 24 <= dist.mode() <= 36
        fit = powerlaw_fit(dist, min_degree=3)
        assert not fit.is_plausible_powerlaw

    def test_connected(self, graph):
        assert largest_component(graph).num_nodes > 0.98 * graph.num_nodes

    def test_random_mesh_clusters_weakly(self, graph):
        # The ultrapeer mesh is wired nearly at random, so its clustering
        # sits close to a matched random graph — unlike UUSee's gossip-built
        # mesh (Fig. 7), which is an order of magnitude above random.
        ultra = set(ultrapeer_ids(self.CFG))
        ultra_graph = graph.subgraph(ultra)
        m = small_world_metrics(ultra_graph, seed=3, path_sample_sources=32)
        assert m.clustering_ratio < 3.0
        assert average_clustering(ultra_graph) < 0.15
