"""Reproducibility guarantees: identical seeds, identical artifacts.

DESIGN.md Sec. 5 promises that every component is seeded and a run is
reproducible bit-for-bit; these tests enforce it at the strongest level
available for each artifact (trace bytes on disk, metric values, preset
construction).
"""

import hashlib

import pytest

from repro.core.experiments import fig6_intra_isp_degrees, run_simulation_to_trace
from repro.traces import TraceReader
from repro.workloads import presets


def sha256(path):
    return hashlib.sha256(path.read_bytes()).hexdigest()


class TestTraceDeterminism:
    @pytest.fixture(scope="class")
    def twin_traces(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("determinism")
        kwargs = {
            "days": 0.3,
            "base_concurrency": 150,
            "seed": 123,
            "with_flash_crowd": False,
        }
        a = run_simulation_to_trace(base / "a.jsonl", **kwargs)
        b = run_simulation_to_trace(base / "b.jsonl", **kwargs)
        return a, b

    def test_trace_bytes_identical(self, twin_traces):
        a, b = twin_traces
        assert sha256(a) == sha256(b)

    def test_different_seed_different_bytes(self, twin_traces, tmp_path):
        a, _ = twin_traces
        c = run_simulation_to_trace(
            tmp_path / "c.jsonl",
            days=0.3,
            base_concurrency=150,
            seed=124,
            with_flash_crowd=False,
        )
        assert sha256(a) != sha256(c)

    def test_metrics_identical_across_reads(self, twin_traces):
        a, _ = twin_traces
        first = fig6_intra_isp_degrees(TraceReader(a)).mean_fractions(
            skip_first_hours=2
        )
        second = fig6_intra_isp_degrees(TraceReader(a)).mean_fractions(
            skip_first_hours=2
        )
        assert first == second


class TestPresets:
    def test_paper_preset_shape(self):
        config, days = presets.paper_two_weeks()
        assert days == 14.0
        assert config.flash_crowd is not None
        # flash crowd peaks on day 5 around 9 p.m.
        peak = config.flash_crowd.peak_time
        assert int(peak // 86_400) == 5

    def test_bench_week_covers_flash_crowd(self):
        config, days = presets.bench_week()
        assert days * 86_400 > config.flash_crowd.peak_time

    def test_quick_presets_have_no_flash_crowd(self):
        for factory in (presets.laptop_quick, presets.smoke):
            config, days = factory()
            assert config.flash_crowd is None
            assert days <= 2.0

    def test_presets_runnable(self):
        from repro.simulator import UUSeeSystem
        from repro.traces import InMemoryTraceStore

        config, days = presets.smoke()
        system = UUSeeSystem(config, InMemoryTraceStore())
        system.run(days=days)
        assert system.concurrent_peers() > 10
