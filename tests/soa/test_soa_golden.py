"""Golden fingerprints for the struct-of-arrays exchange backends.

Two pins, two contracts:

- ``engine="soa-exact"`` promises **bit parity** with the object
  backend: same draw sequence, same fingerprint, and byte-identical
  trace.  Its pins are therefore the *object* backend's golden
  constants from ``tests/simulator/test_exchange_golden.py`` — shared
  deliberately, so either backend drifting breaks a test.
- ``engine="soa"`` renegotiates float arithmetic (vectorised pairwise
  reductions, batched allocation, pre-round depth) and pins its **own**
  golden trace SHA.  On this scenario its draw sequence happens to
  coincide with the object backend's (allocation outcomes agree
  integer-for-integer), which the shared fingerprint pin documents;
  report float fields differ, hence the distinct trace SHA.

If ``GOLDEN_SOA_TRACE_SHA`` ever changes, that is an RNG/float contract
bump for the SoA backend: document it in DESIGN §12 and recapture.
"""

import hashlib

import pytest

from repro.qa.sanitizer import assert_identical_draws, audited
from repro.simulator import SystemConfig, UUSeeSystem
from repro.traces import InMemoryTraceStore

from tests.simulator.test_exchange_golden import (
    GOLDEN_BIT_DRAWS,
    GOLDEN_FINGERPRINT,
    GOLDEN_FLOAT_DRAWS,
    GOLDEN_REPORTS,
    GOLDEN_TRACE_SHA,
)

#: The SoA fast backend's own golden trace on the shared scenario
#: (seed=31, base 120, no flash crowd, 3 simulated hours).
GOLDEN_SOA_TRACE_SHA = (
    "62530fa8bffc3c30f08009a87244456df8b79d106a5b48c7ae6d27373e229046"
)


def scenario(engine: str):
    def run() -> InMemoryTraceStore:
        config = SystemConfig(
            seed=31, base_concurrency=120.0, flash_crowd=None, engine=engine
        )
        store = InMemoryTraceStore()
        system = UUSeeSystem(config, store)
        system.run(seconds=3 * 3600)
        return store

    return run


def trace_sha(store: InMemoryTraceStore) -> str:
    h = hashlib.sha256()
    for r in store.reports:
        h.update(r.to_json().encode())
        h.update(b"\n")
    return h.hexdigest()


class TestSoAExactGolden:
    """soa-exact shares the object backend's pins — no contract bump."""

    def test_draw_sequence_matches_object_golden(self):
        _, snap = audited(scenario("soa-exact"))
        assert snap.float_draws == GOLDEN_FLOAT_DRAWS
        assert snap.bit_draws == GOLDEN_BIT_DRAWS
        assert snap.fingerprint == GOLDEN_FINGERPRINT

    def test_trace_bytes_match_object_golden(self):
        store, _ = audited(scenario("soa-exact"))
        assert len(store.reports) == GOLDEN_REPORTS
        assert trace_sha(store) == GOLDEN_TRACE_SHA


class TestSoAFastGolden:
    """The vectorised backend pins its own renegotiated contract."""

    def test_draw_sequence(self):
        _, snap = audited(scenario("soa"))
        assert snap.float_draws == GOLDEN_FLOAT_DRAWS
        assert snap.bit_draws == GOLDEN_BIT_DRAWS
        assert snap.fingerprint == GOLDEN_FINGERPRINT

    def test_trace_bytes(self):
        store, _ = audited(scenario("soa"))
        assert len(store.reports) == GOLDEN_REPORTS
        assert trace_sha(store) == GOLDEN_SOA_TRACE_SHA

    def test_replay_is_draw_identical(self):
        outcomes = assert_identical_draws(scenario("soa"), runs=2)
        (store_a, _), (store_b, _) = outcomes
        assert trace_sha(store_a) == trace_sha(store_b)


def test_unknown_engine_rejected():
    config = SystemConfig(seed=1, base_concurrency=30.0, engine="vectorized")
    with pytest.raises(ValueError, match="engine"):
        UUSeeSystem(config, InMemoryTraceStore())
