"""Crash/resume under ``engine="soa"``: interrupted campaigns converge.

The SoA backend serialises no state of its own — checkpoints capture the
canonical object-model state and both backends rebuild their working
representation from it — so a killed-and-resumed SoA campaign must be
draw-for-draw and byte-for-byte identical to an uninterrupted twin.
The checkpoint does, however, pin the engine name in its config token:
restoring a SoA checkpoint into an object-backend system (or vice
versa) is refused, because the fast numerics renegotiate the float
contract and silent cross-engine resumes could diverge mid-campaign.
"""

import pytest

from repro.core.experiments import run_campaign
from repro.simulator import CheckpointError

SEED = 2006
BASE = 60.0
ROUND = 600.0
TOTAL_ROUNDS = 12
DAYS = TOTAL_ROUNDS * ROUND / 86_400.0


def campaign(trace_dir, **kwargs):
    kwargs.setdefault("engine", "soa")
    return run_campaign(
        trace_dir,
        days=DAYS,
        base_concurrency=BASE,
        seed=SEED,
        with_flash_crowd=False,
        checkpoint_every_rounds=3,
        records_per_segment=40,
        compute_content_sha=True,
        **kwargs,
    )


def kill_after(rounds: int):
    """(stop, on_round) pair that interrupts once ``rounds`` complete."""
    seen = [0]

    def on_round(completed: int) -> None:
        seen[0] = completed

    def stop() -> bool:
        return seen[0] >= rounds

    return stop, on_round


class TestSoAKillResume:
    def test_resume_matches_uninterrupted_twin(self, tmp_path):
        twin = campaign(tmp_path / "twin")
        assert twin.rounds_completed == TOTAL_ROUNDS

        # Kill between checkpoint boundaries: stop after round 7 with
        # checkpoints every 3, so the resume restarts from round 6 and
        # must replay rounds 7 onwards draw-identically.
        stop, on_round = kill_after(7)
        killed = campaign(tmp_path / "b", stop=stop, on_round=on_round)
        resumed = campaign(tmp_path / "b", resume=True)

        assert killed.interrupted
        assert killed.rounds_completed < TOTAL_ROUNDS
        assert not resumed.interrupted
        assert resumed.rounds_completed == TOTAL_ROUNDS
        assert resumed.content_sha256 == twin.content_sha256
        assert resumed.rng_fingerprint == twin.rng_fingerprint

    def test_resume_refuses_engine_mismatch(self, tmp_path):
        stop, on_round = kill_after(5)
        campaign(tmp_path / "camp", stop=stop, on_round=on_round)
        with pytest.raises(CheckpointError):
            campaign(tmp_path / "camp", resume=True, engine="object")

    def test_exact_mode_resumes_from_its_own_checkpoints(self, tmp_path):
        twin = campaign(tmp_path / "twin", engine="soa-exact")
        stop, on_round = kill_after(7)
        campaign(tmp_path / "b", engine="soa-exact", stop=stop,
                 on_round=on_round)
        resumed = campaign(tmp_path / "b", engine="soa-exact", resume=True)
        assert resumed.content_sha256 == twin.content_sha256
        assert resumed.rng_fingerprint == twin.rng_fingerprint
