"""Exact-parity tests for the incremental window analytics.

``IncrementalWindowMetrics`` maintains per-window degree histograms,
reciprocity and clustering from edge deltas between consecutive
snapshots.  Its contract is **bit-for-bit equality** with the full CSR
kernels (``degree_distributions``, ``edge_reciprocity`` over
``active_compact()``, ``average_clustering`` over
``stable_undirected_compact()``) on every window — including windows
that cross a periodic resync boundary, so both the delta path and the
rebuild path are exercised against the same reference.
"""

import pytest

from repro.core.experiments import WINDOW_STRUCTURE_METRICS, windowed_structure
from repro.core.metrics import degree_distributions
from repro.core.snapshots import build_snapshot
from repro.core.timeseries import observe
from repro.graph.clustering import average_clustering
from repro.graph.reciprocity import edge_reciprocity
from repro.simulator import SystemConfig, UUSeeSystem
from repro.soa.incremental import IncrementalWindowMetrics, observe_incremental
from repro.traces import InMemoryTraceStore
from repro.traces.store import iter_windows
from repro.workloads.flashcrowd import FlashCrowdEvent

WINDOW = 600.0


@pytest.fixture(scope="module")
def churn_trace():
    """A churn-heavy trace: early flash crowd drives joins then departures."""
    config = SystemConfig(
        seed=47,
        base_concurrency=90.0,
        flash_crowd=FlashCrowdEvent(
            start=1_800.0, ramp_seconds=1_800.0, hold_seconds=3_600.0,
            decay_seconds=1_800.0, magnitude=2.0,
        ),
        engine="soa",
    )
    store = InMemoryTraceStore()
    UUSeeSystem(config, store).run(seconds=6 * 3600)
    return list(store.reports)


def reference_rows(reports, *, active_threshold=10):
    rows = []
    for time, window in iter_windows(reports, WINDOW):
        snap = build_snapshot(
            window, time=time, window_seconds=WINDOW,
            active_threshold=active_threshold,
        )
        rows.append(
            (
                time,
                degree_distributions(snap),
                edge_reciprocity(snap.active_compact()),
                average_clustering(snap.stable_undirected_compact()),
            )
        )
    return rows


@pytest.mark.parametrize("resync_every", [5, 0])
def test_every_window_matches_kernels_exactly(churn_trace, resync_every):
    state = IncrementalWindowMetrics(resync_every=resync_every)
    windows = list(iter_windows(churn_trace, WINDOW))
    assert len(windows) > 12, "churn trace too short to be meaningful"
    refs = reference_rows(churn_trace)
    for (time, window), (_, deg, rho, clu) in zip(windows, refs):
        row = state.update(window)
        assert row["degrees"] == deg, f"degrees diverge at t={time}"
        assert row["reciprocity"] == rho, f"reciprocity diverges at t={time}"
        assert row["clustering"] == clu, f"clustering diverges at t={time}"
    if resync_every:
        assert state.resyncs >= len(windows) // resync_every
    else:
        assert state.resyncs == 0
    assert state.windows_processed == len(windows)


def test_observe_incremental_equals_full_observe(churn_trace):
    inc = observe_incremental(churn_trace, window_seconds=WINDOW)
    full = observe(churn_trace, WINDOW_STRUCTURE_METRICS, window_seconds=WINDOW)
    assert inc.times == full.times
    assert set(inc.values) == set(full.values)
    for key in full.values:
        assert inc.values[key] == full.values[key], f"series {key!r} diverges"


def test_observe_every_subsampling(churn_trace):
    inc = observe_incremental(
        churn_trace, window_seconds=WINDOW, observe_every=3 * WINDOW
    )
    full = observe(
        churn_trace,
        WINDOW_STRUCTURE_METRICS,
        window_seconds=WINDOW,
        observe_every=3 * WINDOW,
    )
    dense = observe_incremental(churn_trace, window_seconds=WINDOW)
    assert inc.times == full.times
    assert len(inc.times) < len(dense.times)
    for key in full.values:
        assert inc.values[key] == full.values[key]


def test_windowed_structure_modes_agree(churn_trace):
    inc = windowed_structure(churn_trace, mode="incremental")
    full = windowed_structure(churn_trace, mode="full")
    assert inc.times == full.times
    for key in full.values:
        assert inc.values[key] == full.values[key]


def test_windowed_structure_rejects_unknown_mode(churn_trace):
    with pytest.raises(ValueError, match="analytics mode"):
        windowed_structure(churn_trace, mode="magic")


def test_invalid_parameters_rejected(churn_trace):
    with pytest.raises(ValueError):
        IncrementalWindowMetrics(resync_every=-1)
    with pytest.raises(ValueError):
        observe_incremental(churn_trace, window_seconds=WINDOW, observe_every=1.0)
