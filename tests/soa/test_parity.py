"""Twin-run parity harness: object vs SoA backends on seeded scenarios.

Every scenario is run once per backend from the same seed and compared:

- ``soa-exact`` must be **bit-identical** to the object backend — same
  draw fingerprint, same ``RoundStats``, same trace bytes, same final
  peer/link state — across every registered partner policy and a spread
  of seeds, concurrencies and flash-crowd settings.  This is the RNG
  contract the exact mode promises, so equality here is exact, not
  approximate.
- ``soa`` (fast numerics) renegotiates float arithmetic only: its
  integer outcomes (transfers, satisfied viewers, viewer counts,
  arrivals/departures) must still match the object backend exactly, its
  float aggregates must agree to numerical noise, and it must be fully
  deterministic run-to-run.
"""

import hashlib

import pytest

from repro.overlay import available_policies
from repro.simulator import SystemConfig, UUSeeSystem
from repro.simulator.checkpoint import draw_fingerprint
from repro.traces import InMemoryTraceStore
from repro.workloads.flashcrowd import FlashCrowdEvent

ROUND_SECONDS = 600.0


def build(engine, *, seed, base, overlay="", flash=False):
    config = SystemConfig(
        seed=seed,
        base_concurrency=base,
        flash_crowd=FlashCrowdEvent(start=1_200.0) if flash else None,
        overlay=overlay,
        engine=engine,
    )
    store = InMemoryTraceStore()
    return UUSeeSystem(config, store), store


def trace_sha(store: InMemoryTraceStore) -> str:
    h = hashlib.sha256()
    for r in store.reports:
        h.update(r.to_json().encode())
        h.update(b"\n")
    return h.hexdigest()


def run_pair(engine, *, seed, base, overlay="", flash=False, rounds=8):
    obj, obj_store = build("object", seed=seed, base=base, overlay=overlay, flash=flash)
    soa, soa_store = build(engine, seed=seed, base=base, overlay=overlay, flash=flash)
    for _ in range(rounds):
        obj.run(seconds=ROUND_SECONDS)
        soa.run(seconds=ROUND_SECONDS)
    return obj, obj_store, soa, soa_store


def assert_state_parity(obj, soa):
    assert set(obj.peers) == set(soa.peers)
    for pid, po in obj.peers.items():
        ps = soa.peers[pid]
        for name in (
            "health", "buffer_fill", "recv_rate_kbps", "sent_rate_kbps",
            "playback_position", "depth", "next_report", "suppliers",
        ):
            assert getattr(po, name) == getattr(ps, name), f"peer {pid}.{name}"
        assert set(po.partners) == set(ps.partners), f"peer {pid} partners"
        for qid, lo in po.partners.items():
            ls = ps.partners[qid]
            for name in (
                "rtt_ms", "cap_kbps", "est_kbps", "penalty",
                "sent_segments", "recv_segments", "reported_sent",
                "reported_recv", "established_at", "partner_ip",
            ):
                assert getattr(lo, name) == getattr(ls, name), (
                    f"peer {pid} link {qid}.{name}"
                )


class TestExactParity:
    """soa-exact ↔ object: bit identity under the shared RNG contract."""

    @pytest.mark.parametrize("overlay", sorted(available_policies()))
    def test_every_policy_is_bit_identical(self, overlay):
        obj, obj_store, soa, soa_store = run_pair(
            "soa-exact", seed=91, base=60.0, overlay=overlay, rounds=6
        )
        assert draw_fingerprint(obj) == draw_fingerprint(soa)
        assert obj.round_stats == soa.round_stats
        assert trace_sha(obj_store) == trace_sha(soa_store)
        assert_state_parity(obj, soa)

    @pytest.mark.parametrize(
        "seed,base,flash",
        [(7, 40.0, False), (23, 90.0, True), (1999, 150.0, False)],
    )
    def test_seeded_scenarios_are_bit_identical(self, seed, base, flash):
        obj, obj_store, soa, soa_store = run_pair(
            "soa-exact", seed=seed, base=base, flash=flash, rounds=8
        )
        assert draw_fingerprint(obj) == draw_fingerprint(soa)
        assert obj.round_stats == soa.round_stats
        assert trace_sha(obj_store) == trace_sha(soa_store)
        assert_state_parity(obj, soa)


class TestFastParity:
    """soa ↔ object: integer outcomes exact, float aggregates close."""

    @pytest.mark.parametrize("seed,base", [(7, 40.0), (91, 120.0)])
    def test_integer_outcomes_match(self, seed, base):
        obj, _, soa, _ = run_pair("soa", seed=seed, base=base, rounds=8)
        for so, ss in zip(obj.round_stats, soa.round_stats):
            assert so.transfers == ss.transfers
            assert so.satisfied == ss.satisfied
            assert so.viewers == ss.viewers
            assert so.per_channel_viewers == ss.per_channel_viewers
            rel = abs(so.total_received_kbps - ss.total_received_kbps) / max(
                1.0, so.total_received_kbps
            )
            assert rel < 1e-9

    def test_fast_mode_is_deterministic(self):
        shas = set()
        fps = set()
        for _ in range(2):
            soa, store = build("soa", seed=91, base=90.0)
            for _ in range(8):
                soa.run(seconds=ROUND_SECONDS)
            shas.add(trace_sha(store))
            fps.add(draw_fingerprint(soa))
        assert len(shas) == 1
        assert len(fps) == 1
