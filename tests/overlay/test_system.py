"""System-level overlay contracts: fingerprints, checkpoints, the study."""

import copy

import pytest

from repro.core.experiments import (
    DEFAULT_OVERLAY_SPECS,
    compare_overlays,
    run_campaign,
)
from repro.simulator.checkpoint import (
    CheckpointError,
    draw_fingerprint,
    restore_into,
    snapshot_system,
)
from repro.simulator.protocol import SelectionPolicy
from repro.simulator.system import SystemConfig, UUSeeSystem
from repro.traces.store import InMemoryTraceStore


def _config(overlay: str = "", **kwargs) -> SystemConfig:
    defaults = dict(seed=13, base_concurrency=60.0, flash_crowd=None)
    defaults.update(kwargs)
    return SystemConfig(overlay=overlay, **defaults)


class TestUUSeeEquivalence:
    def test_overlay_uusee_is_draw_identical_to_enum(self):
        """overlay='uusee' must not change a single draw or report."""
        runs = []
        for overlay in ("", "uusee"):
            store = InMemoryTraceStore()
            system = UUSeeSystem(_config(overlay), store)
            system.run(seconds=2 * 3_600.0)
            runs.append((draw_fingerprint(system), list(store)))
        assert runs[0][0] == runs[1][0]
        assert runs[0][1] == runs[1][1]


class TestPolicyCheckpointResume:
    @pytest.mark.parametrize(
        "overlay",
        ["locality:mix=0.6", "hamiltonian:k=2", "random-regular:d=3", "strandcast"],
    )
    def test_resume_is_draw_identical(self, overlay):
        """Snapshot mid-run, restore into a fresh system, continue: the
        finished state must match an uninterrupted run draw for draw."""
        config = _config(overlay)

        reference = UUSeeSystem(config, InMemoryTraceStore())
        reference.run(seconds=4 * 3_600.0)

        first = UUSeeSystem(config, InMemoryTraceStore())
        first.run(seconds=2 * 3_600.0)
        state = copy.deepcopy(snapshot_system(first))

        resumed = UUSeeSystem(config, InMemoryTraceStore())
        restore_into(resumed, state)
        resumed.run(seconds=4 * 3_600.0 - resumed.engine.now)

        assert draw_fingerprint(resumed) == draw_fingerprint(reference)
        ref_state = snapshot_system(reference)
        res_state = snapshot_system(resumed)
        assert res_state["overlay"] == ref_state["overlay"]

    def test_mismatched_policy_refused(self):
        """The overlay spec feeds the config token: a checkpoint taken
        under one policy must not restore into another."""
        first = UUSeeSystem(_config("hamiltonian:k=2"), InMemoryTraceStore())
        first.run(seconds=3_600.0)
        state = snapshot_system(first)
        other = UUSeeSystem(_config("locality:mix=0.6"), InMemoryTraceStore())
        with pytest.raises(CheckpointError, match="different configuration"):
            restore_into(other, state)

    def test_mismatched_params_refused(self):
        first = UUSeeSystem(_config("hamiltonian:k=2"), InMemoryTraceStore())
        first.run(seconds=3_600.0)
        state = snapshot_system(first)
        other = UUSeeSystem(_config("hamiltonian:k=3"), InMemoryTraceStore())
        with pytest.raises(CheckpointError, match="different configuration"):
            restore_into(other, state)

    def test_legacy_policies_checkpoint_without_overlay_state(self):
        system = UUSeeSystem(_config(), InMemoryTraceStore())
        system.run(seconds=3_600.0)
        assert snapshot_system(system)["overlay"] is None


class TestCampaignPolicyInfo:
    def test_health_json_carries_policy(self, tmp_path):
        result = run_campaign(
            tmp_path / "camp",
            days=0.05,
            base_concurrency=50.0,
            seed=3,
            with_flash_crowd=False,
            policy="locality:mix=0.8",
        )
        assert result.policy_name == "locality"
        assert result.policy_params == {"mix": 0.8}
        assert result.policy_spec == "locality:mix=0.8"
        import json

        payload = json.loads((tmp_path / "camp" / "health.json").read_text())
        assert payload["policy"] == {
            "name": "locality",
            "params": {"mix": 0.8},
            "spec": "locality:mix=0.8",
        }

    def test_default_campaign_reports_uusee(self, tmp_path):
        result = run_campaign(
            tmp_path / "camp",
            days=0.05,
            base_concurrency=50.0,
            seed=3,
            with_flash_crowd=False,
        )
        assert result.policy_spec == "uusee"
        assert result.policy_params == {}


class TestCompareOverlays:
    def test_runs_all_default_policies(self):
        study = compare_overlays(hours=2.0, base_concurrency=60.0, seed=5)
        assert [row.spec for row in study.rows] == list(DEFAULT_OVERLAY_SPECS)
        for row in study.rows:
            assert row.num_peers > 0
        by_spec = {row.spec: row for row in study.rows}
        # The structural overlays carry their degree caps into the
        # measured topology: chain indegree 1, cycles <= k, regular <= d.
        assert by_spec["strandcast"].max_indegree == 1
        assert by_spec["hamiltonian:k=2"].max_indegree <= 2
        assert by_spec["random-regular:d=4"].max_indegree <= 4
        assert 0.0 < study.random_intra_baseline < 1.0

    def test_markdown_table_shape(self):
        study = compare_overlays(["uusee", "strandcast"], hours=1.0,
                                 base_concurrency=60.0, seed=5)
        lines = study.markdown().splitlines()
        assert len(lines) == 4  # header + separator + two policy rows
        assert lines[0].startswith("| policy |")
        assert "strandcast" in lines[3]

    def test_unknown_policy_rejected(self):
        from repro.overlay import PolicyError

        with pytest.raises(PolicyError):
            compare_overlays(["nope"], hours=0.5, base_concurrency=40.0)
