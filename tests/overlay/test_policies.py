"""Structural invariants of the non-legacy partner policies."""

from repro.overlay import build_policy
from repro.overlay.legacy import RandomPolicy, TreePolicy, UUSeePolicy
from repro.overlay.hamiltonian import HamiltonianPolicy
from repro.overlay.locality import LocalityPolicy
from repro.overlay.regular import RandomRegularPolicy
from repro.overlay.strandcast import StrandCastPolicy

from tests.overlay.conftest import make_peer, make_world


def is_single_cycle(nxt: dict[int, int], members: set[int]) -> bool:
    """True when the successor map is one cycle covering ``members``."""
    if set(nxt) != members:
        return False
    if not members:
        return True
    start = min(nxt)
    cur = start
    seen = set()
    for _ in range(len(nxt)):
        if cur in seen:
            return False
        seen.add(cur)
        cur = nxt[cur]
    return cur == start and seen == members


class TestHamiltonian:
    def test_cycles_cover_members_and_stay_cycles_under_churn(self):
        peers, _, ex = make_world("hamiltonian:k=2", seed=3)
        policy = ex.partner_policy
        make_peer(peers, 0, is_server=True)
        for pid in range(1, 9):
            make_peer(peers, pid)
        for pid in range(1, 9):
            policy.select_suppliers(peers[pid])
        members = set(peers)
        cycles = policy.cycles(0)
        assert len(cycles) == 2
        assert all(is_single_cycle(nxt, members) for nxt in cycles)

        # Churn: three leave, four join — every cycle must re-close over
        # exactly the new membership.
        for pid in (2, 5, 7):
            del peers[pid]
        for pid in range(20, 24):
            make_peer(peers, pid)
        for pid in sorted(peers):
            if not peers[pid].is_server:
                policy.select_suppliers(peers[pid])
        members = set(peers)
        cycles = policy.cycles(0)
        assert all(is_single_cycle(nxt, members) for nxt in cycles)

    def test_suppliers_are_cycle_predecessors(self):
        peers, _, ex = make_world("hamiltonian:k=2", seed=3)
        policy = ex.partner_policy
        make_peer(peers, 0, is_server=True)
        for pid in range(1, 7):
            make_peer(peers, pid)
        for pid in range(1, 7):
            policy.select_suppliers(peers[pid])
        cycles = policy.cycles(0)
        for pid in range(1, 7):
            peer = peers[pid]
            preds = {
                pred
                for nxt in cycles
                for pred, succ in nxt.items()
                if succ == pid and pred != pid
            }
            assert peer.suppliers <= preds
            assert len(peer.suppliers) <= 2
            assert peer.suppliers <= set(peer.partners)

    def test_refine_rederives_from_cycles(self):
        peers, _, ex = make_world("hamiltonian:k=1", seed=1)
        policy = ex.partner_policy
        make_peer(peers, 0, is_server=True)
        for pid in range(1, 5):
            make_peer(peers, pid)
        for pid in range(1, 5):
            policy.select_suppliers(peers[pid])
        before = {pid: set(peers[pid].suppliers) for pid in range(1, 5)}
        for pid in range(1, 5):
            policy.refine_suppliers(peers[pid])
        assert {pid: set(peers[pid].suppliers) for pid in range(1, 5)} == before


class TestRandomRegular:
    def test_degree_is_min_d_members(self):
        peers, _, ex = make_world("random-regular:d=4", seed=3)
        policy = ex.partner_policy
        make_peer(peers, 0, is_server=True)
        for pid in range(1, 4):  # 4 members total -> want_cap = 3
            make_peer(peers, pid)
        for pid in range(1, 4):
            policy.select_suppliers(peers[pid])
        table = policy.assigned(0)
        for pid in range(1, 4):
            assert len(table[pid]) == 3
            assert pid not in table[pid]
            assert len(set(table[pid])) == 3

    def test_rewires_after_churn(self):
        peers, _, ex = make_world("random-regular:d=2", seed=3)
        policy = ex.partner_policy
        make_peer(peers, 0, is_server=True)
        for pid in range(1, 8):
            make_peer(peers, pid)
        for pid in range(1, 8):
            policy.select_suppliers(peers[pid])
        del peers[3]
        del peers[4]
        for pid in sorted(peers):
            if not peers[pid].is_server:
                policy.select_suppliers(peers[pid])
        table = policy.assigned(0)
        assert 3 not in table and 4 not in table
        alive = set(peers)
        for pid, assigned in table.items():
            assert len(assigned) == 2
            assert set(assigned) <= alive - {pid}
            assert peers[pid].suppliers <= set(assigned)


class TestStrandCast:
    def test_chain_covers_viewers_with_indegree_one(self):
        peers, _, ex = make_world("strandcast", seed=0)
        policy = ex.partner_policy
        make_peer(peers, 0, is_server=True)
        for pid in range(1, 6):
            make_peer(peers, pid)
        for pid in range(1, 6):
            policy.select_suppliers(peers[pid])
        chain = policy.chain(0)
        assert sorted(chain) == list(range(1, 6))
        # Head draws from the (lowest-numbered) server, everyone else
        # from exactly its chain predecessor.
        assert peers[chain[0]].suppliers == {0}
        for prev_pid, pid in zip(chain, chain[1:]):
            assert peers[pid].suppliers == {prev_pid}

    def test_departure_bridges_preserving_order(self):
        peers, _, ex = make_world("strandcast", seed=0)
        policy = ex.partner_policy
        make_peer(peers, 0, is_server=True)
        for pid in range(1, 6):
            make_peer(peers, pid)
        for pid in range(1, 6):
            policy.select_suppliers(peers[pid])
        order = policy.chain(0)
        victim = order[2]
        del peers[victim]
        for pid in sorted(peers):
            if not peers[pid].is_server:
                policy.select_suppliers(peers[pid])
        assert policy.chain(0) == [pid for pid in order if pid != victim]
        successor = order[3]
        assert peers[successor].suppliers == {order[1]}


class TestLocality:
    def _select_intra_count(self, mix: float) -> tuple[int, int]:
        """(intra-ISP suppliers, total suppliers) at the given mix."""
        # 30 candidates at ~36 kbps each against a 736 kbps standby
        # demand: the greedy fill stops after ~21, so selection is
        # actually selective and the mix can show through.
        peers, _, ex = make_world(f"locality:mix={mix:g}", seed=11)
        policy = ex.partner_policy
        viewer = make_peer(peers, 1, isp="China Telecom")
        for pid in range(2, 17):
            make_peer(peers, pid, isp="China Telecom")
        for pid in range(17, 32):
            make_peer(peers, pid, isp="China Netcom")
        for pid in range(2, 32):
            ex.connect(viewer, peers[pid], 0.0)
        policy.select_suppliers(viewer)
        intra = sum(
            1 for pid in viewer.suppliers if peers[pid].isp == "China Telecom"
        )
        assert len(viewer.suppliers) < 30  # the fill actually selected
        return intra, len(viewer.suppliers)

    def test_mix_monotonically_shifts_intra_isp_fraction(self):
        # Identical world and RNG stream at every mix: the score of an
        # intra-ISP candidate relative to an inter-ISP one is monotone
        # in mix, so the selected set can only get more local.
        fractions = []
        intra_counts = []
        for mix in (0.0, 0.25, 0.5, 0.75, 1.0):
            intra, total = self._select_intra_count(mix)
            assert total > 0
            fractions.append(intra / total)
            intra_counts.append(intra)
        assert fractions == sorted(fractions)
        assert fractions[-1] > fractions[0]
        # Pure locality ranks every same-ISP candidate above every
        # inter-ISP one, so all 15 intra candidates are selected.
        assert intra_counts[-1] == 15

    def test_gossip_pool_prefers_same_isp(self):
        peers, _, ex = make_world("locality:mix=1", seed=2)
        policy = ex.partner_policy
        helper = make_peer(peers, 1, isp="China Telecom")
        same = make_peer(peers, 2, isp="China Telecom")
        other = make_peer(peers, 3, isp="China Netcom")
        ex.connect(helper, same, 0.0)
        ex.connect(helper, other, 0.0)
        ordered = policy.order_gossip_pool(helper, [3, 2])
        assert ordered[0] == 2


class TestFlagsAndState:
    def test_only_random_is_blind(self):
        assert RandomPolicy.blind_requests
        for cls in (
            UUSeePolicy,
            TreePolicy,
            LocalityPolicy,
            HamiltonianPolicy,
            RandomRegularPolicy,
            StrandCastPolicy,
        ):
            assert not cls.blind_requests

    def test_legacy_policies_have_no_private_state(self):
        # None keeps the draw fingerprint and checkpoint payload of
        # pre-overlay campaigns byte-identical.
        for spec in ("uusee", "random", "tree"):
            policy = build_policy(spec)
            assert policy.rng_state() is None
            assert policy.checkpoint_state() is None

    def test_stateful_policies_expose_rng_state(self):
        for spec in ("locality", "hamiltonian", "random-regular"):
            assert build_policy(spec, seed=5).rng_state() is not None
        # StrandCast is deterministic: chain state, no RNG stream.
        strand = build_policy("strandcast")
        assert strand.rng_state() is None
        assert strand.checkpoint_state() is not None
