"""Shared world-building helpers for the overlay policy tests."""

from repro.network.latency import LatencyModel
from repro.overlay import build_policy
from repro.simulator.channel import Channel, ChannelCatalogue
from repro.simulator.exchange import ExchangeEngine
from repro.simulator.peer import Peer
from repro.simulator.protocol import ProtocolConfig, SelectionPolicy
from repro.simulator.tracker import Tracker

RATE = 400.0


def make_world(spec="uusee", *, config=None, seed=0):
    """A bare exchange engine driven by the given policy spec."""
    peers = {}
    catalogue = ChannelCatalogue([Channel(0, "CH", RATE, 1.0)])
    tracker = Tracker(seed=seed, server_probability=0.0)
    engine = ExchangeEngine(
        peers=peers,
        catalogue=catalogue,
        tracker=tracker,
        latency=LatencyModel(seed=seed),
        config=config or ProtocolConfig(),
        policy=SelectionPolicy.UUSEE,
        seed=seed,
        partner_policy=build_policy(spec, seed=seed),
    )
    return peers, tracker, engine


def make_peer(
    peers,
    peer_id,
    *,
    isp="China Telecom",
    upload=800.0,
    is_server=False,
    health=1.0,
    join=0.0,
):
    peer = Peer(
        peer_id,
        ip=10_000 + peer_id,
        isp=isp,
        is_china=True,
        channel_id=0,
        upload_kbps=upload,
        download_kbps=4_000.0,
        class_name="server" if is_server else "cable",
        join_time=join,
        depart_time=float("inf"),
        is_server=is_server,
    )
    peer.health = health
    peers[peer_id] = peer
    return peer
