"""Registry, spec parsing and policy construction contracts."""

import pytest

from repro.core.experiments import normalize_policy
from repro.overlay import (
    PartnerPolicy,
    PolicyError,
    available_policies,
    build_policy,
    canonical_spec,
    derive_policy_seed,
    parse_policy_spec,
    register,
)
from repro.simulator.protocol import SelectionPolicy


class TestParseSpec:
    def test_bare_name(self):
        assert parse_policy_spec("uusee") == ("uusee", {})

    def test_params(self):
        name, params = parse_policy_spec("locality:mix=0.8")
        assert name == "locality"
        assert params == {"mix": 0.8}

    def test_int_params_stay_int(self):
        _, params = parse_policy_spec("hamiltonian:k=3")
        assert params == {"k": 3}
        assert isinstance(params["k"], int)

    def test_multiple_params(self):
        _, params = parse_policy_spec("x:b=2,a=1.5")
        assert params == {"b": 2, "a": 1.5}

    @pytest.mark.parametrize("bad", ["", ":", "x:mix", "x:mix=", "x:=1", "x:mix=abc"])
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(PolicyError):
            parse_policy_spec(bad)

    def test_canonical_spec_sorts_params(self):
        assert canonical_spec("x", {"b": 2, "a": 1.5}) == "x:a=1.5,b=2"
        assert canonical_spec("x", {}) == "x"


class TestRegistry:
    def test_all_policies_registered(self):
        assert available_policies() == [
            "hamiltonian",
            "locality",
            "random",
            "random-regular",
            "strandcast",
            "tree",
            "uusee",
        ]

    def test_unknown_name_rejected(self):
        with pytest.raises(PolicyError, match="unknown"):
            build_policy("definitely-not-a-policy")

    def test_unknown_param_rejected(self):
        with pytest.raises(PolicyError):
            build_policy("uusee:foo=1")

    @pytest.mark.parametrize(
        "bad",
        [
            "locality:mix=2",
            "locality:mix=-0.1",
            "hamiltonian:k=0",
            "hamiltonian:k=1.5",
            "random-regular:d=0",
            "random-regular:d=2.5",
        ],
    )
    def test_bad_param_values_rejected(self, bad):
        with pytest.raises(PolicyError):
            build_policy(bad)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):

            @register
            class Duplicate(PartnerPolicy):
                name = "uusee"

    def test_nameless_registration_rejected(self):
        with pytest.raises(ValueError):

            @register
            class Nameless(PartnerPolicy):
                pass

    def test_spec_roundtrip(self):
        policy = build_policy("locality:mix=0.8")
        assert policy.spec() == "locality:mix=0.8"
        assert build_policy(policy.spec()).params == policy.params

    def test_default_params_in_spec(self):
        assert build_policy("hamiltonian").spec() == "hamiltonian:k=2"
        assert build_policy("random-regular").spec() == "random-regular:d=4"
        assert build_policy("uusee").spec() == "uusee"
        assert build_policy("strandcast").spec() == "strandcast"


class TestDerivedSeeds:
    def test_deterministic(self):
        assert derive_policy_seed(7, "locality") == derive_policy_seed(7, "locality")

    def test_distinct_across_names_and_seeds(self):
        seeds = {
            derive_policy_seed(s, n)
            for s in (0, 1, 2)
            for n in ("locality", "hamiltonian", "random-regular")
        }
        assert len(seeds) == 9


class TestNormalizePolicy:
    def test_enum_passthrough(self):
        assert normalize_policy(SelectionPolicy.TREE) == (SelectionPolicy.TREE, "")

    @pytest.mark.parametrize("name", ["uusee", "random", "tree"])
    def test_legacy_bare_names_stay_legacy(self, name):
        # The enum keeps driving config_token-compatible campaigns.
        assert normalize_policy(name) == (SelectionPolicy(name), "")

    def test_overlay_specs_ride_the_overlay_field(self):
        assert normalize_policy("locality:mix=0.8") == (
            SelectionPolicy.UUSEE,
            "locality:mix=0.8",
        )
        assert normalize_policy("strandcast") == (SelectionPolicy.UUSEE, "strandcast")

    def test_canonicalizes_param_order(self):
        _, overlay = normalize_policy("locality:mix=0.5")
        assert overlay == canonical_spec("locality", {"mix": 0.5})

    def test_unknown_and_invalid_rejected(self):
        with pytest.raises(PolicyError):
            normalize_policy("nope")
        with pytest.raises(PolicyError):
            normalize_policy("locality:mix=9")
