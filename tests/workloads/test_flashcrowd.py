"""Unit tests for the flash crowd event."""

import pytest

from repro.workloads import FlashCrowdEvent
from repro.workloads.flashcrowd import DEFAULT_FLASH_CROWD_START, SECONDS_PER_DAY


class TestFlashCrowdEvent:
    def test_quiet_before_start(self):
        ev = FlashCrowdEvent()
        assert ev.multiplier(ev.start - 1) == 1.0
        assert ev.multiplier(0.0) == 1.0

    def test_ramp_monotone(self):
        ev = FlashCrowdEvent()
        quarter = ev.multiplier(ev.start + ev.ramp_seconds * 0.25)
        half = ev.multiplier(ev.start + ev.ramp_seconds * 0.5)
        full = ev.multiplier(ev.start + ev.ramp_seconds)
        assert 1.0 < quarter < half < full
        assert full == pytest.approx(ev.magnitude)

    def test_hold_at_magnitude(self):
        ev = FlashCrowdEvent()
        mid_hold = ev.start + ev.ramp_seconds + ev.hold_seconds / 2
        assert ev.multiplier(mid_hold) == pytest.approx(ev.magnitude)

    def test_decay_returns_to_one(self):
        ev = FlashCrowdEvent()
        end_hold = ev.start + ev.ramp_seconds + ev.hold_seconds
        after = ev.multiplier(end_hold + 6 * ev.decay_seconds)
        assert 1.0 < after < 1.01
        assert ev.multiplier(end_hold + 1) < ev.magnitude

    def test_default_start_is_day5_evening(self):
        # Day 5 after Sunday Oct 1 is Friday Oct 6; surge peaks near 9 p.m.
        ev = FlashCrowdEvent()
        assert DEFAULT_FLASH_CROWD_START // SECONDS_PER_DAY == 5
        peak_hour = (ev.peak_time % SECONDS_PER_DAY) / 3600
        assert 20.5 <= peak_hour <= 22.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            FlashCrowdEvent(magnitude=0.5)
        with pytest.raises(ValueError):
            FlashCrowdEvent(ramp_seconds=0)
