"""Unit tests for the population model and arrival process."""

import pytest

from repro.workloads import (
    ArrivalProcess,
    FlashCrowdEvent,
    PopulationModel,
    SessionDurationModel,
)
from repro.workloads.diurnal import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestPopulationModel:
    def test_target_peaks_in_evening(self):
        pop = PopulationModel(base_concurrency=1000, flash_crowd=None)
        evening = pop.target(2 * SECONDS_PER_DAY + 21 * SECONDS_PER_HOUR)
        night = pop.target(2 * SECONDS_PER_DAY + 5 * SECONDS_PER_HOUR)
        assert evening > 1.3 * night

    def test_flash_crowd_applied(self):
        ev = FlashCrowdEvent(magnitude=2.0)
        with_fc = PopulationModel(base_concurrency=1000, flash_crowd=ev)
        without = PopulationModel(base_concurrency=1000, flash_crowd=None)
        t = ev.peak_time
        assert with_fc.target(t) == pytest.approx(2.0 * without.target(t))

    def test_weekend_boost(self):
        pop = PopulationModel(base_concurrency=1000, flash_crowd=None)
        sunday_noon = 13 * SECONDS_PER_HOUR
        monday_noon = SECONDS_PER_DAY + 13 * SECONDS_PER_HOUR
        assert pop.target(sunday_noon) > pop.target(monday_noon)


class TestArrivalProcess:
    def test_rate_is_littles_law(self):
        pop = PopulationModel(base_concurrency=1200, flash_crowd=None)
        sessions = SessionDurationModel()
        proc = ArrivalProcess(pop, sessions, seed=0)
        t = 21 * SECONDS_PER_HOUR
        assert proc.rate(t) == pytest.approx(
            pop.target(t) / sessions.mean_duration()
        )

    def test_arrival_counts_track_rate(self):
        pop = PopulationModel(base_concurrency=2000, flash_crowd=None)
        proc = ArrivalProcess(pop, SessionDurationModel(), seed=1)
        t = 21 * SECONDS_PER_HOUR
        dt = 600.0
        expected = proc.rate(t + dt / 2) * dt
        counts = [proc.arrivals_in(t, dt) for _ in range(200)]
        mean = sum(counts) / len(counts)
        assert mean == pytest.approx(expected, rel=0.05)

    def test_arrival_times_sorted_within_window(self):
        pop = PopulationModel(base_concurrency=500, flash_crowd=None)
        proc = ArrivalProcess(pop, SessionDurationModel(), seed=2)
        times = proc.arrival_times_in(1000.0, 600.0)
        assert times == sorted(times)
        assert all(1000.0 <= x < 1600.0 for x in times)

    def test_zero_rate_zero_arrivals(self):
        pop = PopulationModel(base_concurrency=0, flash_crowd=None)
        proc = ArrivalProcess(pop, SessionDurationModel(), seed=3)
        assert proc.arrivals_in(0.0, 600.0) == 0

    def test_deterministic_with_seed(self):
        pop = PopulationModel(base_concurrency=800, flash_crowd=None)
        a = ArrivalProcess(pop, SessionDurationModel(), seed=4)
        b = ArrivalProcess(pop, SessionDurationModel(), seed=4)
        assert [a.arrivals_in(0, 600) for _ in range(20)] == [
            b.arrivals_in(0, 600) for _ in range(20)
        ]

    def test_small_lambda_poisson_branch(self):
        pop = PopulationModel(base_concurrency=5, flash_crowd=None)
        proc = ArrivalProcess(pop, SessionDurationModel(), seed=5)
        counts = [proc.arrivals_in(0, 60) for _ in range(500)]
        assert min(counts) >= 0
        assert 0 < sum(counts) < 1000

    def test_steady_state_concurrency_tracks_target(self):
        """End-to-end M/G/inf check: realised concurrency ~ target."""
        import heapq

        pop = PopulationModel(base_concurrency=600, flash_crowd=None)
        proc = ArrivalProcess(pop, SessionDurationModel(), seed=6)
        departures: list[float] = []
        online = 0
        t = 0.0
        dt = 300.0
        history = []
        while t < 1.5 * SECONDS_PER_DAY:
            for at in proc.arrival_times_in(t, dt):
                heapq.heappush(departures, at + proc.sample_session())
            t += dt
            while departures and departures[0] <= t:
                heapq.heappop(departures)
            online = len(departures)
            if t > SECONDS_PER_DAY:  # warmed up
                history.append((t, online))
        for when, realised in history[:: len(history) // 10 or 1]:
            assert realised == pytest.approx(pop.target(when), rel=0.25)
