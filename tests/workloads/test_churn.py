"""Unit tests for the session duration / churn model."""

import random

import pytest

from repro.workloads import SessionDurationModel


class TestSessionDurationModel:
    def test_mean_duration_matches_samples(self):
        model = SessionDurationModel()
        rng = random.Random(0)
        samples = [model.sample(rng) for _ in range(60_000)]
        assert sum(samples) / len(samples) == pytest.approx(
            model.mean_duration(), rel=0.05
        )

    def test_stable_fraction_near_one_third(self):
        # Fig. 1(A): stable peers are asymptotically 1/3 of total.
        model = SessionDurationModel()
        assert model.stable_concurrent_fraction() == pytest.approx(1 / 3, abs=0.07)

    def test_stable_fraction_monotone_in_threshold(self):
        model = SessionDurationModel()
        f10 = model.stable_concurrent_fraction(600)
        f20 = model.stable_concurrent_fraction(1200)
        f40 = model.stable_concurrent_fraction(2400)
        assert f10 > f20 > f40 > 0.0

    def test_transients_dominate_counts(self):
        model = SessionDurationModel()
        rng = random.Random(1)
        short = sum(1 for _ in range(20_000) if model.sample(rng) < 1200)
        assert short / 20_000 > 0.6

    def test_samples_positive(self):
        model = SessionDurationModel()
        rng = random.Random(2)
        assert all(model.sample(rng) > 0 for _ in range(1000))

    def test_invalid_weight(self):
        with pytest.raises(ValueError):
            SessionDurationModel(transient_weight=1.0)

    def test_stable_fraction_tracks_mixture(self):
        heavy_transient = SessionDurationModel(transient_weight=0.95)
        heavy_stable = SessionDurationModel(transient_weight=0.30)
        assert (
            heavy_transient.stable_concurrent_fraction()
            < SessionDurationModel().stable_concurrent_fraction()
            < heavy_stable.stable_concurrent_fraction()
        )
