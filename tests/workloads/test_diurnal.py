"""Unit tests for diurnal and weekly load shapes."""

import pytest

from repro.workloads import DiurnalShape, weekly_multiplier
from repro.workloads.diurnal import SECONDS_PER_DAY, SECONDS_PER_HOUR


class TestDiurnalShape:
    def test_peak_at_9pm_is_one(self):
        shape = DiurnalShape()
        assert shape.multiplier(21 * SECONDS_PER_HOUR) == pytest.approx(1.0)

    def test_double_peak_structure(self):
        shape = DiurnalShape()
        noon_peak = shape.multiplier(13 * SECONDS_PER_HOUR)
        evening_peak = shape.multiplier(21 * SECONDS_PER_HOUR)
        trough = shape.multiplier(5 * SECONDS_PER_HOUR)
        late_afternoon = shape.multiplier(17 * SECONDS_PER_HOUR)
        assert evening_peak > noon_peak > late_afternoon
        assert trough < 0.75 * noon_peak

    def test_noon_is_local_maximum(self):
        shape = DiurnalShape()
        at = lambda h: shape.multiplier(h * SECONDS_PER_HOUR)
        assert at(13) > at(11)
        assert at(13) > at(16)

    def test_repeats_daily(self):
        shape = DiurnalShape()
        t = 9 * SECONDS_PER_HOUR
        assert shape.multiplier(t) == pytest.approx(
            shape.multiplier(t + 3 * SECONDS_PER_DAY)
        )

    def test_bounded(self):
        shape = DiurnalShape()
        values = [shape.multiplier(h * 900) for h in range(96)]
        assert all(0.0 < v <= 1.0 + 1e-9 for v in values)

    def test_peak_hours_accessor(self):
        assert DiurnalShape().peak_hours() == (13.0, 21.0)


class TestWeeklyMultiplier:
    def test_epoch_day_is_sunday_boosted(self):
        assert weekly_multiplier(0.0) > 1.0

    def test_weekdays_flat(self):
        for day in (1, 2, 3, 4, 5):  # Mon..Fri
            assert weekly_multiplier(day * SECONDS_PER_DAY + 7200) == 1.0

    def test_saturday_boosted(self):
        assert weekly_multiplier(6 * SECONDS_PER_DAY) > 1.0

    def test_second_week_same_pattern(self):
        t = 3 * SECONDS_PER_DAY
        assert weekly_multiplier(t) == weekly_multiplier(t + 7 * SECONDS_PER_DAY)

    def test_boost_is_slight(self):
        # the paper: 'only a slight number increase over the weekend'
        assert weekly_multiplier(0.0) < 1.2
