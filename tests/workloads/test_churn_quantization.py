"""Unit tests for survival and round-quantized session durations."""

import random

import pytest

from repro.workloads import SessionDurationModel


class TestSurvival:
    def test_boundaries(self):
        m = SessionDurationModel()
        assert m.survival(0.0) == 1.0
        assert m.survival(-5.0) == 1.0
        assert m.survival(10_000_000.0) < 1e-6

    def test_monotone_decreasing(self):
        m = SessionDurationModel()
        values = [m.survival(t) for t in (0, 60, 300, 900, 3600, 10_000)]
        assert values == sorted(values, reverse=True)

    def test_matches_empirical(self):
        m = SessionDurationModel()
        rng = random.Random(0)
        samples = [m.sample(rng) for _ in range(40_000)]
        for t in (300.0, 1200.0, 3600.0):
            empirical = sum(1 for d in samples if d > t) / len(samples)
            assert m.survival(t) == pytest.approx(empirical, abs=0.02)


class TestQuantizedMean:
    def test_exceeds_plain_mean(self):
        m = SessionDurationModel()
        assert m.mean_quantized_duration(600.0) > m.mean_duration()

    def test_converges_to_mean_for_small_quantum(self):
        m = SessionDurationModel()
        fine = m.mean_quantized_duration(1.0)
        assert fine == pytest.approx(m.mean_duration(), rel=0.02)

    def test_matches_empirical_ceil(self):
        import math

        m = SessionDurationModel()
        rng = random.Random(1)
        q = 600.0
        samples = [math.ceil(m.sample(rng) / q) * q for _ in range(40_000)]
        assert m.mean_quantized_duration(q) == pytest.approx(
            sum(samples) / len(samples), rel=0.03
        )

    def test_invalid_quantum(self):
        with pytest.raises(ValueError):
            SessionDurationModel().mean_quantized_duration(0.0)

    def test_quantized_little_law_keeps_stable_fraction(self):
        """With quantization-corrected rates, the stable fraction stays ~1/3.

        Analytic cross-check of the DESIGN.md calibration argument: the
        residual-lifetime mass above 20 min over the quantized mean.
        """
        m = SessionDurationModel()
        q = 600.0
        # residual mass above 1200s under quantized lifetimes:
        # sum_{k>=2} q * S(k q)  (a peer quantized to k rounds is 'stable'
        # for the rounds after its age passes 1200 = 2 rounds)
        residual = sum(q * m.survival(k * q) for k in range(2, 2000))
        fraction = residual / m.mean_quantized_duration(q)
        assert fraction == pytest.approx(1 / 3, abs=0.1)
