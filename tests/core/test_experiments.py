"""Integration tests for the per-figure experiment drivers.

These run every driver end-to-end on a shared two-day simulated trace
and assert the qualitative shapes the paper reports (with tolerances
appropriate to the small test scale; the benchmarks assert the same
shapes at full scale).
"""

import pytest

from repro.core.experiments import (
    fig1_scale,
    fig2_isp_shares,
    fig3_streaming_quality,
    fig4_degree_distributions,
    fig5_degree_evolution,
    fig6_intra_isp_degrees,
    fig7_small_world,
    fig8_reciprocity,
)

DAY = 86_400.0
HOUR = 3_600.0


class TestFig1:
    def test_counts_and_ratio(self, small_trace):
        result = fig1_scale(small_trace)
        assert len(result.series) >= 40
        ratio = result.stable_ratio()
        assert 0.2 <= ratio <= 0.55  # paper: asymptotically 1/3

    def test_evening_peak(self, small_trace):
        result = fig1_scale(small_trace)
        assert 19 <= result.peak_hour_of_day() <= 23

    def test_daily_distinct_exceeds_concurrent(self, small_trace):
        result = fig1_scale(small_trace)
        assert len(result.daily) == 2
        for _, total, stable in result.daily:
            assert total > stable > 0
        max_concurrent = max(result.series.column("total"))
        assert result.daily[1][1] > 2 * max_concurrent


class TestFig2:
    def test_rank_order(self, small_trace):
        shares = fig2_isp_shares(small_trace)
        assert sum(shares.values()) == pytest.approx(1.0)
        ranked = sorted(shares, key=shares.get, reverse=True)
        assert ranked[0] == "China Telecom"
        assert ranked[1] == "China Netcom"
        assert shares.get("Oversea ISPs", 0) > 0.02


class TestFig3:
    def test_quality_levels(self, small_trace):
        result = fig3_streaming_quality(small_trace)
        cctv1 = result.mean_quality("CCTV1")
        assert 0.45 <= cctv1 <= 1.0  # paper: ~3/4 at full scale

    def test_both_channels_observed(self, small_trace):
        result = fig3_streaming_quality(small_trace)
        assert set(result.channels) == {"CCTV1", "CCTV4"}
        assert any(v is not None for v in result.series.column("CCTV4"))


class TestFig4:
    TIMES = {"9am": DAY + 9 * HOUR, "9pm": DAY + 21 * HOUR}

    def test_distributions_present(self, small_trace):
        result = fig4_degree_distributions(small_trace, snapshot_times=self.TIMES)
        for label in self.TIMES:
            for kind in ("partners", "in", "out"):
                assert result.kind_at(label, kind).num_peers > 10

    def test_not_power_law(self, small_trace):
        from repro.graph import powerlaw_fit

        result = fig4_degree_distributions(small_trace, snapshot_times=self.TIMES)
        dist = result.kind_at("9pm", "partners")
        assert dist.mode() > 3  # interior spike, not a monotone decay
        assert not powerlaw_fit(dist).is_plausible_powerlaw

    def test_indegree_ceiling(self, small_trace):
        result = fig4_degree_distributions(small_trace, snapshot_times=self.TIMES)
        for label in self.TIMES:
            assert result.kind_at(label, "in").max_degree() <= 25

    def test_trace_too_short_raises(self, small_trace):
        with pytest.raises(ValueError):
            fig4_degree_distributions(
                small_trace, snapshot_times={"future": 30 * DAY}
            )


class TestFig5:
    def test_indegree_flat_near_ten(self, small_trace):
        result = fig5_degree_evolution(small_trace)
        assert 5 <= result.mean_indegree() <= 14

    def test_partner_count_swings_more_than_indegree(self, small_trace):
        result = fig5_degree_evolution(small_trace)
        lo, hi = result.partner_count_range()
        summaries = result.summaries()
        in_values = [s.mean_indegree for s in summaries[8:]]
        in_spread = max(in_values) - min(in_values)
        assert (hi - lo) > in_spread  # partners vary, indegree steady


class TestFig6:
    def test_intra_fraction_above_random(self, small_trace):
        result = fig6_intra_isp_degrees(small_trace)
        frac_in, frac_out = result.mean_fractions()
        assert frac_in > result.random_baseline + 0.02
        assert frac_out > result.random_baseline + 0.02

    def test_fraction_in_plausible_band(self, small_trace):
        result = fig6_intra_isp_degrees(small_trace)
        frac_in, frac_out = result.mean_fractions()
        for value in (frac_in, frac_out):
            assert 0.25 <= value <= 0.65  # paper: ~0.4


class TestFig7:
    def test_clustering_far_above_random(self, small_trace):
        result = fig7_small_world(small_trace)
        assert result.mean_clustering_ratio() > 3  # >10 at full scale

    def test_path_lengths_comparable_to_random(self, small_trace):
        result = fig7_small_world(small_trace)
        assert 0.3 <= result.mean_path_ratio() <= 2.0

    def test_isp_subgraph_more_clustered(self, small_trace):
        global_result = fig7_small_world(small_trace)
        netcom = fig7_small_world(small_trace, isp="China Netcom")
        c_global = [m.clustering for m in global_result.metrics()]
        c_netcom = [m.clustering for m in netcom.metrics()]
        assert sum(c_netcom) / len(c_netcom) > 0.8 * sum(c_global) / len(c_global)


class TestFig8:
    def test_reciprocal_topology(self, small_trace):
        result = fig8_reciprocity(small_trace)
        means = result.means()
        assert means.all_links > 0.1  # strongly reciprocal, never ~0

    def test_intra_exceeds_all_exceeds_inter(self, small_trace):
        means = fig8_reciprocity(small_trace).means()
        assert means.intra_isp > means.all_links
        assert means.all_links > means.inter_isp - 0.05
