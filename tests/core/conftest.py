"""Shared simulated trace for core experiment tests.

One small two-day simulation is produced per test session and shared by
all experiment-driver tests (building it per-test would dominate the
suite's runtime).
"""

import pytest

from repro.core.experiments import run_simulation_to_trace
from repro.traces import TraceReader


@pytest.fixture(scope="session")
def small_trace(tmp_path_factory):
    path = tmp_path_factory.mktemp("trace") / "small.jsonl.gz"
    run_simulation_to_trace(
        path,
        days=2.0,
        base_concurrency=400.0,
        seed=11,
        with_flash_crowd=False,
    )
    return TraceReader(path)
