"""Durable campaign health summaries: atomic writes, tolerant reads."""

from __future__ import annotations

import json

from repro.core.experiments import (
    CAMPAIGN_HEALTH_NAME,
    CAMPAIGN_HEALTH_PREV_NAME,
    load_campaign_health,
    write_campaign_health_payload,
)


def test_write_then_load_round_trips(tmp_path):
    payload = {"trace_records": 7, "interrupted": False}
    write_campaign_health_payload(tmp_path, payload)
    assert load_campaign_health(tmp_path) == payload
    # First write: nothing to back up yet.
    assert not (tmp_path / CAMPAIGN_HEALTH_PREV_NAME).exists()


def test_rewrite_promotes_previous_copy_to_backup(tmp_path):
    write_campaign_health_payload(tmp_path, {"generation": 1})
    write_campaign_health_payload(tmp_path, {"generation": 2})
    assert load_campaign_health(tmp_path) == {"generation": 2}
    backup = json.loads((tmp_path / CAMPAIGN_HEALTH_PREV_NAME).read_text())
    assert backup == {"generation": 1}


def test_damaged_primary_falls_back_to_backup(tmp_path):
    write_campaign_health_payload(tmp_path, {"generation": 1})
    write_campaign_health_payload(tmp_path, {"generation": 2})
    # A crash mid-campaign (or a stray editor) mangles the primary.
    (tmp_path / CAMPAIGN_HEALTH_NAME).write_text('{"generation": ')
    assert load_campaign_health(tmp_path) == {"generation": 1}


def test_damaged_primary_never_clobbers_good_backup(tmp_path):
    write_campaign_health_payload(tmp_path, {"generation": 1})
    write_campaign_health_payload(tmp_path, {"generation": 2})
    (tmp_path / CAMPAIGN_HEALTH_NAME).write_text("not json at all")
    # The next writer must not promote the garbage over the good copy.
    write_campaign_health_payload(tmp_path, {"generation": 3})
    assert load_campaign_health(tmp_path) == {"generation": 3}
    backup = json.loads((tmp_path / CAMPAIGN_HEALTH_PREV_NAME).read_text())
    assert backup == {"generation": 1}


def test_missing_everything_is_none(tmp_path):
    assert load_campaign_health(tmp_path) is None


def test_non_object_primary_is_treated_as_damage(tmp_path):
    (tmp_path / CAMPAIGN_HEALTH_NAME).write_text("[1, 2, 3]")
    assert load_campaign_health(tmp_path) is None
