"""Parallel snapshot analytics: byte-identity and failure modes.

``observe(..., workers=N)`` must produce a series byte-identical to the
serial path for any worker count — the parallelism is an implementation
detail, never a semantics change.
"""

import json
from functools import partial

import pytest

from repro.core.metrics import average_degrees, peer_counts
from repro.core.timeseries import observe
from tests.core.helpers import partner, report


def make_reports(windows=6, peers=12, window_seconds=600.0):
    """A deterministic multi-window stream of reports."""
    out = []
    for w in range(windows):
        t = w * window_seconds + 1.0
        for ip in range(1, peers + 1):
            links = [
                partner(
                    ((ip + k) % peers) + 1,
                    sent=5 * (k + 1) + w,
                    recv=12 + 3 * k + w,
                )
                for k in range(3)
            ]
            out.append(
                report(ip, t=t, recv_rate=300.0 + ip + w, partners=links)
            )
    return out


def series_fingerprint(series):
    """Canonical byte rendering of a SnapshotSeries for exact comparison."""
    return json.dumps(
        {"times": series.times, "values": series.values},
        sort_keys=True,
        default=repr,
    )


METRICS = {
    "counts": peer_counts,
    "degrees": average_degrees,
}


class TestParallelObserve:
    def test_byte_identical_to_serial(self):
        reports = make_reports()
        serial = observe(reports, METRICS, workers=1)
        for workers in (2, 3):
            parallel = observe(reports, METRICS, workers=workers)
            assert parallel.times == serial.times
            assert series_fingerprint(parallel) == series_fingerprint(serial)

    def test_observe_every_subsampling_parallel(self):
        reports = make_reports(windows=8)
        serial = observe(reports, METRICS, observe_every=1200.0, workers=1)
        parallel = observe(reports, METRICS, observe_every=1200.0, workers=2)
        assert series_fingerprint(parallel) == series_fingerprint(serial)

    def test_partial_metrics_are_picklable(self):
        reports = make_reports(windows=2)
        metrics = {"counts": partial(peer_counts)}
        serial = observe(reports, metrics, workers=1)
        parallel = observe(reports, metrics, workers=2)
        assert series_fingerprint(parallel) == series_fingerprint(serial)

    def test_lambda_metric_rejected_for_workers(self):
        reports = make_reports(windows=1)
        metrics = {"bad": lambda snapshot: 0}
        with pytest.raises(ValueError, match="picklable"):
            observe(reports, metrics, workers=2)
        # ... but fine serially
        series = observe(reports, metrics, workers=1)
        assert series.column("bad") == [0]

    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError, match="workers"):
            observe([], METRICS, workers=0)

    def test_empty_trace_parallel(self):
        series = observe([], METRICS, workers=2)
        assert len(series) == 0
