"""Hand-computed fixtures for the dip/recovery resilience metrics.

The series below is small enough to verify every derived number by
hand; each test states the arithmetic it expects so a regression in
``quality_dip`` shows up as a wrong constant, not a vague failure.
"""

import math

import pytest

from repro.core.resilience import quality_dip, satisfied_series
from repro.simulator.exchange import RoundStats

# One sample every 600 s.  Fault window [3600, 5400]: quality falls to
# 0.30, then climbs back through the 95% threshold at t = 7200.
TIMES = [600.0 * i for i in range(1, 16)]
VALUES = [
    0.80,  # t= 600
    0.82,  # t=1200
    0.78,  # t=1800
    0.80,  # t=2400
    0.80,  # t=3000  -- last pre-fault sample
    0.60,  # t=3600  -- fault starts
    0.30,  # t=4200  -- worst sample
    0.40,  # t=4800
    0.50,  # t=5400  -- fault ends (inclusive)
    0.60,  # t=6000
    0.70,  # t=6600
    0.79,  # t=7200  -- first sample >= 0.95 * baseline = 0.76
    0.80,  # t=7800
    0.81,  # t=8400
    0.80,  # t=9000
]

FAULT_START = 3_600.0
FAULT_END = 5_400.0
# Mean of the five samples in [1600, 3600): t=1800..3000 plus t=1200.
BASELINE = (0.82 + 0.78 + 0.80 + 0.80) / 4  # baseline_span_s=2400 case
FULL_BASELINE = (0.80 + 0.82 + 0.78 + 0.80 + 0.80) / 5  # default span


class TestQualityDip:
    def test_hand_computed_fixture(self):
        stats = quality_dip(
            TIMES, VALUES, fault_start=FAULT_START, fault_end=FAULT_END
        )
        # All five pre-fault samples are within the default 7200 s span.
        assert stats.baseline == pytest.approx(FULL_BASELINE)  # 0.80
        assert stats.min_during == pytest.approx(0.30)
        assert stats.dip_depth == pytest.approx(FULL_BASELINE - 0.30)
        # Threshold 0.95 * 0.80 = 0.76; first post-fault sample at or
        # above it is 0.79 at t=7200 -> 1800 s after the fault ended.
        assert stats.recovery_time_s == pytest.approx(1_800.0)
        assert stats.recovered_value == pytest.approx(0.79)
        assert stats.recovered

    def test_baseline_span_limits_samples(self):
        stats = quality_dip(
            TIMES,
            VALUES,
            fault_start=FAULT_START,
            fault_end=FAULT_END,
            baseline_span_s=2_400.0,
        )
        # Span [1200, 3600) keeps exactly t=1200, 1800, 2400, 3000.
        assert stats.baseline == pytest.approx(BASELINE)  # 0.80

    def test_never_recovers(self):
        times = [600.0, 1_200.0, 1_800.0, 2_400.0, 3_000.0]
        values = [0.80, 0.80, 0.20, 0.30, 0.40]
        stats = quality_dip(
            times, values, fault_start=1_500.0, fault_end=1_900.0
        )
        assert stats.recovery_time_s == math.inf
        assert not stats.recovered
        # The last post-fault sample is reported even without recovery.
        assert stats.recovered_value == pytest.approx(0.40)

    def test_fault_boundaries_inclusive(self):
        # Samples exactly at fault_start and fault_end count as "during".
        times = [0.0, 100.0, 200.0, 300.0]
        values = [1.0, 0.5, 0.4, 1.0]
        stats = quality_dip(times, values, fault_start=100.0, fault_end=200.0)
        assert stats.min_during == pytest.approx(0.4)
        # Recovery scanning starts strictly after fault_end.
        assert stats.recovery_time_s == pytest.approx(100.0)

    def test_quality_rose_during_fault(self):
        # A "fault" the swarm absorbed: dip_depth clamps at zero.
        times = [0.0, 100.0, 200.0]
        values = [0.5, 0.9, 0.9]
        stats = quality_dip(times, values, fault_start=50.0, fault_end=150.0)
        assert stats.dip_depth == 0.0

    def test_none_samples_skipped(self):
        times = [0.0, 100.0, 200.0, 300.0, 400.0]
        values = [0.8, None, 0.2, None, 0.8]
        stats = quality_dip(times, values, fault_start=150.0, fault_end=250.0)
        assert stats.baseline == pytest.approx(0.8)
        assert stats.min_during == pytest.approx(0.2)
        assert stats.recovery_time_s == pytest.approx(150.0)

    def test_no_pre_fault_samples_raises(self):
        with pytest.raises(ValueError, match="before the fault"):
            quality_dip([5_000.0], [0.8], fault_start=100.0, fault_end=200.0)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(ValueError, match="equal length"):
            quality_dip([1.0, 2.0], [0.5], fault_start=0.5, fault_end=1.5)

    def test_empty_fault_window_raises(self):
        with pytest.raises(ValueError, match="positive length"):
            quality_dip([1.0], [0.5], fault_start=2.0, fault_end=2.0)

    def test_no_samples_during_fault_uses_baseline(self):
        times = [0.0, 100.0, 500.0]
        values = [0.8, 0.8, 0.8]
        stats = quality_dip(times, values, fault_start=200.0, fault_end=300.0)
        assert stats.min_during == pytest.approx(0.8)
        assert stats.dip_depth == 0.0


class TestSatisfiedSeries:
    def test_from_round_stats(self):
        rounds = [
            RoundStats(time=600.0, viewers=10, satisfied=8),
            RoundStats(time=1_200.0, viewers=20, satisfied=5),
            RoundStats(time=1_800.0, viewers=0, satisfied=0),
        ]
        times, values = satisfied_series(rounds)
        assert times == [600.0, 1_200.0, 1_800.0]
        assert values == pytest.approx([0.8, 0.25, 0.0])

    def test_feeds_quality_dip(self):
        rounds = [
            RoundStats(time=600.0 * (i + 1), viewers=100, satisfied=s)
            for i, s in enumerate([80, 82, 78, 80, 80, 60, 30, 40, 50,
                                   60, 70, 79, 80, 81, 80])
        ]
        times, values = satisfied_series(rounds)
        stats = quality_dip(
            times, values, fault_start=FAULT_START, fault_end=FAULT_END
        )
        assert stats.baseline == pytest.approx(FULL_BASELINE)
        assert stats.recovery_time_s == pytest.approx(1_800.0)
