"""Unit tests for churn/dynamics analytics."""

import pytest

from repro.core.dynamics import (
    partner_stability,
    population_turnover,
    session_statistics,
)
from tests.core.helpers import partner, report


class TestSessionStatistics:
    def test_spans_and_counts(self):
        reports = [
            report(1, t=1200.0),
            report(1, t=1800.0),
            report(1, t=2400.0),
            report(2, t=1200.0),
        ]
        stats = session_statistics(reports)
        assert stats.num_peers == 2
        assert stats.mean_span_s == pytest.approx((1200 + 0) / 2)
        assert stats.mean_reports_per_peer == pytest.approx(2.0)
        assert stats.mean_session_estimate_s == stats.mean_span_s + 1200.0

    def test_empty(self):
        stats = session_statistics([])
        assert stats.num_peers == 0
        assert stats.mean_span_s == 0.0

    def test_median(self):
        reports = [report(1, t=0.0), report(1, t=600.0), report(2, t=0.0)]
        stats = session_statistics(reports)
        assert stats.median_span_s in (0.0, 600.0)


class TestPopulationTurnover:
    def test_arrivals_and_departures(self):
        reports = [
            report(1, t=10.0),
            report(2, t=20.0),
            report(2, t=700.0),
            report(3, t=710.0),
        ]
        points = population_turnover(reports, window_seconds=600.0)
        assert len(points) == 2
        first, second = points
        assert first.present == 2 and first.arrived == 2 and first.departed == 0
        assert second.present == 2
        assert second.arrived == 1  # peer 3
        assert second.departed == 1  # peer 1
        assert second.turnover_rate == pytest.approx(1.0)

    def test_empty_trace(self):
        assert population_turnover([]) == []

    def test_stable_population_zero_turnover(self):
        reports = [report(1, t=float(w * 600 + 5)) for w in range(4)]
        points = population_turnover(reports)
        assert all(p.departed == 0 for p in points)
        assert [p.arrived for p in points] == [1, 0, 0, 0]


class TestPartnerStability:
    def test_jaccard_between_consecutive_reports(self):
        reports = [
            report(1, t=0.0, partners=[partner(10), partner(11)]),
            report(1, t=600.0, partners=[partner(11), partner(12)]),
        ]
        stats = partner_stability(reports)
        assert stats.num_transitions == 1
        assert stats.mean_jaccard == pytest.approx(1 / 3)
        assert stats.mean_kept_fraction == pytest.approx(1 / 2)

    def test_identical_lists_fully_stable(self):
        plist = [partner(10), partner(11)]
        reports = [report(1, t=0.0, partners=plist), report(1, t=600.0, partners=plist)]
        stats = partner_stability(reports)
        assert stats.mean_jaccard == pytest.approx(1.0)

    def test_multiple_peers_tracked_independently(self):
        reports = [
            report(1, t=0.0, partners=[partner(10)]),
            report(2, t=1.0, partners=[partner(20)]),
            report(1, t=600.0, partners=[partner(10)]),
            report(2, t=601.0, partners=[partner(99)]),
        ]
        stats = partner_stability(reports)
        assert stats.num_transitions == 2
        assert stats.mean_jaccard == pytest.approx(0.5)

    def test_no_transitions(self):
        stats = partner_stability([report(1, t=0.0)])
        assert stats.num_transitions == 0
        assert stats.mean_jaccard == 0.0


class TestOnSimulatedTrace:
    def test_simulated_dynamics_plausible(self, small_trace):
        stats = session_statistics(small_trace)
        assert stats.num_peers > 100
        # stable peers live ~tens of minutes beyond their first report
        assert 0 < stats.mean_span_s < 3 * 3600
        turnover = population_turnover(small_trace)
        rates = [p.turnover_rate for p in turnover[10:]]
        assert 0.05 < sum(rates) / len(rates) < 1.5
        stability = partner_stability(small_trace)
        # partner lists churn but do not reset between reports
        assert 0.2 < stability.mean_jaccard < 0.98
