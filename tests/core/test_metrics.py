"""Unit tests for the Sec. 4 metric suite on handcrafted snapshots."""

import pytest

from repro.core import build_snapshot
from repro.core.metrics import (
    average_degrees,
    daily_distinct_ips,
    degree_distributions,
    intra_isp_degree_fractions,
    isp_shares,
    peer_counts,
    random_intra_isp_baseline,
    reciprocity_metrics,
    small_world,
    streaming_quality,
)
from repro.network import build_default_database
from tests.core.helpers import partner, report

DB = build_default_database()
TELECOM = [DB.isp("China Telecom").blocks[i].base + 5 for i in range(6)]
NETCOM = [DB.isp("China Netcom").blocks[i].base + 5 for i in range(6)]


def snap(reports):
    return build_snapshot(reports, time=0.0, window_seconds=600.0)


class TestCounts:
    def test_peer_counts(self):
        s = snap([report(1, partners=[partner(2), partner(3)]), report(2)])
        assert peer_counts(s) == (3, 2)

    def test_daily_distinct_ips(self):
        reports = [
            report(1, t=100.0, partners=[partner(7)]),
            report(2, t=50_000.0),
            report(1, t=90_000.0),  # next day, same stable ip
            report(3, t=90_500.0, partners=[partner(8)]),
        ]
        rows = daily_distinct_ips(reports)
        assert rows == [(0, 3, 2), (1, 3, 2)]


class TestIspShares:
    def test_shares_computed_over_mapped_ips(self):
        s = snap(
            [
                report(TELECOM[0], partners=[partner(TELECOM[1]), partner(NETCOM[0])]),
                report(NETCOM[1], partners=[partner(123)]),  # unmapped partner
            ]
        )
        shares = isp_shares(s, DB)
        assert shares["China Telecom"] == pytest.approx(2 / 4)
        assert shares["China Netcom"] == pytest.approx(2 / 4)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_stable_only(self):
        s = snap([report(TELECOM[0], partners=[partner(NETCOM[0])])])
        shares = isp_shares(s, DB, stable_only=True)
        assert shares == {"China Telecom": 1.0}

    def test_empty(self):
        assert isp_shares(snap([report(123)]), DB) == {}


class TestStreamingQuality:
    def test_fraction_above_threshold(self):
        s = snap(
            [
                report(1, channel=0, recv_rate=395.0),
                report(2, channel=0, recv_rate=380.0),
                report(3, channel=0, recv_rate=200.0),
                report(4, channel=1, recv_rate=100.0),
            ]
        )
        assert streaming_quality(s, 0, 400.0) == pytest.approx(2 / 3)
        assert streaming_quality(s, 1, 400.0) == 0.0

    def test_missing_channel_returns_none(self):
        assert streaming_quality(snap([report(1, channel=0)]), 5, 400.0) is None


class TestDegrees:
    def test_distributions_from_reports(self):
        s = snap(
            [
                report(
                    1,
                    partners=[
                        partner(2, recv=20),
                        partner(3, recv=20, sent=15),
                        partner(4, sent=2, recv=2),
                    ],
                ),
                report(2, partners=[partner(1, sent=20)]),
            ]
        )
        d = degree_distributions(s)
        assert d["partners"].num_peers == 2
        assert d["in"].fraction(2) == pytest.approx(0.5)  # peer 1 has 2 suppliers
        assert d["out"].fraction(1) == pytest.approx(1.0)  # both have outdeg 1

    def test_average_degrees(self):
        s = snap(
            [
                report(1, partners=[partner(2, recv=20), partner(3)]),
                report(2, partners=[partner(1, sent=20)]),
            ]
        )
        summary = average_degrees(s)
        assert summary.mean_partners == pytest.approx(1.5)
        assert summary.mean_indegree == pytest.approx(0.5)
        assert summary.mean_outdegree == pytest.approx(0.5)


class TestIntraIsp:
    def test_fraction_follows_paper_definition(self):
        s = snap(
            [
                report(
                    TELECOM[0],
                    partners=[
                        partner(TELECOM[1], recv=20),
                        partner(NETCOM[0], recv=20),
                        partner(TELECOM[2], sent=20),
                    ],
                )
            ]
        )
        result = intra_isp_degree_fractions(s, DB)
        assert result.indegree_fraction == pytest.approx(0.5)
        assert result.outdegree_fraction == pytest.approx(1.0)
        assert result.peers_with_indegree == 1

    def test_peers_without_degree_excluded(self):
        s = snap([report(TELECOM[0], partners=[])])
        result = intra_isp_degree_fractions(s, DB)
        assert result.peers_with_indegree == 0
        assert result.indegree_fraction == 0.0

    def test_unmapped_reporters_skipped(self):
        s = snap([report(123, partners=[partner(TELECOM[0], recv=20)])])
        assert intra_isp_degree_fractions(s, DB).peers_with_indegree == 0

    def test_random_baseline(self):
        base = random_intra_isp_baseline(DB)
        assert base == pytest.approx(sum(i.share**2 for i in DB.isps))
        assert 0.2 < base < 0.35


class TestReciprocity:
    def test_bilateral_intra_vs_unilateral_inter(self):
        # three telecom peers exchange mutually; telecom->netcom one-way
        s = snap(
            [
                report(
                    TELECOM[0],
                    partners=[
                        partner(TELECOM[1], sent=20, recv=20),
                        partner(TELECOM[2], sent=20, recv=20),
                        partner(NETCOM[0], sent=20),
                    ],
                ),
            ]
        )
        m = reciprocity_metrics(s, DB)
        assert m.intra_isp > 0
        assert m.inter_isp < 0  # single one-way link is antireciprocal
        assert m.num_edges == 5

    def test_unmapped_links_excluded_from_split(self):
        # a third (stable, unconnected) peer keeps density below 1 so
        # rho is well-defined for the full graph
        s = snap(
            [
                report(TELECOM[0], partners=[partner(123, sent=20, recv=20)]),
                report(TELECOM[1], partners=[]),
            ]
        )
        m = reciprocity_metrics(s, DB)
        assert m.intra_isp == 0.0
        assert m.inter_isp == 0.0
        assert m.all_links > 0


class TestSmallWorld:
    def _clustered_snapshot(self):
        # triangle of telecom peers all exchanging mutually + pendant
        a, b, c, d = TELECOM[0], TELECOM[1], TELECOM[2], NETCOM[0]
        return snap(
            [
                report(a, partners=[partner(b, sent=20, recv=20), partner(c, sent=20, recv=20)]),
                report(b, partners=[partner(c, sent=20, recv=20)]),
                report(c, partners=[partner(d, sent=20, recv=20)]),
                report(d, partners=[]),
            ]
        )

    def test_global_metrics(self):
        m = small_world(self._clustered_snapshot(), seed=1)
        assert m.num_nodes == 4
        assert m.clustering > 0.5

    def test_isp_subgraph(self):
        m = small_world(self._clustered_snapshot(), isp="China Telecom", db=DB, seed=1)
        assert m.num_nodes == 3
        assert m.clustering == pytest.approx(1.0)

    def test_isp_requires_db(self):
        with pytest.raises(ValueError):
            small_world(self._clustered_snapshot(), isp="China Telecom")
