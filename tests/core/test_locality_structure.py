"""Unit tests for traffic locality and mesh-structure analytics."""

import pytest

from repro.core import build_snapshot
from repro.core.locality import isp_traffic_matrix
from repro.core.structure import mesh_structure
from repro.network import build_default_database
from tests.core.helpers import partner, report

DB = build_default_database()
TELECOM = [DB.isp("China Telecom").blocks[i].base + 9 for i in range(6)]
NETCOM = [DB.isp("China Netcom").blocks[i].base + 9 for i in range(6)]


def snap(reports):
    return build_snapshot(reports, time=0.0, window_seconds=600.0)


class TestTrafficMatrix:
    def test_flows_weighted_by_segments(self):
        s = snap(
            [
                report(
                    TELECOM[0],
                    partners=[
                        partner(TELECOM[1], recv=100),
                        partner(NETCOM[0], recv=50),
                    ],
                )
            ]
        )
        m = isp_traffic_matrix(s, DB)
        assert m.flows[("China Telecom", "China Telecom")] == 100
        assert m.flows[("China Netcom", "China Telecom")] == 50
        assert m.intra_fraction() == pytest.approx(100 / 150)
        assert m.server_fraction() == 0.0

    def test_server_fraction(self):
        s = snap(
            [
                report(
                    TELECOM[0],
                    partners=[partner(123, recv=60), partner(TELECOM[1], recv=40)],
                )
            ]
        )
        m = isp_traffic_matrix(s, DB)
        assert m.server_fraction() == pytest.approx(0.6)
        assert m.total_received == 100

    def test_top_flows(self):
        s = snap(
            [
                report(
                    NETCOM[0],
                    partners=[
                        partner(NETCOM[1], recv=10),
                        partner(TELECOM[0], recv=90),
                    ],
                )
            ]
        )
        m = isp_traffic_matrix(s, DB)
        top = m.top_flows(1)
        assert top == [("China Telecom", "China Netcom", 90.0)]

    def test_empty(self):
        m = isp_traffic_matrix(snap([report(TELECOM[0])]), DB)
        assert m.intra_fraction() == 0.0
        assert m.server_fraction() == 0.0


class TestMeshStructure:
    def test_bilateral_triangle(self):
        a, b, c = TELECOM[0], TELECOM[1], NETCOM[0]
        s = snap(
            [
                report(a, partners=[partner(b, sent=20, recv=20)]),
                report(b, partners=[partner(c, sent=20, recv=20)]),
                report(c, partners=[partner(a, sent=20, recv=20)]),
            ]
        )
        m = mesh_structure(s, DB)
        assert m.num_nodes == 3
        assert m.largest_scc_fraction == pytest.approx(1.0)
        assert m.degeneracy == 2
        assert m.dyads.mutual == 3

    def test_chain_structure(self):
        a, b, c = TELECOM[0], TELECOM[1], TELECOM[2]
        s = snap(
            [
                report(b, partners=[partner(a, recv=20)]),
                report(c, partners=[partner(b, recv=20)]),
                report(a, partners=[]),
            ]
        )
        m = mesh_structure(s, DB)
        assert m.largest_scc_fraction == pytest.approx(1 / 3)
        assert m.dyads.mutual == 0
        assert m.dyads.asymmetric == 2

    def test_on_simulated_trace(self, small_trace):
        from repro.traces.store import iter_windows

        for start, reports in iter_windows(small_trace, 600.0, start=86_400.0):
            s = build_snapshot(reports, time=start, window_seconds=600.0)
            break
        m = mesh_structure(s, DB)
        # Each channel is its own overlay, so the largest SCC is bounded
        # by the biggest channel's share (~30% for CCTV1); within that
        # bound the mesh is strongly connected, with a deep core.
        assert m.largest_scc_fraction > 0.2
        assert m.degeneracy >= 3
        assert m.dyads.mutual > 0
        # ISP mixing positive (clustering), far from perfect segregation
        assert 0.02 < m.isp_mixing < 0.9
