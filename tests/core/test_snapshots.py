"""Unit tests for topology snapshot construction."""

from repro.core import build_snapshot
from tests.core.helpers import partner, report


def snap(reports, threshold=10):
    return build_snapshot(
        reports, time=0.0, window_seconds=600.0, active_threshold=threshold
    )


class TestBuildSnapshot:
    def test_stable_and_total_sets(self):
        s = snap(
            [
                report(1, partners=[partner(2, recv=20), partner(99, sent=1)]),
                report(2, partners=[partner(1, sent=20)]),
            ]
        )
        assert s.stable_ips == {1, 2}
        assert s.all_ips == {1, 2, 99}  # 99 is a transient partner
        assert s.num_stable == 2
        assert s.num_total == 3

    def test_active_edge_from_receiver_report(self):
        s = snap([report(1, partners=[partner(5, recv=30)])])
        assert s.active_graph.has_edge(5, 1)
        assert not s.active_graph.has_edge(1, 5)

    def test_active_edge_from_sender_report(self):
        s = snap([report(1, partners=[partner(5, sent=30)])])
        assert s.active_graph.has_edge(1, 5)

    def test_threshold_respected(self):
        s = snap([report(1, partners=[partner(5, recv=9), partner(6, recv=10)])])
        assert not s.active_graph.has_edge(5, 1)
        assert s.active_graph.has_edge(6, 1)

    def test_bilateral_edge_from_one_report(self):
        s = snap([report(1, partners=[partner(5, sent=20, recv=20)])])
        assert s.active_graph.has_edge(1, 5)
        assert s.active_graph.has_edge(5, 1)

    def test_both_endpoints_agree_no_duplicate(self):
        s = snap(
            [
                report(1, partners=[partner(2, recv=20)]),
                report(2, partners=[partner(1, sent=20)]),
            ]
        )
        assert s.active_graph.num_edges == 1

    def test_latest_report_wins(self):
        s = snap(
            [
                report(1, t=10.0, partners=[partner(2, recv=20)]),
                report(1, t=500.0, partners=[partner(3, recv=20)]),
            ]
        )
        assert s.active_graph.has_edge(3, 1)
        assert not s.active_graph.has_edge(2, 1)
        assert s.num_stable == 1

    def test_partner_graph_includes_inactive(self):
        s = snap([report(1, partners=[partner(5, sent=0, recv=0)])])
        assert s.partner_graph.has_edge(1, 5)
        assert s.active_graph.num_edges == 0

    def test_stable_active_graph_excludes_transients(self):
        s = snap(
            [
                report(1, partners=[partner(2, recv=20), partner(99, recv=20)]),
                report(2, partners=[]),
            ]
        )
        stable = s.stable_active_graph()
        assert stable.has_edge(2, 1)
        assert 99 not in stable
        # full active graph still has the transient edge
        assert s.active_graph.has_edge(99, 1)

    def test_stable_graph_cached(self):
        s = snap([report(1, partners=[partner(2, recv=20)]), report(2)])
        assert s.stable_active_graph() is s.stable_active_graph()

    def test_self_partner_ignored(self):
        s = snap([report(1, partners=[partner(1, recv=50)])])
        assert s.active_graph.num_edges == 0

    def test_undirected_stable_graph(self):
        s = snap(
            [
                report(1, partners=[partner(2, recv=20, sent=20)]),
                report(2, partners=[]),
            ]
        )
        und = s.stable_undirected_graph()
        assert und.num_edges == 1
