"""Shared fixtures for core analytics tests: compact report builders."""

from repro.traces import PartnerRecord, PeerReport


def partner(ip, sent=0, recv=0) -> PartnerRecord:
    return PartnerRecord(ip=ip, port=20000, sent_segments=sent, recv_segments=recv)


def report(ip, t=0.0, channel=0, recv_rate=400.0, partners=(), **overrides) -> PeerReport:
    fields = {
        "time": t,
        "peer_ip": ip,
        "channel_id": channel,
        "buffer_fill": 0.9,
        "playback_position": int(t),
        "download_capacity_kbps": 2000.0,
        "upload_capacity_kbps": 600.0,
        "recv_rate_kbps": recv_rate,
        "sent_rate_kbps": 200.0,
        "partners": tuple(partners),
    }
    fields.update(overrides)
    return PeerReport(**fields)
