"""Unit tests for windowed observation and report rendering."""

import pytest

from repro.core import observe
from repro.core.report import format_series, format_table, write_csv
from repro.core.timeseries import SnapshotSeries
from tests.core.helpers import partner, report


class TestObserve:
    def test_metric_per_window(self):
        reports = [
            report(1, t=10.0),
            report(2, t=20.0),
            report(1, t=700.0),
        ]
        series = observe(reports, {"stable": lambda s: s.num_stable})
        assert series.times == [0.0, 600.0]
        assert series.column("stable") == [2, 1]

    def test_observe_every_subsamples(self):
        reports = [report(1, t=float(t)) for t in range(0, 7200, 300)]
        series = observe(
            reports,
            {"n": lambda s: s.num_stable},
            window_seconds=600.0,
            observe_every=3600.0,
        )
        assert series.times == [0.0, 3600.0]

    def test_observe_every_must_cover_window(self):
        with pytest.raises(ValueError):
            observe([], {"n": lambda s: 0}, window_seconds=600, observe_every=300)

    def test_start_offset(self):
        reports = [report(1, t=100.0), report(2, t=700.0)]
        series = observe(
            reports, {"n": lambda s: s.num_stable}, start=600.0
        )
        assert series.times == [600.0]

    def test_multiple_metrics_aligned(self):
        reports = [report(1, t=10.0, partners=[partner(9, recv=20)])]
        series = observe(
            reports,
            {"stable": lambda s: s.num_stable, "total": lambda s: s.num_total},
        )
        rows = list(series.rows())
        assert rows == [(0.0, {"stable": 1, "total": 2})]

    def test_custom_threshold_passed_to_snapshot(self):
        reports = [report(1, t=10.0, partners=[partner(9, recv=5)])]
        strict = observe(
            reports, {"e": lambda s: s.active_graph.num_edges}, active_threshold=10
        )
        loose = observe(
            reports, {"e": lambda s: s.active_graph.num_edges}, active_threshold=3
        )
        assert strict.column("e") == [0]
        assert loose.column("e") == [1]


class TestSeriesContainer:
    def test_append_and_len(self):
        s = SnapshotSeries()
        s.append(0.0, {"a": 1})
        s.append(600.0, {"a": 2})
        assert len(s) == 2
        assert s.column("a") == [1, 2]


class TestRendering:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["x", 1.23456], ["longer", None]],
            precision=2,
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1]
        assert "1.23" in text
        assert "-" in lines[-1]  # None rendered as dash

    def test_format_series(self):
        s = SnapshotSeries()
        s.append(3600.0, {"total": 10})
        text = format_series(s, ["total"], time_unit="hours")
        assert "t_hours" in text
        assert "1.000" in text

    def test_write_csv(self, tmp_path):
        path = write_csv(tmp_path / "out.csv", ["a", "b"], [[1, 2], [3, 4]])
        content = path.read_text().strip().splitlines()
        assert content == ["a,b", "1,2", "3,4"]
