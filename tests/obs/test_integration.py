"""End-to-end observability guarantees.

The three acceptance properties of the obs layer:

1. instrumentation is invisible to the simulation — a trace written
   with an enabled observer is byte-identical to one written without;
2. a killed-and-resumed campaign reports the same cumulative counter
   totals as an uninterrupted run (obs state rides in checkpoints);
3. a real campaign's event log parses, carries per-round telemetry,
   and renders through ``obs summarize``.
"""

import json

import pytest

from repro.core.experiments import run_campaign, run_simulation_to_trace
from repro.core.timeseries import round_event_series
from repro.obs import (
    Observer,
    create_observer,
    finalize_observer,
    read_events,
    render_summary,
)

DAYS = 0.1
BASE = 80.0
SEED = 11

#: Counters that must be identical between an uninterrupted campaign
#: and a resumed one.  Storage-layout counters (segment rotations,
#: recovery passes) legitimately differ across a kill/resume cycle.
DETERMINISTIC_COUNTERS = (
    "sim.rounds",
    "sim.arrivals",
    "sim.departures",
    "sim.crashes",
    "exchange.connects",
    "exchange.disconnects",
    "exchange.tracker_contacts",
    "exchange.block_transfers",
    "trace.reports_received",
    "trace.reports_dropped",
    "trace.bytes_written",
)


def _campaign(trace_dir, obs, days=DAYS, resume=False):
    return run_campaign(
        trace_dir,
        days=days,
        base_concurrency=BASE,
        seed=SEED,
        with_flash_crowd=False,
        checkpoint_every_rounds=5,
        resume=resume,
        obs=obs,
    )


def _counters(obs):
    values = obs.registry.counters()
    return {name: values.get(name, 0.0) for name in DETERMINISTIC_COUNTERS}


class TestTraceNeutrality:
    def test_trace_bytes_identical_obs_on_vs_off(self, tmp_path):
        plain = tmp_path / "plain.jsonl"
        observed = tmp_path / "observed.jsonl"
        run_simulation_to_trace(
            plain, days=DAYS, base_concurrency=BASE, seed=SEED,
            with_flash_crowd=False,
        )
        obs = Observer()
        run_simulation_to_trace(
            observed, days=DAYS, base_concurrency=BASE, seed=SEED,
            with_flash_crowd=False, obs=obs,
        )
        assert observed.read_bytes() == plain.read_bytes()
        # and the observer actually saw the run
        assert obs.registry.counter("sim.rounds").value > 0


class TestCheckpointContinuity:
    def test_resumed_campaign_matches_uninterrupted_totals(self, tmp_path):
        # Uninterrupted reference run.
        ref_obs = Observer()
        _campaign(tmp_path / "ref", ref_obs)
        reference = _counters(ref_obs)
        assert reference["sim.rounds"] > 0

        # Same span split across two processes-worth of work: run the
        # first half (final checkpoint always lands), then resume into
        # the full span with a fresh observer.  The restored registry
        # must put the second observer at the reference totals.
        split_dir = tmp_path / "split"
        first = Observer()
        _campaign(split_dir, first, days=DAYS / 2)
        second = Observer()
        result = _campaign(split_dir, second, resume=True)
        assert result.resumed_from_round is not None
        assert _counters(second) == pytest.approx(reference)

    def test_resume_from_completed_run_restores_exact_state(self, tmp_path):
        first = Observer()
        _campaign(tmp_path / "c", first)
        second = Observer()
        _campaign(tmp_path / "c", second, resume=True)
        # no rounds left to run: totals come purely from the checkpoint
        assert _counters(second) == pytest.approx(_counters(first))


class TestCampaignEventLog:
    @pytest.fixture(scope="class")
    def obs_campaign(self, tmp_path_factory):
        root = tmp_path_factory.mktemp("obs-campaign")
        obs_dir = root / "obs"
        obs = create_observer(obs_dir)
        _campaign(root / "trace", obs)
        finalize_observer(obs, obs_dir)
        return obs_dir

    def test_event_log_parses_cleanly(self, obs_campaign):
        events, bad = read_events(obs_campaign / "events.jsonl")
        assert bad == 0
        assert events

    def test_round_events_feed_timeseries(self, obs_campaign):
        events, _ = read_events(obs_campaign / "events.jsonl")
        series = round_event_series(events)
        assert len(series) > 0
        viewers = series.column("viewers")
        assert all(isinstance(v, int) and v >= 0 for v in viewers)
        # sim time advances monotonically round to round
        assert series.times == sorted(series.times)

    def test_key_counters_nonzero(self, obs_campaign):
        state = json.loads((obs_campaign / "metrics.json").read_text())
        for name in ("sim.rounds", "exchange.connects", "trace.reports_received"):
            assert state["counters"].get(name, 0) > 0, name

    def test_summary_renders_sections(self, obs_campaign):
        text = render_summary(obs_campaign)
        assert "Round-phase timings" in text
        assert "round.exchange" in text
        assert "campaign.run" in text
        assert "Counters" in text
