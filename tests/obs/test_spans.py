"""Span/observer tests driven by the deterministic ManualClock."""

import pytest

from repro.obs import NULL_OBSERVER, ManualClock, NullObserver, Observer


class ListSink:
    """Event sink collecting into a list (test double)."""

    def __init__(self):
        self.events = []

    def emit(self, event):
        self.events.append(event)


@pytest.fixture
def clock():
    return ManualClock()


@pytest.fixture
def sink():
    return ListSink()


@pytest.fixture
def obs(clock, sink):
    return Observer(clock=clock, sink=sink)


class TestManualClock:
    def test_advances(self, clock):
        assert clock.now() == 0.0
        clock.advance(1.5)
        assert clock.now() == 1.5

    def test_rejects_negative_advance(self, clock):
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestSpan:
    def test_records_wall_time(self, obs, clock, sink):
        with obs.span("work"):
            clock.advance(0.25)
        (event,) = sink.events
        assert event["type"] == "span"
        assert event["name"] == "work"
        assert event["wall_s"] == pytest.approx(0.25)
        assert event["depth"] == 0
        assert "error" not in event

    def test_duration_feeds_histogram_of_same_name(self, obs, clock):
        with obs.span("work"):
            clock.advance(0.25)
        h = obs.registry.histogram("work")
        assert h.count == 1
        assert h.total == pytest.approx(0.25)

    def test_nesting_depth(self, obs, clock, sink):
        with obs.span("outer"):
            with obs.span("inner"):
                clock.advance(1.0)
        inner, outer = sink.events  # inner closes first
        assert inner["name"] == "inner" and inner["depth"] == 1
        assert outer["name"] == "outer" and outer["depth"] == 0
        assert outer["wall_s"] == pytest.approx(1.0)

    def test_sim_time_via_bound_clock(self, obs, clock, sink):
        sim_now = [100.0]
        obs.bind_sim_clock(lambda: sim_now[0])
        with obs.span("round"):
            clock.advance(0.1)
            sim_now[0] = 700.0
        (event,) = sink.events
        assert event["sim_s"] == pytest.approx(600.0)

    def test_sim_time_defaults_to_zero(self, obs, clock, sink):
        with obs.span("work"):
            clock.advance(0.1)
        assert sink.events[0]["sim_s"] == 0.0

    def test_exception_tagging(self, obs, clock, sink):
        with pytest.raises(RuntimeError):
            with obs.span("work"):
                raise RuntimeError("boom")
        (event,) = sink.events
        assert event["error"] == "RuntimeError"
        # the stack unwound despite the exception
        assert obs.span("next").__enter__()._depth == 0

    def test_tags_pass_through(self, obs, sink):
        with obs.span("work", figure="fig4"):
            pass
        assert sink.events[0]["tags"] == {"figure": "fig4"}

    def test_no_sink_still_times(self, clock):
        obs = Observer(clock=clock)
        with obs.span("work"):
            clock.advance(2.0)
        assert obs.registry.histogram("work").total == pytest.approx(2.0)


class TestObserverMetrics:
    def test_count_gauge_observe(self, obs):
        obs.count("c")
        obs.count("c", 4)
        obs.gauge_set("g", 9.0)
        obs.observe("h", 0.3)
        assert obs.registry.counter("c").value == 5.0
        assert obs.registry.gauge("g").value == 9.0
        assert obs.registry.histogram("h").count == 1

    def test_emit_forwards_to_sink(self, obs, sink):
        obs.emit({"type": "round", "round": 1})
        assert sink.events == [{"type": "round", "round": 1}]

    def test_checkpoint_round_trip(self, obs, clock):
        obs.count("c", 3)
        with obs.span("work"):
            clock.advance(0.5)
        state = obs.checkpoint_state()

        fresh = Observer(clock=ManualClock())
        fresh.restore_checkpoint(state)
        assert fresh.registry.counter("c").value == 3.0
        assert fresh.registry.histogram("work").count == 1
        # counting continues on top of the restored totals
        fresh.count("c")
        assert fresh.registry.counter("c").value == 4.0

    def test_restore_none_is_noop(self, obs):
        obs.count("c")
        obs.restore_checkpoint(None)
        assert obs.registry.counter("c").value == 1.0


class TestNullObserver:
    def test_disabled_flag(self):
        assert NULL_OBSERVER.enabled is False
        assert Observer(clock=ManualClock()).enabled is True

    def test_all_operations_are_noops(self):
        null = NullObserver()
        null.bind_sim_clock(lambda: 0.0)
        null.count("c", 5)
        null.gauge_set("g", 1.0)
        null.observe("h", 0.1)
        null.emit({"type": "x"})
        null.restore_checkpoint({"registry": {}})
        assert null.checkpoint_state() is None

    def test_span_is_shared_context_manager(self):
        null = NullObserver()
        span = null.span("a")
        assert span is null.span("b", tag=1)
        with span:
            pass
