"""Exporter tests: JSONL event log, Prometheus text, snapshots, summarize."""

import json

import pytest

from repro.obs import (
    NULL_OBSERVER,
    JsonlEventLog,
    ManualClock,
    MetricsRegistry,
    Observer,
    create_observer,
    finalize_observer,
    read_events,
    render_prometheus,
    render_summary,
    summarize_dir,
    write_metrics_snapshot,
)


class TestJsonlEventLog:
    def test_appends_compact_sorted_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path)
        log.emit({"b": 2, "a": 1})
        log.close()
        assert path.read_text() == '{"a":1,"b":2}\n'

    def test_append_mode_extends_existing_log(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for i in range(2):
            log = JsonlEventLog(path)
            log.emit({"run": i})
            log.close()
        assert [json.loads(line) for line in path.read_text().splitlines()] == [
            {"run": 0},
            {"run": 1},
        ]

    def test_flush_every(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = JsonlEventLog(path, flush_every=2)
        log.emit({"n": 1})
        log.emit({"n": 2})  # triggers a flush
        assert len(path.read_text().splitlines()) == 2
        log.close()

    def test_emit_after_close_raises(self, tmp_path):
        log = JsonlEventLog(tmp_path / "e.jsonl")
        log.close()
        log.close()  # idempotent
        with pytest.raises(ValueError, match="closed"):
            log.emit({})

    def test_creates_parent_directories(self, tmp_path):
        log = JsonlEventLog(tmp_path / "a" / "b" / "e.jsonl")
        log.emit({"ok": True})
        log.close()
        assert (tmp_path / "a" / "b" / "e.jsonl").exists()


class TestPrometheus:
    def test_rendering(self):
        reg = MetricsRegistry()
        reg.counter("sim.rounds").add(3)
        reg.gauge("sim.peers").set(42.0)
        h = reg.histogram("round.total", boundaries=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus(reg)
        assert "# TYPE sim_rounds_total counter\nsim_rounds_total 3" in text
        assert "# TYPE sim_peers gauge\nsim_peers 42" in text
        # cumulative le-buckets with an +Inf catch-all
        assert 'round_total_bucket{le="0.1"} 1' in text
        assert 'round_total_bucket{le="1"} 2' in text
        assert 'round_total_bucket{le="+Inf"} 3' in text
        assert "round_total_count 3" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestSnapshots:
    def test_write_metrics_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").add(2)
        write_metrics_snapshot(reg, tmp_path)
        state = json.loads((tmp_path / "metrics.json").read_text())
        assert state["counters"] == {"c": 2.0}
        assert "c_total 2" in (tmp_path / "metrics.prom").read_text()


class TestObserverLifecycle:
    def test_create_without_dir_is_null(self):
        assert create_observer(None) is NULL_OBSERVER

    def test_finalize_null_is_noop(self, tmp_path):
        finalize_observer(NULL_OBSERVER, None)
        finalize_observer(NULL_OBSERVER, tmp_path)  # nothing written
        assert not (tmp_path / "metrics.json").exists()

    def test_create_then_finalize_writes_all_files(self, tmp_path):
        obs = create_observer(tmp_path, clock=ManualClock())
        assert isinstance(obs, Observer)
        obs.count("sim.rounds")
        with obs.span("round.total"):
            pass
        finalize_observer(obs, tmp_path)
        events, bad = read_events(tmp_path / "events.jsonl")
        assert bad == 0
        assert [e["type"] for e in events] == ["span"]
        state = json.loads((tmp_path / "metrics.json").read_text())
        assert state["counters"]["sim.rounds"] == 1.0
        assert (tmp_path / "metrics.prom").exists()


class TestSummarize:
    def test_read_events_skips_torn_and_non_dict_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"type":"span","name":"a","wall_s":1.0,"sim_s":0.0,"depth":0}\n'
            "[1,2,3]\n"
            "\n"
            '{"type":"round","round":1}\n'
            '{"type":"span","name":"a","wall'  # torn final line
        )
        events, bad = read_events(path)
        assert len(events) == 2
        assert bad == 2

    def test_summarize_dir_aggregates_spans(self, tmp_path):
        clock = ManualClock()
        obs = create_observer(tmp_path, clock=clock)
        for wall in (0.1, 0.3):
            with obs.span("round.total"):
                clock.advance(wall)
        with pytest.raises(ValueError):
            with obs.span("round.total"):
                clock.advance(0.2)
                raise ValueError("boom")
        finalize_observer(obs, tmp_path)

        summary = summarize_dir(tmp_path)
        stats = summary.spans["round.total"]
        assert stats.count == 3
        assert stats.wall_total == pytest.approx(0.6)
        assert stats.wall_mean == pytest.approx(0.2)
        assert stats.wall_max == pytest.approx(0.3)
        assert stats.errors == 1

    def test_render_summary_sections(self, tmp_path):
        clock = ManualClock()
        obs = create_observer(tmp_path, clock=clock)
        with obs.span("round.exchange"):
            clock.advance(0.1)
        with obs.span("analytics.metric.degrees"):
            clock.advance(0.2)
        with obs.span("recover.scan"):
            clock.advance(0.3)
        obs.count("sim.rounds", 5)
        obs.gauge_set("sim.peers", 10)
        finalize_observer(obs, tmp_path)

        text = render_summary(tmp_path)
        assert "Round-phase timings" in text
        assert "Analytics timings" in text
        assert "Other timings" in text
        assert "Counters" in text
        assert "Gauges" in text
        assert "sim.rounds" in text

    def test_render_summary_empty_dir(self, tmp_path):
        assert "(no observability data found)" in render_summary(tmp_path)
