"""Unit tests for counters, gauges, histograms, and the registry."""

import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_accumulates(self):
        c = Counter("x")
        c.add()
        c.add(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="negative"):
            Counter("x").add(-1.0)


class TestGauge:
    def test_set_replaces(self):
        g = Gauge("x")
        g.set(5.0)
        g.set(2.0)
        assert g.value == 2.0


class TestHistogram:
    def test_bucketing(self):
        h = Histogram("lat", boundaries=(0.1, 1.0, 10.0))
        for v in (0.05, 0.1, 0.5, 5.0, 100.0):
            h.observe(v)
        # boundaries are exclusive upper bounds (bisect_right): a value
        # equal to a boundary lands in the next bucket, 100 in +Inf.
        assert h.bucket_counts == [1, 2, 1, 1]
        assert h.count == 5
        assert h.total == pytest.approx(105.65)
        assert h.mean == pytest.approx(105.65 / 5)

    def test_empty_mean_is_zero(self):
        assert Histogram("x").mean == 0.0

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            Histogram("x", boundaries=(1.0, 0.5))


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        assert reg.gauge("b") is reg.gauge("b")
        assert reg.histogram("c") is reg.histogram("c")

    def test_listing_is_sorted(self):
        reg = MetricsRegistry()
        reg.counter("z").add()
        reg.counter("a").add(2)
        assert list(reg.counters()) == ["a", "z"]
        assert reg.counters() == {"a": 2.0, "z": 1.0}

    def test_state_round_trip(self):
        reg = MetricsRegistry()
        reg.counter("c").add(7)
        reg.gauge("g").set(-1.5)
        h = reg.histogram("h", boundaries=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)

        restored = MetricsRegistry()
        restored.restore(reg.state())
        assert restored.state() == reg.state()
        assert restored.counter("c").value == 7.0
        assert restored.gauge("g").value == -1.5
        rh = restored.histogram("h")
        assert rh.boundaries == (1.0, 2.0)
        assert rh.bucket_counts == [1, 1, 0]
        assert rh.count == 2
        assert rh.total == pytest.approx(2.0)

    def test_restore_replaces_existing_content(self):
        reg = MetricsRegistry()
        reg.counter("stale").add(99)
        reg.restore({"counters": {"fresh": 1.0}})
        assert reg.counters() == {"fresh": 1.0}

    def test_state_is_json_safe(self):
        import json

        reg = MetricsRegistry()
        reg.counter("c").add()
        reg.histogram("h").observe(0.2)
        assert json.loads(json.dumps(reg.state())) == reg.state()
