"""Unit tests for Peer and Link state."""

import pytest

from repro.simulator.peer import Link, Peer


def make_peer(peer_id=1, **overrides):
    fields = {
        "ip": 1000 + peer_id,
        "isp": "China Telecom",
        "is_china": True,
        "channel_id": 0,
        "upload_kbps": 800.0,
        "download_kbps": 4000.0,
        "class_name": "cable",
        "join_time": 100.0,
        "depart_time": 5000.0,
    }
    fields.update(overrides)
    return Peer(peer_id, **fields)


class TestLink:
    def test_initial_estimate_is_half_capacity(self):
        link = Link(rtt_ms=30.0, cap_kbps=600.0)
        assert link.est_kbps == pytest.approx(300.0)

    def test_observe_throughput_ewma(self):
        link = Link(rtt_ms=30.0, cap_kbps=100.0)
        link.est_kbps = 80.0
        link.observe_throughput(40.0, smoothing=0.5)
        assert link.est_kbps == pytest.approx(60.0)
        link.observe_throughput(40.0, smoothing=1.0)
        assert link.est_kbps == pytest.approx(40.0)

    def test_report_deltas(self):
        link = Link(rtt_ms=30.0, cap_kbps=100.0)
        link.sent_segments = 25.0
        link.recv_segments = 13.0
        assert link.unreported_deltas() == (25.0, 13.0)
        link.mark_reported()
        assert link.unreported_deltas() == (0.0, 0.0)
        link.recv_segments += 7.0
        assert link.unreported_deltas() == (0.0, 7.0)

    def test_partner_ip_recorded(self):
        link = Link(rtt_ms=1.0, cap_kbps=1.0, partner_ip=42)
        assert link.partner_ip == 42


class TestPeer:
    def test_age(self):
        peer = make_peer(join_time=100.0)
        assert peer.age(700.0) == 600.0

    def test_add_remove_partner(self):
        peer = make_peer()
        link = Link(rtt_ms=20.0, cap_kbps=500.0)
        assert peer.add_partner(2, link)
        assert not peer.add_partner(2, link)  # duplicate
        assert not peer.add_partner(peer.peer_id, link)  # self
        assert peer.partner_count == 1
        peer.suppliers.add(2)
        peer.remove_partner(2)
        assert peer.partner_count == 0
        assert 2 not in peer.suppliers

    def test_remove_missing_partner_is_noop(self):
        peer = make_peer()
        peer.remove_partner(999)  # must not raise

    def test_spare_upload(self):
        peer = make_peer(upload_kbps=500.0)
        peer.sent_rate_kbps = 420.0
        assert peer.spare_upload_kbps() == pytest.approx(80.0)
        peer.sent_rate_kbps = 600.0
        assert peer.spare_upload_kbps() == 0.0

    def test_server_defaults(self):
        server = make_peer(is_server=True)
        assert server.depth == 0
        viewer = make_peer()
        assert viewer.depth == 64  # unknown until supplied

    def test_repr_mentions_kind(self):
        assert "cable" in repr(make_peer())
        assert "server" in repr(make_peer(is_server=True))

    def test_initial_report_schedule_unset(self):
        peer = make_peer()
        assert peer.next_report == float("inf")
