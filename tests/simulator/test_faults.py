"""Tests for the layered fault model: brownouts, partitions, crashes, backoff."""

import math
import random

import pytest

from repro.network.latency import LatencyModel
from repro.simulator import SystemConfig, UUSeeSystem
from repro.simulator.channel import Channel, ChannelCatalogue
from repro.simulator.exchange import ExchangeEngine
from repro.simulator.failures import (
    Brownout,
    CrashWindow,
    FaultPlan,
    IspPartition,
    LinkDegradation,
    Outage,
    OutageSchedule,
)
from repro.simulator.peer import Peer
from repro.simulator.protocol import ProtocolConfig
from repro.simulator.tracker import Tracker
from repro.traces import InMemoryTraceStore

HOUR = 3600.0


class TestBrownout:
    def test_capacity_math(self):
        plan = FaultPlan(
            tracker_brownouts=[
                Brownout(10.0, 30.0, capacity=0.5),
                Brownout(20.0, 40.0, capacity=0.2),
            ]
        )
        assert plan.tracker_capacity(5.0) == 1.0
        assert plan.tracker_capacity(15.0) == 0.5
        # overlapping brownouts compose as the minimum, not a product
        assert plan.tracker_capacity(25.0) == 0.2
        assert plan.tracker_capacity(35.0) == 0.2
        assert plan.tracker_capacity(40.0) == 1.0

    def test_outage_dominates_brownout(self):
        plan = FaultPlan(
            outages=OutageSchedule(tracker_outages=[Outage(0.0, 100.0)]),
            tracker_brownouts=[Brownout(0.0, 100.0, capacity=0.9)],
        )
        assert plan.tracker_capacity(50.0) == 0.0

    def test_server_capacity(self):
        plan = FaultPlan(server_brownouts=[Brownout(0.0, 10.0, capacity=0.25)])
        assert plan.server_capacity(5.0) == 0.25
        assert plan.server_capacity(15.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            Brownout(0.0, 10.0, capacity=1.5)
        with pytest.raises(ValueError):
            Brownout(0.0, 10.0, capacity=float("nan"))
        with pytest.raises(ValueError):
            Brownout(10.0, 10.0, capacity=0.5)


class TestPartition:
    def test_symmetry(self):
        p = IspPartition(0.0, 100.0, isps=frozenset({"China Telecom"}))
        assert p.severs("China Telecom", "China Netcom", 50.0)
        assert p.severs("China Netcom", "China Telecom", 50.0)

    def test_same_side_unaffected(self):
        p = IspPartition(0.0, 100.0, isps=frozenset({"A", "B"}))
        assert not p.severs("A", "B", 50.0)  # both inside
        assert not p.severs("C", "D", 50.0)  # both outside
        assert p.severs("A", "C", 50.0)

    def test_inactive_outside_window(self):
        p = IspPartition(10.0, 20.0, isps=frozenset({"A"}))
        assert not p.severs("A", "B", 5.0)
        assert not p.severs("A", "B", 20.0)

    def test_plan_link_blocked_symmetric(self):
        plan = FaultPlan(partitions=[IspPartition(0.0, 100.0, isps={"A"})])
        assert plan.link_blocked("A", "B", 1.0) == plan.link_blocked("B", "A", 1.0)
        assert not plan.link_blocked("B", "C", 1.0)

    def test_empty_partition_rejected(self):
        with pytest.raises(ValueError):
            IspPartition(0.0, 10.0, isps=frozenset())


class TestDegradation:
    def test_cross_isp_only(self):
        d = LinkDegradation(0.0, 100.0, factor=0.3)
        assert d.applies("A", "B", 50.0)
        assert not d.applies("A", "A", 50.0)
        both = LinkDegradation(0.0, 100.0, factor=0.3, cross_isp_only=False)
        assert both.applies("A", "A", 50.0)

    def test_min_factor_wins(self):
        plan = FaultPlan(
            degradations=[
                LinkDegradation(0.0, 100.0, factor=0.5),
                LinkDegradation(50.0, 100.0, factor=0.2),
            ]
        )
        assert plan.link_factor("A", "B", 25.0) == 0.5
        assert plan.link_factor("A", "B", 75.0) == 0.2
        assert plan.link_factor("A", "A", 75.0) == 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 10.0, factor=-0.1)
        with pytest.raises(ValueError):
            LinkDegradation(0.0, 10.0, factor=float("inf"))


class TestOutageScheduleIndex:
    def test_bisect_matches_linear_scan(self):
        rng = random.Random(42)
        outages = []
        for _ in range(40):
            start = rng.uniform(0.0, 10_000.0)
            outages.append(Outage(start, start + rng.uniform(1.0, 500.0)))
        schedule = OutageSchedule(tracker_outages=list(outages))
        for t in [rng.uniform(-100.0, 11_000.0) for _ in range(500)]:
            expected = any(o.active(t) for o in outages)
            assert schedule.tracker_down(t) == expected

    def test_boundary_semantics_preserved(self):
        # half-open [start, end): adjacent windows merge seamlessly
        schedule = OutageSchedule(
            tracker_outages=[Outage(0.0, 10.0), Outage(10.0, 20.0)]
        )
        assert schedule.tracker_down(0.0)
        assert schedule.tracker_down(10.0)
        assert schedule.tracker_down(19.999)
        assert not schedule.tracker_down(20.0)

    def test_nan_window_rejected(self):
        with pytest.raises(ValueError):
            Outage(float("nan"), 10.0)
        with pytest.raises(ValueError):
            Outage(0.0, float("inf"))


class TestCrashHazard:
    def test_rates_sum_while_active(self):
        plan = FaultPlan(
            crashes=[
                CrashWindow(0.0, 100.0, rate_per_hour=1.8),
                CrashWindow(50.0, 100.0, rate_per_hour=1.8),
            ]
        )
        assert plan.crash_hazard(25.0) == pytest.approx(1.8 / 3600.0)
        assert plan.crash_hazard(75.0) == pytest.approx(3.6 / 3600.0)
        assert plan.crash_hazard(150.0) == 0.0

    def test_negative_rate_rejected(self):
        with pytest.raises(ValueError):
            CrashWindow(0.0, 10.0, rate_per_hour=-1.0)


def run_system(faults, *, hours=3, base=150.0, seed=11):
    config = SystemConfig(
        seed=seed, base_concurrency=base, flash_crowd=None, faults=faults
    )
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=hours * HOUR)
    return system


class TestCrashVsLeave:
    def test_crashes_counted_separately(self):
        faults = FaultPlan(
            crashes=[CrashWindow(1 * HOUR, 2 * HOUR, rate_per_hour=2.0)]
        )
        system = run_system(faults)
        assert system.total_crashes > 0
        assert system.total_departures > 0
        # the system keeps running after the crash wave
        assert system.concurrent_peers() > 20

    def test_crashes_leave_stale_tracker_entries(self):
        # Freeze the system right at the end of a crash wave: crashed
        # peers are gone from ``peers`` but still registered.
        faults = FaultPlan(
            crashes=[CrashWindow(1 * HOUR, 2 * HOUR, rate_per_hour=4.0)]
        )
        config = SystemConfig(
            seed=5, base_concurrency=150.0, flash_crowd=None, faults=faults
        )
        system = UUSeeSystem(config, InMemoryTraceStore())
        system.run(seconds=2 * HOUR)  # stop at the crash window's edge
        assert system.total_crashes > 0
        registered = sum(
            system.tracker.member_count(ch.channel_id)
            for ch in system.catalogue
        )
        live_registered = sum(
            1 for p in system.peers.values() if p.registered
        )
        # Stale entries: more registrations than living registered peers.
        assert registered > live_registered

    def test_graceful_leaves_unregister(self):
        system = run_system(FaultPlan())
        assert system.total_crashes == 0
        registered = sum(
            system.tracker.member_count(ch.channel_id)
            for ch in system.catalogue
        )
        live_registered = sum(1 for p in system.peers.values() if p.registered)
        assert registered == live_registered


def make_world(config=None, faults=None, seed=0):
    peers = {}
    catalogue = ChannelCatalogue([Channel(0, "CH", 400.0, 1.0)])
    tracker = Tracker(seed=seed, server_probability=0.0)
    engine = ExchangeEngine(
        peers=peers,
        catalogue=catalogue,
        tracker=tracker,
        latency=LatencyModel(seed=seed),
        config=config or ProtocolConfig(),
        seed=seed,
        faults=faults,
    )
    return peers, tracker, engine


def make_peer(peers, peer_id, isp="China Telecom"):
    peer = Peer(
        peer_id,
        ip=10_000 + peer_id,
        isp=isp,
        is_china=True,
        channel_id=0,
        upload_kbps=800.0,
        download_kbps=4_000.0,
        class_name="cable",
        join_time=0.0,
        depart_time=float("inf"),
    )
    peers[peer_id] = peer
    return peer


class TestTrackerBackoff:
    def test_exponential_growth_and_cap(self):
        cfg = ProtocolConfig(tracker_retry_jitter=0.0)
        faults = FaultPlan(
            outages=OutageSchedule(tracker_outages=[Outage(0.0, 1e9)])
        )
        peers, _, ex = make_world(config=cfg, faults=faults)
        peer = make_peer(peers, 1)
        delays = []
        now = 0.0
        for _ in range(8):
            assert not ex.tracker_contact(peer, now)
            delays.append(peer.next_tracker_retry - now)
            now = peer.next_tracker_retry
        base = cfg.tracker_retry_base_s
        assert delays[0] == base
        assert delays[1] == 2 * base
        assert delays[2] == 4 * base
        # bounded: never exceeds the cap
        assert max(delays) == cfg.tracker_retry_cap_s
        assert delays[-1] == cfg.tracker_retry_cap_s

    def test_deterministic_under_fixed_seed(self):
        faults = FaultPlan(tracker_brownouts=[Brownout(0.0, 1e9, capacity=0.3)])

        def schedule(seed):
            peers, _, ex = make_world(faults=faults, seed=seed)
            peer = make_peer(peers, 1)
            out = []
            now = 0.0
            for _ in range(12):
                ex.tracker_contact(peer, now)
                out.append((peer.tracker_failures, peer.next_tracker_retry))
                now += 60.0
            return out

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_success_resets_backoff(self):
        peers, _, ex = make_world()
        peer = make_peer(peers, 1)
        peer.tracker_failures = 5
        peer.next_tracker_retry = 123.0
        assert ex.tracker_contact(peer, now=200.0)
        assert peer.tracker_failures == 0
        assert peer.next_tracker_retry == math.inf
        assert peer.registered

    def test_partition_blocks_new_connections(self):
        faults = FaultPlan(
            partitions=[IspPartition(0.0, 100.0, isps={"China Telecom"})]
        )
        peers, _, ex = make_world(faults=faults)
        a = make_peer(peers, 1, isp="China Telecom")
        b = make_peer(peers, 2, isp="China Netcom")
        c = make_peer(peers, 3, isp="China Telecom")
        assert not ex.connect(a, b, now=50.0)  # across the cut
        assert ex.connect(a, c, now=50.0)  # same side
        assert ex.connect(a, b, now=150.0)  # partition healed


class TestFaultPlanPlumbing:
    def test_fault_free_run_identical_to_no_plan(self):
        # An empty FaultPlan must not perturb the random streams.
        base = run_system(None, hours=2)
        with_plan = run_system(FaultPlan(), hours=2)
        assert base.total_arrivals == with_plan.total_arrivals
        assert len(base.round_stats) == len(with_plan.round_stats)
        assert [s.satisfied for s in base.round_stats] == [
            s.satisfied for s in with_plan.round_stats
        ]

    def test_merged_with_outages(self):
        plan = FaultPlan(tracker_brownouts=[Brownout(0.0, 10.0, capacity=0.5)])
        merged = plan.merged_with_outages(
            OutageSchedule(tracker_outages=[Outage(20.0, 30.0)])
        )
        assert merged.tracker_capacity(5.0) == 0.5
        assert merged.tracker_capacity(25.0) == 0.0
        # empty schedule: same plan returned untouched
        assert plan.merged_with_outages(OutageSchedule()) is plan
