"""Unit tests for the sliding-window buffer map."""

import pytest

from repro.simulator import BufferMap


class TestBufferMap:
    def test_initial_state(self):
        b = BufferMap(window_segments=16)
        assert b.fill_count() == 0
        assert b.fill_fraction() == 0.0
        assert b.playback_position == 0

    def test_receive_fills_earliest_holes(self):
        b = BufferMap(window_segments=8)
        assert b.receive_segments(3) == 3
        assert b.has_segment(0) and b.has_segment(1) and b.has_segment(2)
        assert not b.has_segment(3)

    def test_receive_bounded_by_window(self):
        b = BufferMap(window_segments=4)
        assert b.receive_segments(10) == 4
        assert b.fill_fraction() == 1.0
        assert b.receive_segments(1) == 0  # window already full

    def test_playback_consumes_contiguously(self):
        b = BufferMap(window_segments=8)
        b.receive_segments(4)
        assert b.advance_playback(2) == 2
        assert b.playback_position == 2
        assert b.fill_count() == 2

    def test_playback_stalls_at_hole(self):
        b = BufferMap(window_segments=8)
        b.receive_segments(2)  # hold 0,1
        played = b.advance_playback(5)
        assert played == 2
        assert b.playback_position == 2 + 3  # live stream skips ahead on empty

    def test_live_skip_only_when_buffer_empty(self):
        b = BufferMap(window_segments=8)
        b.receive_segments(1)  # hold segment 0
        b.advance_playback(1)
        b._held.add(5)  # simulate out-of-order arrival leaving a hole
        played = b.advance_playback(3)
        assert played == 0  # stalled at hole, buffer not empty: no skip
        assert b.playback_position == 1

    def test_window_slides_with_playback(self):
        b = BufferMap(window_segments=4)
        b.receive_segments(4)
        b.advance_playback(2)
        # window is now [2,6); receives fill 6 and 7? no - only within window
        assert b.receive_segments(4) == 2
        assert b.fill_count() == 4

    def test_bitmap_roundtrip(self):
        b = BufferMap(window_segments=8)
        b.receive_segments(3)
        bitmap = b.to_bitmap()
        assert BufferMap.occupancy_from_bitmap(bitmap, 8) == pytest.approx(3 / 8)

    def test_bitmap_relative_to_playback(self):
        b = BufferMap(window_segments=4)
        b.receive_segments(4)
        b.advance_playback(1)
        # held = {1,2,3}, playback at 1 -> offsets 0,1,2 set
        assert int(b.to_bitmap(), 16) == 0b0111

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            BufferMap(window_segments=0)
        b = BufferMap(window_segments=4)
        with pytest.raises(ValueError):
            b.receive_segments(-1)
        with pytest.raises(ValueError):
            b.advance_playback(-2)
