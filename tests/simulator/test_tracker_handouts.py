"""Unit tests for tracker volunteer handout throttling."""

from repro.simulator import Tracker


def make_tracker(limit=3):
    tr = Tracker(seed=0, server_probability=0.0, handout_limit=limit)
    tr.register(0, 1)
    tr.volunteer(0, 1)
    return tr


class TestHandoutThrottling:
    def test_volunteer_delisted_after_limit(self):
        tr = make_tracker(limit=3)
        for _ in range(3):
            assert tr.bootstrap(0, 99, 5) == [1]
        assert tr.volunteer_count(0) == 0
        assert tr.bootstrap(0, 99, 5) == []

    def test_revolunteering_resets_budget(self):
        tr = make_tracker(limit=2)
        tr.bootstrap(0, 99, 5)
        tr.bootstrap(0, 99, 5)
        assert tr.volunteer_count(0) == 0
        tr.volunteer(0, 1)  # peer re-asserts at its next tick
        assert tr.volunteer_count(0) == 1
        assert tr.bootstrap(0, 99, 5) == [1]

    def test_servers_exempt_from_budget(self):
        tr = Tracker(seed=1, server_probability=1.0, handout_limit=1)
        tr.add_server(0, 500)
        tr.register(0, 500)
        tr.volunteer(0, 500)
        for _ in range(5):
            got = tr.bootstrap(0, 99, 5)
            assert 500 in got  # server keeps being handed out

    def test_unvolunteer_clears_budget_state(self):
        tr = make_tracker(limit=5)
        tr.bootstrap(0, 99, 5)
        tr.unvolunteer(0, 1)
        assert tr.volunteer_count(0) == 0
        tr.volunteer(0, 1)
        # fresh budget after re-listing
        for _ in range(4):
            assert tr.bootstrap(0, 99, 5) == [1]

    def test_multiple_volunteers_drain_independently(self):
        tr = Tracker(seed=2, server_probability=0.0, handout_limit=2)
        for pid in (1, 2, 3):
            tr.register(0, pid)
            tr.volunteer(0, pid)
        # drain the pool: 3 volunteers x 2 handouts = 6 total units
        total_handouts = 0
        for _ in range(10):
            total_handouts += len(tr.bootstrap(0, 99, 3))
        assert total_handouts == 6
        assert tr.volunteer_count(0) == 0
