"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulator import EventEngine


class TestEventEngine:
    def test_schedule_and_run(self):
        engine = EventEngine()
        fired = []
        engine.schedule(5.0, fired.append, "a")
        engine.schedule(1.0, fired.append, "b")
        engine.schedule(3.0, fired.append, "c")
        engine.run()
        assert fired == ["b", "c", "a"]
        assert engine.now == 5.0

    def test_fifo_tie_break(self):
        engine = EventEngine()
        fired = []
        for tag in ("first", "second", "third"):
            engine.schedule(2.0, fired.append, tag)
        engine.run()
        assert fired == ["first", "second", "third"]

    def test_run_until_stops_at_boundary(self):
        engine = EventEngine()
        fired = []
        engine.schedule(1.0, fired.append, 1)
        engine.schedule(10.0, fired.append, 10)
        engine.run_until(5.0)
        assert fired == [1]
        assert engine.now == 5.0
        engine.run_until(20.0)
        assert fired == [1, 10]

    def test_cancellation(self):
        engine = EventEngine()
        fired = []
        keep = engine.schedule(1.0, fired.append, "keep")
        drop = engine.schedule(2.0, fired.append, "drop")
        drop.cancel()
        engine.run()
        assert fired == ["keep"]
        assert not keep.cancelled

    def test_pending_counts_only_live_events(self):
        engine = EventEngine()
        a = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        a.cancel()
        assert engine.pending == 1

    def test_past_scheduling_rejected(self):
        engine = EventEngine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule(-1.0, lambda: None)

    def test_events_scheduled_during_run(self):
        engine = EventEngine()
        fired = []

        def chain(n):
            fired.append(n)
            if n < 3:
                engine.schedule(1.0, chain, n + 1)

        engine.schedule(0.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0

    def test_step_returns_false_when_empty(self):
        assert EventEngine().step() is False

    def test_processed_counter(self):
        engine = EventEngine()
        for _ in range(4):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.processed == 4

    def test_clock_monotone_with_start_time(self):
        engine = EventEngine(start_time=100.0)
        assert engine.now == 100.0
        engine.schedule(2.5, lambda: None)
        engine.run()
        assert engine.now == 102.5
