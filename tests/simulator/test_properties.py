"""Property-based tests for simulator data structures (hypothesis)."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.simulator import BufferMap, EventEngine
from repro.simulator.util import SampleableSet


class TestSampleableSetProperties:
    @given(st.lists(st.integers(0, 50)), st.lists(st.integers(0, 50)))
    def test_behaves_like_a_set(self, adds, removes):
        ours = SampleableSet()
        model: set[int] = set()
        for x in adds:
            ours.add(x)
            model.add(x)
        for x in removes:
            ours.discard(x)
            model.discard(x)
        assert len(ours) == len(model)
        assert set(ours) == model
        for x in model:
            assert x in ours

    @given(
        st.sets(st.integers(0, 100), min_size=1, max_size=40),
        st.integers(1, 50),
        st.integers(0, 2**31),
    )
    def test_sample_invariants(self, items, k, seed):
        s = SampleableSet(items)
        rng = random.Random(seed)
        picked = s.sample(rng, k)
        assert len(picked) == len(set(picked))  # distinct
        assert set(picked) <= items
        if k >= len(items):
            assert set(picked) == items

    @given(
        st.sets(st.integers(0, 30), min_size=2, max_size=20),
        st.integers(0, 2**31),
    )
    def test_exclusion_respected(self, items, seed):
        excluded = min(items)
        s = SampleableSet(items)
        rng = random.Random(seed)
        for _ in range(5):
            assert excluded not in s.sample(rng, len(items), exclude=excluded)


class TestBufferMapProperties:
    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 20)), max_size=60))
    def test_fill_never_exceeds_window(self, operations):
        b = BufferMap(window_segments=16)
        for is_receive, count in operations:
            if is_receive:
                b.receive_segments(count)
            else:
                b.advance_playback(count)
            assert 0 <= b.fill_count() <= 16
            assert 0.0 <= b.fill_fraction() <= 1.0

    @given(st.lists(st.integers(0, 30), max_size=30))
    def test_receive_accounts_exactly(self, counts):
        b = BufferMap(window_segments=32)
        total_added = sum(b.receive_segments(c) for c in counts)
        assert b.fill_count() == total_added

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 10)), max_size=60))
    def test_playback_position_monotone(self, operations):
        b = BufferMap(window_segments=8)
        last = b.playback_position
        for is_receive, count in operations:
            if is_receive:
                b.receive_segments(count)
            else:
                b.advance_playback(count)
            assert b.playback_position >= last
            last = b.playback_position

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 10)), max_size=40))
    def test_bitmap_roundtrip_consistent(self, operations):
        b = BufferMap(window_segments=12)
        for is_receive, count in operations:
            if is_receive:
                b.receive_segments(count)
            else:
                b.advance_playback(count)
        occupancy = BufferMap.occupancy_from_bitmap(b.to_bitmap(), 12)
        assert occupancy == b.fill_count() / 12


class TestEngineProperties:
    @given(st.lists(st.floats(0.0, 1000.0), min_size=1, max_size=50))
    @settings(max_examples=50)
    def test_events_fire_in_time_order(self, delays):
        engine = EventEngine()
        fired: list[float] = []
        for d in delays:
            engine.schedule(d, lambda t=d: fired.append(t))
        engine.run()
        assert fired == sorted(fired, key=lambda t: t)
        assert len(fired) == len(delays)
        assert engine.now == max(delays)

    @given(
        st.lists(st.floats(0.0, 100.0), min_size=1, max_size=30),
        st.floats(0.0, 100.0),
    )
    @settings(max_examples=50)
    def test_run_until_boundary(self, delays, horizon):
        engine = EventEngine()
        fired: list[float] = []
        for d in delays:
            engine.schedule(d, lambda t=d: fired.append(t))
        engine.run_until(horizon)
        assert all(t <= horizon for t in fired)
        assert len(fired) == sum(1 for d in delays if d <= horizon)
