"""Unit tests for the multi-tracker pool."""

import pytest

from repro.simulator.tracker import TrackerPool


def pooled(n=3, **kwargs):
    kwargs.setdefault("server_probability", 0.0)
    return TrackerPool(n, seed=1, **kwargs)


class TestTrackerPool:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            TrackerPool(0)
        assert len(TrackerPool(4)) == 4

    def test_home_tracker_partitioning(self):
        pool = pooled(3)
        for pid in range(30):
            pool.register(0, pid)
            pool.volunteer(0, pid)
        assert pool.member_count(0) == 30
        assert pool.volunteer_count(0) == 30
        # each underlying tracker only sees its partition
        per_tracker = [t.member_count(0) for t in pool._trackers]
        assert per_tracker == [10, 10, 10]

    def test_bootstrap_only_sees_home_partition(self):
        pool = pooled(2, handout_limit=1000)
        for pid in range(2, 40, 2):  # even ids -> tracker 0
            pool.register(0, pid)
            pool.volunteer(0, pid)
        got = pool.bootstrap(0, 100, 50)  # peer 100 is even -> tracker 0
        assert got and all(pid % 2 == 0 for pid in got)
        assert pool.bootstrap(0, 101, 50) == []  # odd home tracker is empty

    def test_unregister_routed_home(self):
        pool = pooled(3)
        pool.register(0, 7)
        pool.volunteer(0, 7)
        pool.unregister(0, 7)
        assert pool.member_count(0) == 0
        assert pool.volunteer_count(0) == 0

    def test_servers_on_all_trackers(self):
        pool = TrackerPool(3, seed=2, server_probability=1.0)
        pool.add_server(0, 999)
        for pid in (1, 2, 3):  # one peer per home tracker
            got = pool.bootstrap(0, pid, 5)
            assert 999 in got

    def test_request_counters_aggregate(self):
        pool = pooled(2)
        pool.register(0, 1)
        pool.volunteer(0, 1)
        pool.bootstrap(0, 2, 3)
        pool.bootstrap(0, 3, 3)
        pool.refresh(0, 4, 3)
        assert pool.bootstrap_requests == 2
        assert pool.refresh_requests == 1

    def test_system_runs_with_pool(self):
        from repro.simulator import SystemConfig, UUSeeSystem
        from repro.traces import InMemoryTraceStore

        config = SystemConfig(
            seed=5, base_concurrency=120.0, flash_crowd=None, num_trackers=3
        )
        system = UUSeeSystem(config, InMemoryTraceStore())
        system.run(seconds=3 * 3600)
        assert system.concurrent_peers() > 40
        now = system.engine.now
        stable = [
            p
            for p in system.peers.values()
            if not p.is_server and p.age(now) >= 1200
        ]
        healthy = sum(1 for p in stable if p.recv_rate_kbps >= 0.9 * 400)
        assert healthy / max(1, len(stable)) > 0.3  # still streams
