"""Draw-identity regression pin for the optimized exchange loop.

The PR-5 exchange optimizations (precomputed link penalties, cached
per-channel constants, hoisted loop invariants) must not change the RNG
draw sequence or the produced trace by a single bit.  These constants
were captured from the pre-optimization engine on the same scenario; if
either assertion ever fails, an edit changed simulation *behaviour*, not
just its speed.
"""

import hashlib

from repro.qa.sanitizer import assert_identical_draws, audited
from repro.simulator import SystemConfig, UUSeeSystem
from repro.traces import InMemoryTraceStore

GOLDEN_FLOAT_DRAWS = 19610
GOLDEN_BIT_DRAWS = 10959
GOLDEN_FINGERPRINT = (
    "7c154ac9f1c8ecfc6edda3c8c93d08091a32c7d46c62f48e8f44de4ecd8a33e2"
)
GOLDEN_TRACE_SHA = (
    "f427fd3738d1974c032ec725e19776509a70d8e1f46ed657a44178ce4d92ce79"
)
GOLDEN_REPORTS = 356


def scenario() -> InMemoryTraceStore:
    config = SystemConfig(seed=31, base_concurrency=120.0, flash_crowd=None)
    store = InMemoryTraceStore()
    system = UUSeeSystem(config, store)
    system.run(seconds=3 * 3600)
    return store


def trace_sha(store: InMemoryTraceStore) -> str:
    h = hashlib.sha256()
    for r in store.reports:
        h.update(r.to_json().encode())
        h.update(b"\n")
    return h.hexdigest()


class TestExchangeGolden:
    def test_draw_sequence_matches_pre_optimization_engine(self):
        store, snap = audited(scenario)
        assert snap.float_draws == GOLDEN_FLOAT_DRAWS
        assert snap.bit_draws == GOLDEN_BIT_DRAWS
        assert snap.fingerprint == GOLDEN_FINGERPRINT

    def test_trace_bytes_match_pre_optimization_engine(self):
        store, _ = audited(scenario)
        assert len(store.reports) == GOLDEN_REPORTS
        assert trace_sha(store) == GOLDEN_TRACE_SHA

    def test_replay_is_draw_identical(self):
        outcomes = assert_identical_draws(scenario, runs=2)
        (store_a, _), (store_b, _) = outcomes
        assert trace_sha(store_a) == trace_sha(store_b)
