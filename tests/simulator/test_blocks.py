"""Tests for the block-accurate swarm data plane."""

import statistics

import pytest

from repro.simulator.blocks import BlockSwarm, SwarmConfig


def small_swarm(**overrides):
    fields = {"num_peers": 30, "seed": 3}
    fields.update(overrides)
    return BlockSwarm(SwarmConfig(**fields))


class TestConstruction:
    def test_mesh_built(self):
        swarm = small_swarm()
        viewers = [p for p in swarm.peers.values() if not p.is_server]
        assert len(viewers) == 30
        assert all(p.partners for p in viewers)
        # partnerships are mutual
        for p in viewers:
            for q in p.partners:
                assert p.peer_id in swarm.peers[q].partners

    def test_server_knows_some_peers(self):
        swarm = small_swarm()
        assert swarm.server.is_server
        assert len(swarm.server.partners) > 0

    def test_upload_heterogeneity(self):
        swarm = small_swarm(upload_spread=0.5)
        budgets = [
            p.upload_budget_segments
            for p in swarm.peers.values()
            if not p.is_server
        ]
        assert max(budgets) > 1.3 * min(budgets)


class TestStreaming:
    def test_high_continuity_with_ample_capacity(self):
        swarm = small_swarm(mean_upload_kbps=1000.0)
        swarm.run(600)
        assert swarm.continuity_index() > 0.9

    def test_starvation_when_undersupplied(self):
        # aggregate upload below the stream rate: distribution must fail
        swarm = small_swarm(mean_upload_kbps=150.0, server_upload_kbps=800.0)
        swarm.run(600)
        assert swarm.continuity_index() < 0.7

    def test_playback_waits_for_startup_delay(self):
        swarm = small_swarm()
        swarm.run(swarm.config.startup_delay_segments)
        viewers = [p for p in swarm.peers.values() if not p.is_server]
        assert all(p.played == 0 and p.stalled == 0 for p in viewers)

    def test_head_advances_per_tick(self):
        swarm = small_swarm()
        swarm.run(50)
        assert swarm.head == 50
        assert swarm.ticks == 50

    def test_budget_respected_per_tick(self):
        swarm = small_swarm()
        sent_before = {
            pid: sum(p.sent_to.values()) for pid, p in swarm.peers.items()
        }
        swarm.run(1)
        for pid, peer in swarm.peers.items():
            delta = sum(peer.sent_to.values()) - sent_before[pid]
            assert delta <= peer.upload_budget_segments + 1e-9


class TestObservables:
    @pytest.fixture(scope="class")
    def warm_swarm(self):
        swarm = BlockSwarm(SwarmConfig(num_peers=40, seed=7))
        swarm.run(900)
        return swarm

    def test_reciprocal_exchange(self, warm_swarm):
        assert warm_swarm.reciprocity() > 0.3

    def test_indegree_far_below_partner_count(self, warm_swarm):
        indegrees = warm_swarm.active_indegrees(threshold=60)
        partner_counts = [
            len(p.partners)
            for p in warm_swarm.peers.values()
            if not p.is_server
        ]
        # with a strict threshold, most supply concentrates on few links
        assert statistics.mean(indegrees) < statistics.mean(partner_counts)

    def test_outdegree_tail_follows_capacity(self, warm_swarm):
        viewers = [p for p in warm_swarm.peers.values() if not p.is_server]
        by_capacity = sorted(viewers, key=lambda p: p.upload_budget_segments)
        slow = by_capacity[: len(viewers) // 3]
        fast = by_capacity[-len(viewers) // 3 :]
        sent_slow = statistics.mean(sum(p.sent_to.values()) for p in slow)
        sent_fast = statistics.mean(sum(p.sent_to.values()) for p in fast)
        assert sent_fast > sent_slow

    def test_server_share_small_in_healthy_swarm(self, warm_swarm):
        assert warm_swarm.server_share() < 0.3

    def test_deterministic(self):
        a = BlockSwarm(SwarmConfig(num_peers=25, seed=11))
        b = BlockSwarm(SwarmConfig(num_peers=25, seed=11))
        a.run(300)
        b.run(300)
        assert a.continuity_index() == b.continuity_index()
        assert a.active_indegrees() == b.active_indegrees()
