"""Unit tests for the channel catalogue, tracker and SampleableSet."""

import random

import pytest

from repro.simulator import Channel, ChannelCatalogue, Tracker, default_catalogue
from repro.simulator.util import SampleableSet


class TestChannelCatalogue:
    def test_default_catalogue_shares(self):
        cat = default_catalogue()
        assert sum(c.share for c in cat) == pytest.approx(1.0)
        cctv1 = cat.by_name("CCTV1")
        cctv4 = cat.by_name("CCTV4")
        assert cctv1.share == pytest.approx(5 * cctv4.share)  # paper: 5x viewers

    def test_default_rate_400kbps(self):
        cat = default_catalogue()
        assert all(c.rate_kbps == 400.0 for c in cat)

    def test_sampling_matches_shares(self):
        cat = default_catalogue()
        rng = random.Random(0)
        draws = [cat.sample(rng).name for _ in range(20000)]
        frac = draws.count("CCTV1") / len(draws)
        assert frac == pytest.approx(0.30, abs=0.02)

    def test_get_and_by_name(self):
        cat = default_catalogue()
        assert cat.get(0).name == "CCTV1"
        with pytest.raises(KeyError):
            cat.by_name("nope")

    def test_invalid_catalogues(self):
        with pytest.raises(ValueError):
            ChannelCatalogue([])
        with pytest.raises(ValueError):
            ChannelCatalogue([Channel(0, "a", 400, 0.5)])  # shares != 1
        with pytest.raises(ValueError):
            ChannelCatalogue(
                [Channel(0, "a", 400, 0.5), Channel(0, "b", 400, 0.5)]
            )  # dup ids


class TestSampleableSet:
    def test_add_discard_contains(self):
        s = SampleableSet([1, 2, 3])
        assert 2 in s and len(s) == 3
        s.discard(2)
        assert 2 not in s and len(s) == 2
        s.discard(99)  # no-op
        s.add(1)  # duplicate no-op
        assert len(s) == 2

    def test_sample_uniform_and_distinct(self):
        s = SampleableSet(range(100))
        rng = random.Random(1)
        picked = s.sample(rng, 10)
        assert len(picked) == len(set(picked)) == 10

    def test_sample_exclude(self):
        s = SampleableSet([1, 2])
        rng = random.Random(2)
        for _ in range(20):
            assert 1 not in s.sample(rng, 5, exclude=1)

    def test_sample_more_than_size(self):
        s = SampleableSet([1, 2, 3])
        rng = random.Random(3)
        assert sorted(s.sample(rng, 10)) == [1, 2, 3]

    def test_sample_empty(self):
        assert SampleableSet().sample(random.Random(0), 5) == []

    def test_discard_keeps_sampling_consistent(self):
        s = SampleableSet(range(10))
        for i in range(0, 10, 2):
            s.discard(i)
        rng = random.Random(4)
        for _ in range(30):
            assert all(x % 2 == 1 for x in s.sample(rng, 3))


class TestTracker:
    def test_register_and_bootstrap_from_volunteers(self):
        tr = Tracker(seed=0, server_probability=0.0)
        for pid in range(1, 21):
            tr.register(0, pid)
        for pid in range(1, 11):
            tr.volunteer(0, pid)
        got = tr.bootstrap(0, 99, 5)
        assert len(got) == 5
        assert all(1 <= pid <= 10 for pid in got)

    def test_bootstrap_excludes_requester(self):
        tr = Tracker(seed=1, server_probability=0.0)
        tr.register(0, 7)
        tr.volunteer(0, 7)
        assert tr.bootstrap(0, 7, 5) == []

    def test_server_included_probabilistically(self):
        tr = Tracker(seed=2, server_probability=1.0)
        tr.add_server(0, 1000)
        got = tr.bootstrap(0, 1, 5)
        assert got == [1000]

    def test_unregister_removes_volunteer(self):
        tr = Tracker(seed=3, server_probability=0.0)
        tr.register(0, 1)
        tr.volunteer(0, 1)
        tr.unregister(0, 1)
        assert tr.volunteer_count(0) == 0
        assert tr.member_count(0) == 0

    def test_channels_isolated(self):
        tr = Tracker(seed=4, server_probability=0.0)
        tr.register(0, 1)
        tr.volunteer(0, 1)
        tr.register(1, 2)
        tr.volunteer(1, 2)
        assert tr.bootstrap(1, 99, 5) == [2]

    def test_refresh_counts(self):
        tr = Tracker(seed=5, server_probability=0.0)
        tr.register(0, 1)
        tr.volunteer(0, 1)
        tr.refresh(0, 99, 3)
        tr.bootstrap(0, 98, 3)
        assert tr.refresh_requests == 1
        assert tr.bootstrap_requests == 1

    def test_unknown_channel_safe(self):
        tr = Tracker(seed=6)
        tr.unregister(42, 1)  # must not raise
        assert tr.member_count(42) == 0
