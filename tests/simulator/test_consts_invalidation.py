"""Regression: ``_consts`` caches must be invalidated on config change.

The exchange engines cache per-channel derived constants (request cap,
demand budget, link floors) and — in the SoA backend — mirror the
channel rate into a per-slot array.  Changing a channel's rate
mid-campaign without calling ``invalidate_channel_consts`` leaves the
engine allocating against stale demand; these tests pin both the hazard
(the cache really is stale until invalidated) and the fix (invalidation
refreshes the scalar cache *and* the SoA per-slot copies).
"""

import dataclasses

import pytest

from repro.simulator import SystemConfig, UUSeeSystem
from repro.traces import InMemoryTraceStore

ENGINES = ("object", "soa", "soa-exact")


def build_system(engine: str) -> UUSeeSystem:
    config = SystemConfig(
        seed=11, base_concurrency=60.0, flash_crowd=None, engine=engine
    )
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=3 * 600.0)  # populate peers across channels
    return system


def bump_rate(catalogue, channel_id: int, factor: float) -> float:
    """Swap a channel for a higher-rate copy, as a live reconfig would."""
    old = catalogue.get(channel_id)
    new = dataclasses.replace(old, rate_kbps=old.rate_kbps * factor)
    catalogue._by_id[channel_id] = new
    index = next(
        i for i, c in enumerate(catalogue._channels)
        if c.channel_id == channel_id
    )
    catalogue._channels[index] = new
    return new.rate_kbps


@pytest.mark.parametrize("engine", ENGINES)
class TestInvalidateChannelConsts:
    def test_cache_is_stale_until_invalidated(self, engine):
        system = build_system(engine)
        ex = system.exchange
        old_rate = ex._consts(0).rate_kbps
        new_rate = bump_rate(ex.catalogue, 0, 2.0)

        # The hazard: the cache still serves the pre-change constants.
        assert ex._consts(0).rate_kbps == old_rate

        ex.invalidate_channel_consts(0)
        consts = ex._consts(0)
        assert consts.rate_kbps == new_rate
        assert consts.demand == ex.config.demand_kbps(new_rate)
        assert consts.request_cap == ex.config.request_cap_kbps(new_rate)

    def test_single_channel_invalidation_spares_others(self, engine):
        system = build_system(engine)
        ex = system.exchange
        other = ex._consts(1)
        bump_rate(ex.catalogue, 0, 2.0)
        ex.invalidate_channel_consts(0)
        assert ex._consts(1) is other  # untouched channel keeps its cache

    def test_invalidate_all(self, engine):
        system = build_system(engine)
        ex = system.exchange
        ex._consts(0), ex._consts(1)
        new0 = bump_rate(ex.catalogue, 0, 2.0)
        new1 = bump_rate(ex.catalogue, 1, 3.0)
        ex.invalidate_channel_consts(None)
        assert ex._consts(0).rate_kbps == new0
        assert ex._consts(1).rate_kbps == new1


@pytest.mark.parametrize("engine", ("soa", "soa-exact"))
def test_soa_refreshes_per_slot_rates(engine):
    system = build_system(engine)
    ex = system.exchange
    st = ex.state
    on_channel = [p for p in system.peers.values() if p.channel_id == 0]
    off_channel = [p for p in system.peers.values() if p.channel_id != 0]
    assert on_channel, "scenario must populate channel 0"
    assert off_channel, "scenario must populate other channels"

    new_rate = bump_rate(ex.catalogue, 0, 2.0)
    stale = [p for p in on_channel if st.p_rate[p.slot] != new_rate]
    assert stale, "per-slot rates should be stale before invalidation"

    before_off = {p.peer_id: st.p_rate[p.slot] for p in off_channel}
    ex.invalidate_channel_consts(0)
    for p in on_channel:
        assert st.p_rate[p.slot] == new_rate
    for p in off_channel:
        assert st.p_rate[p.slot] == before_off[p.peer_id]
