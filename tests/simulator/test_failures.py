"""Tests for failure injection: tracker and server outages."""

import pytest

from repro.simulator import SystemConfig, UUSeeSystem
from repro.simulator.failures import Outage, OutageSchedule
from repro.traces import InMemoryTraceStore

HOUR = 3600.0


def run_with(outages, hours=8, base=250.0, seed=9):
    config = SystemConfig(
        seed=seed, base_concurrency=base, flash_crowd=None, outages=outages
    )
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=hours * HOUR)
    return system


def satisfied_at(system, when):
    stats = min(system.round_stats, key=lambda s: abs(s.time - when))
    return stats.satisfied_fraction()


def stable_satisfied_now(system):
    now = system.engine.now
    stable = [
        p
        for p in system.peers.values()
        if not p.is_server and p.age(now) >= 1200
    ]
    if not stable:
        return 0.0
    good = sum(1 for p in stable if p.recv_rate_kbps >= 0.9 * 400)
    return good / len(stable)


class TestOutageSchedule:
    def test_window_semantics(self):
        o = Outage(start=10.0, end=20.0)
        assert not o.active(9.9)
        assert o.active(10.0)
        assert o.active(19.9)
        assert not o.active(20.0)
        assert o.duration == 10.0

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            Outage(start=5.0, end=5.0)

    def test_schedule_queries(self):
        schedule = OutageSchedule(
            tracker_outages=[Outage(0.0, 10.0)],
            server_outages=[Outage(20.0, 30.0)],
        )
        assert schedule.tracker_down(5.0)
        assert not schedule.tracker_down(15.0)
        assert schedule.servers_down(25.0)
        assert not schedule.empty
        assert OutageSchedule().empty


class TestTrackerOutage:
    def test_newcomers_degraded_then_recover(self):
        outage = Outage(start=4 * HOUR, end=5 * HOUR)
        system = run_with(OutageSchedule(tracker_outages=[outage]))
        now = system.engine.now
        # peers that joined during the outage and are still young had no
        # bootstrap; check that joins kept happening regardless
        assert system.concurrent_peers() > 50
        # quality after recovery is healthy again (stable peers)
        assert stable_satisfied_now(system) > 0.5

    def test_quality_dips_during_outage(self):
        outage = Outage(start=4 * HOUR, end=5.5 * HOUR)
        degraded = run_with(OutageSchedule(tracker_outages=[outage]))
        baseline = run_with(OutageSchedule())
        during_degraded = satisfied_at(degraded, 5.4 * HOUR)
        during_baseline = satisfied_at(baseline, 5.4 * HOUR)
        assert during_degraded < during_baseline

    def test_volunteering_paused_during_outage(self):
        # an outage covering the whole run: the volunteer lists only ever
        # hold the servers (which volunteered at construction time)
        outage = Outage(start=0.0, end=100 * HOUR)
        system = run_with(OutageSchedule(tracker_outages=[outage]), hours=2)
        total_volunteers = sum(
            system.tracker.volunteer_count(c.channel_id)
            for c in system.catalogue
        )
        assert total_volunteers <= len(list(system.catalogue))


class TestServerOutage:
    def test_mesh_survives_origin_loss(self):
        # servers down for one round-trip of the buffer: established peers
        # keep exchanging what they hold (the paper's reciprocity point)
        outage = Outage(start=5 * HOUR, end=5.5 * HOUR)
        system = run_with(OutageSchedule(server_outages=[outage]))
        during = satisfied_at(system, 5.4 * HOUR)
        assert during > 0.2  # degraded but alive (mesh redistribution)
        assert stable_satisfied_now(system) > 0.5  # recovered

    def test_servers_send_nothing_while_down(self):
        outage = Outage(start=2 * HOUR, end=4 * HOUR)
        system = run_with(OutageSchedule(server_outages=[outage]), hours=3)
        servers = [p for p in system.peers.values() if p.is_server]
        assert all(s.sent_rate_kbps == 0.0 for s in servers)
