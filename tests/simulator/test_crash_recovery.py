"""Kill/recover harness: checkpointed campaigns survive crashes.

Each scenario interrupts a seeded run at an adversarial instant —
between checkpoints, mid-checkpoint (torn newest file), mid-segment
rotation (stale manifest), mid-line (torn trace tail) — resumes it, and
asserts the result is indistinguishable from an uninterrupted twin:
identical trace content (sha256) and, where the harness audits RNGs,
identical draw sequences.

Kills are simulated deterministically in-process: the run is abandoned
without ``close()`` (so nothing is sealed or finalized) and the chosen
crash damage is inflicted on the files directly.  A flush boundary is
the kill point — what a real SIGKILL leaves when it lands between
flushes; torn-write scenarios add the partial bytes explicitly.
"""

import hashlib

import pytest

from repro.core.experiments import run_campaign
from repro.qa import DrawAudit, assert_identical_draws
from repro.simulator import (
    CheckpointError,
    CheckpointManager,
    SystemConfig,
    UUSeeSystem,
    load_checkpoint,
    restore_into,
)
from repro.traces import SegmentedTraceReader, SegmentedTraceStore

SEED = 2006
BASE = 60.0
ROUND = 600.0  # ProtocolConfig default round_seconds
TOTAL_ROUNDS = 18
SEGMENT_RECORDS = 40


def make_config() -> SystemConfig:
    return SystemConfig(seed=SEED, base_concurrency=BASE, flash_crowd=None)


def fresh_system(trace_dir):
    store = SegmentedTraceStore(trace_dir, records_per_segment=SEGMENT_RECORDS)
    return UUSeeSystem(make_config(), store), store


def run_uninterrupted(trace_dir, *, rounds=TOTAL_ROUNDS):
    system, store = fresh_system(trace_dir)
    system.run(seconds=rounds * ROUND)
    store.close()
    return system, store


def run_until_killed(trace_dir, ckpt_dir, *, kill_after, every=3):
    """Run with checkpoints, then 'die': flush and abandon, no close."""
    system, store = fresh_system(trace_dir)
    manager = CheckpointManager(ckpt_dir)
    system.run(
        seconds=kill_after * ROUND,
        checkpoint=manager,
        checkpoint_every_rounds=every,
    )
    store.flush()  # the kill lands just past a flush boundary
    return system, store, manager


def resume_and_finish(trace_dir, ckpt_dir, *, rounds=TOTAL_ROUNDS):
    manager = CheckpointManager(ckpt_dir)
    found = manager.latest_valid()
    assert found is not None, "no valid checkpoint to resume from"
    _, state = found
    store = SegmentedTraceStore.recover(trace_dir)
    store.rollback(state["trace_records"])
    system = UUSeeSystem(make_config(), store)
    restore_into(system, state)
    remaining = rounds - system.rounds_completed
    if remaining > 0:
        system.run(seconds=remaining * ROUND)
    store.close()
    return system, store


def content_sha(trace_dir) -> str:
    recovered = SegmentedTraceStore.recover(trace_dir)
    try:
        return recovered.content_sha256()
    finally:
        recovered.close()


def per_file_shas(trace_dir) -> dict[str, str]:
    return {
        p.name: hashlib.sha256(p.read_bytes()).hexdigest()
        for p in trace_dir.iterdir()
        if p.suffix == ".jsonl"
    }


class TestKillBetweenCheckpoints:
    def test_resume_matches_uninterrupted_twin_bytewise(self, tmp_path):
        twin_a, twin_b = tmp_path / "a", tmp_path / "b"
        a_system, _ = run_uninterrupted(twin_a)
        # Kill at round 11 with checkpoints every 3: resume restarts at
        # round 9 and must replay rounds 10-11 identically.
        run_until_killed(twin_b, tmp_path / "ckpt", kill_after=11)
        b_system, _ = resume_and_finish(twin_b, tmp_path / "ckpt")
        assert b_system.rounds_completed == TOTAL_ROUNDS
        assert a_system.total_arrivals == b_system.total_arrivals
        assert a_system._rng.getstate() == b_system._rng.getstate()
        assert a_system.exchange.rng.getstate() == b_system.exchange.rng.getstate()
        # Plain JSONL: not just equivalent content — identical files.
        assert per_file_shas(twin_a) == per_file_shas(twin_b)

    def test_continuation_is_draw_identical(self, tmp_path):
        # Twin A runs 9 rounds inline, then its continuation is audited;
        # twin B is killed at round 9 (a checkpoint boundary), resumed,
        # and its continuation must consume the very same draw sequence.
        twin_a, twin_b = tmp_path / "a", tmp_path / "b"
        a_system, a_store = fresh_system(twin_a)
        a_system.run(seconds=9 * ROUND)
        with DrawAudit() as audit_a:
            a_system.run(seconds=(TOTAL_ROUNDS - 9) * ROUND)
        a_store.close()

        run_until_killed(twin_b, tmp_path / "ckpt", kill_after=9, every=3)
        manager = CheckpointManager(tmp_path / "ckpt")
        _, state = manager.latest_valid()
        store = SegmentedTraceStore.recover(twin_b)
        store.rollback(state["trace_records"])
        b_system = UUSeeSystem(make_config(), store)
        restore_into(b_system, state)
        with DrawAudit() as audit_b:
            b_system.run(seconds=(TOTAL_ROUNDS - 9) * ROUND)
        store.close()

        assert audit_a.snapshot() == audit_b.snapshot()
        assert content_sha(twin_a) == content_sha(twin_b)


class TestKillMidCheckpoint:
    def test_torn_newest_checkpoint_falls_back_and_still_matches(self, tmp_path):
        twin_a, twin_b = tmp_path / "a", tmp_path / "b"
        run_uninterrupted(twin_a)
        _, _, manager = run_until_killed(
            twin_b, tmp_path / "ckpt", kill_after=12, every=3
        )
        newest = manager.checkpoints()[-1]
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 3])  # torn mid-write
        resumed = CheckpointManager(tmp_path / "ckpt").latest_valid()
        assert resumed is not None
        path, state = resumed
        assert path != newest, "fallback should skip the torn file"
        assert state["rounds_completed"] == 9
        resume_and_finish(twin_b, tmp_path / "ckpt")
        assert content_sha(twin_a) == content_sha(twin_b)

    def test_all_checkpoints_torn_is_a_loud_failure(self, tmp_path):
        _, _, manager = run_until_killed(
            tmp_path / "b", tmp_path / "ckpt", kill_after=6, every=3
        )
        for path in manager.checkpoints():
            path.write_bytes(b"REPROCKPT garbage")
        assert CheckpointManager(tmp_path / "ckpt").latest_valid() is None


class TestKillMidRotation:
    def test_stale_manifest_with_full_unsealed_segment(self, tmp_path):
        twin_a, twin_b = tmp_path / "a", tmp_path / "b"
        run_uninterrupted(twin_a)
        _, store, _ = run_until_killed(twin_b, tmp_path / "ckpt", kill_after=11)
        # Regress the manifest to before the last sealing, as if the
        # crash struck after the segment filled but before the manifest
        # rename landed.
        assert store.sealed_segments, "scenario needs at least one sealed segment"
        import json

        manifest = json.loads((twin_b / "manifest.json").read_text())
        manifest["segments"] = manifest["segments"][:-1]
        (twin_b / "manifest.json").write_text(json.dumps(manifest))
        resume_and_finish(twin_b, tmp_path / "ckpt")
        assert content_sha(twin_a) == content_sha(twin_b)


class TestKillMidLine:
    def test_torn_trace_tail_is_truncated_and_replayed(self, tmp_path):
        twin_a, twin_b = tmp_path / "a", tmp_path / "b"
        run_uninterrupted(twin_a)
        _, store, _ = run_until_killed(twin_b, tmp_path / "ckpt", kill_after=11)
        active = twin_b / f"seg-{store._active_index:08d}.jsonl"
        with open(active, "ab") as fh:
            fh.write(b'{"time": 1e9, "peer_ip":')  # half a record
        resume_and_finish(twin_b, tmp_path / "ckpt")
        assert content_sha(twin_a) == content_sha(twin_b)


class TestResumeDeterminism:
    def test_resuming_twice_consumes_identical_draws(self, tmp_path):
        import shutil

        run_until_killed(tmp_path / "b", tmp_path / "ckpt", kill_after=10)
        counter = [0]

        def resume_copy() -> str:
            counter[0] += 1
            trace = tmp_path / f"copy{counter[0]}"
            ckpt = tmp_path / f"copyckpt{counter[0]}"
            shutil.copytree(tmp_path / "b", trace)
            shutil.copytree(tmp_path / "ckpt", ckpt)
            resume_and_finish(trace, ckpt)
            return content_sha(trace)

        outcomes = assert_identical_draws(resume_copy)
        assert len({digest for digest, _ in outcomes}) == 1


class TestRunCampaign:
    def test_resume_without_checkpoint_raises(self, tmp_path):
        with pytest.raises(CheckpointError):
            run_campaign(tmp_path / "t", days=0.01, resume=True)

    def test_campaign_resume_extends_to_twin_equivalence(self, tmp_path):
        kwargs = dict(
            base_concurrency=BASE,
            seed=SEED,
            with_flash_crowd=False,
            checkpoint_every_rounds=3,
            records_per_segment=SEGMENT_RECORDS,
        )
        days = TOTAL_ROUNDS * ROUND / 86_400.0
        twin = run_campaign(tmp_path / "a", days=days, **kwargs)

        # Interrupted campaign: drive the same components manually,
        # abandon mid-run, then hand the wreckage to --resume.
        run_until_killed(tmp_path / "b", tmp_path / "b" / "checkpoints",
                         kill_after=11)
        resumed = run_campaign(
            tmp_path / "b", days=days, resume=True, **kwargs
        )
        assert resumed.resumed_from_round == 9
        assert resumed.rounds_completed == twin.rounds_completed
        assert resumed.trace_records == twin.trace_records
        assert content_sha(tmp_path / "a") == content_sha(tmp_path / "b")

    def test_checkpoint_config_mismatch_fails_loudly(self, tmp_path):
        run_until_killed(tmp_path / "b", tmp_path / "ckpt", kill_after=6)
        manager = CheckpointManager(tmp_path / "ckpt")
        _, state = manager.latest_valid()
        store = SegmentedTraceStore.recover(tmp_path / "b")
        other = UUSeeSystem(
            SystemConfig(seed=SEED + 1, base_concurrency=BASE, flash_crowd=None),
            store,
        )
        with pytest.raises(CheckpointError, match="different configuration"):
            restore_into(other, state)
        store.close()


class TestCheckpointEnvelope:
    def test_rotation_keeps_last_k(self, tmp_path):
        _, _, manager = run_until_killed(
            tmp_path / "b", tmp_path / "ckpt", kill_after=15, every=3
        )
        names = [p.name for p in manager.checkpoints()]
        assert names == [
            "ckpt-0000000009.bin",
            "ckpt-0000000012.bin",
            "ckpt-0000000015.bin",
        ]

    def test_envelope_validates_checksum_and_length(self, tmp_path):
        from repro.simulator.checkpoint import (
            CheckpointCorruptError,
            save_checkpoint,
        )

        path = tmp_path / "ckpt.bin"
        save_checkpoint(path, {"config_token": "x", "clock": (0.0, 0, 0)})
        assert load_checkpoint(path)["config_token"] == "x"
        blob = bytearray(path.read_bytes())
        blob[-1] ^= 0xFF  # flip one payload bit
        path.write_bytes(bytes(blob))
        with pytest.raises(CheckpointCorruptError, match="checksum"):
            load_checkpoint(path)
        path.write_bytes(bytes(blob[:-4]))
        with pytest.raises(CheckpointCorruptError, match="torn"):
            load_checkpoint(path)
        path.write_bytes(b"not a checkpoint at all")
        with pytest.raises(CheckpointCorruptError):
            load_checkpoint(path)


class TestCorruptSkipAccounting:
    """Skipped torn envelopes are observable, not silent (satellite 3)."""

    def test_latest_valid_counts_and_reports_skipped_envelopes(self, tmp_path):
        from repro.obs import Observer

        _, _, manager = run_until_killed(
            tmp_path / "b", tmp_path / "ckpt", kill_after=12, every=3
        )
        newest = manager.checkpoints()[-1]
        blob = newest.read_bytes()
        newest.write_bytes(blob[: len(blob) // 3])  # torn mid-write

        obs = Observer()
        reloaded = CheckpointManager(tmp_path / "ckpt", obs=obs)
        found = reloaded.latest_valid()
        assert found is not None
        assert reloaded.corrupt_skipped == 1
        assert obs.registry.counter("checkpoint.corrupt_skipped").value == 1

    def test_clean_resume_counts_nothing(self, tmp_path):
        from repro.obs import Observer

        _, _, _ = run_until_killed(
            tmp_path / "b", tmp_path / "ckpt", kill_after=6, every=3
        )
        obs = Observer()
        reloaded = CheckpointManager(tmp_path / "ckpt", obs=obs)
        assert reloaded.latest_valid() is not None
        assert reloaded.corrupt_skipped == 0
        assert obs.registry.counter("checkpoint.corrupt_skipped").value == 0
