"""Integration tests for the full UUSee system on short runs."""

import statistics

import pytest

from repro.network import build_default_database
from repro.simulator import SystemConfig, UUSeeSystem
from repro.simulator.protocol import ProtocolConfig
from repro.traces import InMemoryTraceStore
from repro.workloads import FlashCrowdEvent


def run_system(**overrides):
    defaults = {"seed": 7, "base_concurrency": 200.0, "flash_crowd": None}
    defaults.update(overrides)
    hours = defaults.pop("hours", 6)
    config = SystemConfig(**defaults)
    store = InMemoryTraceStore()
    system = UUSeeSystem(config, store)
    system.run(seconds=hours * 3600)
    return system, store


class TestSystemRun:
    def test_concurrency_tracks_target(self):
        system, _ = run_system(hours=8)
        target = system.config.population().target(system.engine.now)
        assert system.concurrent_peers() == pytest.approx(target, rel=0.45)
        assert system.concurrent_peers() > 50

    def test_deterministic_given_seed(self):
        a, store_a = run_system(hours=3)
        b, store_b = run_system(hours=3)
        assert a.total_arrivals == b.total_arrivals
        assert len(store_a.reports) == len(store_b.reports)
        assert [r.peer_ip for r in store_a.reports[:50]] == [
            r.peer_ip for r in store_b.reports[:50]
        ]

    def test_different_seeds_differ(self):
        a, _ = run_system(hours=2)
        b, _ = run_system(hours=2, seed=8)
        assert a.total_arrivals != b.total_arrivals

    def test_stable_peers_subset_of_concurrent(self):
        system, _ = run_system(hours=6)
        assert 0 < system.stable_peers() < system.concurrent_peers()

    def test_stable_fraction_near_one_third(self):
        # Fig. 1(A): stable reporting peers ~1/3 of all concurrent peers.
        system, _ = run_system(hours=10, base_concurrency=300.0)
        ratio = system.stable_peers() / system.concurrent_peers()
        assert 0.18 <= ratio <= 0.55

    def test_reports_only_from_old_enough_peers(self):
        system, store = run_system(hours=4)
        first_delay = system.config.protocol.first_report_delay_s
        interval = system.config.protocol.report_interval_s
        # Every reported peer IP joined at least first_delay before its
        # report time (report times land on join + 20min + k*10min).
        assert store.reports
        for report in store.reports[:200]:
            assert report.time >= first_delay

    def test_servers_never_report_but_appear_as_partners(self):
        system, store = run_system(hours=6)
        server_ips = {
            p.ip for p in system.peers.values() if p.is_server
        }
        reporter_ips = {r.peer_ip for r in store.reports}
        assert not (server_ips & reporter_ips)
        partner_ips = {
            p.ip for r in store.reports for p in r.partners
        }
        assert server_ips & partner_ips  # someone partnered a server

    def test_channel_shares_respected(self):
        system, _ = run_system(hours=6, base_concurrency=400.0)
        cctv1 = system.peers_in_channel(0)
        cctv4 = system.peers_in_channel(1)
        total = system.concurrent_peers()
        assert cctv1 / total == pytest.approx(0.30, abs=0.08)
        assert cctv1 > 2.5 * cctv4

    def test_isp_mix_matches_registry(self):
        system, _ = run_system(hours=4, base_concurrency=400.0)
        db = build_default_database()
        isps = [p.isp for p in system.peers.values() if not p.is_server]
        telecom = isps.count("China Telecom") / len(isps)
        assert telecom == pytest.approx(0.42, abs=0.08)
        # every viewer IP maps back to its ISP through the database
        for p in list(system.peers.values())[:100]:
            if not p.is_server:
                assert db.lookup(p.ip) == p.isp

    def test_streaming_quality_reasonable(self):
        system, _ = run_system(hours=10, base_concurrency=300.0)
        now = system.engine.now
        stable = [
            p
            for p in system.peers.values()
            if not p.is_server and p.age(now) >= 1200
        ]
        satisfied = sum(1 for p in stable if p.recv_rate_kbps >= 0.9 * 400)
        assert satisfied / len(stable) > 0.55

    def test_flash_crowd_grows_population(self):
        ev = FlashCrowdEvent(
            start=3 * 3600.0, ramp_seconds=1200, hold_seconds=7200, magnitude=2.0
        )
        system, _ = run_system(hours=5, flash_crowd=ev, base_concurrency=150.0)
        in_crowd = system.concurrent_peers()
        baseline, _ = run_system(hours=5, base_concurrency=150.0)
        assert in_crowd > 1.4 * baseline.concurrent_peers()

    def test_run_argument_validation(self):
        system, _ = run_system(hours=1)
        with pytest.raises(ValueError):
            system.run()
        with pytest.raises(ValueError):
            system.run(seconds=10, days=1)

    def test_indegree_below_emergent_ceiling(self):
        system, store = run_system(hours=8, base_concurrency=300.0)
        ceiling = system.config.protocol.indegree_ceiling(400.0)
        recent = [r for r in store.reports if r.time > system.engine.now - 600]
        for report in recent:
            assert len(report.active_suppliers()) <= ceiling + 2

    def test_mean_active_indegree_near_ten(self):
        system, store = run_system(hours=8, base_concurrency=300.0)
        recent = [r for r in store.reports if r.time > system.engine.now - 600]
        indegrees = [len(r.active_suppliers()) for r in recent]
        assert 6 <= statistics.mean(indegrees) <= 16

    def test_trace_loss_drops_reports(self):
        lossy, lossy_store = run_system(hours=4, trace_loss_rate=0.5)
        clean, clean_store = run_system(hours=4, trace_loss_rate=0.0)
        assert lossy.trace_server.dropped > 0
        assert clean.trace_server.dropped == 0
        assert len(lossy_store.reports) < len(clean_store.reports)

    def test_custom_protocol_config(self):
        protocol = ProtocolConfig(round_seconds=300.0)
        system, store = run_system(hours=3, protocol=protocol)
        assert len(system.round_stats) == 3 * 3600 / 300
