"""Behavioural tests for the exchange engine on handcrafted scenarios."""

import pytest

from repro.network.latency import LatencyModel
from repro.simulator.channel import Channel, ChannelCatalogue
from repro.simulator.exchange import ExchangeEngine
from repro.simulator.peer import Peer
from repro.simulator.protocol import ProtocolConfig, SelectionPolicy
from repro.simulator.tracker import Tracker

RATE = 400.0


def make_world(policy=SelectionPolicy.UUSEE, config=None, seed=0):
    peers = {}
    catalogue = ChannelCatalogue([Channel(0, "CH", RATE, 1.0)])
    tracker = Tracker(seed=seed, server_probability=0.0)
    engine = ExchangeEngine(
        peers=peers,
        catalogue=catalogue,
        tracker=tracker,
        latency=LatencyModel(seed=seed),
        config=config or ProtocolConfig(),
        policy=policy,
        seed=seed,
    )
    return peers, tracker, engine


def make_peer(
    peers,
    peer_id,
    *,
    isp="China Telecom",
    upload=800.0,
    is_server=False,
    health=1.0,
    join=0.0,
):
    peer = Peer(
        peer_id,
        ip=10_000 + peer_id,
        isp=isp,
        is_china=True,
        channel_id=0,
        upload_kbps=upload,
        download_kbps=4_000.0,
        class_name="server" if is_server else "cable",
        join_time=join,
        depart_time=float("inf"),
        is_server=is_server,
    )
    peer.health = health
    peers[peer_id] = peer
    return peer


class TestConnect:
    def test_mutual_links(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        assert ex.connect(a, b, now=0.0)
        assert 2 in a.partners and 1 in b.partners
        assert a.partners[2].partner_ip == b.ip
        assert b.partners[1].partner_ip == a.ip
        assert a.partners[2].rtt_ms == b.partners[1].rtt_ms

    def test_duplicate_and_self_refused(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        assert ex.connect(a, b, 0.0)
        assert not ex.connect(a, b, 0.0)
        assert not ex.connect(a, a, 0.0)

    def test_full_partner_list_refused(self):
        config = ProtocolConfig(max_partners=2)
        peers, _, ex = make_world(config=config)
        a = make_peer(peers, 1)
        others = [make_peer(peers, i) for i in range(2, 6)]
        assert ex.connect(a, others[0], 0.0)
        assert ex.connect(a, others[1], 0.0)
        assert not ex.connect(a, others[2], 0.0)  # a is full
        # servers accept beyond the normal cap
        server = make_peer(peers, 99, is_server=True)
        b = others[2]
        for o in others:
            if o is not b:
                ex.connect(b, o, 0.0)
        assert ex.connect(b, server, 0.0) or len(b.partners) >= 2

    def test_initial_estimate_clamped_to_request_cap(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        ex.connect(a, b, 0.0)
        cap = ex.config.request_cap_kbps(RATE)
        assert a.partners[2].est_kbps <= cap

    def test_disconnect_both_ends(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        ex.connect(a, b, 0.0)
        a.suppliers.add(2)
        ex.disconnect(a, 2)
        assert 2 not in a.partners and 2 not in a.suppliers
        assert 1 not in b.partners


class TestSelection:
    def test_greedy_selects_until_demand(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        for i in range(2, 40):
            ex.connect(a, make_peer(peers, i), 0.0)
        ex.select_suppliers(a)
        assert 8 <= len(a.suppliers) <= ex.config.max_active_suppliers

    def test_server_never_selects(self):
        peers, _, ex = make_world()
        s = make_peer(peers, 1, is_server=True)
        ex.connect(s, make_peer(peers, 2), 0.0)
        ex.select_suppliers(s)
        assert s.suppliers == set()

    def test_tree_policy_only_uses_closer_peers(self):
        peers, _, ex = make_world(policy=SelectionPolicy.TREE)
        a = make_peer(peers, 1)
        a.depth = 3
        closer = make_peer(peers, 2)
        closer.depth = 2
        farther = make_peer(peers, 3)
        farther.depth = 5
        ex.connect(a, closer, 0.0)
        ex.connect(a, farther, 0.0)
        ex.select_suppliers(a)
        assert 2 in a.suppliers
        assert 3 not in a.suppliers

    def test_random_policy_still_selects(self):
        peers, _, ex = make_world(policy=SelectionPolicy.RANDOM)
        a = make_peer(peers, 1)
        for i in range(2, 30):
            ex.connect(a, make_peer(peers, i), 0.0)
        ex.select_suppliers(a)
        assert len(a.suppliers) >= 8

    def test_reciprocation_bonus_prefers_mutual(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)  # b already receives from a
        c = make_peer(peers, 3)
        ex.connect(a, b, 0.0)
        ex.connect(a, c, 0.0)
        # force identical link quality so only the bonus differs
        for link in (a.partners[2], a.partners[3]):
            link.est_kbps = 50.0
            link.rtt_ms = 30.0
        b.suppliers.add(1)
        score_b = ex._candidate_score(a, 2, a.partners[2])
        score_c = ex._candidate_score(a, 3, a.partners[3])
        assert score_b > score_c

    def test_refine_drops_dead_and_weak(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        weak = make_peer(peers, 2)
        ex.connect(a, weak, 0.0)
        a.suppliers = {2, 777}  # 777 never existed
        a.partners[2].est_kbps = 1.0  # below min useful
        # plenty of healthy suppliers so the weak one is not re-added
        for i in range(3, 20):
            ex.connect(a, make_peer(peers, i), 0.0)
            a.partners[i].est_kbps = 60.0
            a.suppliers.add(i)
        ex.refine_suppliers(a)
        assert 777 not in a.suppliers
        assert 2 not in a.suppliers

    def test_refine_adds_when_underprovisioned(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        for i in range(2, 20):
            ex.connect(a, make_peer(peers, i), 0.0)
        a.suppliers = set()
        ex.refine_suppliers(a, sample_size=30)
        assert len(a.suppliers) > 0


class TestRound:
    def test_single_transfer_accounting(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2, upload=10_000.0)
        ex.connect(a, b, 0.0)
        a.suppliers = {2}
        stats = ex.run_round(0.0, 600.0)
        link = a.partners[2]
        assert link.recv_segments > 0
        assert b.partners[1].sent_segments == pytest.approx(link.recv_segments)
        assert a.recv_rate_kbps > 0
        assert b.sent_rate_kbps == pytest.approx(a.recv_rate_kbps)
        assert stats.viewers == 2  # both non-servers
        assert a.health > 0.0

    def test_supplier_capacity_respected(self):
        peers, _, ex = make_world()
        supplier = make_peer(peers, 1, upload=100.0, health=1.0)
        receivers = [make_peer(peers, i) for i in range(2, 8)]
        for r in receivers:
            ex.connect(r, supplier, 0.0)
            r.suppliers = {1}
        ex.run_round(0.0, 600.0)
        assert supplier.sent_rate_kbps <= 100.0 + 1e-6
        total_recv = sum(r.recv_rate_kbps for r in receivers)
        assert total_recv == pytest.approx(supplier.sent_rate_kbps)

    def test_unhealthy_supplier_serves_less(self):
        peers, _, ex = make_world()
        healthy = make_peer(peers, 1, upload=400.0, health=1.0)
        sick = make_peer(peers, 2, upload=400.0, health=0.0)
        ra = make_peer(peers, 3)
        rb = make_peer(peers, 4)
        for r, s in ((ra, healthy), (rb, sick)):
            ex.connect(r, s, 0.0)
            r.suppliers = {s.peer_id}
            # saturate so capacity binds
            for i in range(5):
                extra = make_peer(peers, 100 + s.peer_id * 10 + i)
                ex.connect(extra, s, 0.0)
                extra.suppliers = {s.peer_id}
        ex.run_round(0.0, 600.0)
        assert sick.sent_rate_kbps < healthy.sent_rate_kbps

    def test_demand_converges_to_stream_rate_surplus(self):
        # With fresh (conservative) link estimates a peer over-requests for
        # a round or two; once estimates converge, its intake settles at
        # the demand level, not at the sum of all suppliers' capacity.
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        for i in range(2, 30):
            s = make_peer(peers, i, upload=10_000.0)
            ex.connect(a, s, 0.0)
            a.suppliers.add(i)
        for r in range(4):
            ex.run_round(r * 600.0, 600.0)
        assert a.recv_rate_kbps <= ex.config.demand_kbps(RATE) * 1.1

    def test_health_converges_when_supplied(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1, health=0.0)
        for i in range(2, 14):
            s = make_peer(peers, i, upload=5_000.0)
            ex.connect(a, s, 0.0)
            a.suppliers.add(i)
        for r in range(12):
            ex.run_round(r * 600.0, 600.0)
        assert a.health > 0.9
        assert a.buffer_fill > 0.5

    def test_depth_propagates_from_server(self):
        peers, _, ex = make_world()
        server = make_peer(peers, 1, is_server=True, upload=50_000.0)
        mid = make_peer(peers, 2)
        leaf = make_peer(peers, 3)
        ex.connect(mid, server, 0.0)
        ex.connect(leaf, mid, 0.0)
        mid.suppliers = {1}
        leaf.suppliers = {2}
        ex.run_round(0.0, 600.0)
        assert mid.depth == 1
        assert leaf.depth == 2

    def test_dead_supplier_dropped_in_round(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        a.suppliers = {42}  # never existed
        ex.run_round(0.0, 600.0)
        assert a.suppliers == set()


class TestMaintenance:
    def test_gossip_adds_partner_of_partner(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        c = make_peer(peers, 3)
        ex.connect(a, b, 0.0)
        ex.connect(b, c, 0.0)
        ex._gossip(a, 10.0)
        assert 3 in a.partners  # triadic closure

    def test_prune_idle_partners(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        ex.connect(a, b, 0.0)
        idle_deadline = 1.5 * ex.config.report_interval_s + 1
        ex._prune_idle_partners(a, idle_deadline)
        assert 2 not in a.partners
        assert 1 not in b.partners

    def test_active_suppliers_not_pruned(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        ex.connect(a, b, 0.0)
        a.suppliers = {2}
        ex._prune_idle_partners(a, 10_000.0)
        assert 2 in a.partners

    def test_clean_dead_partners(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        ex.connect(a, b, 0.0)
        del peers[2]
        ex._clean_dead_partners(a)
        assert a.partner_count == 0

    def test_volunteering_tracks_spare_capacity(self):
        peers, tracker, ex = make_world()
        a = make_peer(peers, 1, upload=1_000.0)
        a.sent_rate_kbps = 0.0
        ex._update_volunteering(a)
        assert a.volunteered and tracker.volunteer_count(0) == 1
        a.sent_rate_kbps = 990.0  # saturated now
        ex._update_volunteering(a)
        assert not a.volunteered and tracker.volunteer_count(0) == 0

    def test_starvation_triggers_tracker_refresh(self):
        peers, tracker, ex = make_world()
        helper = make_peer(peers, 9)
        tracker.register(0, 9)
        tracker.volunteer(0, 9)
        a = make_peer(peers, 1, health=0.1)
        a.registered = True  # admitted normally; starvation should refresh
        before = tracker.refresh_requests
        for _ in range(ex.config.starvation_ticks):
            ex._starvation_check(a)
        assert tracker.refresh_requests == before + 1
        assert 9 in a.partners

    def test_estimate_recovery_drifts_upward(self):
        peers, _, ex = make_world()
        a = make_peer(peers, 1)
        b = make_peer(peers, 2)
        ex.connect(a, b, 0.0)
        link = a.partners[2]
        link.est_kbps = 5.0
        ex._recover_estimates(a)
        assert link.est_kbps > 5.0
        target = min(
            ex.config.request_cap_kbps(RATE), 0.7 * link.cap_kbps
        )
        for _ in range(100):
            ex._recover_estimates(a)
        assert link.est_kbps <= target + 1e-6
