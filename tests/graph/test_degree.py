"""Unit tests for degree distributions and power-law diagnostics."""

import math
import random

import pytest

from repro.graph import DiGraph, DegreeDistribution, degree_distribution, powerlaw_fit
from repro.graph.degree import degrees_of


def star_digraph(n_leaves):
    """Hub 0 points at every leaf."""
    return DiGraph([(0, i) for i in range(1, n_leaves + 1)])


class TestDegreesOf:
    def test_in_out_total(self):
        g = DiGraph([(1, 2), (2, 1), (3, 1)])
        assert degrees_of(g, "in", [1]) == [2]
        assert degrees_of(g, "out", [1]) == [1]
        assert degrees_of(g, "total", [1]) == [2]  # union of {2} and {2,3}

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            degrees_of(DiGraph(), "sideways")

    def test_restricted_node_set(self):
        g = star_digraph(4)
        assert degrees_of(g, "out", [0]) == [4]
        assert degrees_of(g, "out", [1, 2]) == [0, 0]


class TestDegreeDistribution:
    def test_from_degrees(self):
        d = DegreeDistribution.from_degrees([1, 1, 2, 3, 3, 3])
        assert d.num_peers == 6
        assert d.fraction(3) == pytest.approx(0.5)
        assert d.fraction(99) == 0.0

    def test_pmf_sums_to_one(self):
        d = DegreeDistribution.from_degrees([0, 1, 1, 5, 5, 5, 9])
        assert sum(f for _, f in d.pmf()) == pytest.approx(1.0)

    def test_ccdf_monotone(self):
        d = DegreeDistribution.from_degrees([1, 2, 2, 3, 7])
        ccdf = d.ccdf()
        assert ccdf[0] == (1, 1.0)
        values = [f for _, f in ccdf]
        assert values == sorted(values, reverse=True)

    def test_mean_and_max(self):
        d = DegreeDistribution.from_degrees([2, 4, 6])
        assert d.mean() == pytest.approx(4.0)
        assert d.max_degree() == 6

    def test_mode_ignores_below_min_degree(self):
        d = DegreeDistribution.from_degrees([0] * 10 + [5] * 4 + [7] * 2)
        assert d.mode(min_degree=1) == 5
        assert d.mode(min_degree=6) == 7

    def test_quantile(self):
        d = DegreeDistribution.from_degrees([1, 2, 3, 4])
        assert d.quantile(0.25) == 1
        assert d.quantile(0.5) == 2
        assert d.quantile(1.0) == 4
        with pytest.raises(ValueError):
            d.quantile(1.5)

    def test_drop_point(self):
        degrees = [10] * 500 + [23] * 10 + [40] * 1
        d = DegreeDistribution.from_degrees(degrees)
        assert d.drop_point(fraction_floor=5e-3) == 23

    def test_empty(self):
        d = DegreeDistribution.from_degrees([])
        assert d.num_peers == 0
        assert d.pmf() == []
        assert d.mean() == 0.0
        assert d.mode() == 0

    def test_degree_distribution_of_graph(self):
        g = star_digraph(5)
        dist = degree_distribution(g, "total")
        assert dist.fraction(5) == pytest.approx(1 / 6)
        assert dist.fraction(1) == pytest.approx(5 / 6)


class TestPowerLawFit:
    def test_synthetic_powerlaw_detected(self):
        # P(d) ~ d^-2 for d in 1..100, sampled exactly (no noise).
        weights = {d: d**-2.0 for d in range(1, 101)}
        total = sum(weights.values())
        counts = {d: max(1, round(1_000_000 * w / total)) for d, w in weights.items()}
        degrees = [d for d, c in counts.items() for _ in range(c)]
        fit = powerlaw_fit(DegreeDistribution.from_degrees(degrees))
        assert fit.exponent == pytest.approx(-2.0, abs=0.1)
        assert fit.is_plausible_powerlaw

    def test_spiked_distribution_rejected(self):
        # A normal-ish spike around 10 (like UUSee indegree) is not a power law.
        rng = random.Random(0)
        degrees = [max(1, round(rng.gauss(10, 2))) for _ in range(20000)]
        fit = powerlaw_fit(DegreeDistribution.from_degrees(degrees))
        assert not fit.is_plausible_powerlaw

    def test_degenerate_inputs(self):
        assert powerlaw_fit(DegreeDistribution.from_degrees([])).num_points == 0
        single = powerlaw_fit(DegreeDistribution.from_degrees([3, 3, 3]))
        assert single.num_points == 1
        assert not single.is_plausible_powerlaw

    def test_fit_intercept_consistency(self):
        weights = {d: d**-1.5 for d in range(1, 51)}
        total = sum(weights.values())
        counts = {d: max(1, round(500_000 * w / total)) for d, w in weights.items()}
        degrees = [d for d, c in counts.items() for _ in range(c)]
        fit = powerlaw_fit(DegreeDistribution.from_degrees(degrees))
        # Reconstruct P(1) from the fit: log10 P(1) = intercept.
        dist = DegreeDistribution.from_degrees(degrees)
        assert fit.intercept == pytest.approx(math.log10(dist.fraction(1)), abs=0.2)


class TestMlePowerLaw:
    def test_recovers_known_exponent(self):
        from repro.graph.degree import mle_powerlaw_alpha
        import random

        rng = random.Random(0)
        # floored continuous Pareto with exponent 2.5; the discrete MLE
        # converges to the true exponent once x_min clears the
        # discretisation bias near 1
        degrees = []
        while len(degrees) < 40000:
            x = int((1.0 - rng.random()) ** (-1.0 / (2.5 - 1.0)))
            if 1 <= x <= 10_000:
                degrees.append(x)
        dist = DegreeDistribution.from_degrees(degrees)
        alpha, n = mle_powerlaw_alpha(dist, min_degree=5)
        assert n > 2000
        assert alpha == pytest.approx(2.5, abs=0.2)

    def test_degenerate_inputs(self):
        from repro.graph.degree import mle_powerlaw_alpha

        alpha, n = mle_powerlaw_alpha(DegreeDistribution.from_degrees([]))
        assert (alpha, n) == (0.0, 0)
        alpha, n = mle_powerlaw_alpha(DegreeDistribution.from_degrees([5]))
        assert alpha == 0.0 and n == 1

    def test_min_degree_restricts_tail(self):
        from repro.graph.degree import mle_powerlaw_alpha

        degrees = [1] * 1000 + [10, 20, 40, 80]
        full_alpha, _ = mle_powerlaw_alpha(DegreeDistribution.from_degrees(degrees))
        tail_alpha, tail_n = mle_powerlaw_alpha(
            DegreeDistribution.from_degrees(degrees), min_degree=10
        )
        assert tail_n == 4
        assert tail_alpha != full_alpha

    def test_spiked_distribution_shallow_alpha(self):
        from repro.graph.degree import mle_powerlaw_alpha
        import random

        rng = random.Random(1)
        degrees = [max(1, round(rng.gauss(10, 2))) for _ in range(20000)]
        alpha, _ = mle_powerlaw_alpha(DegreeDistribution.from_degrees(degrees))
        # a spike at 10 yields a shallow pseudo-exponent, nothing like
        # the >2 of genuine power-law topologies
        assert alpha < 2.0
