"""Unit tests for BFS, components and path-length estimation."""

import pytest

from repro.graph import (
    Graph,
    average_shortest_path_length,
    bfs_distances,
    connected_components,
    largest_component,
)


def path_graph(n):
    g = Graph()
    for i in range(n - 1):
        g.add_edge(i, i + 1)
    return g


class TestBfs:
    def test_path_distances(self):
        g = path_graph(5)
        dist = bfs_distances(g, 0)
        assert dist == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4}

    def test_unreachable_not_included(self):
        g = Graph([(1, 2)])
        g.add_node(3)
        assert 3 not in bfs_distances(g, 1)

    def test_cycle(self):
        g = Graph([(0, 1), (1, 2), (2, 3), (3, 0)])
        dist = bfs_distances(g, 0)
        assert dist[2] == 2
        assert dist[1] == dist[3] == 1


class TestComponents:
    def test_single_component(self):
        g = path_graph(4)
        comps = connected_components(g)
        assert len(comps) == 1
        assert comps[0] == {0, 1, 2, 3}

    def test_multiple_components_sorted_by_size(self):
        g = Graph([(0, 1), (1, 2), (10, 11)])
        g.add_node(99)
        comps = connected_components(g)
        assert [len(c) for c in comps] == [3, 2, 1]

    def test_largest_component_subgraph(self):
        g = Graph([(0, 1), (1, 2), (10, 11)])
        lcc = largest_component(g)
        assert lcc.num_nodes == 3
        assert lcc.has_edge(0, 1)

    def test_empty_graph(self):
        assert connected_components(Graph()) == []
        assert largest_component(Graph()).num_nodes == 0


class TestAveragePathLength:
    def test_path_graph_exact(self):
        # P4 distances: 1,2,3,1,2,1 -> mean 10/6
        g = path_graph(4)
        assert average_shortest_path_length(g) == pytest.approx(10 / 6)

    def test_complete_graph(self):
        g = Graph()
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(i, j)
        assert average_shortest_path_length(g) == pytest.approx(1.0)

    def test_restricted_to_largest_component(self):
        g = Graph([(0, 1), (10, 11), (11, 12)])
        # largest component is the path 10-11-12: mean = (1+2+1)/3
        assert average_shortest_path_length(g) == pytest.approx(4 / 3)

    def test_trivial_graphs(self):
        assert average_shortest_path_length(Graph()) == 0.0
        g = Graph()
        g.add_node(1)
        assert average_shortest_path_length(g) == 0.0

    def test_sampled_estimate_close_to_exact(self):
        import random

        rng = random.Random(7)
        g = Graph()
        for _ in range(600):
            u, v = rng.randrange(120), rng.randrange(120)
            if u != v:
                g.add_edge(u, v)
        exact = average_shortest_path_length(g)
        sampled = average_shortest_path_length(g, sample_sources=40, seed=3)
        assert sampled == pytest.approx(exact, rel=0.15)

    def test_sampling_is_deterministic(self):
        g = path_graph(50)
        a = average_shortest_path_length(g, sample_sources=10, seed=5)
        b = average_shortest_path_length(g, sample_sources=10, seed=5)
        assert a == b

    def test_exact_below_threshold_ignores_sampling(self):
        # A component smaller than exact_below is measured exactly even
        # when sample_sources would otherwise subsample it.
        g = path_graph(20)
        exact = average_shortest_path_length(g)
        gated = average_shortest_path_length(
            g, sample_sources=4, seed=9, exact_below=64
        )
        assert gated == exact

    def test_sampling_applies_at_or_above_threshold(self):
        g = path_graph(64)
        exact = average_shortest_path_length(g)
        sampled = average_shortest_path_length(
            g, sample_sources=8, seed=2, exact_below=64
        )
        assert sampled == pytest.approx(exact, rel=0.5)
        # with enough sources to cover the component, sampling is a no-op
        full = average_shortest_path_length(
            g, sample_sources=64, seed=2, exact_below=64
        )
        assert full == exact


class TestEdgeCases:
    def test_bfs_single_node(self):
        g = Graph()
        g.add_node("only")
        assert bfs_distances(g, "only") == {"only": 0}

    def test_bfs_source_not_in_graph(self):
        g = path_graph(3)
        with pytest.raises(KeyError, match="no node 99"):
            bfs_distances(g, 99)

    def test_bfs_source_missing_from_empty_graph(self):
        with pytest.raises(KeyError):
            bfs_distances(Graph(), "ghost")

    def test_bfs_fully_disconnected(self):
        g = Graph()
        for i in range(4):
            g.add_node(i)
        assert bfs_distances(g, 2) == {2: 0}

    def test_components_all_isolated(self):
        g = Graph()
        for i in range(3):
            g.add_node(i)
        comps = connected_components(g)
        assert sorted(map(tuple, comps)) == [(0,), (1,), (2,)]

    def test_largest_component_tie_prefers_first(self):
        g = Graph([(0, 1), (2, 3)])
        lcc = largest_component(g)
        assert lcc.num_nodes == 2

    def test_apl_disconnected_pairs_excluded(self):
        # two K2 components: every measured pair is adjacent
        g = Graph([(0, 1), (2, 3)])
        assert average_shortest_path_length(g) == pytest.approx(1.0)

    def test_works_on_frozen_input(self):
        g = path_graph(6)
        c = g.freeze()
        assert bfs_distances(c, 0) == bfs_distances(g, 0)
        assert connected_components(c) == connected_components(g)
        assert average_shortest_path_length(
            c
        ) == average_shortest_path_length(g)
