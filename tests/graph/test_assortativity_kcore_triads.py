"""Unit and property tests for assortativity, k-cores and triads."""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    DiGraph,
    Graph,
    attribute_mixing,
    core_numbers,
    degeneracy,
    degree_assortativity,
    dyad_census,
    k_core,
    triangle_census,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
    max_size=80,
)


class TestDegreeAssortativity:
    def test_star_is_disassortative(self):
        g = Graph([(0, i) for i in range(1, 8)])
        assert degree_assortativity(g) < 0

    def test_disjoint_cliques_regular_zero(self):
        g = Graph()
        for base in (0, 10):
            for i in range(4):
                for j in range(i + 1, 4):
                    g.add_edge(base + i, base + j)
        # regular graph: zero degree variance -> 0 by convention
        assert degree_assortativity(g) == 0.0

    def test_tiny_graph_zero(self):
        assert degree_assortativity(Graph([(1, 2)])) == 0.0

    @given(edge_lists)
    def test_matches_networkx(self, edges):
        ours = Graph()
        theirs = nx.Graph()
        for u, v in edges:
            ours.add_edge(u, v)
            theirs.add_edge(u, v)
        if theirs.number_of_edges() < 2:
            return
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ref = nx.degree_assortativity_coefficient(theirs)
        mine = degree_assortativity(ours)
        if ref != ref:  # NaN (zero variance)
            assert mine == 0.0
        else:
            assert mine == pytest.approx(ref, abs=1e-9)


class TestAttributeMixing:
    def test_perfectly_assortative(self):
        g = Graph([(1, 2), (3, 4)])
        groups = {1: "a", 2: "a", 3: "b", 4: "b"}
        assert attribute_mixing(g, groups.get) == pytest.approx(1.0)

    def test_perfectly_disassortative(self):
        g = Graph([(1, 2), (3, 4)])
        groups = {1: "a", 2: "b", 3: "b", 4: "a"}
        assert attribute_mixing(g, groups.get) < 0

    def test_none_attributes_skipped(self):
        g = Graph([(1, 2), (3, 4), (4, 5)])
        groups = {1: "a", 2: "a", 3: "b", 4: "b"}  # 5 unmapped
        # only the two mapped edges count; both are within-group
        assert attribute_mixing(g, groups.get) == pytest.approx(1.0)

    def test_single_category_zero(self):
        g = Graph([(1, 2)])
        assert attribute_mixing(g, lambda n: "x") == 0.0


class TestKCore:
    def test_clique_core(self):
        g = Graph()
        for i in range(5):
            for j in range(i + 1, 5):
                g.add_edge(i, j)
        g.add_edge(0, 99)  # pendant
        cores = core_numbers(g)
        assert cores[99] == 1
        assert all(cores[i] == 4 for i in range(5))
        assert degeneracy(g) == 4

    def test_k_core_subgraph(self):
        g = Graph([(1, 2), (2, 3), (3, 1), (3, 4)])
        core2 = k_core(g, 2)
        assert set(core2.nodes()) == {1, 2, 3}
        assert k_core(g, 3).num_nodes == 0

    def test_empty(self):
        assert core_numbers(Graph()) == {}
        assert degeneracy(Graph()) == 0

    @given(edge_lists)
    def test_matches_networkx(self, edges):
        ours = Graph()
        theirs = nx.Graph()
        for u, v in edges:
            ours.add_edge(u, v)
            theirs.add_edge(u, v)
        assert core_numbers(ours) == nx.core_number(theirs)


class TestDyadCensus:
    def test_counts(self):
        g = DiGraph([(1, 2), (2, 1), (1, 3)])
        census = dyad_census(g)
        assert census.mutual == 1
        assert census.asymmetric == 1
        assert census.null == 1  # pair (2,3)
        assert census.total == 3
        assert census.mutual_fraction_of_connected() == pytest.approx(0.5)

    def test_empty(self):
        census = dyad_census(DiGraph())
        assert census.total == 0
        assert census.mutual_fraction_of_connected() == 0.0

    @given(edge_lists)
    def test_consistent_with_reciprocity(self, edges):
        from repro.graph import raw_reciprocity

        g = DiGraph(edges) if edges else DiGraph()
        census = dyad_census(g)
        if g.num_edges:
            assert raw_reciprocity(g) == pytest.approx(
                2 * census.mutual / g.num_edges
            )


class TestTriangleCensus:
    def test_cyclic_triangle(self):
        g = DiGraph([(1, 2), (2, 3), (3, 1)])
        census = triangle_census(g)
        assert census.cyclic == 1
        assert census.transitive == 0

    def test_transitive_triangle(self):
        g = DiGraph([(1, 2), (2, 3), (1, 3)])
        census = triangle_census(g)
        assert census.cyclic == 0
        assert census.transitive == 1

    def test_mutual_triangle_rich(self):
        # fully bilateral triangle: every orientation present
        edges = [(u, v) for u in (1, 2, 3) for v in (1, 2, 3) if u != v]
        census = triangle_census(DiGraph(edges))
        assert census.cyclic == 2  # both rotations
        assert census.transitive == 6

    def test_empty(self):
        census = triangle_census(DiGraph())
        assert census.total == 0
