"""Unit tests for small-world metrics."""

import random

from repro.graph import Graph, small_world_metrics
from repro.graph.smallworld import SmallWorldMetrics


def caveman_graph(num_caves, cave_size, rng):
    """Dense caves plus sparse inter-cave links: a canonical small world."""
    g = Graph()
    for c in range(num_caves):
        members = [c * cave_size + i for i in range(cave_size)]
        for i, u in enumerate(members):
            for v in members[i + 1 :]:
                g.add_edge(u, v)
    n = num_caves * cave_size
    for c in range(num_caves):
        # a few rewired links from each cave to random vertices elsewhere
        for u in (c * cave_size, c * cave_size + 1, c * cave_size + 2):
            v = rng.randrange(n)
            if v // cave_size != c:
                g.add_edge(u, v)
    return g


class TestSmallWorldMetrics:
    def test_caveman_is_small_world(self):
        g = caveman_graph(30, 6, random.Random(1))
        m = small_world_metrics(g, seed=0)
        assert m.clustering_ratio > 10
        assert m.path_length_ratio < 3
        assert m.is_small_world(max_path_ratio=3)

    def test_random_graph_is_not_small_world(self):
        from repro.graph import gnm_random_graph

        g = gnm_random_graph(200, 600, seed=2)
        m = small_world_metrics(g, seed=0)
        assert m.clustering_ratio < 5
        assert not m.is_small_world()

    def test_metrics_fields(self):
        g = caveman_graph(10, 5, random.Random(0))
        m = small_world_metrics(g, seed=1)
        assert m.num_nodes == g.num_nodes
        assert m.num_edges == g.num_edges
        assert m.clustering > 0
        assert m.path_length > 1

    def test_deterministic(self):
        g = caveman_graph(10, 5, random.Random(3))
        a = small_world_metrics(g, seed=4)
        b = small_world_metrics(g, seed=4)
        assert a == b

    def test_ratio_edge_cases(self):
        m = SmallWorldMetrics(
            clustering=0.5,
            path_length=3.0,
            random_clustering=0.0,
            random_path_length=0.0,
            num_nodes=10,
            num_edges=5,
        )
        assert m.clustering_ratio == float("inf")
        assert m.path_length_ratio == 0.0
        assert not m.is_small_world()
