"""Property-based tests for the graph substrate (hypothesis).

Each property cross-validates an invariant or a networkx equivalence on
randomly generated edge lists.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    DiGraph,
    Graph,
    average_clustering,
    average_shortest_path_length,
    connected_components,
    degree_distribution,
    edge_reciprocity,
    raw_reciprocity,
)

edge_lists = st.lists(
    st.tuples(st.integers(0, 25), st.integers(0, 25)).filter(lambda e: e[0] != e[1]),
    max_size=120,
)


def build_pair_directed(edges):
    ours, theirs = DiGraph(), nx.DiGraph()
    for u, v in edges:
        ours.add_edge(u, v)
        theirs.add_edge(u, v)
    return ours, theirs


def build_pair_undirected(edges):
    ours, theirs = Graph(), nx.Graph()
    for u, v in edges:
        ours.add_edge(u, v)
        theirs.add_edge(u, v)
    return ours, theirs


@given(edge_lists)
def test_digraph_counts_match_networkx(edges):
    ours, theirs = build_pair_directed(edges)
    assert ours.num_nodes == theirs.number_of_nodes()
    assert ours.num_edges == theirs.number_of_edges()
    for n in theirs.nodes():
        assert ours.in_degree(n) == theirs.in_degree(n)
        assert ours.out_degree(n) == theirs.out_degree(n)


@given(edge_lists)
def test_undirected_counts_match_networkx(edges):
    ours, theirs = build_pair_undirected(edges)
    assert ours.num_nodes == theirs.number_of_nodes()
    assert ours.num_edges == theirs.number_of_edges()


@given(edge_lists)
def test_reciprocity_matches_networkx(edges)  :
    ours, theirs = build_pair_directed(edges)
    if ours.num_edges == 0:
        assert raw_reciprocity(ours) == 0.0
    else:
        assert raw_reciprocity(ours) == pytest.approx(nx.overall_reciprocity(theirs))


@given(edge_lists)
def test_edge_reciprocity_bounds(edges):
    ours, _ = build_pair_directed(edges)
    rho = edge_reciprocity(ours)
    assert -1.0 <= rho <= 1.0


@given(edge_lists)
def test_clustering_matches_networkx(edges):
    ours, theirs = build_pair_undirected(edges)
    if ours.num_nodes == 0:
        assert average_clustering(ours) == 0.0
    else:
        assert average_clustering(ours) == pytest.approx(
            nx.average_clustering(theirs), abs=1e-9
        )


@given(edge_lists)
@settings(max_examples=40)
def test_path_length_matches_networkx_on_lcc(edges):
    ours, theirs = build_pair_undirected(edges)
    comps = connected_components(ours)
    if not comps or len(comps[0]) < 2:
        assert average_shortest_path_length(ours) == 0.0
        return
    nx_lcc = theirs.subgraph(max(nx.connected_components(theirs), key=len))
    assert average_shortest_path_length(ours) == pytest.approx(
        nx.average_shortest_path_length(nx_lcc)
    )


@given(edge_lists)
def test_components_partition_nodes(edges):
    ours, _ = build_pair_undirected(edges)
    comps = connected_components(ours)
    all_nodes = set()
    total = 0
    for c in comps:
        all_nodes |= c
        total += len(c)
    assert total == ours.num_nodes
    assert all_nodes == set(ours.nodes())


@given(edge_lists)
def test_to_undirected_degree_bound(edges):
    ours, _ = build_pair_directed(edges)
    und = ours.to_undirected()
    assert und.num_edges <= ours.num_edges
    for n in ours.nodes():
        assert und.degree(n) == len(ours.successors(n) | ours.predecessors(n))


@given(edge_lists)
def test_degree_distribution_total_mass(edges):
    ours, _ = build_pair_directed(edges)
    for kind in ("in", "out", "total"):
        dist = degree_distribution(ours, kind)
        assert dist.num_peers == ours.num_nodes
        if ours.num_nodes:
            assert sum(f for _, f in dist.pmf()) == pytest.approx(1.0)


@given(edge_lists)
def test_subgraph_is_induced(edges):
    ours, _ = build_pair_directed(edges)
    nodes = [n for i, n in enumerate(ours.nodes()) if i % 2 == 0]
    sub = ours.subgraph(nodes)
    keep = set(nodes)
    expected = sum(1 for u, v in ours.edges() if u in keep and v in keep)
    assert sub.num_edges == expected


@given(edge_lists)
def test_reverse_involution(edges):
    ours, _ = build_pair_directed(edges)
    double = ours.reverse().reverse()
    assert set(double.edges()) == set(ours.edges())
    assert raw_reciprocity(ours) == pytest.approx(raw_reciprocity(ours.reverse()))
