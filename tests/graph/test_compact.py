"""Unit tests for the frozen CSR graph views (CompactGraph/CompactDigraph).

Every metric kernel routes through the compact representation, so these
tests pin the parity contract: freezing a mutable graph must preserve
node order, edges, degrees and every derived metric bit-for-bit.
"""

import random

import pytest

from repro.graph import (
    CompactDigraph,
    CompactGraph,
    DiGraph,
    Graph,
    average_clustering,
    average_shortest_path_length,
    bfs_distances,
    connected_components,
    core_numbers,
    local_clustering,
    raw_reciprocity,
    small_world_metrics,
    strongly_connected_components,
)


def random_graph(n, p, seed):
    rng = random.Random(seed)
    g = Graph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(i + 1, n):
            if rng.random() < p:
                g.add_edge(i, j)
    return g


def random_digraph(n, p, seed):
    rng = random.Random(seed)
    g = DiGraph()
    for i in range(n):
        g.add_node(i)
    for i in range(n):
        for j in range(n):
            if i != j and rng.random() < p:
                g.add_edge(i, j)
    return g


class TestCompactGraph:
    def test_freeze_preserves_shape(self):
        g = random_graph(40, 0.15, seed=7)
        c = g.freeze()
        assert isinstance(c, CompactGraph)
        assert c.num_nodes == g.num_nodes
        assert c.num_edges == g.num_edges
        assert list(c.nodes()) == list(g.nodes())
        assert len(c) == len(g)

    def test_edges_and_neighbors_match(self):
        g = random_graph(30, 0.2, seed=11)
        c = g.freeze()
        assert set(map(frozenset, c.edges())) == set(map(frozenset, g.edges()))
        assert len(list(c.edges())) == len(list(g.edges()))
        for node in g.nodes():
            assert sorted(c.neighbors(node)) == sorted(g.neighbors(node))
            assert c.degree(node) == g.degree(node)

    def test_has_edge_and_contains(self):
        g = Graph([(1, 2), (2, 3)])
        c = g.freeze()
        assert c.has_edge(1, 2) and c.has_edge(2, 1)
        assert not c.has_edge(1, 3)
        assert 2 in c and 9 not in c

    def test_density_identical(self):
        g = random_graph(25, 0.3, seed=3)
        assert g.freeze().density() == g.density()

    def test_freeze_idempotent(self):
        c = random_graph(10, 0.3, seed=1).freeze()
        assert c.freeze() is c

    def test_thaw_round_trip(self):
        g = random_graph(20, 0.25, seed=5)
        back = g.freeze().thaw()
        assert list(back.nodes()) == list(g.nodes())
        assert set(map(frozenset, back.edges())) == set(
            map(frozenset, g.edges())
        )

    def test_empty_and_single_node(self):
        assert Graph().freeze().num_nodes == 0
        g = Graph()
        g.add_node("x")
        c = g.freeze()
        assert c.num_nodes == 1 and c.num_edges == 0
        assert c.neighbors("x") == ()


class TestCompactDigraph:
    def test_freeze_preserves_shape(self):
        g = random_digraph(25, 0.1, seed=9)
        c = g.freeze()
        assert isinstance(c, CompactDigraph)
        assert c.num_nodes == g.num_nodes
        assert c.num_edges == g.num_edges
        assert list(c.nodes()) == list(g.nodes())

    def test_successors_predecessors_degrees(self):
        g = random_digraph(20, 0.15, seed=13)
        c = g.freeze()
        for node in g.nodes():
            assert sorted(c.successors(node)) == sorted(g.successors(node))
            assert sorted(c.predecessors(node)) == sorted(g.predecessors(node))
            assert c.out_degree(node) == g.out_degree(node)
            assert c.in_degree(node) == g.in_degree(node)

    def test_edges_match(self):
        g = random_digraph(15, 0.2, seed=17)
        assert sorted(g.freeze().edges()) == sorted(g.edges())

    def test_to_undirected_compact(self):
        g = DiGraph([(1, 2), (2, 1), (2, 3)])
        u = g.freeze().to_undirected_compact()
        assert u.num_edges == 2
        assert u.has_edge(1, 2) and u.has_edge(2, 3)

    def test_thaw_round_trip(self):
        g = random_digraph(12, 0.2, seed=19)
        back = g.freeze().thaw()
        assert sorted(back.edges()) == sorted(g.edges())


class TestKernelParity:
    """Metric kernels return identical values on mutable and frozen input."""

    def test_clustering(self):
        g = random_graph(40, 0.2, seed=23)
        c = g.freeze()
        assert average_clustering(c) == average_clustering(g)
        for node in g.nodes():
            assert local_clustering(c, node) == local_clustering(g, node)

    def test_bfs_and_components(self):
        g = random_graph(40, 0.05, seed=29)
        c = g.freeze()
        src = next(iter(g.nodes()))
        assert bfs_distances(c, src) == bfs_distances(g, src)
        assert connected_components(c) == connected_components(g)

    def test_apl_exact(self):
        g = random_graph(30, 0.15, seed=31)
        assert average_shortest_path_length(
            g.freeze()
        ) == average_shortest_path_length(g)

    def test_core_numbers(self):
        g = random_graph(35, 0.2, seed=37)
        assert core_numbers(g.freeze()) == core_numbers(g)

    def test_reciprocity(self):
        g = random_digraph(25, 0.15, seed=41)
        assert raw_reciprocity(g.freeze()) == raw_reciprocity(g)

    def test_scc(self):
        g = random_digraph(25, 0.1, seed=43)
        assert strongly_connected_components(
            g.freeze()
        ) == strongly_connected_components(g)

    def test_small_world_metrics(self):
        g = random_graph(50, 0.12, seed=47)
        assert small_world_metrics(g, seed=1) == small_world_metrics(
            g.freeze(), seed=1
        )


class TestNetworkxCrossCheck:
    def test_clustering_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(30, 0.2, seed=53)
        ng = nx.Graph(list(g.edges()))
        ng.add_nodes_from(g.nodes())
        c = g.freeze()
        assert average_clustering(c) == pytest.approx(
            nx.average_clustering(ng, count_zeros=True)
        )

    def test_core_numbers_match_networkx(self):
        nx = pytest.importorskip("networkx")
        g = random_graph(30, 0.25, seed=59)
        ng = nx.Graph(list(g.edges()))
        ng.add_nodes_from(g.nodes())
        assert core_numbers(g.freeze()) == nx.core_number(ng)
