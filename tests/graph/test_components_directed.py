"""Unit and property tests for strongly connected components."""

import networkx as nx
from hypothesis import given
from hypothesis import strategies as st

from repro.graph import (
    DiGraph,
    condensation_size,
    largest_scc_fraction,
    strongly_connected_components,
)


class TestScc:
    def test_cycle_is_one_component(self):
        g = DiGraph([(1, 2), (2, 3), (3, 1)])
        comps = strongly_connected_components(g)
        assert comps == [{1, 2, 3}]

    def test_chain_is_singletons(self):
        g = DiGraph([(1, 2), (2, 3)])
        comps = strongly_connected_components(g)
        assert sorted(len(c) for c in comps) == [1, 1, 1]

    def test_two_cycles_with_bridge(self):
        g = DiGraph([(1, 2), (2, 1), (2, 3), (3, 4), (4, 3)])
        comps = strongly_connected_components(g)
        assert {1, 2} in comps and {3, 4} in comps
        assert condensation_size(g) == 2

    def test_mutual_dyads_merge(self):
        g = DiGraph([(1, 2), (2, 1)])
        assert largest_scc_fraction(g) == 1.0

    def test_empty_graph(self):
        assert strongly_connected_components(DiGraph()) == []
        assert largest_scc_fraction(DiGraph()) == 0.0

    def test_deep_chain_no_recursion_limit(self):
        # a 5000-node cycle would blow a recursive Tarjan
        n = 5000
        g = DiGraph((i, (i + 1) % n) for i in range(n))
        comps = strongly_connected_components(g)
        assert len(comps) == 1
        assert len(comps[0]) == n

    def test_largest_first_ordering(self):
        g = DiGraph([(1, 2), (2, 1), (3, 4), (4, 5), (5, 3), (9, 1)])
        comps = strongly_connected_components(g)
        assert len(comps[0]) >= len(comps[-1])


edge_lists = st.lists(
    st.tuples(st.integers(0, 15), st.integers(0, 15)).filter(lambda e: e[0] != e[1]),
    max_size=80,
)


@given(edge_lists)
def test_scc_matches_networkx(edges):
    ours = DiGraph()
    theirs = nx.DiGraph()
    for u, v in edges:
        ours.add_edge(u, v)
        theirs.add_edge(u, v)
    mine = {frozenset(c) for c in strongly_connected_components(ours)}
    ref = {frozenset(c) for c in nx.strongly_connected_components(theirs)}
    assert mine == ref


@given(edge_lists)
def test_scc_partitions_vertices(edges):
    g = DiGraph(edges) if edges else DiGraph()
    comps = strongly_connected_components(g)
    seen = set()
    for c in comps:
        assert not (seen & c)
        seen |= c
    assert seen == set(g.nodes())
