"""Unit tests for raw and Garlaschelli-Loffredo reciprocity."""

import pytest

from repro.graph import DiGraph, edge_reciprocity, raw_reciprocity


class TestRawReciprocity:
    def test_empty_graph(self):
        assert raw_reciprocity(DiGraph()) == 0.0

    def test_fully_bilateral(self):
        g = DiGraph([(1, 2), (2, 1), (2, 3), (3, 2)])
        assert raw_reciprocity(g) == pytest.approx(1.0)

    def test_tree_has_zero(self):
        g = DiGraph([(0, 1), (0, 2), (1, 3), (1, 4)])
        assert raw_reciprocity(g) == 0.0

    def test_half_bilateral(self):
        g = DiGraph([(1, 2), (2, 1), (3, 4)])
        assert raw_reciprocity(g) == pytest.approx(2 / 3)


class TestEdgeReciprocity:
    def test_tree_is_antireciprocal(self):
        # Eq. 2: r=0 so rho = -abar/(1-abar) < 0.
        g = DiGraph([(0, 1), (0, 2), (1, 3), (1, 4), (2, 5)])
        rho = edge_reciprocity(g)
        abar = g.density()
        assert rho == pytest.approx(-abar / (1 - abar))
        assert rho < 0

    def test_bilateral_graph_is_reciprocal(self):
        g = DiGraph([(1, 2), (2, 1), (2, 3), (3, 2), (1, 4)])
        assert edge_reciprocity(g) > 0.5

    def test_random_graph_near_zero(self):
        import random

        rng = random.Random(2)
        g = DiGraph()
        n = 200
        for _ in range(1500):
            u, v = rng.randrange(n), rng.randrange(n)
            if u != v:
                g.add_edge(u, v)
        assert abs(edge_reciprocity(g)) < 0.05

    def test_empty_and_complete_degenerate(self):
        assert edge_reciprocity(DiGraph()) == 0.0
        g = DiGraph([(1, 2), (2, 1)])  # density 1
        assert edge_reciprocity(g) == 0.0

    def test_matches_networkx_overall_reciprocity(self):
        import random

        import networkx as nx

        rng = random.Random(9)
        ours = DiGraph()
        theirs = nx.DiGraph()
        for _ in range(400):
            u, v = rng.randrange(50), rng.randrange(50)
            if u == v:
                continue
            ours.add_edge(u, v)
            theirs.add_edge(u, v)
        assert raw_reciprocity(ours) == pytest.approx(
            nx.overall_reciprocity(theirs), abs=1e-12
        )
