"""Unit tests for the seeded random-graph baselines."""

import pytest

from repro.graph import DiGraph, Graph, gnm_random_graph, gnp_random_graph
from repro.graph.random_graphs import matched_random_graph


class TestGnm:
    def test_exact_counts_undirected(self):
        g = gnm_random_graph(50, 120, seed=1)
        assert isinstance(g, Graph)
        assert g.num_nodes == 50
        assert g.num_edges == 120

    def test_exact_counts_directed(self):
        g = gnm_random_graph(30, 200, seed=1, directed=True)
        assert isinstance(g, DiGraph)
        assert g.num_edges == 200

    def test_deterministic_per_seed(self):
        a = gnm_random_graph(40, 80, seed=7)
        b = gnm_random_graph(40, 80, seed=7)
        assert set(map(frozenset, a.edges())) == set(map(frozenset, b.edges()))

    def test_different_seeds_differ(self):
        a = gnm_random_graph(40, 80, seed=1)
        b = gnm_random_graph(40, 80, seed=2)
        assert set(map(frozenset, a.edges())) != set(map(frozenset, b.edges()))

    def test_m_too_large_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(4, 7)  # max undirected edges is 6
        gnm_random_graph(4, 7, directed=True)  # fine directed (max 12)

    def test_complete_graph_edge_case(self):
        g = gnm_random_graph(5, 10, seed=0)
        assert g.density() == pytest.approx(1.0)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            gnm_random_graph(-1, 0)


class TestGnp:
    def test_p_zero_and_one(self):
        empty = gnp_random_graph(10, 0.0, seed=0)
        assert empty.num_edges == 0
        full = gnp_random_graph(10, 1.0, seed=0)
        assert full.num_edges == 45

    def test_expected_edge_count(self):
        g = gnp_random_graph(100, 0.1, seed=3)
        assert 350 <= g.num_edges <= 650  # mean 495

    def test_invalid_p(self):
        with pytest.raises(ValueError):
            gnp_random_graph(5, 1.5)

    def test_directed_flag(self):
        g = gnp_random_graph(20, 0.2, seed=4, directed=True)
        assert isinstance(g, DiGraph)


class TestMatched:
    def test_matched_random_graph(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1), (1, 3)])
        r = matched_random_graph(g, seed=5)
        assert r.num_nodes == g.num_nodes
        assert r.num_edges == g.num_edges
