"""Unit tests for the Graph / DiGraph containers."""

import pytest

from repro.graph import DiGraph, Graph


class TestGraph:
    def test_empty(self):
        g = Graph()
        assert g.num_nodes == 0
        assert g.num_edges == 0
        assert len(g) == 0
        assert list(g.nodes()) == []
        assert list(g.edges()) == []

    def test_add_nodes_and_edges(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 3)
        assert g.num_nodes == 3
        assert g.num_edges == 2
        assert g.has_edge(1, 2)
        assert g.has_edge(2, 1)  # undirected
        assert not g.has_edge(1, 3)
        assert 1 in g and 4 not in g

    def test_construct_from_edges(self):
        g = Graph([(1, 2), (2, 3), (1, 2)])
        assert g.num_edges == 2  # duplicate collapsed

    def test_duplicate_edge_not_double_counted(self):
        g = Graph()
        g.add_edge(1, 2)
        g.add_edge(2, 1)
        assert g.num_edges == 1

    def test_self_loop_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add_edge(5, 5)

    def test_degree_and_neighbors(self):
        g = Graph([(1, 2), (1, 3), (1, 4)])
        assert g.degree(1) == 3
        assert g.degree(2) == 1
        assert g.neighbors(1) == {2, 3, 4}

    def test_remove_edge(self):
        g = Graph([(1, 2), (2, 3)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.num_edges == 1
        assert g.num_nodes == 3  # nodes remain
        with pytest.raises(KeyError):
            g.remove_edge(1, 2)

    def test_remove_node(self):
        g = Graph([(1, 2), (1, 3), (2, 3)])
        g.remove_node(1)
        assert 1 not in g
        assert g.num_edges == 1
        assert g.has_edge(2, 3)

    def test_remove_missing_node_raises_with_name(self):
        g = Graph([(1, 2)])
        with pytest.raises(KeyError, match="no node 99"):
            g.remove_node(99)
        with pytest.raises(KeyError, match="no node 'ghost'"):
            g.remove_node("ghost")

    def test_edges_each_once(self):
        g = Graph([(1, 2), (2, 3), (3, 1)])
        edges = list(g.edges())
        assert len(edges) == 3
        normalised = {frozenset(e) for e in edges}
        assert normalised == {frozenset((1, 2)), frozenset((2, 3)), frozenset((3, 1))}

    def test_subgraph(self):
        g = Graph([(1, 2), (2, 3), (3, 4), (4, 1)])
        sub = g.subgraph([1, 2, 3])
        assert sub.num_nodes == 3
        assert sub.num_edges == 2
        assert sub.has_edge(1, 2) and sub.has_edge(2, 3)
        assert not sub.has_edge(3, 4)

    def test_subgraph_ignores_unknown_nodes(self):
        g = Graph([(1, 2)])
        sub = g.subgraph([1, 2, 99])
        assert sub.num_nodes == 2

    def test_density(self):
        g = Graph([(1, 2), (2, 3), (3, 1)])  # triangle: complete
        assert g.density() == pytest.approx(1.0)
        assert Graph().density() == 0.0

    def test_isolated_node(self):
        g = Graph()
        g.add_node("x")
        assert g.degree("x") == 0
        assert g.num_nodes == 1


class TestDiGraph:
    def test_directed_edges(self):
        g = DiGraph()
        g.add_edge("a", "b")
        assert g.has_edge("a", "b")
        assert not g.has_edge("b", "a")
        assert g.out_degree("a") == 1
        assert g.in_degree("a") == 0
        assert g.in_degree("b") == 1

    def test_successors_predecessors(self):
        g = DiGraph([(1, 2), (1, 3), (4, 1)])
        assert g.successors(1) == {2, 3}
        assert g.predecessors(1) == {4}

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            DiGraph([(1, 1)])

    def test_remove_edge_direction_matters(self):
        g = DiGraph([(1, 2), (2, 1)])
        g.remove_edge(1, 2)
        assert not g.has_edge(1, 2)
        assert g.has_edge(2, 1)
        assert g.num_edges == 1

    def test_remove_node_updates_both_directions(self):
        g = DiGraph([(1, 2), (2, 3), (3, 1)])
        g.remove_node(2)
        assert g.num_edges == 1
        assert g.has_edge(3, 1)
        assert g.successors(1) == set()

    def test_remove_node_with_bilateral_edges(self):
        g = DiGraph([(1, 2), (2, 1), (1, 3)])
        g.remove_node(1)
        assert g.num_edges == 0
        assert g.num_nodes == 2

    def test_remove_missing_node_raises_with_name(self):
        g = DiGraph([(1, 2)])
        with pytest.raises(KeyError, match="no node 7"):
            g.remove_node(7)

    def test_to_undirected_collapses_bilateral(self):
        g = DiGraph([(1, 2), (2, 1), (2, 3)])
        u = g.to_undirected()
        assert u.num_edges == 2
        assert u.has_edge(1, 2) and u.has_edge(2, 3)

    def test_reverse(self):
        g = DiGraph([(1, 2), (2, 3)])
        r = g.reverse()
        assert r.has_edge(2, 1) and r.has_edge(3, 2)
        assert r.num_edges == 2
        assert r.num_nodes == 3

    def test_subgraph(self):
        g = DiGraph([(1, 2), (2, 3), (3, 1)])
        sub = g.subgraph({1, 2})
        assert sub.num_edges == 1
        assert sub.has_edge(1, 2)

    def test_density(self):
        g = DiGraph([(1, 2), (2, 1)])
        assert g.density() == pytest.approx(1.0)
        g.add_node(3)
        assert g.density() == pytest.approx(2 / 6)

    def test_total_neighbour_union(self):
        g = DiGraph([(1, 2), (2, 1), (3, 1)])
        both = g.successors(1) | g.predecessors(1)
        assert both == {2, 3}
