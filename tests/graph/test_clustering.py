"""Unit tests for clustering coefficients."""

import pytest

from repro.graph import Graph, average_clustering, local_clustering
from repro.graph.clustering import expected_random_clustering


def triangle_plus_tail():
    # Triangle 1-2-3 with a pendant 4 attached to 1.
    return Graph([(1, 2), (2, 3), (3, 1), (1, 4)])


class TestLocalClustering:
    def test_triangle_vertex(self):
        g = triangle_plus_tail()
        # Vertex 2 has neighbours {1,3}, which are linked: C=1.
        assert local_clustering(g, 2) == pytest.approx(1.0)

    def test_hub_vertex(self):
        g = triangle_plus_tail()
        # Vertex 1 has neighbours {2,3,4}; only (2,3) of 3 pairs linked.
        assert local_clustering(g, 1) == pytest.approx(1 / 3)

    def test_degree_one_vertex_is_zero(self):
        g = triangle_plus_tail()
        assert local_clustering(g, 4) == 0.0

    def test_star_graph_no_clustering(self):
        g = Graph([(0, i) for i in range(1, 6)])
        assert local_clustering(g, 0) == 0.0

    def test_complete_graph_fully_clustered(self):
        g = Graph()
        for i in range(4):
            for j in range(i + 1, 4):
                g.add_edge(i, j)
        for node in g.nodes():
            assert local_clustering(g, node) == pytest.approx(1.0)


class TestAverageClustering:
    def test_triangle_plus_tail(self):
        g = triangle_plus_tail()
        expected = (1 / 3 + 1.0 + 1.0 + 0.0) / 4
        assert average_clustering(g) == pytest.approx(expected)

    def test_excluding_isolated(self):
        g = triangle_plus_tail()
        expected = (1 / 3 + 1.0 + 1.0) / 3
        assert average_clustering(g, count_isolated=False) == pytest.approx(expected)

    def test_empty_graph(self):
        assert average_clustering(Graph()) == 0.0

    def test_matches_networkx(self):
        import random

        import networkx as nx

        rng = random.Random(11)
        ours = Graph()
        theirs = nx.Graph()
        for _ in range(300):
            u, v = rng.randrange(60), rng.randrange(60)
            if u == v:
                continue
            ours.add_edge(u, v)
            theirs.add_edge(u, v)
        for n in range(60):
            ours.add_node(n)
            theirs.add_node(n)
        assert average_clustering(ours) == pytest.approx(
            nx.average_clustering(theirs), abs=1e-12
        )


class TestRandomBaseline:
    def test_expected_random_clustering_is_density(self):
        g = triangle_plus_tail()
        assert expected_random_clustering(g) == pytest.approx(g.density())
