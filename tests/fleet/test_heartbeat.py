"""The worker -> supervisor stdout event protocol."""

from __future__ import annotations

import io

from repro.fleet.heartbeat import FLEET_PREFIX, emit_event, parse_event


def test_emit_parse_round_trip():
    buffer = io.StringIO()
    emit_event(buffer, {"type": "heartbeat", "shard": 3, "round": 17})
    line = buffer.getvalue()
    assert line.startswith(FLEET_PREFIX)
    assert line.endswith("\n")
    assert parse_event(line) == {"type": "heartbeat", "shard": 3, "round": 17}


def test_non_protocol_lines_are_ignored():
    assert parse_event("some stray print\n") is None
    assert parse_event("") is None


def test_malformed_protocol_lines_are_noise_not_crashes():
    # A worker SIGKILLed mid-write leaves half a JSON document.
    assert parse_event(FLEET_PREFIX + '{"type": "heart') is None
    # Valid JSON that is not an object is equally useless.
    assert parse_event(FLEET_PREFIX + "[1, 2]") is None


def test_events_serialise_deterministically():
    a, b = io.StringIO(), io.StringIO()
    emit_event(a, {"b": 1, "a": 2})
    emit_event(b, {"a": 2, "b": 1})
    assert a.getvalue() == b.getvalue()
