"""Shared scale and harness helpers for the fleet test suite.

Every equivalence test here compares a chaos-ridden fleet against an
uninterrupted reference at the same tiny scale, so the scale constants
live in one place — and the reference is computed once per session.
"""

from __future__ import annotations

from pathlib import Path

from repro.fleet import FleetCampaignConfig, run_fleet_campaign
from repro.fleet.plan import ChaosSpec, IngestSpec
from repro.fleet.supervisor import SupervisorPolicy

#: Small enough to run in seconds, big enough to cross several rounds,
#: checkpoints and restarts: ~8 rounds, checkpoint every 2.
DAYS = 0.05
BASE_CONCURRENCY = 120.0
SEED = 11
CHECKPOINT_EVERY = 2

#: Tight liveness windows so hang detection fires in test time.
FAST_POLICY = SupervisorPolicy(
    heartbeat_timeout_s=5.0,
    progress_timeout_s=30.0,
    poll_interval_s=0.02,
    backoff_base_s=0.01,
    backoff_cap_s=0.05,
)


def fleet_config(
    campaign_dir: Path,
    *,
    num_shards: int = 2,
    chaos: dict[int, ChaosSpec] | None = None,
    policy: SupervisorPolicy = FAST_POLICY,
    seed: int = SEED,
    days: float = DAYS,
    checkpoint_every_rounds: int = CHECKPOINT_EVERY,
    ingest: IngestSpec | None = None,
) -> FleetCampaignConfig:
    """A tiny fleet campaign config shared by all equivalence tests."""
    return FleetCampaignConfig(
        campaign_dir=campaign_dir,
        num_shards=num_shards,
        days=days,
        base_concurrency=BASE_CONCURRENCY,
        seed=seed,
        checkpoint_every_rounds=checkpoint_every_rounds,
        supervisor=policy,
        chaos=chaos,
        ingest=ingest,
    )


def run_reference(campaign_dir: Path, *, num_shards: int = 2):
    """An uninterrupted fleet run at the shared scale."""
    return run_fleet_campaign(fleet_config(campaign_dir, num_shards=num_shards))


def fingerprints(result) -> dict[int, str]:
    """Per-shard final RNG fingerprints of a finished fleet result."""
    return {
        sid: outcome.summary["rng_fingerprint"]
        for sid, outcome in sorted(result.outcomes.items())
        if outcome.summary is not None
    }
