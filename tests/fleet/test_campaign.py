"""Fleet campaign acceptance: multi-fault equivalence, goldens, health."""

from __future__ import annotations

from repro.core.experiments import load_campaign_health
from repro.fleet import FleetCampaignConfig, run_fleet_campaign
from repro.fleet.plan import ChaosSpec

from .helpers import FAST_POLICY, fingerprints, fleet_config, run_reference


def test_four_shards_two_sigkills_one_hang_matches_reference(tmp_path):
    """The ISSUE acceptance scenario, as a test.

    A 4-shard campaign absorbing two SIGKILLs (different shards,
    different rounds) and one hung worker completes with the same
    merged content hash and the same per-shard RNG fingerprints as an
    uninterrupted 4-shard campaign.
    """
    reference = run_reference(tmp_path / "reference", num_shards=4)
    assert reference.completed

    chaotic = run_fleet_campaign(
        fleet_config(
            tmp_path / "chaotic",
            num_shards=4,
            chaos={
                1: ChaosSpec(mode="crash", at_round=3),
                2: ChaosSpec(mode="hang", at_round=4),
                3: ChaosSpec(mode="crash", at_round=5),
            },
        )
    )
    assert chaotic.completed
    assert not chaotic.quarantined
    restarts = {sid: o.restarts for sid, o in chaotic.outcomes.items()}
    assert restarts == {0: 0, 1: 1, 2: 1, 3: 1}
    assert chaotic.merge.content_sha256 == reference.merge.content_sha256
    assert fingerprints(chaotic) == fingerprints(reference)


def test_fleet_health_payload_covers_every_shard(tmp_path):
    campaign_dir = tmp_path / "campaign"
    result = run_fleet_campaign(
        fleet_config(
            campaign_dir,
            chaos={1: ChaosSpec(mode="crash", at_round=3)},
        )
    )
    assert result.completed
    health = load_campaign_health(campaign_dir)
    fleet = health["fleet"]
    assert fleet["num_shards"] == 2
    assert set(fleet["shards"]) == {"0", "1"}
    for shard in fleet["shards"].values():
        assert shard["status"] == "done"
        assert shard["rounds_completed"] > 0
        assert shard["channels"]
        assert shard["rng_fingerprint"]
    assert fleet["shards"]["1"]["restarts"] == 1
    assert fleet["quarantined"] == []
    assert fleet["merged_sha256"] == result.merge.content_sha256
    assert [i["kind"] for i in fleet["incidents"]] == ["crash"]
    # The merged campaign-level health survives alongside fleet detail.
    assert health["interrupted"] is False
    assert health["trace_records"] == result.merge.records


def test_golden_per_shard_fingerprints_are_pinned(tmp_path):
    """Draw-for-draw determinism across releases.

    These constants pin the exact per-shard RNG evolution and the
    merged trace bytes for a tiny fixed fleet.  If this test breaks,
    shard seeding, the RNG discipline, or the trace encoding changed
    in a way that silently invalidates every crash-equals-clean
    guarantee — bump deliberately, never casually.
    """
    result = run_fleet_campaign(
        FleetCampaignConfig(
            campaign_dir=tmp_path / "campaign",
            num_shards=2,
            days=0.02,
            base_concurrency=50.0,
            seed=2006,
            checkpoint_every_rounds=4,
            supervisor=FAST_POLICY,
        )
    )
    assert result.completed
    assert fingerprints(result) == {
        0: "8580d25e7c28c56158234bf44d7eacea2d2f7f5ae4d474d304c5aaaa50894193",
        1: "457902f5ef07218ac611e545392e154c101177ac681b1da3a70f38e2b026e81c",
    }
    assert result.merge.content_sha256 == (
        "bd221a2b9a799e3d1d1dbf2fcf9b2094d2423e65bc7144dc5e1a12aafba011f4"
    )
    rounds = {sid: o.rounds_completed for sid, o in result.outcomes.items()}
    assert rounds == {0: 3, 1: 3}
