"""The kill/restart matrix: every chaos mode resumes to the same bytes.

Each test runs a real multi-process fleet campaign with a deterministic
fault injected into one shard worker, then compares the merged trace
content hash and every shard's final RNG fingerprint against an
uninterrupted reference fleet at the same scale.  The reference runs
once per module.
"""

from __future__ import annotations

import json

import pytest

from repro.core.experiments import load_campaign_health
from repro.fleet import run_fleet_campaign
from repro.fleet.plan import ChaosSpec

from .helpers import fingerprints, fleet_config, run_reference


@pytest.fixture(scope="module")
def reference(tmp_path_factory):
    result = run_reference(tmp_path_factory.mktemp("reference") / "campaign")
    assert result.completed and not result.quarantined
    return result


@pytest.mark.parametrize(
    "chaos",
    [
        # SIGKILL mid-campaign, right after a round that is NOT a
        # checkpoint boundary: resume replays from the last checkpoint.
        ChaosSpec(mode="crash", at_round=3),
        # SIGKILL immediately after truncating the newest checkpoint:
        # resume must skip the torn envelope and use the previous one.
        ChaosSpec(mode="torn-checkpoint", at_round=4),
        # SIGKILL after appending half a record to the active segment:
        # recovery must quarantine the torn tail and rewind.
        ChaosSpec(mode="torn-segment", at_round=3),
        # SIGKILL after rolling the manifest back one sealed segment:
        # recovery must reconcile manifest vs on-disk segments.
        ChaosSpec(mode="stale-manifest", at_round=3),
    ],
    ids=lambda c: c.mode,
)
def test_kill_matrix_resumes_to_identical_campaign(tmp_path, reference, chaos):
    result = run_fleet_campaign(
        fleet_config(tmp_path / "campaign", chaos={1: chaos})
    )
    assert result.completed
    assert not result.quarantined
    assert result.outcomes[1].restarts == 1
    assert [i.kind for i in result.outcomes[1].incidents] == ["crash"]
    assert result.merge.content_sha256 == reference.merge.content_sha256
    assert fingerprints(result) == fingerprints(reference)


def test_hung_worker_is_killed_and_resumed_identically(tmp_path, reference):
    result = run_fleet_campaign(
        fleet_config(
            tmp_path / "campaign",
            chaos={1: ChaosSpec(mode="hang", at_round=4)},
        )
    )
    assert result.completed
    assert result.outcomes[1].restarts == 1
    assert [i.kind for i in result.outcomes[1].incidents] == ["hang"]
    assert result.merge.content_sha256 == reference.merge.content_sha256
    assert fingerprints(result) == fingerprints(reference)


def test_poison_shard_is_quarantined_and_campaign_still_finishes(tmp_path):
    # ``once=False`` + no checkpoint before the fault round means every
    # restart replays straight into the same crash: a poison shard.
    campaign_dir = tmp_path / "campaign"
    result = run_fleet_campaign(
        fleet_config(
            campaign_dir,
            num_shards=3,
            checkpoint_every_rounds=50,
            chaos={1: ChaosSpec(mode="crash", at_round=2, once=False)},
        )
    )
    assert result.quarantined == [1]
    assert result.outcomes[1].status == "quarantined"
    assert result.outcomes[1].restarts == 3  # max_restarts exhausted
    kinds = [i.kind for i in result.outcomes[1].incidents]
    assert kinds == ["crash"] * 4 + ["quarantined"]
    # The healthy shards still finished and merged.
    assert result.outcomes[0].status == "done"
    assert result.outcomes[2].status == "done"
    assert result.merge is not None
    assert set(result.merge.shards) == {0, 2}
    # The incident is durable: health.json records the quarantine.
    health = load_campaign_health(campaign_dir)
    assert health["fleet"]["quarantined"] == [1]
    incident_kinds = {i["kind"] for i in health["fleet"]["incidents"]}
    assert "quarantined" in incident_kinds


def test_supervisor_death_resume_skips_finished_shards(tmp_path):
    # First supervisor run completes the whole fleet...
    campaign_dir = tmp_path / "campaign"
    first = run_fleet_campaign(fleet_config(campaign_dir))
    assert first.completed
    # ...then "the supervisor died and was rerun": every shard already
    # has a valid done.json, so no worker is respawned and the merge is
    # reused byte-for-byte.
    second = run_fleet_campaign(fleet_config(campaign_dir))
    assert second.completed
    for outcome in second.outcomes.values():
        assert outcome.status == "done"
        assert outcome.restarts == 0
    assert second.merge.reused
    assert second.merge.content_sha256 == first.merge.content_sha256
    assert fingerprints(second) == fingerprints(first)


def test_worker_log_captures_stderr_noise(tmp_path):
    campaign_dir = tmp_path / "campaign"
    result = run_fleet_campaign(fleet_config(campaign_dir))
    assert result.completed
    for sid in result.outcomes:
        log = campaign_dir / "shards" / f"shard-{sid:02d}" / "worker.log"
        assert log.exists()


def test_spec_is_persisted_next_to_the_shard(tmp_path):
    campaign_dir = tmp_path / "campaign"
    result = run_fleet_campaign(fleet_config(campaign_dir))
    assert result.completed
    spec_path = campaign_dir / "shards" / "shard-00" / "spec.json"
    payload = json.loads(spec_path.read_text(encoding="utf-8"))
    assert payload["shard_id"] == 0
    assert payload["num_shards"] == 2
