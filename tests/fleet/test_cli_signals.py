"""``repro run`` under real signals: graceful stop, resume, fidelity.

These spawn the actual CLI as a subprocess, deliver SIGTERM mid-
campaign, and verify the interruption contract end to end: exit code
3, a final checkpoint on disk, a sealed resumable trace — and a
``--resume`` run that converges on exactly the trace a never-signalled
campaign produces.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
from pathlib import Path

from repro.core.experiments import load_campaign_health
from repro.traces.segments import SegmentedTraceReader

from tests.ingest.helpers import wait_until

SRC = Path(__file__).resolve().parents[2] / "src"

#: Long enough that SIGTERM always lands mid-campaign, short enough
#: for test time: ~28 rounds, checkpoint every 2.
DAYS = "0.2"
RUN_FLAGS = [
    "--days", DAYS,
    "--base", "120",
    "--seed", "11",
    "--checkpoint-every", "2",
]


def spawn_run(trace_dir: Path, *extra: str) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "run",
            "--trace-dir", str(trace_dir),
            *RUN_FLAGS,
            *extra,
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )


def first_checkpoint_under(root: Path):
    """Wait-predicate: any checkpoint envelope exists below ``root``."""
    return lambda: next(root.glob("**/ckpt-*.bin"), None)


def test_sigterm_checkpoints_seals_and_resume_matches_straight_run(tmp_path):
    interrupted = tmp_path / "interrupted"
    proc = spawn_run(interrupted)
    wait_until(
        first_checkpoint_under(interrupted),
        timeout_s=60,
        what="first checkpoint of the campaign",
    )
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=60)
    assert proc.returncode == 3, out
    assert "resume with --resume" in out
    # Graceful contract: a checkpoint exists and the store is sealed
    # (manifest present), so --resume needs no recovery pass.
    assert (interrupted / "checkpoints").is_dir()
    assert (interrupted / "manifest.json").exists()
    health = load_campaign_health(interrupted)
    assert health["interrupted"] is True

    resume = spawn_run(interrupted, "--resume")
    out, _ = resume.communicate(timeout=300)
    assert resume.returncode == 0, out
    assert "resumed from checkpoint" in out

    straight_dir = tmp_path / "straight"
    straight = spawn_run(straight_dir)
    out, _ = straight.communicate(timeout=300)
    assert straight.returncode == 0, out

    resumed_health = load_campaign_health(interrupted)
    straight_health = load_campaign_health(straight_dir)
    assert resumed_health["interrupted"] is False
    assert (
        resumed_health["rng_fingerprint"] == straight_health["rng_fingerprint"]
    )
    assert list(SegmentedTraceReader(interrupted)) == list(
        SegmentedTraceReader(straight_dir)
    )


def test_fleet_sigterm_interrupts_every_shard_and_resume_completes(tmp_path):
    fleet_flags = [
        "--shards", "2",
        "--heartbeat-timeout", "60",
        "--progress-timeout", "300",
    ]
    interrupted = tmp_path / "interrupted"
    proc = spawn_run(interrupted, *fleet_flags)
    wait_until(
        first_checkpoint_under(interrupted / "shards"),
        timeout_s=120,
        what="first shard checkpoint",
    )
    proc.send_signal(signal.SIGTERM)
    out, _ = proc.communicate(timeout=120)
    assert proc.returncode == 3, out
    assert "resume" in out

    resume = spawn_run(interrupted, "--resume", *fleet_flags)
    out, _ = resume.communicate(timeout=600)
    assert resume.returncode == 0, out

    straight_dir = tmp_path / "straight"
    straight = spawn_run(straight_dir, *fleet_flags)
    out, _ = straight.communicate(timeout=600)
    assert straight.returncode == 0, out

    resumed = load_campaign_health(interrupted)
    reference = load_campaign_health(straight_dir)
    assert resumed["fleet"]["merged_sha256"] == reference["fleet"]["merged_sha256"]
    assert {
        sid: shard["rng_fingerprint"]
        for sid, shard in resumed["fleet"]["shards"].items()
    } == {
        sid: shard["rng_fingerprint"]
        for sid, shard in reference["fleet"]["shards"].items()
    }
