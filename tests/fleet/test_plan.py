"""Shard planning: partition determinism, spec round trips, seeds."""

from __future__ import annotations

import pytest

from repro.fleet.plan import (
    ChaosSpec,
    IngestSpec,
    ShardSpec,
    build_plan,
    partition_channels,
    shard_dir,
    shard_seed,
)
from repro.simulator.channel import ChannelCatalogue, default_catalogue


def test_partition_covers_every_channel_exactly_once():
    catalogue = default_catalogue()
    buckets = partition_channels(catalogue, 3)
    seen = [c.channel_id for bucket in buckets for c in bucket]
    assert sorted(seen) == sorted(c.channel_id for c in catalogue)
    assert all(bucket for bucket in buckets)


def test_partition_is_deterministic():
    catalogue = default_catalogue()
    first = partition_channels(catalogue, 4)
    second = partition_channels(catalogue, 4)
    assert first == second


def test_partition_balances_share_mass():
    catalogue = default_catalogue()
    buckets = partition_channels(catalogue, 2)
    masses = [sum(c.share for c in bucket) for bucket in buckets]
    assert abs(masses[0] - masses[1]) < 0.25
    assert abs(sum(masses) - 1.0) < 1e-9


def test_partition_rejects_more_shards_than_channels():
    catalogue = default_catalogue()
    with pytest.raises(ValueError):
        partition_channels(catalogue, len(catalogue) + 1)
    with pytest.raises(ValueError):
        partition_channels(catalogue, 0)


def test_shard_seed_is_stable_and_collision_free():
    assert shard_seed(2006, 0) == shard_seed(2006, 0)
    # Neighbouring (seed, shard) pairs must not share streams.
    assert shard_seed(7, 1) != shard_seed(8, 0)
    seeds = {shard_seed(2006, sid) for sid in range(32)}
    assert len(seeds) == 32


def test_build_plan_splits_concurrency_by_share_mass():
    catalogue = default_catalogue()
    plan = build_plan(
        "/tmp/x",
        num_shards=3,
        days=1.0,
        base_concurrency=1000.0,
        seed=1,
        catalogue=catalogue,
    )
    total = sum(spec.base_concurrency for spec in plan)
    assert total == pytest.approx(1000.0)
    assert len(plan) == 3
    for spec in plan:
        assert spec.trace_dir.endswith(f"shard-{spec.shard_id:02d}")


def test_spec_catalogue_renormalises_shares():
    plan = build_plan(
        "/tmp/x",
        num_shards=4,
        days=1.0,
        base_concurrency=500.0,
        seed=1,
        catalogue=default_catalogue(),
    )
    for spec in plan:
        sub = spec.catalogue()
        assert isinstance(sub, ChannelCatalogue)
        assert sum(c.share for c in sub) == pytest.approx(1.0)
        # Channel identities survive renormalisation.
        assert [c.channel_id for c in sub] == [
            c.channel_id for c in spec.channels
        ]


def test_spec_json_round_trip(tmp_path):
    plan = build_plan(
        tmp_path,
        num_shards=2,
        days=0.5,
        base_concurrency=100.0,
        seed=9,
        catalogue=default_catalogue(),
        ingest=IngestSpec(host="127.0.0.1", tcp_port=1234, udp_port=1235),
        chaos={1: ChaosSpec(mode="crash", at_round=3)},
    )
    for spec in plan:
        restored = ShardSpec.from_json(spec.to_json())
        assert restored == spec


def test_scope_token_distinguishes_shards():
    plan = build_plan(
        "/tmp/x",
        num_shards=2,
        days=1.0,
        base_concurrency=100.0,
        seed=1,
        catalogue=default_catalogue(),
    )
    tokens = {spec.scope_token() for spec in plan}
    assert len(tokens) == 2


def test_derived_seeds_differ_between_shards():
    plan = build_plan(
        "/tmp/x",
        num_shards=4,
        days=1.0,
        base_concurrency=100.0,
        seed=2006,
        catalogue=default_catalogue(),
    )
    assert len({spec.derived_seed() for spec in plan}) == 4


def test_chaos_spec_validation():
    with pytest.raises(ValueError):
        ChaosSpec(mode="explode", at_round=1)
    with pytest.raises(ValueError):
        ChaosSpec(mode="crash", at_round=0)


def test_shard_dir_layout(tmp_path):
    assert shard_dir(tmp_path, 7) == tmp_path / "shards" / "shard-07"
