"""The shard worker run loop, in process: heartbeats, done.json, stop."""

from __future__ import annotations

import io
import json

from repro.fleet.heartbeat import parse_event
from repro.fleet.plan import build_plan
from repro.fleet.worker import DONE_NAME, EXIT_INTERRUPTED, load_done, run_shard
from repro.simulator.channel import default_catalogue
from repro.traces.segments import SegmentedTraceReader


def small_plan(campaign_dir, *, num_shards=2, days=0.02):
    return build_plan(
        campaign_dir,
        num_shards=num_shards,
        days=days,
        base_concurrency=60.0,
        seed=11,
        catalogue=default_catalogue(),
        checkpoint_every_rounds=2,
    )


def events_of(buffer: io.StringIO) -> list[dict]:
    return [
        event
        for line in buffer.getvalue().splitlines()
        for event in [parse_event(line + "\n")]
        if event is not None
    ]


def test_run_shard_emits_protocol_and_done_marker(tmp_path):
    spec = small_plan(tmp_path).specs[0]
    out = io.StringIO()
    code = run_shard(spec, out=out)
    assert code == 0
    events = events_of(out)
    kinds = [e["type"] for e in events]
    assert kinds[0] == "started"
    assert kinds[-1] == "done"
    heartbeats = [e for e in events if e["type"] == "heartbeat"]
    assert [e["round"] for e in heartbeats] == list(
        range(1, len(heartbeats) + 1)
    )
    done = load_done(spec.trace_dir)
    assert done is not None
    assert done["rounds_completed"] == heartbeats[-1]["round"]
    assert done["rng_fingerprint"]
    assert done["content_sha256"]
    # The marker is valid JSON on disk (atomic write).
    raw = json.loads((tmp_path / "shards" / "shard-00" / DONE_NAME).read_text())
    assert raw == done


class StopAfterChecks:
    """Duck-typed stand-in for the signal Event: trips on the Nth poll.

    ``run_campaign`` polls ``stop()`` once per completed round, so this
    interrupts the worker after exactly ``n`` rounds — deterministic,
    unlike delivering a real signal from a side thread.
    """

    def __init__(self, n: int) -> None:
        self.remaining = n

    def is_set(self) -> bool:
        self.remaining -= 1
        return self.remaining <= 0


def test_stop_interrupts_gracefully_and_resume_matches_straight_run(tmp_path):
    plan_a = small_plan(tmp_path / "interrupted")
    spec = plan_a.specs[0]

    out = io.StringIO()
    code = run_shard(spec, out=out, stop=StopAfterChecks(2))
    assert code == EXIT_INTERRUPTED
    events = events_of(out)
    assert events[-1]["type"] == "interrupted"
    assert [e["round"] for e in events if e["type"] == "heartbeat"] == [1, 2]
    assert load_done(spec.trace_dir) is None  # not done, resumable

    # Resuming (fresh process would do exactly this) finishes the span
    # and produces the same trace as a never-interrupted shard.
    code = run_shard(spec, out=io.StringIO())
    assert code == 0

    plan_b = small_plan(tmp_path / "straight")
    straight = plan_b.specs[0]
    assert run_shard(straight, out=io.StringIO()) == 0

    resumed_done = load_done(spec.trace_dir)
    straight_done = load_done(straight.trace_dir)
    assert resumed_done["content_sha256"] == straight_done["content_sha256"]
    assert resumed_done["rng_fingerprint"] == straight_done["rng_fingerprint"]


def test_shard_traces_only_contain_own_channels(tmp_path):
    plan = small_plan(tmp_path)
    for spec in plan:
        assert run_shard(spec, out=io.StringIO()) == 0
    for spec in plan:
        allowed = {c.channel_id for c in spec.channels}
        seen = {
            r.channel_id for r in SegmentedTraceReader(spec.trace_dir)
        }
        assert seen <= allowed
