"""Deterministic shard merging: ordering, idempotence, invalidation."""

from __future__ import annotations

import json

import pytest

from repro.fleet.merge import MERGE_MANIFEST_NAME, merge_shards
from repro.fleet.plan import shard_dir
from repro.traces.records import PeerReport
from repro.traces.segments import SegmentedTraceReader, SegmentedTraceStore


def report(time: float, ip: int, channel: int = 0) -> PeerReport:
    return PeerReport(
        time=time,
        peer_ip=ip,
        channel_id=channel,
        buffer_fill=0.5,
        playback_position=10,
        download_capacity_kbps=1000.0,
        upload_capacity_kbps=400.0,
        recv_rate_kbps=400.0,
        sent_rate_kbps=100.0,
        partners=(),
    )


def write_shard(campaign_dir, sid: int, reports) -> None:
    directory = shard_dir(campaign_dir, sid)
    directory.mkdir(parents=True, exist_ok=True)
    with SegmentedTraceStore(directory, records_per_segment=3) as store:
        for r in reports:
            store.append(r)


def test_merge_orders_by_time_then_shard(tmp_path):
    write_shard(tmp_path, 0, [report(10.0, 1), report(30.0, 1)])
    write_shard(tmp_path, 1, [report(20.0, 2), report(30.0, 2)])
    result = merge_shards(tmp_path, shard_ids=[0, 1])
    merged = list(SegmentedTraceReader(tmp_path))
    assert [r.time for r in merged] == [10.0, 20.0, 30.0, 30.0]
    # The time tie is broken by shard id: shard 0's report first.
    assert [r.peer_ip for r in merged] == [1, 2, 1, 2]
    assert result.records == 4
    assert result.shards == {0: 2, 1: 2}
    assert not result.reused


def test_merge_is_idempotent(tmp_path):
    write_shard(tmp_path, 0, [report(1.0, 1)])
    write_shard(tmp_path, 1, [report(2.0, 2)])
    first = merge_shards(tmp_path, shard_ids=[0, 1])
    second = merge_shards(tmp_path, shard_ids=[0, 1])
    assert second.reused
    assert second.content_sha256 == first.content_sha256
    assert second.records == first.records


def test_merge_redoes_when_inputs_change(tmp_path):
    write_shard(tmp_path, 0, [report(1.0, 1)])
    write_shard(tmp_path, 1, [report(2.0, 2)])
    first = merge_shards(tmp_path, shard_ids=[0, 1])
    # A shard grows (e.g. after its quarantine was lifted and it reran).
    directory = shard_dir(tmp_path, 1)
    store = SegmentedTraceStore.recover(directory)
    store.append(report(3.0, 3))
    store.close()
    second = merge_shards(tmp_path, shard_ids=[0, 1])
    assert not second.reused
    assert second.records == first.records + 1
    assert second.content_sha256 != first.content_sha256


def test_merge_survives_a_killed_previous_merge(tmp_path):
    write_shard(tmp_path, 0, [report(1.0, 1), report(2.0, 1)])
    write_shard(tmp_path, 1, [report(1.5, 2)])
    reference = merge_shards(tmp_path, shard_ids=[0, 1])
    # Simulate a merge killed before its manifest was published: stale
    # output segments exist, merge.json does not.
    (tmp_path / MERGE_MANIFEST_NAME).unlink()
    redone = merge_shards(tmp_path, shard_ids=[0, 1])
    assert not redone.reused
    assert redone.content_sha256 == reference.content_sha256


def test_merge_manifest_is_sorted_json(tmp_path):
    write_shard(tmp_path, 0, [report(1.0, 1)])
    merge_shards(tmp_path, shard_ids=[0])
    payload = json.loads((tmp_path / MERGE_MANIFEST_NAME).read_text())
    assert set(payload) == {"inputs", "records", "content_sha256", "shards"}


def test_merge_missing_shard_dir_raises(tmp_path):
    write_shard(tmp_path, 0, [report(1.0, 1)])
    with pytest.raises(FileNotFoundError):
        merge_shards(tmp_path, shard_ids=[0, 1])


def test_merge_requires_specs_or_ids(tmp_path):
    with pytest.raises(ValueError):
        merge_shards(tmp_path)
