"""REP1xx analyzers, baseline ratchet, and suppression accounting."""

import json
from pathlib import Path

import pytest

from repro.qa.baseline import apply_baseline, load_baseline, save_baseline
from repro.qa.engine import (
    UNUSED_SUPPRESSION_ID,
    fix_unused_suppressions,
    scan_paths,
)
from repro.qa.findings import Finding, Severity
from repro.qa.program import ProgramGraph
from repro.qa.program_rules import all_program_rules, known_program_rule_ids

FIXTURES = Path(__file__).parent / "fixtures" / "program"


def findings_for(root: Path, rule_id: str) -> list[tuple[str, int, str]]:
    graph = ProgramGraph.build_from_paths([root])
    out = []
    for rule in all_program_rules():
        if rule.rule_id != rule_id:
            continue
        for path, line, _col, message in rule.check(graph):
            out.append((path.name, line, message))
    return sorted(out)


class TestRegistry:
    def test_all_four_analyzer_ids_known(self):
        assert {"REP101", "REP102", "REP103", "REP104"} <= known_program_rule_ids()


class TestCheckpointCompleteness:
    def test_uncovered_mutable_attr_is_the_only_finding(self):
        found = findings_for(FIXTURES / "pkg", "REP101")
        assert len(found) == 1
        name, _line, message = found[0]
        assert name == "core.py"
        assert "Counter.history" in message
        assert "snapshot_engine/restore_engine" in message

    def test_peerstate_fixture_is_clean(self):
        assert findings_for(FIXTURES / "peerstate", "REP101") == []

    def test_key_asymmetry_both_directions(self, tmp_path):
        (tmp_path / "__init__.py").write_text("")
        (tmp_path / "box.py").write_text(
            "class Box:\n"
            "    def __init__(self):\n"
            "        self.a = 0\n"
            "        self.b = 0\n"
            "    def poke(self):\n"
            "        self.a += 1\n"
            "        self.b += 1\n"
            "    def checkpoint_state(self):\n"
            "        return {'a': self.a, 'b': self.b, 'ghost': 1}\n"
            "    def restore_checkpoint(self, state):\n"
            "        self.a = state['a']\n"
            "        self.b = state['b']\n"
            "        _ = state['phantom']\n"
        )
        messages = [m for _, _, m in findings_for(tmp_path, "REP101")]
        assert any("'ghost'" in m and "never read" in m for m in messages)
        assert any("'phantom'" in m and "restore" in m for m in messages)

    def test_classmethod_restore_counts_as_a_pair(self, tmp_path):
        (tmp_path / "__init__.py").write_text("")
        (tmp_path / "cell.py").write_text(
            "class Cell:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            "        self.lost = 0\n"
            "    def grow(self):\n"
            "        self.n += 1\n"
            "        self.lost += 1\n"
            "    def state(self):\n"
            "        return {'n': self.n}\n"
            "    @classmethod\n"
            "    def restore(cls, state):\n"
            "        cell = cls()\n"
            "        cell.n = state['n']\n"
            "        return cell\n"
        )
        messages = [m for _, _, m in findings_for(tmp_path, "REP101")]
        assert any("Cell.lost" in m for m in messages)
        assert not any("Cell.n " in m for m in messages)


class TestAsyncSafety:
    def test_direct_and_transitive_blocking_calls(self):
        found = findings_for(FIXTURES / "pkg", "REP102")
        assert [(n, l) for n, l, _ in found] == [("aio.py", 25), ("aio.py", 26)]
        messages = [m for _, _, m in found]
        assert any("time.sleep()" in m for m in messages)
        assert any("aio.flush -> os.fsync()" in m for m in messages)

    def test_executor_hop_and_await_are_clean(self):
        # good() calls the same blocking helper via asyncio.to_thread
        assert not any("good()" in m for _, _, m in findings_for(FIXTURES / "pkg", "REP102"))

    def test_dropped_coroutine_and_sync_lock_await(self):
        found = findings_for(FIXTURES / "pkg", "REP103")
        assert [(n, l) for n, l, _ in found] == [("aio.py", 27), ("aio.py", 33)]
        messages = [m for _, _, m in found]
        assert any("never awaited" in m for m in messages)
        assert any("synchronous lock" in m for m in messages)


class TestRngFlow:
    def test_unseeded_global_and_unordered_flows(self):
        found = findings_for(FIXTURES / "pkg", "REP104")
        by_line = {l: m for _, l, m in found}
        assert set(by_line) == {21, 25, 29}
        assert "unseeded random.Random()" in by_line[21]
        assert "global random module" in by_line[25]
        assert "set literal" in by_line[29] and "'candidates'" in by_line[29]

    def test_named_seeded_flow_is_clean(self):
        assert not any(
            "replay_ok" in m for _, _, m in findings_for(FIXTURES / "pkg", "REP104")
        )


class TestSuppressionAccounting:
    """REP000 and --fix-suppressions extend to the REP1xx ids."""

    def _write_pair(self, tmp_path, *, suppress: str) -> Path:
        (tmp_path / "__init__.py").write_text("")
        target = tmp_path / "jar.py"
        target.write_text(
            "class Jar:\n"
            "    def __init__(self):\n"
            "        self.n = 0\n"
            f"        self.scratch = []{suppress}\n"
            "    def fill(self):\n"
            "        self.n += 1\n"
            "        self.scratch.append(self.n)\n"
            "    def checkpoint_state(self):\n"
            "        return {'n': self.n}\n"
            "    def restore_checkpoint(self, state):\n"
            "        self.n = state['n']\n"
        )
        return target

    def test_noqa_consumes_program_finding(self, tmp_path):
        self._write_pair(tmp_path, suppress="  # repro: noqa[REP101] scratch pad")
        result = scan_paths([tmp_path], rules=(), program=True)
        assert result.findings == []

    def test_unused_program_suppression_flagged_in_program_mode(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("X = 1  # repro: noqa[REP101] stale\n")
        result = scan_paths([tmp_path], rules=(), program=True)
        assert [f.rule_id for f in result.findings] == [UNUSED_SUPPRESSION_ID]
        removed = fix_unused_suppressions(result)
        assert removed == 1
        assert target.read_text() == "X = 1\n"

    def test_program_suppressions_left_alone_without_program_pass(self, tmp_path):
        # A per-file scan cannot audit REP1xx usage: no REP000, no fixing.
        target = self._write_pair(
            tmp_path, suppress="  # repro: noqa[REP101] scratch pad"
        )
        result = scan_paths([tmp_path], rules=())
        assert result.findings == []
        assert result.unused_suppressions == {}
        fix_unused_suppressions(result)
        assert "noqa[REP101]" in target.read_text()


def _finding(path: str, line: int, message: str) -> Finding:
    return Finding(
        path=path,
        line=line,
        col=0,
        rule_id="REP101",
        severity=Severity.ERROR,
        message=message,
    )


class TestBaseline:
    def test_round_trip_swallows_blessed_findings(self, tmp_path):
        blessed = [_finding("src/mod.py", 3, "Widget.x is invisible")]
        baseline = tmp_path / "qa-baseline.json"
        save_baseline(baseline, blessed)
        kept, swallowed = apply_baseline(blessed, load_baseline(baseline), tmp_path)
        assert kept == [] and swallowed == 1

    def test_line_moves_do_not_invalidate(self, tmp_path):
        baseline = tmp_path / "qa-baseline.json"
        save_baseline(
            baseline, [_finding("src/mod.py", 3, "assigned in f() at line 9")]
        )
        moved = [_finding("src/mod.py", 30, "assigned in f() at line 90")]
        kept, swallowed = apply_baseline(moved, load_baseline(baseline), tmp_path)
        assert kept == [] and swallowed == 1

    def test_budget_is_a_multiset(self, tmp_path):
        # Two blessed copies of the same fingerprint: a third occurrence gates.
        twin = _finding("src/mod.py", 3, "Widget.x is invisible")
        baseline = tmp_path / "qa-baseline.json"
        save_baseline(baseline, [twin, twin])
        found = [twin, twin, twin]
        kept, swallowed = apply_baseline(found, load_baseline(baseline), tmp_path)
        assert len(kept) == 1 and swallowed == 2

    def test_corrupt_baseline_raises(self, tmp_path):
        baseline = tmp_path / "qa-baseline.json"
        baseline.write_text("{not json")
        with pytest.raises(ValueError):
            load_baseline(baseline)

    def test_saved_file_is_stable_json(self, tmp_path):
        baseline = tmp_path / "qa-baseline.json"
        save_baseline(baseline, [_finding("src/mod.py", 3, "msg")])
        payload = json.loads(baseline.read_text())
        assert payload["version"] == 1
        assert isinstance(payload["findings"], list)
