"""Per-rule fixture tests: positive, negative, and noqa-suppression cases.

Each rule has three snippet files under ``fixtures/``; REP002's live in
``fixtures/simulator/`` because the rule is path-scoped to the
simulated-time packages.
"""

from pathlib import Path

import pytest

from repro.qa import all_rules, scan_paths
from repro.qa.engine import UNUSED_SUPPRESSION_ID

FIXTURES = Path(__file__).parent / "fixtures"

#: rule id -> fixture directory (REP002 needs a scoped path segment).
CASES = {
    "REP001": FIXTURES,
    "REP002": FIXTURES / "simulator",
    "REP003": FIXTURES,
    "REP004": FIXTURES,
    "REP005": FIXTURES,
    "REP006": FIXTURES,
    "REP007": FIXTURES,
    "REP008": FIXTURES,
}


def findings_for(path: Path) -> list:
    return scan_paths([path]).findings


def fixture(rule_id: str, kind: str) -> Path:
    path = CASES[rule_id] / f"{rule_id.lower()}_{kind}.py"
    assert path.exists(), f"missing fixture {path}"
    return path


class TestFixtureMatrix:
    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_positive_fires(self, rule_id):
        findings = findings_for(fixture(rule_id, "pos"))
        assert any(f.rule_id == rule_id for f in findings), (
            f"{rule_id} did not fire on its positive fixture: {findings}"
        )

    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_positive_gates_cli(self, rule_id, capsys):
        from repro.cli import main

        assert main(["qa", str(fixture(rule_id, "pos"))]) == 1
        assert rule_id in capsys.readouterr().out

    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_negative_is_clean(self, rule_id):
        findings = findings_for(fixture(rule_id, "neg"))
        assert [f for f in findings if f.rule_id == rule_id] == []

    @pytest.mark.parametrize("rule_id", sorted(CASES))
    def test_noqa_suppresses_without_leftovers(self, rule_id):
        # the suppression silences the rule AND counts as used (no REP000)
        findings = findings_for(fixture(rule_id, "noqa"))
        assert [f for f in findings if f.rule_id == rule_id] == []
        assert [f for f in findings if f.rule_id == UNUSED_SUPPRESSION_ID] == []


class TestScoping:
    def test_rep002_out_of_scope_path_is_exempt(self):
        findings = findings_for(FIXTURES / "rep002_out_of_scope.py")
        assert [f for f in findings if f.rule_id == "REP002"] == []

    def test_rep002_fires_on_raw_clock_reads_in_obs(self):
        # perf_counter/monotonic inside an obs/ path are findings: the
        # observability layer must go through its injectable clock seam.
        findings = findings_for(FIXTURES / "obs" / "rep002_pos.py")
        hits = [f for f in findings if f.rule_id == "REP002"]
        assert len(hits) == 2, hits

    def test_rep002_obs_clock_seam_pattern_is_clean(self):
        findings = findings_for(FIXTURES / "obs" / "rep002_neg.py")
        assert [f for f in findings if f.rule_id == "REP002"] == []

    def test_rep002_fires_on_raw_clock_reads_in_ingest(self):
        # The ingest package is scoped in: backoff deadlines and commit
        # timings must come from the injectable clock seam.
        findings = findings_for(FIXTURES / "ingest" / "rep002_pos.py")
        hits = [f for f in findings if f.rule_id == "REP002"]
        assert len(hits) == 2, hits

    def test_rep002_ingest_clock_seam_pattern_is_clean(self):
        findings = findings_for(FIXTURES / "ingest" / "rep002_neg.py")
        assert [f for f in findings if f.rule_id == "REP002"] == []

    def test_shipped_ingest_package_is_clean(self):
        # No raw wall-clock reads, no global RNG: the reporter's jitter
        # comes from a seeded stream and all time flows through Clock.
        import repro.ingest

        pkg = Path(repro.ingest.__file__).parent
        findings = scan_paths([pkg]).findings
        assert findings == [], findings

    def test_shipped_obs_package_is_clean(self):
        # The real package's only wall-clock read is the acknowledged
        # seam in repro/obs/clock.py; everything else must stay clean.
        import repro.obs

        pkg = Path(repro.obs.__file__).parent
        findings = scan_paths([pkg]).findings
        assert findings == [], findings

    def test_rep004_exempts_test_modules(self):
        from pathlib import PurePath

        from repro.qa import scan_source

        source = "def _check(x: float) -> bool:\n    return x == 0.5\n"
        hit, _ = scan_source(source, PurePath("src/repro/metrics.py"))
        clean, _ = scan_source(source, PurePath("tests/test_metrics.py"))
        assert any(f.rule_id == "REP004" for f in hit)
        assert not any(f.rule_id == "REP004" for f in clean)


class TestRegistry:
    def test_eight_rules_registered(self):
        ids = [rule.rule_id for rule in all_rules()]
        assert ids == [f"REP00{i}" for i in range(1, 9)]

    def test_rules_document_themselves(self):
        for rule in all_rules():
            assert rule.title and rule.rationale
