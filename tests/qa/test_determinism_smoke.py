"""Determinism smoke test (the PR's acceptance scenario).

Two identically-seeded ``UUSeeSystem`` runs — with and without a fault
plan — must write byte-identical traces *and* consume identical RNG
draw sequences (count and values), all without ever touching the global
RNG, the wall clock, or OS entropy.
"""

import hashlib
from pathlib import Path

import pytest

from repro.qa import DrawAudit, assert_identical_draws, deterministic_guard
from repro.simulator import SystemConfig, UUSeeSystem
from repro.simulator.failures import Brownout, CrashWindow, FaultPlan
from repro.traces import JsonlTraceStore

HOUR = 3600.0


def _fault_plan() -> FaultPlan:
    return FaultPlan(
        tracker_brownouts=[Brownout(0.5 * HOUR, 1.0 * HOUR, capacity=0.3)],
        crashes=[CrashWindow(1.0 * HOUR, 1.5 * HOUR, rate_per_hour=0.5)],
    )


def _run_to_file(path: Path, faults: FaultPlan | None) -> None:
    config = SystemConfig(
        seed=2006,
        base_concurrency=120.0,
        flash_crowd=None,
        faults=faults,
    )
    store = JsonlTraceStore(path)
    system = UUSeeSystem(config, store)
    system.run(days=0.1)
    store.close()


def _sha256(path: Path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


@pytest.mark.parametrize("faulted", [False, True], ids=["clean", "fault-plan"])
def test_double_run_bit_identical_and_draw_identical(tmp_path, faulted):
    faults = _fault_plan() if faulted else None
    paths = [tmp_path / "a.jsonl", tmp_path / "b.jsonl"]
    snapshots = []
    for path in paths:
        with deterministic_guard():
            with DrawAudit() as audit:
                _run_to_file(path, faults)
        snapshots.append(audit.snapshot())

    assert _sha256(paths[0]) == _sha256(paths[1]), "trace bytes diverged"
    assert snapshots[0] == snapshots[1], "RNG draw sequences diverged"
    assert snapshots[0].total > 1_000, "audit saw implausibly few draws"


def test_fault_plan_changes_draws_but_stays_deterministic(tmp_path):
    # same seed, different fault plan => different draw sequence; the
    # audit must tell the two scenarios apart (it is not a constant).
    clean = tmp_path / "clean.jsonl"
    faulted = tmp_path / "faulted.jsonl"
    with DrawAudit() as audit_clean:
        _run_to_file(clean, None)
    with DrawAudit() as audit_faulted:
        _run_to_file(faulted, _fault_plan())
    assert audit_clean.snapshot() != audit_faulted.snapshot()
    assert _sha256(clean) != _sha256(faulted)


def test_assert_identical_draws_end_to_end(tmp_path):
    counter = [0]

    def run() -> str:
        counter[0] += 1
        path = tmp_path / f"run{counter[0]}.jsonl"
        _run_to_file(path, None)
        return _sha256(path)

    outcomes = assert_identical_draws(run)
    digests = {digest for digest, _ in outcomes}
    assert len(digests) == 1
