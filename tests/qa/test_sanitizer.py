"""Runtime sanitizer tests: the guard and the draw audit."""

import os
import random
import time

import pytest

from repro.qa import (
    DrawAudit,
    NondeterminismError,
    assert_identical_draws,
    audited,
    deterministic_guard,
)


class TestDeterministicGuard:
    def test_catches_planted_global_draw(self):
        # the acceptance scenario: a deliberately planted random.random()
        def planted() -> float:
            return random.random()  # repro: noqa[REP001] exercising the guard

        with deterministic_guard():
            with pytest.raises(NondeterminismError, match="random.random"):
                planted()

    def test_catches_other_global_draws(self):
        with deterministic_guard():
            for draw in (
                lambda: random.randrange(10),  # repro: noqa[REP001] exercising the guard
                lambda: random.choice([1, 2]),  # repro: noqa[REP001] exercising the guard
                lambda: random.uniform(0.0, 1.0),  # repro: noqa[REP001] exercising the guard
                lambda: random.seed(0),  # repro: noqa[REP001] exercising the guard
            ):
                with pytest.raises(NondeterminismError):
                    draw()

    def test_catches_wall_clock_and_urandom(self):
        with deterministic_guard():
            with pytest.raises(NondeterminismError, match="time.time"):
                time.time()
            with pytest.raises(NondeterminismError, match="os.urandom"):
                os.urandom(4)

    def test_injected_generator_still_works(self):
        with deterministic_guard():
            rng = random.Random(42)
            values = [rng.random() for _ in range(3)]
        control = random.Random(42)
        assert values == [control.random() for _ in range(3)]

    def test_everything_restored_after_exit(self):
        before = time.time
        with deterministic_guard():
            pass
        assert time.time is before
        assert isinstance(random.random(), float)  # repro: noqa[REP001] exercising the guard
        assert isinstance(os.urandom(2), bytes)

    def test_restored_even_on_exception(self):
        with pytest.raises(RuntimeError, match="boom"):
            with deterministic_guard():
                raise RuntimeError("boom")
        assert isinstance(random.random(), float)  # repro: noqa[REP001] exercising the guard

    def test_narrowing_flags(self):
        with deterministic_guard(wall_clock=False, entropy=False):
            assert time.time() > 0
            assert len(os.urandom(2)) == 2
        with deterministic_guard(allow=["random"]):
            assert isinstance(random.random(), float)  # repro: noqa[REP001] exercising the guard
            with pytest.raises(NondeterminismError):
                random.randrange(3)  # repro: noqa[REP001] exercising the guard


class TestDrawAudit:
    def test_counts_and_fingerprint(self):
        with DrawAudit() as audit:
            rng = random.Random(1)
            rng.random()
            rng.random()
            rng.randrange(100)  # getrandbits path
        snap = audit.snapshot()
        assert snap.float_draws == 2
        assert snap.bit_draws >= 1
        assert snap.total == snap.float_draws + snap.bit_draws
        assert len(snap.fingerprint) == 64

    def test_identical_seeds_identical_snapshots(self):
        def run() -> list[float]:
            rng = random.Random(7)
            return [rng.gauss(0.0, 1.0) for _ in range(50)]

        (out_a, snap_a), (out_b, snap_b) = assert_identical_draws(run)
        assert out_a == out_b
        assert snap_a == snap_b

    def test_divergent_draw_counts_detected(self):
        calls = [0]

        def leaky() -> None:
            calls[0] += 1
            rng = random.Random(7)
            for _ in range(calls[0]):  # draws once more on every run
                rng.random()

        with pytest.raises(NondeterminismError, match="diverged"):
            assert_identical_draws(leaky)

    def test_divergent_values_detected_even_with_equal_counts(self):
        calls = [0]

        def shifty() -> None:
            calls[0] += 1
            random.Random(calls[0]).random()  # same count, different value

        with pytest.raises(NondeterminismError, match="diverged"):
            assert_identical_draws(shifty)

    def test_audited_returns_result(self):
        result, snap = audited(lambda: random.Random(3).random())
        assert isinstance(result, float)
        assert snap.float_draws == 1

    def test_not_reentrant(self):
        with DrawAudit():
            with pytest.raises(RuntimeError, match="reentrant"):
                with DrawAudit():
                    pass  # pragma: no cover

    def test_instrumentation_removed_after_exit(self):
        with DrawAudit() as audit:
            random.Random(0).random()
        count = audit.snapshot().total
        random.Random(0).random()  # outside the audit: must not count
        assert audit.snapshot().total == count
