"""Engine behaviour: suppression audit, fixing, output formats, CLI gate."""

import json
from pathlib import Path, PurePath

from repro.cli import main
from repro.qa import scan_paths, scan_source
from repro.qa.engine import (
    PARSE_ERROR_ID,
    UNUSED_SUPPRESSION_ID,
    fix_unused_suppressions,
)
from repro.qa.report import render_json


class TestUnusedSuppressions:
    def test_unused_noqa_is_reported(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(
            "def _f(x: int) -> int:\n"
            "    return x + 1  # repro: noqa[REP004] stale reason\n"
        )
        result = scan_paths([target])
        assert [f.rule_id for f in result.findings] == [UNUSED_SUPPRESSION_ID]
        assert result.unused_suppressions[str(target)] == {2: {"REP004"}}

    def test_unknown_rule_id_is_flagged_as_unknown(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("X = 1  # repro: noqa[REP777]\n")
        result = scan_paths([target])
        assert "unknown rule" in result.findings[0].message

    def test_mixed_line_keeps_used_drops_unused(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text(
            "def _guard(x: float) -> bool:\n"
            "    return x == 0.0  # repro: noqa[REP004,REP005] sentinel\n"
        )
        result = scan_paths([target])
        # REP004 suppression is used; REP005's matches nothing
        assert [f.rule_id for f in result.findings] == [UNUSED_SUPPRESSION_ID]
        removed = fix_unused_suppressions(result)
        assert removed == 1
        text = target.read_text()
        assert "noqa[REP004]" in text and "REP005" not in text
        assert "sentinel" in text  # the reason survives a partial fix
        assert scan_paths([target]).ok

    def test_fix_removes_whole_comment_when_empty(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("X = 1  # repro: noqa[REP004] stale\n")
        result = scan_paths([target])
        fix_unused_suppressions(result)
        assert target.read_text() == "X = 1\n"
        assert scan_paths([target]).ok

    def test_docstring_mention_is_not_a_suppression(self):
        source = '"""Use `# repro: noqa[REP004]` to suppress."""\nX = 1\n'
        findings, unused = scan_source(source, PurePath("m.py"))
        assert findings == [] and unused == {}


class TestOutputs:
    def test_parse_error_is_a_finding(self, tmp_path):
        target = tmp_path / "broken.py"
        target.write_text("def broken(:\n")
        result = scan_paths([target])
        assert [f.rule_id for f in result.findings] == [PARSE_ERROR_ID]
        assert not result.ok

    def test_json_payload_shape(self, tmp_path):
        target = tmp_path / "module.py"
        target.write_text("def visible():\n    return 1\n")
        payload = json.loads(render_json(scan_paths([target])))
        assert payload["ok"] is False
        assert payload["files_scanned"] == 1
        assert payload["counts"] == {"REP007": 1}
        finding = payload["findings"][0]
        assert finding["rule"] == "REP007"
        assert finding["severity"] == "warning"
        assert finding["line"] == 1

    def test_scan_is_deterministic(self, tmp_path):
        for name in ("b.py", "a.py", "c.py"):
            (tmp_path / name).write_text("def visible():\n    return 1\n")
        first = scan_paths([tmp_path])
        second = scan_paths([tmp_path])
        assert first.findings == second.findings
        paths = [f.path for f in first.findings]
        assert paths == sorted(paths)


class TestCli:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("def visible() -> int:\n    return 1\n")
        assert main(["qa", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        (tmp_path / "bad.py").write_text("def visible():\n    return 1\n")
        assert main(["qa", str(tmp_path)]) == 1
        assert "REP007" in capsys.readouterr().out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main(["qa", str(tmp_path / "nope")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_json_flag(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text("X = 1\n")
        assert main(["qa", "--json", str(tmp_path)]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True

    def test_fix_suppressions_flag(self, tmp_path, capsys):
        target = tmp_path / "module.py"
        target.write_text("X = 1  # repro: noqa[REP004] stale\n")
        assert main(["qa", "--fix-suppressions", str(tmp_path)]) == 0
        assert target.read_text() == "X = 1\n"

    def test_list_rules(self, capsys):
        assert main(["qa", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for i in range(1, 9):
            assert f"REP00{i}" in out

    def test_gate_on_repo_src_is_clean(self, capsys):
        # the acceptance criterion: the shipped tree passes its own gate
        src = Path(__file__).resolve().parents[2] / "src"
        assert main(["qa", str(src)]) == 0
