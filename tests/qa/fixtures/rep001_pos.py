"""REP001 positive: draws from the module-level (shared, unseeded) RNG."""

import random


def _jitter() -> float:
    return random.uniform(0.0, 1.0)
