"""Async fixtures: blocking reach, dropped coroutines, sync-lock awaits."""

from __future__ import annotations

import asyncio
import os
import threading
import time


def flush(fd: int) -> None:
    os.fsync(fd)


async def emit(fd: int) -> None:
    await asyncio.sleep(0)


async def good(fd: int) -> None:
    await asyncio.to_thread(flush, fd)  # executor hop: no call edge
    await emit(fd)


async def bad(fd: int) -> None:
    time.sleep(0.1)  # REP102: direct blocking call
    flush(fd)  # REP102: transitively reaches os.fsync
    emit(fd)  # REP103: coroutine never awaited or scheduled


async def guarded(fd: int) -> None:
    lock = threading.Lock()
    with lock:
        await emit(fd)  # REP103: await while holding a sync lock
