"""Core module: stateful engine checkpointed by pkg.checkpoint."""

from __future__ import annotations

import random

from pkg.util import tick_label  # cycle: pkg.util imports pkg.core back


class Counter:
    def __init__(self) -> None:
        self.value = 0
        self.history: list[int] = []  # mutable, never checkpointed (fixture!)

    def bump(self) -> None:
        self.value += 1
        self.history.append(self.value)


class Engine:
    def __init__(self, seed: int) -> None:
        self.rng = random.Random(seed)
        self.counter = Counter()
        self.ticks = 0
        self.label = tick_label(self.ticks)

    def step(self) -> None:
        self.ticks += 1
        self.counter.bump()
        self.label = tick_label(self.ticks)
