"""Checkpoint pair for Engine: covers everything but Counter.history."""

from __future__ import annotations

from typing import Any

from pkg.core import Engine


def snapshot_engine(engine: Engine) -> dict[str, Any]:
    return {
        "rng": engine.rng.getstate(),
        "ticks": engine.ticks,
        "counter_value": engine.counter.value,
        "label": engine.label,
    }


def restore_engine(engine: Engine, state: dict[str, Any]) -> None:
    engine.rng.setstate(state["rng"])
    engine.ticks = state["ticks"]
    engine.counter.value = state["counter_value"]
    engine.label = state["label"]
