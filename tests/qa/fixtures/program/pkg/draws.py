"""RNG-flow fixtures: named, unseeded, global, and unordered flows."""

from __future__ import annotations

import random


def draw(rng: random.Random, n: int) -> int:
    return rng.randrange(n)


def pick(rng: random.Random, candidates: list[int]) -> int:
    return rng.choice(candidates)


def replay_ok(rng: random.Random, options: set[int]) -> int:
    return draw(rng, 10) + pick(rng, sorted(options))


def replay_unseeded() -> int:
    return draw(random.Random(), 10)  # REP104: fresh unseeded stream


def replay_global() -> int:
    return draw(random, 10)  # REP104: the hidden shared module stream


def replay_unordered(rng: random.Random) -> int:
    return pick(rng, {3, 1, 2})  # REP104: set order crosses the boundary
