"""Utility module closing the import cycle with pkg.core."""

from __future__ import annotations

from pkg.core import Counter, Engine


class TurboEngine(Engine):
    """Subclass with no overrides: lookup_method must climb to Engine."""


def tick_label(ticks: int) -> str:
    return f"t{ticks}"


def reset(engine: Engine) -> None:
    # Attribute aliasing: the write lands on Counter.value through a
    # local alias, from a function outside the Counter class.
    c = engine.counter
    c.value = 0


def fresh_counter() -> Counter:
    return Counter()
