"""Synthetic package for program-graph builder tests.

Exercises cyclic imports (core <-> util), a re-export (PublicEngine),
attribute aliasing, and one deliberately uncheckpointed mutable field
(Counter.history) that the REP101 fixture tests assert on.  These
modules are parsed by the analyzers, never imported at runtime.
"""

from pkg.core import Engine as PublicEngine

__all__ = ["PublicEngine"]
