"""Trimmed copy of the simulator's Peer with an explicit checkpoint pair.

The mutation test copies this package to a temp dir, injects an extra
mutable field that the pair does not capture, and asserts REP101 fires.
The pristine package here must therefore scan *clean*.
"""
