"""Checkpoint pair covering every mutable PeerLite field."""

from __future__ import annotations

from typing import Any

from peerstate.peer import PeerLite


def snapshot_peer(peer: PeerLite) -> dict[str, Any]:
    return {
        "partners": dict(peer.partners),
        "health": peer.health,
        "starving_ticks": peer.starving_ticks,
        "depth": peer.depth,
    }


def restore_peer(peer: PeerLite, state: dict[str, Any]) -> None:
    peer.partners = dict(state["partners"])
    peer.health = state["health"]
    peer.starving_ticks = state["starving_ticks"]
    peer.depth = state["depth"]
