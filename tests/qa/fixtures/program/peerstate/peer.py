"""A cut-down Peer: identity fields plus the mutable protocol state."""

from __future__ import annotations


class PeerLite:
    def __init__(self, peer_id: int, *, upload_kbps: float, join_time: float) -> None:
        self.peer_id = peer_id
        self.upload_kbps = upload_kbps
        self.join_time = join_time
        self.partners: dict[int, float] = {}
        self.health = 0.0
        self.starving_ticks = 0
        self.depth = 64

    def tick(self, now: float, recv_kbps: float, rate_kbps: float) -> None:
        self.health = 0.9 * self.health + 0.1 * (recv_kbps / rate_kbps)
        self.starving_ticks = self.starving_ticks + 1 if self.health < 0.5 else 0

    def adopt(self, supplier_id: int, bandwidth: float, depth: int) -> None:
        self.partners[supplier_id] = bandwidth
        self.depth = min(self.depth, depth + 1)
