"""REP004 suppression: exact sentinel comparison acknowledged."""


def _is_unset(value: float) -> bool:
    return value == -1.0  # repro: noqa[REP004] -1.0 is an exact sentinel
