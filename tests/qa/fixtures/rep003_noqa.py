"""REP003 suppression: unordered feed acknowledged with a reason."""

import random


def _pick(rng: random.Random, table: dict[int, str]) -> str:
    return rng.choice(list(table.values()))  # repro: noqa[REP003] fixture demo only
