"""REP001 negative: draws from an injected, seeded generator."""

import random


def _jitter(rng: random.Random) -> float:
    return rng.uniform(0.0, 1.0)


def _make_rng(seed: int) -> random.Random:
    return random.Random(seed)
