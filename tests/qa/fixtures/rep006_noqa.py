"""REP006 suppression: shared default acknowledged with a reason."""


def _collect(item: int, acc: list[int] = []) -> list[int]:  # repro: noqa[REP006] fixture demo only
    acc.append(item)
    return acc
