"""REP007 positive: public function with no return annotation."""


def answer():
    return 42
