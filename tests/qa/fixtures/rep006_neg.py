"""REP006 negative: None default, constructed inside the body."""


def _collect(item: int, acc: list[int] | None = None) -> list[int]:
    if acc is None:
        acc = []
    acc.append(item)
    return acc
