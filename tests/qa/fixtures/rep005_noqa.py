"""REP005 suppression: broad handler acknowledged with a reason."""


def _read(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except Exception:  # repro: noqa[REP005] fixture demo only
        return ""
