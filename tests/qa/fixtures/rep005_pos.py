"""REP005 positive: bare and broad exception handlers."""


def _read(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except Exception:
        return ""


def _read_quietly(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except:  # noqa: E722 (deliberately bare for the fixture)
        return ""
