"""REP008 suppression: in-loop mutation acknowledged with a reason."""


def _sweep(table: dict[int, str]) -> None:
    for key, value in table.items():
        if not value:
            del table[key]  # repro: noqa[REP008] fixture demo only
