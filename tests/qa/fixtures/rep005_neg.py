"""REP005 negative: handler names the exceptions the block can raise."""


def _read(path: str) -> str:
    try:
        with open(path, encoding="utf-8") as handle:
            return handle.read()
    except (OSError, UnicodeDecodeError):
        return ""
