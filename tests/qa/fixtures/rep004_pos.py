"""REP004 positive: exact float equality guarding a division."""


def _ratio(num: float, den: float) -> float:
    if den == 0.0:
        return 0.0
    return num / den
