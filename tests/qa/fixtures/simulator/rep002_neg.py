"""REP002 negative: time flows in from the event engine."""


def _stamp(now: float) -> float:
    return now
