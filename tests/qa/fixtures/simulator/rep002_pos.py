"""REP002 positive: wall-clock read in a simulated-time package."""

import time


def _stamp() -> float:
    return time.time()
