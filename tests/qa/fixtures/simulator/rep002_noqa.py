"""REP002 suppression: wall-clock read acknowledged with a reason."""

import time


def _stamp() -> float:
    return time.time()  # repro: noqa[REP002] fixture demo only
