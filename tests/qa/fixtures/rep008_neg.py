"""REP008 negative: iterate a snapshot, mutate the original."""


def _sweep(table: dict[int, str]) -> None:
    for key, value in list(table.items()):
        if not value:
            del table[key]


def _drain(live: set[int]) -> None:
    doomed = [member for member in live if member < 0]
    for member in doomed:
        live.discard(member)
