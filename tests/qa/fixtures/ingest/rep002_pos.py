"""REP002 positive: raw wall-clock reads in an ingest module.

The ingestion path computes backoff deadlines and commit timings; those
must flow through the ``repro.obs.clock`` seam (WallClock/LoopClock in
production, ManualClock in tests), never ``time.*`` directly — a retry
schedule that reads the host clock cannot be replayed.
"""

import time


def _backoff_deadline(delay_s: float) -> float:
    return time.monotonic() + delay_s


def _commit_started() -> float:
    return time.perf_counter()
