"""REP002 negative: ingest timing flows through the injectable clock seam."""


class _LoopClock:
    def __init__(self, loop) -> None:
        self._loop = loop

    def now(self) -> float:
        return self._loop.time()


def _backoff_deadline(clock: _LoopClock, delay_s: float) -> float:
    return clock.now() + delay_s
