"""REP006 positive: mutable default argument shared across calls."""


def _collect(item: int, acc: list[int] = []) -> list[int]:
    acc.append(item)
    return acc
