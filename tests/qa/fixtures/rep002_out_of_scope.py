"""REP002 scoping: wall-clock reads are allowed outside simulator/traces/core."""

import time


def _stamp() -> float:
    return time.time()
