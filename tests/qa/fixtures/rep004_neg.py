"""REP004 negative: epsilon-band comparison."""


def _ratio(num: float, den: float) -> float:
    if abs(den) <= 1e-12:
        return 0.0
    return num / den
