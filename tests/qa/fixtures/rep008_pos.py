"""REP008 positive: container mutated while being iterated."""


def _sweep(table: dict[int, str]) -> None:
    for key, value in table.items():
        if not value:
            del table[key]


def _drain(live: set[int]) -> None:
    for member in live:
        if member < 0:
            live.discard(member)
