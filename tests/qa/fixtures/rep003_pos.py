"""REP003 positive: RNG choice fed by a dict view's iteration order."""

import random


def _pick(rng: random.Random, table: dict[int, str]) -> str:
    return rng.choice(list(table.values()))
