"""REP007 suppression: missing annotation acknowledged with a reason."""


def answer():  # repro: noqa[REP007] fixture demo only
    return 42
