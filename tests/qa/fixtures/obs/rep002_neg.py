"""REP002 negative: obs timing flows through the injectable clock seam."""


class _ManualClock:
    def __init__(self, start: float = 0.0) -> None:
        self._now = start

    def now(self) -> float:
        return self._now


def _span_start(clock: _ManualClock) -> float:
    return clock.now()
