"""REP002 positive: raw monotonic/perf_counter reads in an obs module.

Observability code must never read the wall clock directly — durations
flow through the injectable seam in ``repro.obs.clock`` so tests can
drive them deterministically.
"""

import time


def _span_start() -> float:
    return time.perf_counter()


def _heartbeat() -> float:
    return time.monotonic()
