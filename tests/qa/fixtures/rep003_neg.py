"""REP003 negative: candidates are sorted before the draw."""

import random


def _pick(rng: random.Random, table: dict[int, str]) -> str:
    return rng.choice(sorted(table.values()))
