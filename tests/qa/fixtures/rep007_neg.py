"""REP007 negative: public annotated, private and nested exempt."""


def answer() -> int:
    def helper():
        return 21

    return helper() * 2


def _private_helper():
    return 0
