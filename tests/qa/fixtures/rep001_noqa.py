"""REP001 suppression: global draw acknowledged with a reason."""

import random


def _jitter() -> float:
    return random.uniform(0.0, 1.0)  # repro: noqa[REP001] fixture demo only
