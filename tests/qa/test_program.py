"""Program-graph builder: naming, cycles, re-exports, aliasing, hints.

These tests drive :class:`ProgramGraph` over the synthetic package in
``fixtures/program/pkg`` (cyclic imports, a re-export, attribute
aliasing) — the graph's behaviour on pathological shapes is pinned here
so the REP1xx analyzers can assume it.
"""

import ast
from pathlib import Path

import pytest

from repro.qa.program import ProgramGraph, module_name_for

FIXTURES = Path(__file__).parent / "fixtures" / "program"


@pytest.fixture(scope="module")
def graph():
    return ProgramGraph.build_from_paths([FIXTURES / "pkg"])


class TestModuleNaming:
    def test_names_climb_init_parents(self):
        assert module_name_for(FIXTURES / "pkg" / "core.py") == "pkg.core"
        assert module_name_for(FIXTURES / "pkg" / "__init__.py") == "pkg"

    def test_all_modules_collected(self, graph):
        assert set(graph.modules) == {
            "pkg",
            "pkg.aio",
            "pkg.checkpoint",
            "pkg.core",
            "pkg.draws",
            "pkg.util",
        }


class TestImportsAndReexports:
    def test_cyclic_imports_resolve_both_ways(self, graph):
        core = graph.modules["pkg.core"]
        util = graph.modules["pkg.util"]
        assert graph.resolve(core, "tick_label") == "pkg.util.tick_label"
        assert graph.resolve(util, "Engine") == "pkg.core.Engine"

    def test_reexport_canonicalizes_to_definition(self, graph):
        assert graph.canonical("pkg.PublicEngine") == "pkg.core.Engine"

    def test_canonical_is_identity_for_definitions(self, graph):
        assert graph.canonical("pkg.core.Engine") == "pkg.core.Engine"


class TestClassTable:
    def test_classes_collected(self, graph):
        assert set(graph.classes) == {
            "pkg.core.Counter",
            "pkg.core.Engine",
            "pkg.util.TurboEngine",
        }

    def test_init_only_attr_is_immutable(self, graph):
        engine = graph.classes["pkg.core.Engine"]
        assert not engine.attrs["rng"].mutable
        assert "__init__" in engine.attrs["rng"].init_writes

    def test_runtime_writes_make_attr_mutable(self, graph):
        engine = graph.classes["pkg.core.Engine"]
        assert engine.attrs["ticks"].mutable
        assert "step" in engine.attrs["ticks"].other_writes

    def test_container_mutation_counts(self, graph):
        counter = graph.classes["pkg.core.Counter"]
        assert counter.attrs["history"].mutable
        assert "bump" in counter.attrs["history"].mutations

    def test_foreign_write_through_alias(self, graph):
        # util.reset writes Counter.value via `c = engine.counter; c.value = 0`
        value = graph.classes["pkg.core.Counter"].attrs["value"]
        assert any(fn == "pkg.util.reset" for _, fn in value.foreign_writes)

    def test_attr_class_hints_from_constructor(self, graph):
        engine = graph.classes["pkg.core.Engine"]
        assert engine.attrs["counter"].class_hints == ("pkg.core.Counter",)


class TestResolution:
    def test_chain_classes_follows_attr_hints(self, graph):
        assert graph.chain_classes(("pkg.core.Engine",), ("counter",)) == (
            "pkg.core.Counter",
        )

    def test_lookup_method_climbs_bases(self, graph):
        found = graph.lookup_method("pkg.util.TurboEngine", "step")
        assert found is not None
        assert found.qualname == "pkg.core.Engine.step"

    def test_resolve_annotation_union_and_string(self, graph):
        util = graph.modules["pkg.util"]
        union = ast.parse("x: Engine | None").body[0].annotation
        assert graph.resolve_annotation(util, union) == ("pkg.core.Engine",)
        text = ast.parse('x: "Engine"').body[0].annotation
        assert graph.resolve_annotation(util, text) == ("pkg.core.Engine",)

    def test_param_classes_from_annotations(self, graph):
        reset = graph.modules["pkg.util"].functions["reset"]
        assert reset.param_classes["engine"] == ("pkg.core.Engine",)


class TestCallGraph:
    def test_cross_module_call_resolved(self, graph):
        step = graph.classes["pkg.core.Engine"].methods["step"]
        targets = {site.target for site in step.calls}
        assert "pkg.util.tick_label" in targets
        assert "pkg.core.Counter.bump" in targets

    def test_external_calls_kept_verbatim(self, graph):
        bad = graph.modules["pkg.aio"].functions["bad"]
        assert "time.sleep" in {site.target for site in bad.calls}

    def test_discarded_flag_on_bare_statement_calls(self, graph):
        bad = graph.modules["pkg.aio"].functions["bad"]
        dropped = [s for s in bad.calls if s.target == "pkg.aio.emit"]
        assert dropped and all(s.discarded and not s.awaited for s in dropped)

    def test_awaited_flag(self, graph):
        good = graph.modules["pkg.aio"].functions["good"]
        awaited = [s for s in good.calls if s.target == "pkg.aio.emit"]
        assert awaited and all(s.awaited for s in awaited)
