"""Mutation tests: each REP1xx analyzer must catch a seeded defect.

A pristine copy of ``src/repro`` scans clean under ``--program``; the
same copy with a hidden uncheckpointed field, a blocking call inside an
``async def``, or an unattributed RNG draw must gate.  This is the
end-to-end proof that the analyzers see the *real* tree, not just the
synthetic fixtures.
"""

import shutil
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.qa.engine import scan_paths

REPO_SRC = Path(__file__).resolve().parents[2] / "src" / "repro"
PEERSTATE = Path(__file__).parent / "fixtures" / "program" / "peerstate"


def _copy_tree(tmp_path: Path) -> Path:
    dest = tmp_path / "repro"
    shutil.copytree(REPO_SRC, dest, ignore=shutil.ignore_patterns("__pycache__"))
    return dest


def _mutate(path: Path, old: str, new: str) -> None:
    text = path.read_text()
    assert old in text, f"mutation anchor missing from {path.name}: {old!r}"
    path.write_text(text.replace(old, new, 1))


def _program_findings(root: Path) -> list[str]:
    result = scan_paths([root], program=True)
    return [f"{f.rule_id} {f.message}" for f in result.findings]


@pytest.fixture(scope="module")
def clean_findings(tmp_path_factory):
    tree = _copy_tree(tmp_path_factory.mktemp("clean"))
    return _program_findings(tree)


class TestRealTreeMutations:
    def test_pristine_copy_is_clean(self, clean_findings):
        assert clean_findings == []

    def test_hidden_uncheckpointed_field_fires_rep101(self, tmp_path, clean_findings):
        tree = _copy_tree(tmp_path)
        target = tree / "traces" / "server.py"
        _mutate(target, "        self.received = 0\n",
                "        self.received = 0\n        self.mutant_seen = 0\n")
        _mutate(target, "        self.received += 1\n",
                "        self.received += 1\n        self.mutant_seen += 1\n")
        found = _program_findings(tree)
        assert any(
            "REP101" in f and "TraceServer.mutant_seen" in f for f in found
        ), found
        assert not any(f in clean_findings for f in found if "REP101" in f)

    def test_blocking_call_in_async_def_fires_rep102(self, tmp_path):
        tree = _copy_tree(tmp_path)
        target = tree / "ingest" / "service.py"
        _mutate(target, "import asyncio\n", "import asyncio\nimport time\n")
        _mutate(target, "        await self._queue.put(None)",
                "        time.sleep(0.0)\n        await self._queue.put(None)")
        found = _program_findings(tree)
        assert any(
            "REP102" in f and "_drain_and_seal" in f and "time.sleep" in f
            for f in found
        ), found

    def test_unattributed_rng_draw_fires_rep104(self, tmp_path):
        tree = _copy_tree(tmp_path)
        target = tree / "traces" / "server.py"
        target.write_text(
            target.read_text()
            + "\n\ndef _mutant_draw(rng):\n"
            "    return rng.random()\n"
            "\n\ndef _mutant_resample():\n"
            "    return _mutant_draw(random.Random())\n"
        )
        found = _program_findings(tree)
        assert any(
            "REP104" in f and "_mutant_resample" in f and "unseeded" in f
            for f in found
        ), found


class TestPeerMutation:
    def test_uncheckpointed_peer_field_fires_rep101(self, tmp_path):
        dest = tmp_path / "peerstate"
        shutil.copytree(PEERSTATE, dest, ignore=shutil.ignore_patterns("__pycache__"))
        _mutate(dest / "peer.py", "        self.depth = 64\n",
                "        self.depth = 64\n        self.burst_credit = 0.0\n")
        _mutate(dest / "peer.py",
                "        self.partners[supplier_id] = bandwidth\n",
                "        self.partners[supplier_id] = bandwidth\n"
                "        self.burst_credit += bandwidth\n")
        found = _program_findings(dest)
        assert any("PeerLite.burst_credit" in f for f in found), found


class TestGate:
    def test_program_pass_stays_under_ten_seconds(self):
        start = time.monotonic()
        result = scan_paths([REPO_SRC], program=True)
        elapsed = time.monotonic() - start
        assert result.files_scanned > 50
        assert elapsed < 10.0, f"program pass took {elapsed:.1f}s"

    def test_baseline_ratchet_blesses_old_findings_and_gates_new(self, tmp_path, capsys):
        tree = _copy_tree(tmp_path)
        target = tree / "traces" / "server.py"
        _mutate(target, "        self.received = 0\n",
                "        self.received = 0\n        self.mutant_seen = 0\n")
        _mutate(target, "        self.received += 1\n",
                "        self.received += 1\n        self.mutant_seen += 1\n")
        baseline = tmp_path / "qa-baseline.json"
        argv = ["qa", "--program", "--baseline", str(baseline), str(tree)]
        assert main(argv + ["--update-baseline"]) == 0
        # Blessed: the known finding no longer gates.
        assert main(argv) == 0
        assert "baselined" in capsys.readouterr().out
        # A *new* finding still gates despite the baseline.
        _mutate(target, "        self.dropped = 0\n",
                "        self.dropped = 0\n        self.mutant_two = 0\n")
        _mutate(target, "            self.dropped += 1\n",
                "            self.dropped += 1\n            self.mutant_two += 1\n")
        assert main(argv) == 1
        assert "mutant_two" in capsys.readouterr().out
