"""Unit tests for IPv4 helpers and allocation."""

import pytest

from repro.network import CidrBlock, IpAllocator, format_ip, parse_ip


class TestParseFormat:
    def test_roundtrip(self):
        for text in ("0.0.0.0", "10.1.2.3", "255.255.255.255", "202.96.128.68"):
            assert format_ip(parse_ip(text)) == text

    def test_known_value(self):
        assert parse_ip("1.0.0.0") == 1 << 24
        assert parse_ip("0.0.0.1") == 1

    def test_malformed(self):
        for bad in ("1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", ""):
            with pytest.raises(ValueError):
                parse_ip(bad)

    def test_format_range_check(self):
        with pytest.raises(ValueError):
            format_ip(-1)
        with pytest.raises(ValueError):
            format_ip(1 << 32)


class TestCidrBlock:
    def test_parse_and_size(self):
        block = CidrBlock.parse("10.0.0.0/24")
        assert block.size == 256
        assert block.last == parse_ip("10.0.0.255")

    def test_contains(self):
        block = CidrBlock.parse("192.168.0.0/16")
        assert parse_ip("192.168.4.5") in block
        assert parse_ip("192.169.0.0") not in block

    def test_misaligned_base_rejected(self):
        with pytest.raises(ValueError):
            CidrBlock(parse_ip("10.0.0.1"), 24)

    def test_bad_prefix_rejected(self):
        with pytest.raises(ValueError):
            CidrBlock(0, 33)

    def test_address_indexing(self):
        block = CidrBlock.parse("10.0.0.0/30")
        assert [format_ip(block.address(i)) for i in range(4)] == [
            "10.0.0.0",
            "10.0.0.1",
            "10.0.0.2",
            "10.0.0.3",
        ]
        with pytest.raises(IndexError):
            block.address(4)

    def test_str(self):
        assert str(CidrBlock.parse("58.0.0.0/12")) == "58.0.0.0/12"


class TestIpAllocator:
    def test_unique_allocation(self):
        alloc = IpAllocator([CidrBlock.parse("10.0.0.0/26")], seed=1)
        addrs = {alloc.allocate() for _ in range(64)}
        assert len(addrs) == 64
        assert alloc.in_use == 64

    def test_exhaustion(self):
        alloc = IpAllocator([CidrBlock.parse("10.0.0.0/30")], seed=0)
        for _ in range(4):
            alloc.allocate()
        with pytest.raises(RuntimeError):
            alloc.allocate()

    def test_release_and_reuse(self):
        alloc = IpAllocator([CidrBlock.parse("10.0.0.0/30")], seed=0)
        a = alloc.allocate()
        alloc.allocate()
        alloc.release(a)
        assert alloc.in_use == 1
        # pool no longer exhausted after release
        for _ in range(3):
            alloc.allocate()
        assert alloc.in_use == 4

    def test_release_unallocated_raises(self):
        alloc = IpAllocator([CidrBlock.parse("10.0.0.0/30")], seed=0)
        with pytest.raises(KeyError):
            alloc.release(parse_ip("10.0.0.1"))

    def test_addresses_stay_in_blocks(self):
        blocks = [CidrBlock.parse("10.0.0.0/28"), CidrBlock.parse("20.0.0.0/28")]
        alloc = IpAllocator(blocks, seed=2)
        for _ in range(32):
            addr = alloc.allocate()
            assert any(addr in b for b in blocks)

    def test_deterministic_per_seed(self):
        mk = lambda s: IpAllocator([CidrBlock.parse("10.0.0.0/24")], seed=s)
        a, b = mk(5), mk(5)
        assert [a.allocate() for _ in range(10)] == [b.allocate() for _ in range(10)]

    def test_scattered_not_sequential(self):
        alloc = IpAllocator([CidrBlock.parse("10.0.0.0/16")], seed=3)
        first = [alloc.allocate() for _ in range(5)]
        diffs = [abs(b - a) for a, b in zip(first, first[1:])]
        assert max(diffs) > 1  # not handing out consecutive addresses

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError):
            IpAllocator([])
