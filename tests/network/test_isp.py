"""Unit tests for the ISP registry and mapping database."""

import pytest

from repro.network import DEFAULT_ISPS, IspDatabase, build_default_database
from repro.network.ip import CidrBlock, parse_ip
from repro.network.isp import DEFAULT_SHARES, OVERSEAS, Isp, build_default_registry


class TestRegistry:
    def test_default_shares_sum_to_one(self):
        assert sum(DEFAULT_SHARES.values()) == pytest.approx(1.0)

    def test_all_categories_present(self):
        names = {isp.name for isp in DEFAULT_ISPS}
        assert names == set(DEFAULT_SHARES)

    def test_telecom_dominates_netcom_second(self):
        by_share = sorted(DEFAULT_ISPS, key=lambda i: i.share, reverse=True)
        assert by_share[0].name == "China Telecom"
        assert by_share[1].name == "China Netcom"

    def test_block_allocation_tracks_share(self):
        china = [isp for isp in DEFAULT_ISPS if isp.is_china]
        total_blocks = sum(len(isp.blocks) for isp in china)
        china_share = sum(isp.share for isp in china)
        for isp in china:
            realised = len(isp.blocks) / total_blocks
            target = isp.share / china_share
            assert realised == pytest.approx(target, abs=0.02)

    def test_overseas_not_china(self):
        overseas = next(isp for isp in DEFAULT_ISPS if isp.name == OVERSEAS)
        assert not overseas.is_china
        assert len(overseas.blocks) > 0

    def test_bad_shares_rejected(self):
        with pytest.raises(ValueError):
            build_default_registry({"China Telecom": 0.5, OVERSEAS: 0.4})
        with pytest.raises(ValueError):
            build_default_registry({"China Telecom": 1.0})

    def test_isp_allocator(self):
        isp = DEFAULT_ISPS[0]
        alloc = isp.allocator(seed=1)
        addr = alloc.allocate()
        assert any(addr in b for b in isp.blocks)


class TestIspDatabase:
    def test_lookup_hits_owning_isp(self):
        db = build_default_database()
        for isp in DEFAULT_ISPS:
            block = isp.blocks[0]
            assert db.lookup(block.base) == isp.name
            assert db.lookup(block.last) == isp.name
            assert db.lookup(block.address(block.size // 2)) == isp.name

    def test_unmapped_address(self):
        db = build_default_database()
        assert db.lookup(parse_ip("9.9.9.9")) is None
        assert db.lookup(0) is None

    def test_is_china(self):
        db = build_default_database()
        telecom = db.isp("China Telecom")
        overseas = db.isp(OVERSEAS)
        assert db.is_china(telecom.blocks[0].base)
        assert not db.is_china(overseas.blocks[0].base)
        assert not db.is_china(parse_ip("9.9.9.9"))

    def test_same_isp(self):
        db = build_default_database()
        telecom = db.isp("China Telecom")
        netcom = db.isp("China Netcom")
        a = telecom.blocks[0].base
        b = telecom.blocks[1].base
        c = netcom.blocks[0].base
        assert db.same_isp(a, b)
        assert not db.same_isp(a, c)
        assert not db.same_isp(a, parse_ip("9.9.9.9"))

    def test_overlapping_blocks_rejected(self):
        overlapping = [
            Isp("A", 0.5, True, (CidrBlock.parse("10.0.0.0/8"),)),
            Isp("B", 0.5, True, (CidrBlock.parse("10.128.0.0/9"),)),
        ]
        with pytest.raises(ValueError):
            IspDatabase(overlapping)

    def test_every_allocated_address_maps_back(self):
        db = build_default_database()
        for isp in DEFAULT_ISPS:
            alloc = isp.allocator(seed=7)
            for _ in range(50):
                assert db.lookup(alloc.allocate()) == isp.name
