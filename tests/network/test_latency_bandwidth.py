"""Unit tests for the latency/throughput model and bandwidth sampler."""

import statistics

import pytest

from repro.network import (
    DEFAULT_BANDWIDTH_CLASSES,
    BandwidthClass,
    BandwidthSampler,
    LatencyModel,
    LinkQuality,
)


class TestLatencyModel:
    def test_intra_isp_faster_than_inter(self):
        model = LatencyModel(seed=0)
        intra = model.base_rtt("A", "A", a_china=True, b_china=True)
        inter = model.base_rtt("A", "B", a_china=True, b_china=True)
        overseas = model.base_rtt("A", "Oversea ISPs", a_china=True, b_china=False)
        assert intra < inter < overseas

    def test_intra_overseas_tier(self):
        model = LatencyModel(seed=0)
        both = model.base_rtt("Oversea ISPs", "Oversea ISPs", a_china=False, b_china=False)
        assert both == model.tiers.intra_overseas

    def test_sampled_intra_links_better_on_average(self):
        model = LatencyModel(seed=1)
        intra = [model.sample_link("A", "A").throughput_kbps for _ in range(400)]
        inter = [model.sample_link("A", "B").throughput_kbps for _ in range(400)]
        assert statistics.mean(intra) > 2 * statistics.mean(inter)

    def test_throughput_floor(self):
        model = LatencyModel(min_throughput_kbps=8.0, seed=2)
        for _ in range(200):
            link = model.sample_link("A", "Oversea ISPs", a_china=True, b_china=False)
            assert link.throughput_kbps >= 8.0

    def test_score_prefers_fast_links(self):
        good = LinkQuality(rtt_ms=20.0, throughput_kbps=600.0)
        bad = LinkQuality(rtt_ms=250.0, throughput_kbps=60.0)
        assert good.score() > bad.score()

    def test_rtt_jitter_positive(self):
        model = LatencyModel(seed=3)
        rtts = [model.sample_link("A", "A").rtt_ms for _ in range(100)]
        assert all(r > 0 for r in rtts)
        assert len({round(r, 6) for r in rtts}) > 50  # actually jittered


class TestBandwidthSampler:
    def test_default_classes_weights(self):
        assert sum(c.weight for c in DEFAULT_BANDWIDTH_CLASSES) == pytest.approx(1.0)

    def test_sampling_distribution(self):
        sampler = BandwidthSampler(seed=4)
        draws = [sampler.sample() for _ in range(5000)]
        adsl_frac = sum(1 for d in draws if d.class_name == "adsl") / len(draws)
        assert adsl_frac == pytest.approx(0.58, abs=0.04)

    def test_upload_above_stream_rate_for_most_peers(self):
        # The paper: 400 kbps rate is lower than the upload capacity of
        # most ADSL/cable peers.
        sampler = BandwidthSampler(seed=5)
        draws = [sampler.sample() for _ in range(3000)]
        above = sum(1 for d in draws if d.upload_kbps > 400.0) / len(draws)
        assert above > 0.6

    def test_mean_upload(self):
        sampler = BandwidthSampler(seed=6)
        nominal = sampler.mean_upload_kbps()
        empirical = statistics.mean(s.upload_kbps for s in (sampler.sample() for _ in range(8000)))
        assert empirical == pytest.approx(nominal, rel=0.1)

    def test_deterministic(self):
        a = BandwidthSampler(seed=7)
        b = BandwidthSampler(seed=7)
        assert [a.sample() for _ in range(20)] == [b.sample() for _ in range(20)]

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            BandwidthSampler(())
        with pytest.raises(ValueError):
            BandwidthSampler((BandwidthClass("x", 1.0, 1.0, 0.0),))

    def test_heavy_tail_exists(self):
        sampler = BandwidthSampler(seed=8)
        ups = sorted(s.upload_kbps for s in (sampler.sample() for _ in range(4000)))
        p50 = ups[len(ups) // 2]
        p99 = ups[int(len(ups) * 0.99)]
        assert p99 > 5 * p50  # campus tail far above the median
