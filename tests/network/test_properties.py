"""Property-based tests for the network substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import build_default_database, format_ip, parse_ip
from repro.network.ip import CidrBlock, IpAllocator

DB = build_default_database()


@given(st.integers(0, 2**32 - 1))
def test_ip_roundtrip(value):
    assert parse_ip(format_ip(value)) == value


@given(st.integers(0, 2**32 - 1))
def test_database_lookup_consistent_with_blocks(address):
    name = DB.lookup(address)
    if name is None:
        for isp in DB.isps:
            assert not any(address in block for block in isp.blocks)
    else:
        isp = DB.isp(name)
        assert any(address in block for block in isp.blocks)


@given(st.integers(0, 2**32 - 1), st.integers(0, 2**32 - 1))
def test_same_isp_symmetric(a, b):
    assert DB.same_isp(a, b) == DB.same_isp(b, a)


@given(
    st.integers(0, 255),
    st.integers(24, 30),
    st.integers(0, 2**31),
    st.integers(1, 40),
)
@settings(max_examples=60)
def test_allocator_uniqueness_and_membership(octet, prefix, seed, n):
    block = CidrBlock(octet << 24, prefix)
    alloc = IpAllocator([block], seed=seed)
    count = min(n, block.size)
    addresses = [alloc.allocate() for _ in range(count)]
    assert len(set(addresses)) == count
    assert all(a in block for a in addresses)


@given(st.integers(0, 2**31))
def test_allocator_release_restores_capacity(seed):
    block = CidrBlock.parse("10.0.0.0/29")  # 8 addresses
    alloc = IpAllocator([block], seed=seed)
    taken = [alloc.allocate() for _ in range(8)]
    with pytest.raises(RuntimeError):
        alloc.allocate()
    alloc.release(taken[3])
    again = alloc.allocate()
    assert again == taken[3]
