"""Unit tests for the bounded client-side spill buffer."""

import pytest

from repro.ingest import SpillBuffer
from tests.ingest.helpers import frame_of


class TestBasics:
    def test_push_ack_pending_order(self):
        buf = SpillBuffer(max_reports=100)
        for seq in (1, 2, 3):
            buf.push(frame_of(seq, 2))
        assert len(buf) == 3
        assert buf.report_count == 6
        assert [f.seq for f in buf.pending()] == [1, 2, 3]
        acked = buf.ack(2)
        assert acked is not None and acked.seq == 2
        assert buf.report_count == 4
        assert [f.seq for f in buf.pending()] == [1, 3]

    def test_ack_unknown_seq_is_none(self):
        buf = SpillBuffer(max_reports=10)
        assert buf.ack(99) is None

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            SpillBuffer(max_reports=0)


class TestOverflow:
    def test_oldest_evicted_and_counted(self):
        buf = SpillBuffer(max_reports=5)
        for seq in (1, 2, 3):  # 2 reports each; cap 5 forces one eviction
            buf.push(frame_of(seq, 2))
        assert [f.seq for f in buf.pending()] == [2, 3]
        assert buf.report_count == 4
        assert buf.overflow_reports == 2
        assert buf.overflow_frames == 1

    def test_single_oversized_frame_is_kept(self):
        # Eviction never drops the only frame: a frame bigger than the
        # whole cap stays pending rather than being silently destroyed.
        buf = SpillBuffer(max_reports=3)
        buf.push(frame_of(1, 10))
        assert len(buf) == 1
        assert buf.overflow_reports == 0

    def test_overflow_accumulates(self):
        buf = SpillBuffer(max_reports=2)
        for seq in range(1, 6):
            buf.push(frame_of(seq, 2))
        assert buf.overflow_frames == 4
        assert buf.overflow_reports == 8
        assert [f.seq for f in buf.pending()] == [5]


class TestCheckpointState:
    def test_state_restore_round_trip(self):
        buf = SpillBuffer(max_reports=4)
        for seq in (1, 2, 3):
            buf.push(frame_of(seq, 2))  # one eviction on the way
        clone = SpillBuffer.restore(buf.state())
        assert clone.max_reports == 4
        assert [f.seq for f in clone.pending()] == [f.seq for f in buf.pending()]
        assert [f.lines for f in clone.pending()] == [
            f.lines for f in buf.pending()
        ]
        assert clone.overflow_reports == buf.overflow_reports
        assert clone.overflow_frames == buf.overflow_frames

    def test_restore_does_not_recount_overflow(self):
        # Rebuilding pending frames via push() must not re-evict or
        # inflate the historical overflow counters.
        buf = SpillBuffer(max_reports=4)
        buf.push(frame_of(1, 4))
        buf.overflow_reports = 7
        buf.overflow_frames = 2
        clone = SpillBuffer.restore(buf.state())
        assert clone.report_count == 4
        assert clone.overflow_reports == 7
        assert clone.overflow_frames == 2
