"""Unit tests for the deterministic datagram fault injector."""

import pytest

from repro.ingest import DatagramFaultInjector, DatagramFaults


class TestConfig:
    @pytest.mark.parametrize("field", ["loss_rate", "duplicate_rate", "truncate_rate"])
    @pytest.mark.parametrize("bad", [-0.1, 1.0, 1.5, float("nan")])
    def test_rates_validated(self, field, bad):
        with pytest.raises(ValueError):
            DatagramFaults(**{field: bad})

    def test_any_active(self):
        assert not DatagramFaults().any_active
        assert DatagramFaults(loss_rate=0.1).any_active
        assert DatagramFaults(duplicate_rate=0.1).any_active
        assert DatagramFaults(truncate_rate=0.1).any_active


class TestDecisions:
    def test_clean_pass_through(self):
        injector = DatagramFaultInjector(DatagramFaults(), seed=1)
        decision = injector.apply(b"payload", 4)
        assert decision.payloads == [b"payload"]
        assert not decision.dropped and not decision.truncated
        assert injector.counters.offered == 1

    def test_certainish_loss_counts_reports(self):
        injector = DatagramFaultInjector(DatagramFaults(loss_rate=0.999), seed=1)
        decision = injector.apply(b"payload", 4)
        assert decision.dropped
        assert decision.payloads == []
        assert injector.counters.dropped == 1
        assert injector.counters.dropped_reports == 4

    def test_truncation_damages_but_sends(self):
        injector = DatagramFaultInjector(
            DatagramFaults(truncate_rate=0.999), seed=1
        )
        payload = b"x" * 100
        decision = injector.apply(payload, 3)
        assert decision.truncated
        assert len(decision.payloads) == 1
        assert 1 <= len(decision.payloads[0]) < len(payload)
        assert injector.counters.truncated_reports == 3

    def test_duplication_emits_two_copies(self):
        injector = DatagramFaultInjector(
            DatagramFaults(duplicate_rate=0.999), seed=1
        )
        decision = injector.apply(b"payload", 2)
        assert decision.payloads == [b"payload", b"payload"]
        assert injector.counters.duplicated == 1

    def test_counters_reconcile_over_many_datagrams(self):
        faults = DatagramFaults(loss_rate=0.2, duplicate_rate=0.1, truncate_rate=0.1)
        injector = DatagramFaultInjector(faults, seed=42)
        sent = destroyed = 0
        for _ in range(500):
            decision = injector.apply(b"p" * 50, 5)
            if decision.dropped or decision.truncated:
                destroyed += 5
            else:
                sent += 5
        c = injector.counters
        assert c.offered == 500
        assert c.dropped_reports + c.truncated_reports == destroyed
        assert sent == 500 * 5 - destroyed
        assert c.dropped > 0 and c.truncated > 0 and c.duplicated > 0


class TestDeterminism:
    def test_same_seed_same_verdicts(self):
        faults = DatagramFaults(loss_rate=0.3, duplicate_rate=0.2, truncate_rate=0.2)

        def run():
            injector = DatagramFaultInjector(faults, seed=7)
            return [
                (d.dropped, d.truncated, len(d.payloads))
                for d in (injector.apply(b"q" * 40, 2) for _ in range(200))
            ]

        assert run() == run()

    def test_state_restore_resumes_the_stream(self):
        faults = DatagramFaults(loss_rate=0.3, truncate_rate=0.2)
        a = DatagramFaultInjector(faults, seed=9)
        for _ in range(50):
            a.apply(b"z" * 30, 1)
        state = a.state()
        tail_a = [a.apply(b"z" * 30, 1).dropped for _ in range(50)]

        b = DatagramFaultInjector(faults, seed=0)  # wrong seed on purpose
        b.restore(state)
        assert b.counters.offered == 50  # counters rewound to the snapshot
        tail_b = [b.apply(b"z" * 30, 1).dropped for _ in range(50)]
        assert tail_a == tail_b
