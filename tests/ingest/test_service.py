"""Live-service tests: admission, dedup, backpressure, queries, drain.

Every test here runs the real :class:`TraceIngestService` event loop in
a thread and exercises it over actual loopback sockets — UDP datagrams,
TCP frame streams and the line-oriented query API.
"""

import json
import socket
import threading

import pytest

from repro.ingest import ReportClient, ShardCursor, TraceIngestService, encode_frame
from repro.ingest.framing import HEADER_SIZE
from repro.traces import SegmentedTraceReader, SegmentedTraceStore
from tests.ingest.helpers import (
    LiveService,
    frame_of,
    read_reply_line,
    recv_exact,
    report_at,
    wait_until,
)


class TestShardCursor:
    def test_contiguous_absorption(self):
        cursor = ShardCursor()
        for seq in (1, 2, 3):
            cursor.add(seq)
        assert cursor.contiguous == 3
        assert cursor.extra == set()
        assert cursor.seen(2) and not cursor.seen(4)

    def test_out_of_order_extras_absorb_later(self):
        cursor = ShardCursor()
        cursor.add(3)
        cursor.add(1)
        assert cursor.contiguous == 1 and cursor.extra == {3}
        cursor.add(2)  # plugs the gap: watermark jumps over the extra
        assert cursor.contiguous == 3 and cursor.extra == set()

    def test_add_is_idempotent(self):
        cursor = ShardCursor()
        cursor.add(1)
        cursor.add(1)
        assert cursor.contiguous == 1

    def test_state_restore_round_trip(self):
        cursor = ShardCursor()
        for seq in (1, 2, 5):
            cursor.add(seq)
        clone = ShardCursor.restore(cursor.state())
        assert clone.contiguous == 2 and clone.extra == {5}
        assert clone.seen(5) and not clone.seen(3)


class TestTcpIngestion:
    def test_reports_stored_and_queryable(self, tmp_path):
        with LiveService(tmp_path / "t") as live:
            client = ReportClient("127.0.0.1", live.tcp_port, batch_size=5)
            for i in range(12):
                client.append(report_at(float(i), ip=i))
            assert client.sync() is True
            client.close()

            health = live.query_json("HEALTH")
            assert health["records"] == 12
            assert health["stats"]["frames_admitted"] == 3
            assert health["health"]["records_ok"] == 12

            windows = live.query_json("WINDOWS 600")
            assert windows == [{"start": 0.0, "reports": 12}]

            channel = live.query_json("CHANNEL 0 0 100")
            assert channel["reports"] == 12
            assert channel["distinct_peers"] == 12

            metrics = live.query("METRICS")
            assert "observability disabled" in metrics
            live.shutdown()

        # The drain sealed everything and published the summary.
        reports = list(SegmentedTraceReader(tmp_path / "t", tolerant=True))
        assert [r.peer_ip for r in reports] == list(range(12))
        summary = json.loads((tmp_path / "t" / "health.json").read_text())
        assert summary["ingest"] is True
        assert summary["trace_records"] == 12
        journal = json.loads((tmp_path / "t" / "admissions.json").read_text())
        assert journal["records"] == 12
        assert journal["shards"]["0"]["contiguous"] == 3

    def test_duplicate_frames_acknowledged_not_restored(self, tmp_path):
        with LiveService(tmp_path / "t") as live:
            payload = encode_frame(frame_of(1, 4))
            with socket.create_connection(("127.0.0.1", live.tcp_port), timeout=10) as conn:
                conn.sendall(payload)
                assert read_reply_line(conn) == "OK 1"
                conn.sendall(payload)
                assert read_reply_line(conn) == "DUP 1"
                conn.sendall(payload)
                assert read_reply_line(conn) == "DUP 1"
            health = live.query_json("HEALTH")
            assert health["records"] == 4
            assert health["stats"]["frames_duplicate"] == 2
            assert health["health"]["duplicates"] == 8

    def test_damaged_frame_quarantined_without_losing_sync(self, tmp_path):
        with LiveService(tmp_path / "t") as live:
            with socket.create_connection(("127.0.0.1", live.tcp_port), timeout=10) as conn:
                conn.sendall(encode_frame(frame_of(1, 2)))
                assert read_reply_line(conn) == "OK 1"
                # Flip a payload bit: header still honest about length,
                # so the server can skip exactly this frame.
                damaged = bytearray(encode_frame(frame_of(2, 2)))
                damaged[-1] ^= 0x01
                conn.sendall(bytes(damaged))
                assert read_reply_line(conn).startswith("ERR")
                conn.sendall(encode_frame(frame_of(3, 2, t0=100.0)))
                assert read_reply_line(conn) == "OK 3"
            health = live.query_json("HEALTH")
            assert health["records"] == 4  # frames 1 and 3, not the damage
            assert health["stats"]["frames_quarantined"] == 1
            assert health["health"]["parse_failures"] == 1

    def test_garbage_first_bytes_drop_the_connection(self, tmp_path):
        # A stream that never spoke the magic is a query; a stream that
        # breaks it mid-flight is unrecoverable garbage.
        with LiveService(tmp_path / "t") as live:
            with socket.create_connection(("127.0.0.1", live.tcp_port), timeout=10) as conn:
                conn.sendall(encode_frame(frame_of(1, 1)))
                assert read_reply_line(conn) == "OK 1"
                conn.sendall(b"MGTI" + b"\xff" * (HEADER_SIZE - 4) + b"junk")
                assert conn.recv(1) == b""  # server hung up
            assert live.query_json("HEALTH")["stats"]["frames_quarantined"] == 1

    def test_unknown_query_gets_err_line(self, tmp_path):
        with LiveService(tmp_path / "t") as live:
            assert live.query("FROBNICATE").startswith("ERR unknown command")


class TestUdpIngestion:
    def test_datagrams_stored(self, tmp_path):
        with LiveService(tmp_path / "t") as live:
            client = ReportClient(
                "127.0.0.1",
                live.tcp_port,
                udp_port=live.udp_port,
                transport="udp",
                batch_size=4,
            )
            for i in range(8):
                client.append(report_at(float(i), ip=i))
            client.close()
            wait_until(
                lambda: len(live.service.store) == 8,
                what="datagrams to commit",
            )
            assert live.service.stats.frames_udp == 2

    def test_garbage_and_truncated_datagrams_quarantined(self, tmp_path):
        with LiveService(tmp_path / "t") as live:
            live.send_datagram(b"not a frame at all")
            live.send_datagram(encode_frame(frame_of(1, 3))[:-5])  # truncated
            damaged = bytearray(encode_frame(frame_of(2, 3)))
            damaged[HEADER_SIZE] ^= 0xFF  # bit-flipped payload
            live.send_datagram(bytes(damaged))
            wait_until(
                lambda: live.service.stats.frames_quarantined == 3,
                what="quarantine counters",
            )
            health = live.query_json("HEALTH")
            assert health["records"] == 0
            assert health["health"]["parse_failures"] == 3

    def test_duplicate_datagram_stored_once(self, tmp_path):
        with LiveService(tmp_path / "t") as live:
            payload = encode_frame(frame_of(1, 3))
            live.send_datagram(payload)
            # Wait for the commit to retire the admission (not merely
            # for the records to appear): a copy arriving while the
            # first is still in flight joins it instead of counting.
            wait_until(
                lambda: live.service.stats.commits >= 1,
                what="first copy committed",
            )
            live.send_datagram(payload)
            live.send_datagram(payload)
            wait_until(
                lambda: live.service.stats.frames_duplicate == 2,
                what="duplicates counted",
            )
            assert len(live.service.store) == 3


class TestBackpressure:
    def test_high_watermark_sheds_udp_and_rejects_tcp(self, tmp_path):
        service = TraceIngestService.open(
            tmp_path / "t",
            queue_high_reports=20,
            queue_low_reports=5,
            commit_batch_frames=1,
            retry_after_s=0.05,
        )
        # Stall the committer: fsync blocks until the test releases it.
        release = threading.Event()
        original_sync = service.store.sync

        def stalled_sync():
            release.wait(timeout=30)
            original_sync()

        service.store.sync = stalled_sync
        with LiveService(service=service) as live:
            # Two 10-report datagrams (shard 7, distinct from the TCP
            # client's shard 0) fill the queue to the watermark; the
            # first is stuck inside the stalled commit.
            live.send_datagram(encode_frame(frame_of(1, 10, shard=7)))
            live.send_datagram(encode_frame(frame_of(2, 10, shard=7, t0=100.0)))
            wait_until(
                lambda: service.stats.frames_admitted == 2,
                what="queue to reach the high watermark",
            )
            # A third datagram is shed, deterministically and counted.
            live.send_datagram(encode_frame(frame_of(3, 10, shard=7, t0=200.0)))
            wait_until(
                lambda: service.stats.frames_shed == 1, what="UDP shed"
            )
            assert service.health.server_dropped == 10

            # A TCP producer is told to back off instead.
            client = ReportClient(
                "127.0.0.1",
                service.tcp_port,
                batch_size=5,
                retry_base_s=0.01,
                timeout_s=5.0,
            )
            for i in range(5):
                client.append(report_at(300.0 + i, ip=i))
            wait_until(
                lambda: client.stats.retry_after >= 1,
                what="RETRY-AFTER to reach the client",
            )
            assert service.stats.retry_after_sent >= 1
            assert client.pending_reports == 5

            release.set()  # the writer drains below the low watermark
            assert client.sync() is True
            client.close()
            wait_until(lambda: len(service.store) == 25, what="all commits")
            health = live.query_json("HEALTH")
            assert health["records"] == 25  # 10 + 10 + 5; the shed 10 gone
            assert health["health"]["server_dropped"] == 10


class TestCrashRecovery:
    def test_open_rolls_back_to_the_journal_cut(self, tmp_path):
        # Simulate a kill between the fsync and the journal write: the
        # store holds more records than the journal admits.
        directory = tmp_path / "t"
        store = SegmentedTraceStore(directory, records_per_segment=2)
        for i in range(5):
            store.append(report_at(float(i), ip=i))
        store.flush()  # killed here: durable tail, stale journal
        (directory / "admissions.json").write_text(
            json.dumps(
                {
                    "version": 1,
                    "records": 3,
                    "shards": {"0": {"contiguous": 2, "extra": []}},
                }
            )
        )
        service = TraceIngestService.open(directory)
        assert len(service.store) == 3
        cursor = service._cursors[0]
        assert cursor.seen(2) and not cursor.seen(3)
        service.store.close()

    def test_reopened_service_deduplicates_resends(self, tmp_path):
        directory = tmp_path / "t"
        with LiveService(directory) as live:
            with socket.create_connection(("127.0.0.1", live.tcp_port), timeout=10) as conn:
                conn.sendall(encode_frame(frame_of(1, 3)))
                assert read_reply_line(conn) == "OK 1"
            live.shutdown()
        # The client never saw the ack (say) and resends after restart.
        with LiveService(directory) as live:
            with socket.create_connection(("127.0.0.1", live.tcp_port), timeout=10) as conn:
                conn.sendall(encode_frame(frame_of(1, 3)))
                assert read_reply_line(conn) == "DUP 1"
                conn.sendall(encode_frame(frame_of(2, 3, t0=50.0)))
                assert read_reply_line(conn) == "OK 2"
            assert live.query_json("HEALTH")["records"] == 6
            live.shutdown()
        reports = list(SegmentedTraceReader(directory, tolerant=True))
        assert len(reports) == 6

    def test_corrupt_journal_treated_as_fresh_cursorless_open(self, tmp_path):
        directory = tmp_path / "t"
        store = SegmentedTraceStore(directory, records_per_segment=2)
        for i in range(4):
            store.append(report_at(float(i)))
        store.close()
        (directory / "admissions.json").write_text("{torn mid-wri")
        service = TraceIngestService.open(directory)
        # No journal to trust: keep every durable record, empty cursors.
        assert len(service.store) == 4
        assert service._cursors == {}
        service.store.close()


class TestValidation:
    def test_watermark_ordering_enforced(self, tmp_path):
        store = SegmentedTraceStore(tmp_path / "t")
        with pytest.raises(ValueError, match="queue_low_reports"):
            TraceIngestService(
                store, {}, queue_high_reports=10, queue_low_reports=10
            )
        store.close()
