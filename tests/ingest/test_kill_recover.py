"""Kill/recover harness for the networked ingestion path.

The server here is a real ``repro serve`` subprocess with a PID worth
killing.  The scenarios SIGKILL it mid-campaign, restart it on the same
ports, and assert the two invariants the whole design exists for:

- **exactly-once storage** — after the reporter drains, every report it
  ever enqueued is on disk exactly once (resends deduplicated);
- **counted loss** — under injected datagram damage, client sent ==
  server stored + every client- and server-counted loss, with no slack.
"""

import dataclasses
import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.experiments import run_campaign
from repro.ingest import DatagramFaults, ReportClient
from repro.simulator import CheckpointManager, SystemConfig, UUSeeSystem
from repro.traces import SegmentedTraceReader, SegmentedTraceStore
from tests.ingest.helpers import free_port, report_at, wait_until

SRC = Path(__file__).resolve().parents[2] / "src"


class ServerProcess:
    """A killable ``repro serve`` subprocess bound to fixed ports."""

    def __init__(self, trace_dir: Path, tcp_port: int, udp_port: int) -> None:
        self.trace_dir = Path(trace_dir)
        self.tcp_port = tcp_port
        self.udp_port = udp_port
        self.proc: subprocess.Popen | None = None

    def start(self) -> None:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
        port_file = self.trace_dir.parent / f"ports-{self.tcp_port}.json"
        port_file.unlink(missing_ok=True)
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--trace-dir", str(self.trace_dir),
                "--tcp-port", str(self.tcp_port),
                "--udp-port", str(self.udp_port),
                "--port-file", str(port_file),
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        wait_until(
            lambda: port_file.exists() and port_file.read_text().strip(),
            timeout_s=30,
            what="server to publish its ports",
        )
        assert json.loads(port_file.read_text()) == {
            "tcp": self.tcp_port,
            "udp": self.udp_port,
        }

    def sigkill(self) -> None:
        assert self.proc is not None
        self.proc.kill()
        self.proc.wait(timeout=30)

    def sigterm_and_wait(self) -> None:
        """Graceful drain: what the CI smoke job and operators do."""
        assert self.proc is not None
        self.proc.send_signal(signal.SIGTERM)
        self.proc.wait(timeout=30)
        assert self.proc.returncode == 0

    def terminate_if_running(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(timeout=30)


@pytest.fixture
def server(tmp_path):
    proc = ServerProcess(tmp_path / "server", free_port(), free_port())
    proc.start()
    yield proc
    proc.terminate_if_running()


def stored_reports(trace_dir: Path):
    return list(SegmentedTraceReader(trace_dir, tolerant=True))


def query_health(tcp_port: int) -> dict:
    import socket

    with socket.create_connection(("127.0.0.1", tcp_port), timeout=10) as conn:
        conn.sendall(b"HEALTH\n")
        data = bytearray()
        while not data.endswith(b"\n"):
            chunk = conn.recv(4096)
            if not chunk:
                break
            data += chunk
    return json.loads(data.decode("utf-8"))


class TestExactlyOnceAcrossSigkill:
    def test_reports_survive_a_server_crash_exactly_once(self, tmp_path, server):
        client = ReportClient(
            "127.0.0.1",
            server.tcp_port,
            udp_port=server.udp_port,
            batch_size=5,
            timeout_s=1.0,
            retry_base_s=0.02,
            retry_cap_s=0.2,
            breaker_threshold=3,
            breaker_cooldown_s=0.2,
            sync_max_attempts=2,
            seed=11,
        )
        for i in range(40):
            client.append(report_at(float(i), ip=i))
        assert client.sync() is True

        server.sigkill()  # mid-campaign crash

        # The reporter keeps producing into its spill; best-effort sync
        # fails fast and gives up without losing anything.
        for i in range(40, 80):
            client.append(report_at(float(i), ip=i))
        assert client.sync() is False
        assert client.stats.tcp_failures > 0
        assert client.pending_reports == 40

        server.start()  # same ports, same directory: crash recovery
        deadline = time.monotonic() + 30
        while not client.sync() and time.monotonic() < deadline:
            pass  # breaker may need a cooldown lap or two
        assert client.pending_reports == 0
        client.close()
        server.sigterm_and_wait()

        reports = stored_reports(server.trace_dir)
        assert [r.peer_ip for r in reports] == list(range(80))  # exactly once
        assert client.stats.reports_acked == 80
        assert client.stats.reconnects >= 1
        summary = json.loads((server.trace_dir / "health.json").read_text())
        assert summary["trace_records"] == 80

    def test_udp_loss_reconciles_exactly(self, tmp_path, server):
        # Pure-UDP transport with injected loss, duplication and
        # truncation: at-most-once, but every missing report accounted.
        client = ReportClient(
            "127.0.0.1",
            server.tcp_port,
            udp_port=server.udp_port,
            transport="udp",
            batch_size=4,
            faults=DatagramFaults(
                loss_rate=0.2, duplicate_rate=0.1, truncate_rate=0.1
            ),
            seed=5,
        )
        total = 200
        for i in range(total):
            client.append(report_at(float(i), ip=i))
        client.close()
        # Loopback delivers every datagram that was actually sent, but
        # only once the event loop has read them off the socket: wait
        # for the server to see the full wire count before draining,
        # otherwise the drain races the receive buffer.
        c = client._injector.counters
        wire_datagrams = client.stats.frames_sent_udp + c.duplicated
        wait_until(
            lambda: query_health(server.tcp_port)["stats"]["frames_udp"]
            >= wire_datagrams,
            timeout_s=30,
            what="server to receive every datagram",
        )
        server.sigterm_and_wait()

        stored = len(stored_reports(server.trace_dir))
        destroyed = c.dropped_reports + c.truncated_reports
        assert client.stats.reports_enqueued == total
        # The accounting identity, with zero slack: loopback delivers
        # everything the injector let through.
        assert stored + destroyed + client.stats.reports_lost_inflight == total
        assert destroyed > 0  # the faults actually fired
        summary = json.loads((server.trace_dir / "health.json").read_text())
        # Truncated datagrams were quarantined server-side (frame
        # granularity); duplicated ones acknowledged but stored once.
        assert summary["health"]["parse_failures"] == c.truncated
        assert summary["stats"]["reports_stored"] == stored


ROUND = 600.0
TOTAL_ROUNDS = 12
CAMPAIGN_KW = dict(
    base_concurrency=60.0,
    seed=2006,
    with_flash_crowd=False,
    checkpoint_every_rounds=3,
)


def ingest_client(server: ServerProcess) -> ReportClient:
    return ReportClient(
        "127.0.0.1",
        server.tcp_port,
        udp_port=server.udp_port,
        batch_size=16,
        timeout_s=2.0,
        retry_base_s=0.02,
        retry_cap_s=0.2,
        breaker_cooldown_s=0.2,
        seed=2006,
    )


def content_sha(trace_dir: Path) -> str:
    store = SegmentedTraceStore.recover(trace_dir)
    try:
        return store.content_sha256()
    finally:
        store.close()


class TestResumedIngestCampaign:
    def test_resumed_campaign_reconnects_and_matches_twin(self, tmp_path):
        # Twin A: an uninterrupted ingest campaign against server A.
        server_a = ServerProcess(tmp_path / "srv-a", free_port(), free_port())
        server_a.start()
        try:
            days = TOTAL_ROUNDS * ROUND / 86_400.0
            twin = run_campaign(
                tmp_path / "local-a",
                days=days,
                ingest=ingest_client(server_a),
                **CAMPAIGN_KW,
            )
            server_a.sigterm_and_wait()
        finally:
            server_a.terminate_if_running()

        # Twin B: the same campaign, interrupted at round 7, its server
        # SIGKILLed, both restarted — then resumed from the checkpoint.
        server_b = ServerProcess(tmp_path / "srv-b", free_port(), free_port())
        server_b.start()
        try:
            config = dataclasses.replace(
                SystemConfig(
                    seed=2006, base_concurrency=60.0, flash_crowd=None
                ),
                trace_loss_rate=0.0,  # matches run_campaign's ingest mode
            )
            abandoned = ingest_client(server_b)
            system = UUSeeSystem(config, abandoned)
            manager = CheckpointManager(tmp_path / "local-b" / "checkpoints")
            system.run(
                seconds=7 * ROUND,
                checkpoint=manager,
                checkpoint_every_rounds=3,
            )
            # The campaign process dies here, taking its partial batch
            # with it.  (No flush: sealing a partial batch would create
            # a frame boundary the resumed replay cannot reproduce, and
            # (shard, seq) dedup assumes boundaries are deterministic.)
            server_b.sigkill()
            server_b.start()

            resumed = run_campaign(
                tmp_path / "local-b",
                days=TOTAL_ROUNDS * ROUND / 86_400.0,
                resume=True,
                ingest=ingest_client(server_b),
                **CAMPAIGN_KW,
            )
            server_b.sigterm_and_wait()
        finally:
            server_b.terminate_if_running()

        assert resumed.resumed_from_round == 6
        assert resumed.rounds_completed == TOTAL_ROUNDS == twin.rounds_completed
        # The replayed rounds resent their frames; the server threw the
        # duplicates away, so the stored traces are twins.
        assert content_sha(server_a.trace_dir) == content_sha(server_b.trace_dir)
        assert twin.trace_records == len(stored_reports(server_a.trace_dir))
