"""Shared fixtures for the ingestion tests: reports, frames, live servers.

The live-service harness runs the real :class:`TraceIngestService` event
loop in a daemon thread and talks to it over actual loopback sockets —
the same failure surface production sees, but inside one process so unit
tests stay fast.  The subprocess harness (used by the kill/recover
tests) lives in ``test_kill_recover.py`` because only those tests need a
killable PID.
"""

from __future__ import annotations

import json
import socket
import threading
import time

from repro.ingest import Frame, TraceIngestService
from repro.ingest.framing import HEADER_SIZE, parse_header
from repro.traces import PartnerRecord, PeerReport


def report_at(t: float, ip: int = 1, channel: int = 0) -> PeerReport:
    return PeerReport(
        time=t,
        peer_ip=ip,
        channel_id=channel,
        buffer_fill=0.5,
        playback_position=int(t),
        download_capacity_kbps=2000.0,
        upload_capacity_kbps=500.0,
        recv_rate_kbps=400.0,
        sent_rate_kbps=100.0,
        partners=(PartnerRecord(ip=9, port=1, sent_segments=1, recv_segments=2),),
    )


def frame_of(seq: int, count: int, *, shard: int = 0, t0: float = 0.0) -> Frame:
    """A frame carrying ``count`` distinct reports starting at time ``t0``."""
    lines = tuple(
        report_at(t0 + i, ip=int(t0) * 1000 + i).to_json() for i in range(count)
    )
    return Frame(shard_id=shard, seq=seq, lines=lines)


def free_port() -> int:
    """Reserve an ephemeral port the OS just proved was free."""
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as sock:
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


def wait_until(predicate, *, timeout_s: float = 10.0, what: str = "condition"):
    """Poll ``predicate`` until truthy; the cross-thread test barrier."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        time.sleep(0.005)
    raise TimeoutError(f"timed out waiting for {what}")


def recv_exact(conn: socket.socket, n: int) -> bytes:
    data = bytearray()
    while len(data) < n:
        chunk = conn.recv(n - len(data))
        if not chunk:
            raise ConnectionError("peer closed mid-read")
        data += chunk
    return bytes(data)


def read_reply_line(conn: socket.socket) -> str:
    data = bytearray()
    while not data.endswith(b"\n"):
        chunk = conn.recv(1)
        if not chunk:
            raise ConnectionError("peer closed mid-reply")
        data += chunk
    return data.decode("utf-8").strip()


class LiveService:
    """The real ingestion service, running its own loop in a thread."""

    def __init__(self, directory=None, *, service=None, **kwargs) -> None:
        if service is None:
            service = TraceIngestService.open(directory, **kwargs)
        self.service = service
        self._thread = threading.Thread(
            target=self.service.run, name="ingest-test-service", daemon=True
        )

    def __enter__(self) -> "LiveService":
        self._thread.start()
        wait_until(
            lambda: self.service.udp_port != 0
            and self.service._writer_task is not None,
            what="service to bind its listeners",
        )
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

    @property
    def tcp_port(self) -> int:
        return self.service.tcp_port

    @property
    def udp_port(self) -> int:
        return self.service.udp_port

    def shutdown(self) -> None:
        """Graceful drain via the query API (idempotent)."""
        if self._thread.is_alive():
            try:
                self.query("SHUTDOWN")
            except OSError:
                pass
        self._thread.join(timeout=15)
        assert not self._thread.is_alive(), "service failed to drain"

    def query(self, line: str) -> str:
        with socket.create_connection(
            ("127.0.0.1", self.tcp_port), timeout=10
        ) as conn:
            conn.sendall((line + "\n").encode("utf-8"))
            return read_reply_line(conn)

    def query_json(self, line: str):
        return json.loads(self.query(line))

    def send_datagram(self, payload: bytes) -> None:
        with socket.socket(socket.AF_INET, socket.SOCK_DGRAM) as sock:
            sock.sendto(payload, ("127.0.0.1", self.udp_port))


class ScriptedTcpServer:
    """A fake ingest endpoint replying from a canned verdict script.

    Reads real frames off accepted connections (recording their header
    identity) and answers each with the next scripted line — the
    cheapest way to drive the client through every reply verb without
    timing dependence on a real admission queue.
    """

    def __init__(self, replies: list[str], *, port: int | None = None) -> None:
        self._replies = list(replies)
        self.frames: list[tuple[int, int, int]] = []  # (shard, seq, count)
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", port or 0))
        self._sock.listen(8)
        self._sock.settimeout(10.0)
        self.port = self._sock.getsockname()[1]
        self._thread = threading.Thread(target=self._serve, daemon=True)

    def __enter__(self) -> "ScriptedTcpServer":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=10)

    def _serve(self) -> None:
        while self._replies:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                return
            try:
                while self._replies:
                    header = parse_header(recv_exact(conn, HEADER_SIZE))
                    recv_exact(conn, header.payload_len)
                    self.frames.append(
                        (header.shard_id, header.seq, header.count)
                    )
                    conn.sendall(self._replies.pop(0).encode("utf-8"))
            except OSError:
                continue  # client tore down; serve the next connection
            finally:
                conn.close()
