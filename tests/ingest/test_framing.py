"""Unit tests for the wire framing: round-trips and every damage mode."""

import struct

import pytest

from repro.ingest import Frame, FrameError, decode_frame, encode_frame
from repro.ingest.framing import (
    FRAME_VERSION,
    HEADER_SIZE,
    MAGIC,
    MAX_PAYLOAD_BYTES,
    decode_payload,
    parse_header,
)
from tests.ingest.helpers import frame_of


class TestRoundTrip:
    def test_encode_decode_identity(self):
        frame = frame_of(seq=7, count=5, shard=3)
        assert decode_frame(encode_frame(frame)) == frame

    def test_empty_frame(self):
        frame = Frame(shard_id=0, seq=1, lines=())
        decoded = decode_frame(encode_frame(frame))
        assert decoded.count == 0
        assert decoded == frame

    def test_header_fields_survive(self):
        frame = frame_of(seq=2**40, count=3, shard=65_000)
        header = parse_header(encode_frame(frame))
        assert (header.shard_id, header.seq, header.count) == (65_000, 2**40, 3)

    def test_unicode_payload_survives(self):
        frame = Frame(shard_id=0, seq=1, lines=('{"note": "报告"}',))
        assert decode_frame(encode_frame(frame)).lines == frame.lines


class TestDamage:
    def test_short_header_rejected(self):
        with pytest.raises(FrameError, match="short frame header"):
            parse_header(b"MGTI\x01")

    def test_bad_magic_rejected(self):
        data = bytearray(encode_frame(frame_of(1, 1)))
        data[0:4] = b"XXXX"
        with pytest.raises(FrameError, match="magic"):
            decode_frame(bytes(data))

    def test_unknown_version_rejected(self):
        data = bytearray(encode_frame(frame_of(1, 1)))
        data[4] = FRAME_VERSION + 1
        with pytest.raises(FrameError, match="version"):
            decode_frame(bytes(data))

    def test_unknown_kind_rejected(self):
        data = bytearray(encode_frame(frame_of(1, 1)))
        data[5] = 99
        with pytest.raises(FrameError, match="kind"):
            decode_frame(bytes(data))

    def test_truncated_payload_rejected(self):
        data = encode_frame(frame_of(1, 3))
        with pytest.raises(FrameError, match="truncated"):
            decode_frame(data[:-10])

    def test_flipped_payload_bit_fails_checksum(self):
        data = bytearray(encode_frame(frame_of(1, 3)))
        data[-1] ^= 0x01
        with pytest.raises(FrameError, match="checksum"):
            decode_frame(bytes(data))

    def test_wrong_line_count_rejected(self):
        # Declare one more line than the payload carries, with a crc
        # recomputed to match — only the count check can catch this.
        frame = frame_of(1, 2)
        payload = "\n".join(frame.lines).encode("utf-8")
        header = parse_header(encode_frame(frame))
        forged = struct.Struct(">4sBBIQIII").pack(
            MAGIC, FRAME_VERSION, 1, frame.shard_id, frame.seq,
            3, len(payload), header.crc32,
        )
        with pytest.raises(FrameError, match="lines"):
            decode_frame(forged + payload)

    def test_oversized_payload_quarantined_before_read(self):
        header = parse_header(encode_frame(frame_of(1, 1)))
        import dataclasses

        huge = dataclasses.replace(header, payload_len=MAX_PAYLOAD_BYTES + 1)
        with pytest.raises(FrameError, match="oversized"):
            decode_payload(huge, b"")

    def test_non_utf8_payload_rejected(self):
        payload = b"\xff\xfe garbage"
        import zlib

        forged = struct.Struct(">4sBBIQIII").pack(
            MAGIC, FRAME_VERSION, 1, 0, 1, 1, len(payload), zlib.crc32(payload)
        )
        with pytest.raises(FrameError, match="UTF-8"):
            decode_frame(forged + payload)

    def test_header_size_is_stable(self):
        # The wire format is a compatibility surface: changing the
        # header layout must be a deliberate, versioned act.
        assert HEADER_SIZE == struct.calcsize(">4sBBIQIII")
