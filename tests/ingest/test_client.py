"""Reporter-client tests: backoff, breaker, spill accounting, verbs.

Policy tests drive the client against a :class:`ManualClock` with
``sleep=clock.advance``, so retry schedules and breaker transitions are
exact.  Verb tests use real loopback sockets against the scripted
server from ``helpers`` — the client's socket path is the code under
test, only the far side is canned.
"""

import pytest

from repro.ingest import DatagramFaults, ReportClient
from repro.ingest.client import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
)
from repro.obs.clock import ManualClock
from repro.traces import TraceHealth
from tests.ingest.helpers import ScriptedTcpServer, free_port, report_at


def manual_client(port, **kwargs):
    clock = ManualClock()
    defaults = dict(
        batch_size=4,
        timeout_s=0.5,
        retry_base_s=0.05,
        retry_cap_s=2.0,
        breaker_threshold=3,
        breaker_cooldown_s=10.0,
        sync_max_attempts=2,
        seed=7,
        clock=clock,
        sleep=clock.advance,
    )
    defaults.update(kwargs)
    return ReportClient("127.0.0.1", port, **defaults), clock


class TestValidation:
    def test_bad_transport_rejected(self):
        with pytest.raises(ValueError, match="transport"):
            ReportClient("127.0.0.1", 1, transport="carrier-pigeon")

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ValueError, match="batch_size"):
            ReportClient("127.0.0.1", 1, batch_size=0)

    def test_append_after_close_raises(self):
        client, _ = manual_client(free_port())
        client.close()
        with pytest.raises(RuntimeError, match="closed"):
            client.append(report_at(1.0))


class TestBackoffSchedule:
    def test_deterministic_for_a_seed(self):
        a, _ = manual_client(1, seed=21)
        b, _ = manual_client(1, seed=21)
        schedule = [a.backoff_delay(n) for n in range(1, 9)]
        assert schedule == [b.backoff_delay(n) for n in range(1, 9)]

    def test_exponential_and_bounded(self):
        client, _ = manual_client(1, retry_jitter=0.0)
        delays = [client.backoff_delay(n) for n in range(1, 10)]
        assert delays[:4] == [0.05, 0.1, 0.2, 0.4]
        assert delays[-1] == client.retry_cap_s  # capped, never unbounded

    def test_jitter_stretches_at_most_by_factor(self):
        client, _ = manual_client(1, retry_jitter=0.5)
        for n in range(1, 10):
            base = min(client.retry_base_s * 2 ** (n - 1), client.retry_cap_s)
            assert base <= client.backoff_delay(n) <= base * 1.5


class TestBreakerPolicy:
    def test_opens_at_threshold_and_cools_down(self):
        client, clock = manual_client(1, breaker_threshold=3)
        client._on_tcp_failure()
        client._on_tcp_failure()
        assert client.breaker_state == BREAKER_CLOSED
        client._on_tcp_failure()
        assert client.breaker_state == BREAKER_OPEN
        assert client.stats.breaker_opens == 1
        clock.advance(9.999)
        assert client.breaker_state == BREAKER_OPEN
        clock.advance(0.001)
        assert client.breaker_state == BREAKER_HALF_OPEN

    def test_failed_probe_reopens_with_fresh_cooldown(self):
        client, clock = manual_client(1, breaker_threshold=3)
        for _ in range(3):
            client._on_tcp_failure()
        clock.advance(10.0)
        assert client.breaker_state == BREAKER_HALF_OPEN
        client._on_tcp_failure()  # the probe itself fails
        assert client.stats.breaker_opens == 2
        assert client.breaker_state == BREAKER_OPEN  # cooldown re-armed
        clock.advance(9.0)
        assert client.breaker_state == BREAKER_OPEN
        clock.advance(1.0)
        assert client.breaker_state == BREAKER_HALF_OPEN

    def test_successful_probe_closes_and_resets(self):
        client, clock = manual_client(1, breaker_threshold=3)
        for _ in range(3):
            client._on_tcp_failure()
        clock.advance(10.0)
        client._on_tcp_success()
        assert client.breaker_state == BREAKER_CLOSED
        assert client._failures == 0


class TestDeadServer:
    def test_failures_spill_and_counted_loss(self):
        # Nothing listens on the reserved port: every connect refuses.
        client, _ = manual_client(
            free_port(), batch_size=2, spill_max_reports=4, breaker_threshold=2
        )
        for i in range(10):
            client.append(report_at(float(i), ip=i))
        # The first seal attempted a connect; the backoff gate (manual
        # clock, so time never passes) blocked every later attempt.
        assert client.stats.tcp_failures == 1
        # The bounded spill evicted the oldest frames, counted.
        assert client._spill.overflow_reports == 6
        client.close()  # sync sleeps out the backoff, fails again, gives up
        assert client.stats.tcp_failures == 3
        assert client.stats.breaker_opens >= 1
        assert client.stats.reports_unsent == 4

        health = TraceHealth()
        client.fold_into(health)
        assert health.spill_overflow == 6
        assert health.server_dropped == 4  # the unsent remainder
        # Delta discipline: folding again adds nothing.
        client.fold_into(health)
        assert health.spill_overflow == 6
        assert health.server_dropped == 4

    def test_breaker_open_degrades_to_udp_copies_once_per_frame(self):
        client, _ = manual_client(free_port(), batch_size=2, breaker_threshold=1)
        client.append(report_at(1.0))
        client.append(report_at(2.0))  # f1: refused -> breaker opens
        assert client.breaker_state == BREAKER_OPEN
        for t in (3.0, 4.0, 5.0, 6.0):  # f2, f3 ship as UDP copies
            client.append(report_at(t))
        assert client.stats.frames_sent_udp == 3  # f1 included on f2's pump
        assert client.stats.reports_udp == 6
        assert client.pending_reports == 6  # copies stay for the TCP path
        client.flush()  # same breaker episode: nothing ships twice
        assert client.stats.frames_sent_udp == 3

    def test_recovery_after_degradation_acks_every_frame(self):
        port = free_port()
        client, _ = manual_client(
            port, batch_size=2, breaker_threshold=1, sync_max_attempts=4
        )
        for t in (1.0, 2.0, 3.0, 4.0):
            client.append(report_at(t))
        assert client.breaker_state == BREAKER_OPEN
        with ScriptedTcpServer(["OK 1\n", "OK 2\n"], port=port):
            assert client.sync() is True  # half-open probe, then drain
        assert client.stats.reports_acked == 4
        assert client.breaker_state == BREAKER_CLOSED
        assert client.pending_reports == 0
        client.close()

    def test_sync_gives_up_after_bounded_attempts(self):
        client, _ = manual_client(free_port(), sync_max_attempts=3)
        client.append(report_at(1.0))
        before = client.stats.tcp_failures
        assert client.sync() is False
        assert client.stats.tcp_failures - before == 3
        assert client.pending_reports == 1
        client.close()

    def test_close_is_idempotent(self):
        client, _ = manual_client(free_port(), sync_max_attempts=1)
        client.append(report_at(1.0))
        client.close()
        unsent = client.stats.reports_unsent
        client.close()
        assert client.stats.reports_unsent == unsent == 1


class TestReplyVerbs:
    def test_ok_acks_and_clears_spill(self):
        with ScriptedTcpServer(["OK 1\n"]) as server:
            client, _ = manual_client(server.port, batch_size=2)
            client.append(report_at(1.0))
            client.append(report_at(2.0))
            assert client.stats.reports_acked == 2
            assert client.pending_reports == 0
            assert server.frames == [(0, 1, 2)]
            client.close()

    def test_dup_counts_as_acked(self):
        with ScriptedTcpServer(["DUP 1\n"]) as server:
            client, _ = manual_client(server.port, batch_size=2)
            client.append(report_at(1.0))
            client.append(report_at(2.0))
            assert client.stats.reports_acked == 2
            assert client.pending_reports == 0
            client.close()

    def test_err_drops_the_frame_and_counts_rejection(self):
        # Resending a quarantined frame's identical bytes would loop
        # forever; the client must count the loss and move on.
        with ScriptedTcpServer(["ERR checksum mismatch\n", "OK 2\n"]) as server:
            client, _ = manual_client(server.port, batch_size=2)
            for t in (1.0, 2.0, 3.0, 4.0):
                client.append(report_at(t))
            assert client.stats.reports_rejected == 2
            assert client.stats.reports_acked == 2
            assert client.pending_reports == 0
            health = client.fold_into(TraceHealth())
            assert health.server_dropped == 2
            client.close()

    def test_retry_after_backs_off_then_delivers(self):
        with ScriptedTcpServer(["RETRY-AFTER 0.25\n", "OK 1\n"]) as server:
            client, clock = manual_client(server.port, batch_size=2)
            client.append(report_at(1.0))
            client.append(report_at(2.0))
            assert client.stats.retry_after == 1
            assert client.pending_reports == 2  # honoured, not failed
            assert client.stats.tcp_failures == 0
            assert client._next_attempt == pytest.approx(clock.now() + 0.25)
            assert client.sync() is True  # sleeps out the hint, resends
            assert client.stats.reports_acked == 2
            client.close()

    def test_reconnect_after_failure_is_counted(self):
        port = free_port()
        client, clock = manual_client(port, batch_size=2, sync_max_attempts=1)
        client.append(report_at(1.0))
        client.append(report_at(2.0))  # refused: nothing listens yet
        assert client.stats.tcp_failures == 1
        with ScriptedTcpServer(["OK 1\n"], port=port):
            assert client.sync() is True
        assert client.stats.reconnects == 1
        assert client.breaker_state == BREAKER_CLOSED
        client.close()


class TestUdpTransport:
    def test_injected_loss_is_counted_exactly(self):
        # Fire-and-forget into the void, with a near-certain loss rate:
        # the injector must account every report it destroys (the seed
        # makes the exact outcome replayable).
        client, _ = manual_client(
            free_port(),
            transport="udp",
            batch_size=2,
            faults=DatagramFaults(loss_rate=0.999),
        )
        for i in range(10):
            client.append(report_at(float(i)))
        client.close()
        c = client._injector.counters
        assert c.offered == 5
        assert c.dropped_reports >= 8  # deterministic under the seed
        assert client.pending_reports == 0  # at-most-once: nothing pends
        health = client.fold_into(TraceHealth())
        assert health.server_dropped == (
            c.dropped_reports
            + c.truncated_reports
            + client.stats.reports_lost_inflight
        )


class TestCheckpointRoundTrip:
    def test_state_restores_seq_batch_spill_and_rng(self):
        client, _ = manual_client(
            free_port(), batch_size=3, sync_max_attempts=1
        )
        for i in range(5):  # one sealed (pending) frame + 2 in the batch
            client.append(report_at(float(i), ip=i))
        state = client.checkpoint_state()

        clone, _ = manual_client(free_port(), batch_size=3)
        clone.restore_checkpoint(state)
        assert clone._next_seq == client._next_seq
        assert clone._batch == client._batch
        assert [f.lines for f in clone._spill.pending()] == [
            f.lines for f in client._spill.pending()
        ]
        assert clone.stats.reports_enqueued == 5
        # The jitter stream continues from the same position.
        assert clone.backoff_delay(3) == client.backoff_delay(3)

    def test_breaker_timing_and_udp_dedup_survive_restore(self):
        # Regression for a gap the qa REP101 pass found: the breaker
        # *state* was captured but not its clock (_breaker_opened_at,
        # _next_attempt) or the UDP dedup set, so a resumed client
        # half-opened immediately and could re-degrade shipped seqs.
        client, clock = manual_client(1, breaker_threshold=3)
        clock.advance(5.0)
        for _ in range(3):
            client._on_tcp_failure()
        assert client.breaker_state == BREAKER_OPEN
        client._udp_shipped.update({2, 4})
        state = client.checkpoint_state()

        clone, clone_clock = manual_client(1, breaker_threshold=3)
        clone.restore_checkpoint(state)
        assert clone._breaker == BREAKER_OPEN
        assert clone._breaker_opened_at == client._breaker_opened_at
        assert clone._next_attempt == client._next_attempt
        assert clone._udp_shipped == {2, 4}
        # The cooldown resumes mid-flight rather than restarting: once
        # the clone's clock reaches the same instants, its transitions
        # match an uninterrupted client's exactly.
        clone_clock.advance(5.0)  # catch up to the checkpoint instant
        clone_clock.advance(9.999)
        assert clone.breaker_state == BREAKER_OPEN
        clone_clock.advance(0.001)
        assert clone.breaker_state == BREAKER_HALF_OPEN

    def test_legacy_checkpoint_without_breaker_timing_keys(self):
        # Checkpoints written before the breaker-timing keys existed
        # must still restore (with the old implicit-reset semantics).
        client, _ = manual_client(1)
        state = client.checkpoint_state()
        for key in ("next_attempt", "breaker_opened_at", "udp_shipped"):
            del state[key]
        clone, _ = manual_client(1)
        clone.restore_checkpoint(state)
        assert clone._next_attempt == 0.0
        assert clone._breaker_opened_at == 0.0
        assert clone._udp_shipped == set()
