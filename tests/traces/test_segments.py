"""Unit tests for the segmented, self-recovering trace store."""

import gzip
import json
import os

import pytest

from repro.traces import (
    PartnerRecord,
    PeerReport,
    SegmentedTraceReader,
    SegmentedTraceStore,
    SegmentRecoveryError,
    TraceStoreClosedError,
    iter_windows,
)


def report_at(t, ip=1):
    return PeerReport(
        time=t,
        peer_ip=ip,
        channel_id=0,
        buffer_fill=0.5,
        playback_position=int(t),
        download_capacity_kbps=2000.0,
        upload_capacity_kbps=500.0,
        recv_rate_kbps=400.0,
        sent_rate_kbps=100.0,
        partners=(PartnerRecord(ip=9, port=1, sent_segments=11, recv_segments=12),),
    )


def fill(store, start, stop):
    for i in range(start, stop):
        store.append(report_at(float(i), ip=i + 1))


def times(directory, **reader_kw):
    return [int(r.time) for r in SegmentedTraceReader(directory, **reader_kw)]


class TestRotation:
    def test_segments_rotate_and_manifest_tracks_sealed(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=10)
        fill(store, 0, 37)
        assert len(store) == 37
        store.close()
        assert [s.records for s in store.sealed_segments] == [10, 10, 10, 7]
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert len(manifest["segments"]) == 4
        assert manifest["version"] == 1

    def test_refuses_existing_trace_directory(self, tmp_path):
        SegmentedTraceStore(tmp_path, records_per_segment=5).close()
        with pytest.raises(FileExistsError):
            SegmentedTraceStore(tmp_path)

    def test_append_after_close_raises(self, tmp_path):
        store = SegmentedTraceStore(tmp_path)
        store.close()
        with pytest.raises(TraceStoreClosedError):
            store.append(report_at(1.0))

    def test_close_and_flush_idempotent_after_close(self, tmp_path):
        # Drain paths (the ingest service's, a campaign's finally
        # block) may close and flush a store that already sealed; both
        # must be no-ops that leave the manifest intact.
        store = SegmentedTraceStore(tmp_path, records_per_segment=5)
        fill(store, 0, 7)
        store.close()
        store.close()
        store.flush()
        assert [s.records for s in store.sealed_segments] == [5, 2]
        assert times(tmp_path) == list(range(7))

    def test_gzip_segments_are_deterministic(self, tmp_path):
        paths = []
        for name in ("a", "b"):
            d = tmp_path / name
            store = SegmentedTraceStore(d, records_per_segment=5, compress=True)
            fill(store, 0, 12)
            store.close()
            paths.append((d / "seg-00000001.jsonl.gz").read_bytes())
        # mtime=0 in the gzip header: identical content -> identical bytes
        assert paths[0] == paths[1]


class TestReader:
    def test_multi_segment_stream_in_order(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=8)
        fill(store, 0, 30)
        store.close()
        assert times(tmp_path) == list(range(30))

    def test_reader_is_reiterable(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=4)
        fill(store, 0, 10)
        store.close()
        reader = SegmentedTraceReader(tmp_path)
        assert len(list(reader)) == 10
        assert len(list(reader)) == 10

    def test_feeds_iter_windows_across_segment_boundaries(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=7)
        fill(store, 0, 40)
        store.close()
        windows = list(iter_windows(SegmentedTraceReader(tmp_path), 10.0))
        assert [w for w, _ in windows] == [0.0, 10.0, 20.0, 30.0]
        assert sum(len(reports) for _, reports in windows) == 40

    def test_tolerant_reader_accumulates_health(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=10)
        fill(store, 0, 15)
        store.append_line('{"not": "a report"}')
        store.close()
        reader = SegmentedTraceReader(tmp_path, tolerant=True)
        assert len(list(reader)) == 15
        assert reader.health.parse_failures == 1


class TestRecovery:
    def test_recover_clean_close_and_keep_appending(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=10)
        fill(store, 0, 23)
        store.close()
        recovered = SegmentedTraceStore.recover(tmp_path)
        assert len(recovered) == 23
        assert not recovered.health.dirty
        fill(recovered, 23, 30)
        recovered.close()
        assert times(tmp_path) == list(range(30))

    def test_recover_truncates_torn_plain_tail(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=10)
        fill(store, 0, 14)
        store.sync()
        with open(tmp_path / "seg-00000002.jsonl", "ab") as fh:
            fh.write(b'{"time": 99.0, "peer')  # killed mid-write
        recovered = SegmentedTraceStore.recover(tmp_path)
        assert len(recovered) == 14
        assert recovered.health.truncated_lines == 1
        fill(recovered, 14, 20)
        recovered.close()
        assert times(tmp_path) == list(range(20))

    def test_recover_truncates_torn_gzip_tail(self, tmp_path):
        store = SegmentedTraceStore(
            tmp_path, records_per_segment=100, compress=True, flush_every=1
        )
        fill(store, 0, 9)
        store.flush()
        seg = tmp_path / "seg-00000001.jsonl.gz"
        os.truncate(seg, seg.stat().st_size - 5)  # cut mid-stream
        recovered = SegmentedTraceStore.recover(tmp_path)
        assert recovered.health.truncated_lines == 1
        survived = len(recovered)
        assert 0 < survived <= 9
        fill(recovered, survived, 12)
        recovered.close()
        assert times(tmp_path) == list(range(12))

    def test_recover_publishes_full_segment_after_mid_rotation_kill(
        self, tmp_path
    ):
        store = SegmentedTraceStore(tmp_path, records_per_segment=10)
        fill(store, 0, 10)  # seals segment 1
        stale_manifest = (tmp_path / "manifest.json").read_bytes()
        # The crash strikes after segment 2 filled but before the
        # manifest published it: write the full file, restore the stale
        # manifest, abandon the store without close().
        with open(tmp_path / "seg-00000002.jsonl", "w") as fh:
            for i in range(10, 20):
                fh.write(report_at(float(i), ip=i + 1).to_json() + "\n")
        (tmp_path / "manifest.json").write_bytes(stale_manifest)
        recovered = SegmentedTraceStore.recover(tmp_path)
        assert len(recovered) == 20
        assert len(recovered.sealed_segments) == 2
        fill(recovered, 20, 23)
        recovered.close()
        assert times(tmp_path) == list(range(23))

    def test_recover_quarantines_corrupted_sealed_segment(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=5)
        fill(store, 0, 12)
        store.close()
        (tmp_path / "seg-00000001.jsonl").write_text("garbage\n")
        recovered = SegmentedTraceStore.recover(tmp_path)
        assert recovered.health.quarantined == 5
        assert len(recovered) == 7
        assert (tmp_path / "seg-00000001.jsonl.quarantined").exists()
        recovered.close()

    def test_recover_rebuilds_destroyed_manifest(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=5)
        fill(store, 0, 12)
        store.close()
        (tmp_path / "manifest.json").unlink()
        recovered = SegmentedTraceStore.recover(tmp_path, records_per_segment=5)
        assert len(recovered) == 12
        recovered.close()
        assert times(tmp_path) == list(range(12))

    def test_recover_refuses_non_trace_directory(self, tmp_path):
        with pytest.raises(SegmentRecoveryError):
            SegmentedTraceStore.recover(tmp_path)


class TestRollback:
    @pytest.mark.parametrize("compress", [False, True])
    def test_rollback_then_replay_restores_identical_content(
        self, tmp_path, compress
    ):
        d = tmp_path / "trace"
        store = SegmentedTraceStore(d, records_per_segment=10, compress=compress)
        fill(store, 0, 37)
        store.close()
        reference = store.content_sha256()
        for cut in (35, 30, 25, 10):  # mid-active, boundary, mid-sealed
            recovered = SegmentedTraceStore.recover(d)
            recovered.rollback(cut)
            assert len(recovered) == cut
            fill(recovered, cut, 37)
            recovered.close()
            assert recovered.content_sha256() == reference

    def test_rollback_forward_raises(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=10)
        fill(store, 0, 5)
        with pytest.raises(SegmentRecoveryError):
            store.rollback(6)

    def test_rollback_to_zero_empties_store(self, tmp_path):
        store = SegmentedTraceStore(tmp_path, records_per_segment=4)
        fill(store, 0, 11)
        store.rollback(0)
        assert len(store) == 0
        fill(store, 0, 6)
        store.close()
        assert times(tmp_path) == list(range(6))

    def test_plain_rollback_replay_is_byte_identical(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        for d in (a, b):
            store = SegmentedTraceStore(d, records_per_segment=6)
            fill(store, 0, 20)
            if d == b:
                store.rollback(13)
                fill(store, 13, 20)
            store.close()
        for seg_a in sorted(p for p in a.iterdir() if p.suffix == ".jsonl"):
            assert seg_a.read_bytes() == (b / seg_a.name).read_bytes()


class TestGzipMultiMember:
    def test_appended_member_after_recovery_reads_transparently(self, tmp_path):
        store = SegmentedTraceStore(
            tmp_path, records_per_segment=50, compress=True
        )
        fill(store, 0, 7)
        store.sync()
        store._closed = True  # abandon without sealing (simulated kill)
        recovered = SegmentedTraceStore.recover(tmp_path)
        fill(recovered, len(recovered), 14)
        recovered.close()
        # The segment now holds two gzip members; both stdlib and our
        # reader must see one continuous stream.
        with gzip.open(tmp_path / "seg-00000001.jsonl.gz", "rt") as fh:
            assert len(fh.readlines()) == 14
        assert times(tmp_path) == list(range(14))
