"""Unit tests for trace records and serialisation."""

import pytest

from repro.traces import PartnerRecord, PeerReport


def sample_report(**overrides):
    fields = {
        "time": 1234.5,
        "peer_ip": 167772161,
        "channel_id": 3,
        "buffer_fill": 0.75,
        "playback_position": 420,
        "download_capacity_kbps": 2048.0,
        "upload_capacity_kbps": 512.0,
        "recv_rate_kbps": 401.5,
        "sent_rate_kbps": 120.25,
        "partners": (
            PartnerRecord(ip=11, port=20001, sent_segments=15, recv_segments=3),
            PartnerRecord(ip=22, port=20002, sent_segments=0, recv_segments=88),
        ),
    }
    fields.update(overrides)
    return PeerReport(**fields)


class TestSerialisation:
    def test_roundtrip(self):
        report = sample_report()
        clone = PeerReport.from_json(report.to_json())
        assert clone.peer_ip == report.peer_ip
        assert clone.channel_id == report.channel_id
        assert clone.partners == report.partners
        assert clone.recv_rate_kbps == pytest.approx(report.recv_rate_kbps)

    def test_json_is_single_line_compact(self):
        line = sample_report().to_json()
        assert "\n" not in line
        assert ": " not in line  # compact separators

    def test_partner_array_roundtrip(self):
        p = PartnerRecord(ip=5, port=6, sent_segments=7, recv_segments=8)
        assert PartnerRecord.from_array(p.to_array()) == p

    def test_malformed_partner_array(self):
        with pytest.raises(ValueError):
            PartnerRecord.from_array([1, 2, 3])

    def test_empty_partner_list(self):
        report = sample_report(partners=())
        clone = PeerReport.from_json(report.to_json())
        assert clone.partners == ()


class TestActiveClassification:
    def test_active_suppliers_threshold(self):
        # Paper Sec. 4.2: active supplying partner = received > ~10 segments.
        report = sample_report()
        sups = report.active_suppliers(threshold=10)
        assert [p.ip for p in sups] == [22]

    def test_active_receivers_threshold(self):
        report = sample_report()
        recs = report.active_receivers(threshold=10)
        assert [p.ip for p in recs] == [11]

    def test_partner_both_roles(self):
        both = PartnerRecord(ip=33, port=1, sent_segments=50, recv_segments=50)
        report = sample_report(partners=(both,))
        assert report.active_suppliers() == [both]
        assert report.active_receivers() == [both]

    def test_nonactive_partner(self):
        idle = PartnerRecord(ip=44, port=1, sent_segments=2, recv_segments=9)
        report = sample_report(partners=(idle,))
        assert report.active_suppliers() == []
        assert report.active_receivers() == []
