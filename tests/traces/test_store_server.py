"""Unit tests for trace stores, the trace server and windowing."""

import pytest

from repro.traces import (
    InMemoryTraceStore,
    JsonlTraceStore,
    PartnerRecord,
    PeerReport,
    TraceHealth,
    TraceReader,
    TraceServer,
    TraceStoreClosedError,
    iter_windows,
)


def report_at(t, ip=1):
    return PeerReport(
        time=t,
        peer_ip=ip,
        channel_id=0,
        buffer_fill=0.5,
        playback_position=int(t),
        download_capacity_kbps=2000.0,
        upload_capacity_kbps=500.0,
        recv_rate_kbps=400.0,
        sent_rate_kbps=100.0,
        partners=(PartnerRecord(ip=9, port=1, sent_segments=11, recv_segments=12),),
    )


class TestInMemoryStore:
    def test_append_and_iterate(self):
        store = InMemoryTraceStore()
        store.append(report_at(1.0))
        store.append(report_at(2.0))
        assert len(store) == 2
        assert [r.time for r in store] == [1.0, 2.0]


class TestJsonlStore:
    def test_roundtrip_plain(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlTraceStore(path) as store:
            for t in range(5):
                store.append(report_at(float(t), ip=t))
            assert len(store) == 5
        reports = list(TraceReader(path))
        assert [r.peer_ip for r in reports] == [0, 1, 2, 3, 4]
        assert reports[0].partners[0].recv_segments == 12

    def test_roundtrip_gzip(self, tmp_path):
        path = tmp_path / "trace.jsonl.gz"
        with JsonlTraceStore(path) as store:
            store.append(report_at(7.5))
        got = list(TraceReader(path))
        assert len(got) == 1
        assert got[0].time == 7.5

    def test_compress_inferred_from_suffix(self, tmp_path):
        assert JsonlTraceStore(tmp_path / "a.jsonl.gz").compress
        assert not JsonlTraceStore(tmp_path / "a.jsonl").compress

    def test_close_idempotent(self, tmp_path):
        store = JsonlTraceStore(tmp_path / "t.jsonl")
        store.close()
        store.close()

    def test_flush_after_close_is_a_noop(self, tmp_path):
        # Teardown paths routinely flush a store something else already
        # closed (a ``with`` block, a campaign's cleanup); close flushed
        # everything, so this must not raise on the closed handle.
        path = tmp_path / "t.jsonl"
        store = JsonlTraceStore(path)
        store.append(report_at(1.0))
        store.close()
        store.flush()
        assert len(list(TraceReader(path))) == 1

    def test_append_after_close_raises_named_error(self, tmp_path):
        store = JsonlTraceStore(tmp_path / "t.jsonl")
        store.close()
        with pytest.raises(TraceStoreClosedError) as err:
            store.append(report_at(1.0))
        assert "t.jsonl" in str(err.value)
        assert "append" in str(err.value)

    def test_fsync_on_flush_writes_through(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = JsonlTraceStore(path, flush_every=1, fsync_on_flush=True)
        store.append(report_at(1.0))
        # Durable at the flush boundary: visible to a second reader
        # before close().
        assert len(list(TraceReader(path))) == 1
        store.close()


class TestTraceServer:
    def test_no_loss(self):
        store = InMemoryTraceStore()
        server = TraceServer(store, loss_rate=0.0)
        assert server.receive(report_at(1.0))
        assert server.received == 1
        assert server.dropped == 0

    def test_udp_loss(self):
        store = InMemoryTraceStore()
        server = TraceServer(store, loss_rate=0.5, seed=1)
        outcomes = [server.receive(report_at(float(i))) for i in range(400)]
        assert 100 < sum(outcomes) < 300
        assert server.dropped == 400 - server.received
        assert len(store) == server.received

    def test_invalid_loss_rate(self):
        with pytest.raises(ValueError):
            TraceServer(InMemoryTraceStore(), loss_rate=1.0)

    def test_fold_into_adds_collection_drops_to_health(self):
        store = InMemoryTraceStore()
        server = TraceServer(store, loss_rate=0.5, seed=1)
        for i in range(100):
            server.receive(report_at(float(i)))
        health = TraceHealth()
        health.server_dropped = 3  # pre-existing drops accumulate
        assert server.fold_into(health) is health
        assert health.server_dropped == server.dropped + 3
        assert health.dirty
        assert ("server drops (collection)", health.server_dropped) in health.rows()

    def test_fold_into_is_a_delta_not_a_total(self):
        # Periodic folding (mid-campaign snapshot + final) must never
        # double-count: each fold adds only the drops since the last.
        store = InMemoryTraceStore()
        server = TraceServer(store, loss_rate=0.5, seed=1)
        for i in range(100):
            server.receive(report_at(float(i)))
        health = TraceHealth()
        server.fold_into(health)
        first = health.server_dropped
        server.fold_into(health)  # nothing new dropped: adds zero
        assert health.server_dropped == first
        for i in range(100, 200):
            server.receive(report_at(float(i)))
        server.fold_into(health)  # only the second hundred's drops
        assert health.server_dropped == server.dropped


class TestIterWindows:
    def test_basic_grouping(self):
        reports = [report_at(t) for t in (0, 100, 650, 700, 1300)]
        windows = list(iter_windows(reports, 600))
        assert [w for w, _ in windows] == [0.0, 600.0, 1200.0]
        assert [len(rs) for _, rs in windows] == [2, 2, 1]

    def test_empty_windows_skipped(self):
        reports = [report_at(t) for t in (0, 5000)]
        windows = list(iter_windows(reports, 600))
        assert [w for w, _ in windows] == [0.0, 4800.0]

    def test_start_offset_filters(self):
        reports = [report_at(t) for t in (0, 700, 1300)]
        windows = list(iter_windows(reports, 600, start=600))
        assert [w for w, _ in windows] == [600.0, 1200.0]

    def test_unsorted_across_windows_rejected(self):
        reports = [report_at(1300.0), report_at(10.0)]
        with pytest.raises(ValueError):
            list(iter_windows(reports, 600))

    def test_invalid_window(self):
        with pytest.raises(ValueError):
            list(iter_windows([], 0))

    def test_within_window_disorder_tolerated(self):
        reports = [report_at(110.0), report_at(90.0)]
        windows = list(iter_windows(reports, 600))
        assert len(windows) == 1
        assert len(windows[0][1]) == 2
