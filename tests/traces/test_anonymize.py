"""Tests for ISP-preserving trace anonymisation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.network import build_default_database
from repro.traces import PartnerRecord, PeerReport
from repro.traces.anonymize import UNMAPPED_BLOCK, IspPreservingAnonymizer

DB = build_default_database()
ANON = IspPreservingAnonymizer(DB, key=b"secret")
TELECOM_BASE = DB.isp("China Telecom").blocks[0].base


class TestIpMapping:
    def test_deterministic(self):
        ip = TELECOM_BASE + 123
        assert ANON.anonymize_ip(ip) == ANON.anonymize_ip(ip)

    def test_key_changes_mapping(self):
        other = IspPreservingAnonymizer(DB, key=b"different")
        ip = TELECOM_BASE + 123
        assert ANON.anonymize_ip(ip) != other.anonymize_ip(ip)

    def test_isp_preserved(self):
        for isp in DB.isps:
            for block in isp.blocks[:2]:
                ip = block.address(block.size // 3)
                assert DB.lookup(ANON.anonymize_ip(ip)) == isp.name

    def test_host_actually_hidden(self):
        ips = [TELECOM_BASE + i for i in range(50)]
        moved = sum(1 for ip in ips if ANON.anonymize_ip(ip) != ip)
        assert moved >= 45  # pseudonyms differ from originals

    def test_injective_within_block(self):
        ips = [TELECOM_BASE + i for i in range(2000)]
        pseudonyms = {ANON.anonymize_ip(ip) for ip in ips}
        assert len(pseudonyms) == len(ips)

    def test_unmapped_goes_to_reserved_block(self):
        server_ip = int.from_bytes(bytes([8, 8, 1, 1]), "big")
        assert DB.lookup(server_ip) is None
        pseudonym = ANON.anonymize_ip(server_ip)
        assert pseudonym in UNMAPPED_BLOCK
        assert DB.lookup(pseudonym) is None

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=200)
    def test_isp_preserved_property(self, ip):
        assert DB.lookup(ANON.anonymize_ip(ip)) == DB.lookup(ip)


class TestReportAnonymisation:
    def _report(self):
        return PeerReport(
            time=100.0,
            peer_ip=TELECOM_BASE + 7,
            channel_id=0,
            buffer_fill=0.8,
            playback_position=100,
            download_capacity_kbps=2000.0,
            upload_capacity_kbps=500.0,
            recv_rate_kbps=400.0,
            sent_rate_kbps=100.0,
            partners=(
                PartnerRecord(TELECOM_BASE + 9, 20000, 15, 20),
                PartnerRecord(int.from_bytes(bytes([8, 8, 0, 1]), "big"), 1, 0, 99),
            ),
        )

    def test_ips_replaced_payload_kept(self):
        report = self._report()
        anon = ANON.anonymize_report(report)
        assert anon.peer_ip != report.peer_ip
        assert anon.time == report.time
        assert anon.recv_rate_kbps == report.recv_rate_kbps
        assert [p.sent_segments for p in anon.partners] == [15, 0]
        assert [p.recv_segments for p in anon.partners] == [20, 99]

    def test_graph_structure_survives(self):
        # the same real IP maps to the same pseudonym across reports, so
        # edges built from anonymised traces are isomorphic to the originals
        report = self._report()
        anon_a = ANON.anonymize_report(report)
        anon_b = ANON.anonymize_report(report)
        assert anon_a == anon_b
        assert anon_a.partners[0].ip == ANON.anonymize_ip(report.partners[0].ip)
