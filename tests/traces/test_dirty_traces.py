"""Tests for channel fault injection and the dirty-trace-tolerant readers."""

import pytest

from repro.traces import (
    ChannelFaults,
    FaultyChannel,
    InMemoryTraceStore,
    JsonlTraceStore,
    PartnerRecord,
    PeerReport,
    TolerantTraceReader,
    TraceFormatError,
    TraceHealth,
    TraceReader,
    TraceTruncatedError,
    iter_windows,
    sanitize,
)


def report_at(t, ip=1, buffer_fill=0.5):
    return PeerReport(
        time=t,
        peer_ip=ip,
        channel_id=0,
        buffer_fill=buffer_fill,
        playback_position=max(0, int(t)),
        download_capacity_kbps=2000.0,
        upload_capacity_kbps=500.0,
        recv_rate_kbps=400.0,
        sent_rate_kbps=100.0,
        partners=(PartnerRecord(ip=9, port=1, sent_segments=11, recv_segments=12),),
    )


class TestChannelFaults:
    def test_validation(self):
        with pytest.raises(ValueError):
            ChannelFaults(loss_rate=1.0)
        with pytest.raises(ValueError):
            ChannelFaults(burst_length=0.5)
        with pytest.raises(ValueError):
            ChannelFaults(reorder_depth=0)
        with pytest.raises(ValueError):
            ChannelFaults(corrupt_rate=-0.1)

    def test_any_active(self):
        assert not ChannelFaults().any_active
        assert ChannelFaults(loss_rate=0.1).any_active


class TestFaultyChannel:
    def test_clean_channel_is_transparent(self):
        store = InMemoryTraceStore()
        with FaultyChannel(store, ChannelFaults(), seed=1) as channel:
            for i in range(50):
                channel.append(report_at(float(i), ip=i))
        assert len(store) == 50
        assert [r.peer_ip for r in store] == list(range(50))
        c = channel.counters
        assert (c.offered, c.delivered, c.dropped) == (50, 50, 0)

    def test_counter_invariant(self):
        faults = ChannelFaults(
            loss_rate=0.1, duplicate_rate=0.05, reorder_rate=0.05, corrupt_rate=0.0
        )
        store = InMemoryTraceStore()
        with FaultyChannel(store, faults, seed=3) as channel:
            for i in range(1000):
                channel.append(report_at(float(i * 10), ip=i % 20))
        c = channel.counters
        assert c.offered == 1000
        assert c.dropped > 0 and c.duplicated > 0 and c.reordered > 0
        assert c.delivered + c.corrupted == c.offered - c.dropped + c.duplicated
        assert len(store) == c.delivered

    def test_deterministic_under_seed(self):
        faults = ChannelFaults(loss_rate=0.2, duplicate_rate=0.1)

        def run(seed):
            store = InMemoryTraceStore()
            with FaultyChannel(store, faults, seed=seed) as channel:
                for i in range(300):
                    channel.append(report_at(float(i)))
            return [r.time for r in store]

        assert run(5) == run(5)
        assert run(5) != run(6)

    def test_bursty_loss_clusters(self):
        # With mean burst length 8, consecutive losses must appear far
        # more often than under independent loss at the same rate.
        faults = ChannelFaults(loss_rate=0.2, burst_length=8.0)
        store = InMemoryTraceStore()
        channel = FaultyChannel(store, faults, seed=9)
        delivered_flags = []
        for i in range(5000):
            before = len(store)
            channel.append(report_at(float(i)))
            delivered_flags.append(len(store) > before)
        losses = delivered_flags.count(False)
        runs = sum(
            1
            for i in range(1, len(delivered_flags))
            if not delivered_flags[i] and not delivered_flags[i - 1]
        )
        assert losses / len(delivered_flags) == pytest.approx(0.2, abs=0.05)
        # P(loss | previous lost) ~ 1 - 1/burst_length = 0.875 >> 0.2
        assert runs / losses > 0.5

    def test_corruption_writes_truncated_lines(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        faults = ChannelFaults(corrupt_rate=0.2)
        with JsonlTraceStore(path) as store:
            with FaultyChannel(store, faults, seed=2) as channel:
                for i in range(100):
                    channel.append(report_at(float(i)))
        counters = channel.counters
        assert counters.corrupted > 0
        with pytest.raises(TraceFormatError) as err:
            list(TraceReader(path))
        assert "line" in str(err.value)
        reader = TraceReader(path, tolerant=True)
        good = list(reader)
        assert len(good) == counters.delivered
        assert reader.health.parse_failures == counters.corrupted

    def test_corruption_without_raw_store_drops(self):
        store = InMemoryTraceStore()  # no append_line
        faults = ChannelFaults(corrupt_rate=0.5)
        with FaultyChannel(store, faults, seed=4) as channel:
            for i in range(200):
                channel.append(report_at(float(i)))
        c = channel.counters
        assert c.corrupted > 0
        assert len(store) == c.delivered


class TestTruncatedFinalLine:
    def _write_truncated(self, path):
        with open(path, "w") as fh:
            fh.write(report_at(1.0).to_json() + "\n")
            fh.write(report_at(2.0).to_json() + "\n")
            fh.write(report_at(3.0).to_json()[:25])  # killed mid-write

    def test_strict_raises_naming_line(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        self._write_truncated(path)
        with pytest.raises(TraceTruncatedError) as err:
            list(TraceReader(path))
        assert "line 3" in str(err.value)
        assert str(path) in str(err.value)

    def test_tolerant_skips_and_counts(self, tmp_path):
        path = tmp_path / "trunc.jsonl"
        self._write_truncated(path)
        reader = TraceReader(path, tolerant=True)
        reports = list(reader)
        assert [r.time for r in reports] == [1.0, 2.0]
        assert reader.health.truncated_lines == 1
        assert reader.health.parse_failures == 0
        assert reader.health.dirty


class TestTruncatedGzipTail:
    """A collector killed mid-write leaves a gzip stream without its
    end-of-stream marker; the stdlib raises ``EOFError`` mid-iteration,
    which must surface as a counted truncation, not a crash."""

    def _write_torn_gzip(self, path, n=200):
        import os

        with JsonlTraceStore(path, flush_every=10) as store:
            for i in range(n):
                store.append(report_at(float(i), ip=i + 1))
        # Cut into the final deflate block: the stream now ends before
        # its end-of-stream marker, exactly what a kill mid-write leaves.
        os.truncate(path, path.stat().st_size - 30)

    def test_tolerant_counts_truncation_and_keeps_prefix(self, tmp_path):
        path = tmp_path / "torn.jsonl.gz"
        self._write_torn_gzip(path)
        reader = TraceReader(path, tolerant=True)
        reports = list(reader)
        # Everything the damaged stream can still decode survives.
        assert len(reports) > 150
        assert [r.time for r in reports] == [float(i) for i in range(len(reports))]
        assert reader.health.truncated_lines == 1
        assert reader.health.parse_failures == 0

    def test_strict_raises_truncated_error(self, tmp_path):
        path = tmp_path / "torn.jsonl.gz"
        self._write_torn_gzip(path)
        with pytest.raises(TraceTruncatedError) as err:
            list(TraceReader(path))
        assert "tolerant=True" in str(err.value)


class TestTolerantReader:
    def test_duplicates_dropped_exactly(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        with JsonlTraceStore(path) as store:
            for i in range(10):
                store.append(report_at(float(i), ip=1))
                store.append(report_at(float(i), ip=1))  # exact re-delivery
        reader = TraceReader(path, tolerant=True)
        reports = list(reader)
        assert len(reports) == 10
        assert reader.health.duplicates == 10
        assert reader.health.records_ok == 10
        assert reader.health.lines_read == 20

    def test_quarantines_garbage_values(self, tmp_path):
        path = tmp_path / "garbage.jsonl"
        bad = report_at(5.0).to_json().replace('"rr":400.0', '"rr":NaN')
        with open(path, "w") as fh:
            fh.write(report_at(1.0).to_json() + "\n")
            fh.write(bad + "\n")
            fh.write(report_at(9.0).to_json() + "\n")
        reader = TraceReader(path, tolerant=True)
        reports = list(reader)
        assert [r.time for r in reports] == [1.0, 9.0]
        assert reader.health.quarantined == 1

    def test_health_resets_each_iteration(self, tmp_path):
        path = tmp_path / "dup.jsonl"
        with JsonlTraceStore(path) as store:
            store.append(report_at(1.0))
            store.append(report_at(1.0))
        reader = TraceReader(path, tolerant=True)
        list(reader)
        list(reader)
        assert reader.health.duplicates == 1  # not 2: per-pass counters


class TestSanitize:
    def test_local_reorder_repaired(self):
        times = [0.0, 30.0, 10.0, 40.0, 20.0, 50.0, 700.0, 710.0]
        health = TraceHealth()
        out = list(
            sanitize((report_at(t) for t in times), slack_s=100.0, health=health)
        )
        assert [r.time for r in out] == sorted(times)
        assert health.reordered == 2
        assert health.max_reorder_depth_s == 20.0
        assert health.quarantined == 0

    def test_hopelessly_late_quarantined(self):
        times = [0.0, 500.0, 1000.0, 5.0]  # 5.0 behind released output
        health = TraceHealth()
        out = list(
            sanitize((report_at(t) for t in times), slack_s=100.0, health=health)
        )
        assert [r.time for r in out] == [0.0, 500.0, 1000.0]
        assert health.quarantined == 1

    def test_invalid_slack(self):
        with pytest.raises(ValueError):
            list(sanitize([], slack_s=0.0))


class TestTolerantWindows:
    def test_reordered_stream_windows_cleanly(self):
        times = [0.0, 650.0, 500.0, 700.0, 1300.0]  # 500 after 650
        reports = [report_at(t) for t in times]
        with pytest.raises(ValueError):
            list(iter_windows(reports, 600.0))
        health = TraceHealth()
        windows = list(iter_windows(reports, 600.0, tolerant=True, health=health))
        assert [w for w, _ in windows] == [0.0, 600.0, 1200.0]
        assert [len(rs) for _, rs in windows] == [2, 2, 1]
        assert health.reordered == 1


class TestTolerantTraceReaderEndToEnd:
    def test_combined_health_and_reiterability(self, tmp_path):
        path = tmp_path / "dirty.jsonl"
        faults = ChannelFaults(
            loss_rate=0.05,
            duplicate_rate=0.05,
            reorder_rate=0.05,
            corrupt_rate=0.02,
        )
        with JsonlTraceStore(path) as store:
            with FaultyChannel(store, faults, seed=13) as channel:
                for i in range(2000):
                    channel.append(report_at(float(i * 10), ip=i % 40))
        trace = TolerantTraceReader(path, slack_s=300.0)
        first = [r.time for r in trace]
        assert first == sorted(first)
        h = trace.health
        assert h.dirty
        assert h.parse_failures == channel.counters.corrupted
        assert h.reordered > 0
        assert h.duplicates > 0
        second = [r.time for r in trace]
        assert second == first  # re-iterable, same result


class TestStoreModes:
    def test_create_refuses_existing(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceStore(path) as store:
            store.append(report_at(1.0))
        with pytest.raises(FileExistsError):
            JsonlTraceStore(path)

    def test_append_extends(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceStore(path) as store:
            store.append(report_at(1.0))
        with JsonlTraceStore(path, mode="append") as store:
            store.append(report_at(2.0))
        assert [r.time for r in TraceReader(path)] == [1.0, 2.0]

    def test_overwrite_truncates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with JsonlTraceStore(path) as store:
            store.append(report_at(1.0))
        with JsonlTraceStore(path, mode="overwrite") as store:
            store.append(report_at(9.0))
        assert [r.time for r in TraceReader(path)] == [9.0]

    def test_invalid_mode_and_flush_every(self, tmp_path):
        with pytest.raises(ValueError):
            JsonlTraceStore(tmp_path / "x.jsonl", mode="truncate")
        with pytest.raises(ValueError):
            JsonlTraceStore(tmp_path / "x.jsonl", flush_every=0)

    def test_flush_every_leaves_readable_prefix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        store = JsonlTraceStore(path, flush_every=10)
        for i in range(25):
            store.append(report_at(float(i)))
        # not closed: the flushed prefix (>= 20 records) is readable
        visible = list(TraceReader(path, tolerant=True))
        assert len(visible) >= 20
        store.close()
        assert len(list(TraceReader(path))) == 25
