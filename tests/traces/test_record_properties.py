"""Property-based tests for trace record serialisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.traces import PartnerRecord, PeerReport

partner_records = st.builds(
    PartnerRecord,
    ip=st.integers(0, 2**32 - 1),
    port=st.integers(0, 65535),
    sent_segments=st.integers(0, 10_000),
    recv_segments=st.integers(0, 10_000),
)

reports = st.builds(
    PeerReport,
    time=st.floats(0, 1e7, allow_nan=False),
    peer_ip=st.integers(0, 2**32 - 1),
    channel_id=st.integers(0, 800),
    buffer_fill=st.floats(0, 1, allow_nan=False),
    playback_position=st.integers(0, 10**7),
    download_capacity_kbps=st.floats(0, 1e5, allow_nan=False),
    upload_capacity_kbps=st.floats(0, 1e5, allow_nan=False),
    recv_rate_kbps=st.floats(0, 1e5, allow_nan=False),
    sent_rate_kbps=st.floats(0, 1e5, allow_nan=False),
    partners=st.lists(partner_records, max_size=20).map(tuple),
)


@given(reports)
def test_json_roundtrip_preserves_identity_fields(report):
    clone = PeerReport.from_json(report.to_json())
    assert clone.time == pytest.approx(report.time)
    assert clone.peer_ip == report.peer_ip
    assert clone.channel_id == report.channel_id
    assert clone.playback_position == report.playback_position
    assert clone.partners == report.partners


@given(reports)
def test_json_roundtrip_rates_within_rounding(report):
    clone = PeerReport.from_json(report.to_json())
    assert clone.recv_rate_kbps == pytest.approx(report.recv_rate_kbps, abs=0.06)
    assert clone.sent_rate_kbps == pytest.approx(report.sent_rate_kbps, abs=0.06)
    assert clone.buffer_fill == pytest.approx(report.buffer_fill, abs=1e-4)


@given(reports, st.integers(0, 100))
def test_active_classification_consistent(report, threshold):
    sups = report.active_suppliers(threshold)
    recs = report.active_receivers(threshold)
    assert all(p.recv_segments >= threshold for p in sups)
    assert all(p.sent_segments >= threshold for p in recs)
    assert set(sups) <= set(report.partners)
    assert set(recs) <= set(report.partners)


@given(reports)
def test_json_is_single_line(report):
    assert "\n" not in report.to_json()
