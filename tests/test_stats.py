"""Unit/property tests for the statistics toolkit (vs scipy)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.stats import bootstrap_mean_ci, ks_two_sample


class TestKsTwoSample:
    def test_identical_samples_not_significant(self):
        rng = random.Random(0)
        a = [rng.gauss(0, 1) for _ in range(200)]
        result = ks_two_sample(a, list(a))
        assert result.statistic == 0.0
        assert result.p_value == pytest.approx(1.0)
        assert not result.significant()

    def test_shifted_distributions_detected(self):
        rng = random.Random(1)
        a = [rng.gauss(0, 1) for _ in range(300)]
        b = [rng.gauss(1.0, 1) for _ in range(300)]
        result = ks_two_sample(a, b)
        assert result.significant(0.01)
        assert result.statistic > 0.3

    def test_same_distribution_usually_accepted(self):
        rng = random.Random(2)
        a = [rng.gauss(0, 1) for _ in range(300)]
        b = [rng.gauss(0, 1) for _ in range(300)]
        assert not ks_two_sample(a, b).significant(0.001)

    def test_matches_scipy(self):
        from scipy import stats as sps

        rng = random.Random(3)
        a = [rng.expovariate(1.0) for _ in range(150)]
        b = [rng.expovariate(1.4) for _ in range(120)]
        ours = ks_two_sample(a, b)
        ref = sps.ks_2samp(a, b, method="asymp")
        assert ours.statistic == pytest.approx(ref.statistic, abs=1e-12)
        assert ours.p_value == pytest.approx(ref.pvalue, abs=0.02)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ks_two_sample([], [1.0])

    @given(
        st.lists(st.integers(0, 30), min_size=5, max_size=60),
        st.lists(st.integers(0, 30), min_size=5, max_size=60),
    )
    @settings(max_examples=50)
    def test_statistic_bounds_and_symmetry(self, a, b):
        fwd = ks_two_sample(a, b)
        rev = ks_two_sample(b, a)
        assert 0.0 <= fwd.statistic <= 1.0
        assert fwd.statistic == pytest.approx(rev.statistic)
        assert fwd.p_value == pytest.approx(rev.p_value)


class TestBootstrapCi:
    def test_interval_contains_true_mean(self):
        rng = random.Random(4)
        sample = [rng.gauss(5.0, 2.0) for _ in range(120)]
        ci = bootstrap_mean_ci(sample, seed=1)
        assert ci.low < ci.mean < ci.high
        assert ci.contains(5.0)

    def test_narrower_with_lower_confidence(self):
        rng = random.Random(5)
        sample = [rng.random() for _ in range(80)]
        wide = bootstrap_mean_ci(sample, confidence=0.99, seed=2)
        narrow = bootstrap_mean_ci(sample, confidence=0.8, seed=2)
        assert (narrow.high - narrow.low) < (wide.high - wide.low)

    def test_deterministic(self):
        sample = [1.0, 2.0, 3.0, 4.0]
        a = bootstrap_mean_ci(sample, seed=7)
        b = bootstrap_mean_ci(sample, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            bootstrap_mean_ci([])
        with pytest.raises(ValueError):
            bootstrap_mean_ci([1.0], confidence=1.5)

    def test_constant_sample_degenerate_interval(self):
        ci = bootstrap_mean_ci([3.0] * 50, seed=3)
        assert ci.low == ci.high == ci.mean == 3.0
