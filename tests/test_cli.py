"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


@pytest.fixture(scope="module")
def cli_trace(tmp_path_factory):
    """A tiny simulated trace produced through the CLI itself."""
    path = tmp_path_factory.mktemp("cli") / "trace.jsonl.gz"
    rc = main(
        [
            "simulate",
            "--out",
            str(path),
            "--days",
            "0.4",
            "--base",
            "120",
            "--seed",
            "5",
            "--no-flash-crowd",
        ]
    )
    assert rc == 0
    return path


class TestParser:
    def test_commands_exist(self):
        parser = build_parser()
        for argv in (
            ["simulate", "--out", "x.jsonl"],
            ["analyze", "--trace", "x.jsonl"],
            ["info", "--trace", "x.jsonl"],
        ):
            args = parser.parse_args(argv)
            assert args.command == argv[0]

    def test_figure_choices(self):
        parser = build_parser()
        args = parser.parse_args(["analyze", "--trace", "t", "--figure", "fig6"])
        assert args.figure == "fig6"
        with pytest.raises(SystemExit):
            parser.parse_args(["analyze", "--trace", "t", "--figure", "fig99"])

    def test_policy_choices(self):
        parser = build_parser()
        args = parser.parse_args(["simulate", "--out", "t", "--policy", "tree"])
        assert args.policy == "tree"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "--trace-dir", "d"])
        assert not args.resume
        assert args.checkpoint_every == 36
        assert args.keep_last == 3


class TestRunCampaign:
    @pytest.fixture(scope="class")
    def campaign_dir(self, tmp_path_factory):
        """A short campaign run through the CLI, then resumed to extend."""
        d = tmp_path_factory.mktemp("campaign") / "trace"
        argv = [
            "run", "--trace-dir", str(d), "--days", "0.1", "--base", "60",
            "--seed", "5", "--no-flash-crowd", "--checkpoint-every", "4",
            "--segment-records", "50",
        ]
        assert main(argv) == 0
        return d

    def test_campaign_layout(self, campaign_dir):
        assert (campaign_dir / "manifest.json").exists()
        assert list(campaign_dir.glob("seg-*.jsonl"))
        assert list((campaign_dir / "checkpoints").glob("ckpt-*.bin"))

    def test_resume_extends_campaign(self, campaign_dir, capsys):
        argv = [
            "run", "--trace-dir", str(campaign_dir), "--resume",
            "--days", "0.15", "--base", "60", "--seed", "5",
            "--no-flash-crowd", "--checkpoint-every", "4",
            "--segment-records", "50",
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "resumed from checkpoint at round" in out
        assert "campaign complete" in out

    def test_resume_without_checkpoints_fails_cleanly(self, tmp_path, capsys):
        rc = main(["run", "--trace-dir", str(tmp_path / "void"), "--resume"])
        assert rc == 2
        assert "no valid checkpoint" in capsys.readouterr().err

    def test_fresh_run_refuses_existing_campaign(self, campaign_dir, capsys):
        rc = main(["run", "--trace-dir", str(campaign_dir), "--days", "0.1"])
        assert rc == 2
        assert "already holds a segmented trace" in capsys.readouterr().err

    def test_analyze_and_info_read_campaign_directory(
        self, campaign_dir, capsys
    ):
        assert main(["info", "--trace", str(campaign_dir)]) == 0
        assert "reports" in capsys.readouterr().out
        rc = main(
            ["analyze", "--trace", str(campaign_dir), "--figure", "fig1"]
        )
        assert rc == 0
        assert "Fig. 1(A)" in capsys.readouterr().out


class TestSimulate:
    def test_trace_created(self, cli_trace):
        assert cli_trace.exists()
        assert cli_trace.stat().st_size > 1000


class TestInfo:
    def test_summary_printed(self, cli_trace, capsys):
        assert main(["info", "--trace", str(cli_trace)]) == 0
        out = capsys.readouterr().out
        assert "reports" in out
        assert "reporting peers" in out

    def test_missing_trace(self, tmp_path, capsys):
        rc = main(["info", "--trace", str(tmp_path / "nope.jsonl")])
        assert rc == 2
        assert "no such trace" in capsys.readouterr().err

    def test_tolerant_reports_health(self, cli_trace, tmp_path, capsys):
        # a dirty copy: duplicate one line, truncate the last one
        import gzip

        lines = gzip.open(cli_trace, "rt").readlines()
        dirty = tmp_path / "dirty.jsonl"
        dirty.write_text(
            lines[0] + lines[0] + "".join(lines[1:-1]) + lines[-1][:30]
        )
        assert main(["info", "--trace", str(dirty), "--tolerant"]) == 0
        out = capsys.readouterr().out
        assert "trace health" in out
        assert "duplicates dropped" in out


class TestAnalyze:
    def test_single_figure(self, cli_trace, capsys):
        assert main(["analyze", "--trace", str(cli_trace), "--figure", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "China Telecom" in out

    def test_fig4_too_short_is_skipped_gracefully(self, cli_trace, capsys):
        # the default Fig. 4 snapshots are beyond a 0.4-day trace
        assert main(["analyze", "--trace", str(cli_trace), "--figure", "fig4"]) == 0
        assert "skipped" in capsys.readouterr().out

    def test_csv_export(self, cli_trace, tmp_path, capsys):
        csv_dir = tmp_path / "csv"
        rc = main(
            [
                "analyze",
                "--trace",
                str(cli_trace),
                "--figure",
                "fig1",
                "--csv-dir",
                str(csv_dir),
            ]
        )
        assert rc == 0
        assert (csv_dir / "fig1a.csv").exists()
        assert (csv_dir / "fig1b.csv").exists()
        header = (csv_dir / "fig1a.csv").read_text().splitlines()[0]
        assert header == "t,total,stable"

    def test_missing_trace(self, tmp_path):
        rc = main(["analyze", "--trace", str(tmp_path / "gone.jsonl")])
        assert rc == 2

    def test_all_figures_on_short_trace(self, cli_trace, capsys):
        # every analyzer either renders or reports a graceful skip
        assert main(["analyze", "--trace", str(cli_trace)]) == 0
        out = capsys.readouterr().out
        assert "Fig. 1(A)" in out
        assert "Fig. 8" in out


class TestObservability:
    @pytest.fixture(scope="class")
    def obs_campaign(self, tmp_path_factory):
        """A short instrumented campaign: (trace_dir, obs_dir)."""
        root = tmp_path_factory.mktemp("obs-cli")
        trace_dir = root / "trace"
        obs_dir = root / "obs"
        argv = [
            "run", "--trace-dir", str(trace_dir), "--days", "0.1",
            "--base", "60", "--seed", "5", "--no-flash-crowd",
            "--obs-dir", str(obs_dir),
        ]
        assert main(argv) == 0
        return trace_dir, obs_dir

    def test_run_writes_obs_files(self, obs_campaign, capsys):
        _, obs_dir = obs_campaign
        for name in ("events.jsonl", "metrics.json", "metrics.prom"):
            assert (obs_dir / name).exists(), name

    def test_obs_summarize(self, obs_campaign, capsys):
        _, obs_dir = obs_campaign
        assert main(["obs", "summarize", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "Round-phase timings" in out
        assert "campaign.run" in out
        assert "sim.rounds" in out

    def test_obs_summarize_missing_dir(self, tmp_path, capsys):
        rc = main(["obs", "summarize", str(tmp_path / "nope")])
        assert rc == 2
        assert "no such obs directory" in capsys.readouterr().err

    def test_info_surfaces_campaign_health(self, obs_campaign, capsys):
        trace_dir, _ = obs_campaign
        assert main(["info", "--trace", str(trace_dir)]) == 0
        out = capsys.readouterr().out
        assert "campaign health" in out
        assert "server-dropped reports" in out

    def test_analyze_json_document(self, obs_campaign, capsys):
        import json

        trace_dir, _ = obs_campaign
        rc = main(
            ["analyze", "--trace", str(trace_dir), "--figure", "fig1", "--json"]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        fig1 = doc["figures"]["fig1"]
        assert fig1["times"]
        assert len(fig1["total"]) == len(fig1["times"])
        # collection-path loss accounting rides along for campaign dirs
        assert "campaign_health" in doc
        assert "server_dropped" in doc["campaign_health"]["health"]

    def test_analyze_json_all_figures_parses(self, cli_trace, capsys):
        import json

        assert main(["analyze", "--trace", str(cli_trace), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert set(doc["figures"]) == {
            "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8"
        }

    def test_analyze_workers_byte_identical(self, cli_trace, capsys):
        assert main(
            [
                "analyze", "--trace", str(cli_trace), "--figure", "fig1",
                "--json", "--workers", "1",
            ]
        ) == 0
        serial = capsys.readouterr().out
        assert main(
            [
                "analyze", "--trace", str(cli_trace), "--figure", "fig1",
                "--json", "--workers", "2",
            ]
        ) == 0
        assert capsys.readouterr().out == serial

    def test_analyze_workers_must_be_positive(self, cli_trace, capsys):
        rc = main(
            ["analyze", "--trace", str(cli_trace), "--workers", "0"]
        )
        assert rc == 2
        assert "workers" in capsys.readouterr().err

    def test_analyze_obs_dir_profiles_analytics(self, cli_trace, tmp_path, capsys):
        obs_dir = tmp_path / "ana-obs"
        rc = main(
            [
                "analyze", "--trace", str(cli_trace), "--figure", "fig1",
                "--obs-dir", str(obs_dir),
            ]
        )
        assert rc == 0
        capsys.readouterr()
        assert main(["obs", "summarize", str(obs_dir)]) == 0
        out = capsys.readouterr().out
        assert "Analytics timings" in out
        assert "analytics.snapshot" in out


class TestCompareOverlays:
    def test_table_lists_every_policy(self, capsys):
        rc = main(
            [
                "compare-overlays", "--policies", "uusee,strandcast",
                "--hours", "1", "--base", "60", "--seed", "5",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "overlay comparison" in out
        assert "uusee" in out and "strandcast" in out
        assert "intra-ISP baseline" in out

    def test_json_document(self, capsys):
        import json

        rc = main(
            [
                "compare-overlays", "--policies", "strandcast",
                "--hours", "1", "--base", "60", "--seed", "5", "--json",
            ]
        )
        assert rc == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["rows"][0]["spec"] == "strandcast"
        assert doc["rows"][0]["max_indegree"] == 1

    def test_markdown_table(self, capsys):
        rc = main(
            [
                "compare-overlays", "--policies", "strandcast",
                "--hours", "1", "--base", "60", "--seed", "5", "--markdown",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert out.startswith("| policy |")

    def test_unknown_policy_fails_cleanly(self, capsys):
        rc = main(["compare-overlays", "--policies", "nope"])
        assert rc == 2
        assert "unknown partner policy" in capsys.readouterr().err

    def test_campaign_policy_spec_roundtrip(self, tmp_path, capsys):
        rc = main(
            [
                "run", "--trace-dir", str(tmp_path / "camp"), "--days", "0.05",
                "--base", "50", "--seed", "3", "--no-flash-crowd",
                "--policy", "hamiltonian:k=2",
            ]
        )
        assert rc == 0
        capsys.readouterr()
        assert main(["info", "--trace", str(tmp_path / "camp")]) == 0
        out = capsys.readouterr().out
        assert "hamiltonian:k=2" in out
        assert "k=2" in out

    def test_simulate_rejects_bad_policy(self, tmp_path, capsys):
        rc = main(
            [
                "simulate", "--out", str(tmp_path / "t.jsonl"),
                "--days", "0.05", "--policy", "locality:mix=5",
            ]
        )
        assert rc == 2
        assert "mix must be in" in capsys.readouterr().err
