"""Fig. 2 — peer number statistics for different ISPs.

Paper: a pie chart dominated by China Telecom, then China Netcom, with
China Unicom / Tietong / Edu / others as minor slices and a visible
overseas share.  Distributions do not vary significantly over time.
"""

from benchmarks.conftest import show
from repro.core.experiments import fig2_isp_shares


def test_fig2_isp_shares(benchmark, flagship_trace, isp_db):
    shares = benchmark.pedantic(
        lambda: fig2_isp_shares(flagship_trace, isp_db), rounds=1, iterations=1
    )
    ranked = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
    show(
        "Fig. 2 ISP shares",
        ["ISP", "measured share", "registry share"],
        [[name, value, isp_db.isp(name).share] for name, value in ranked],
    )
    assert abs(sum(shares.values()) - 1.0) < 1e-9
    assert ranked[0][0] == "China Telecom"
    assert ranked[1][0] == "China Netcom"
    assert ranked[0][1] > 0.3
    assert 0.02 < shares["Oversea ISPs"] < 0.2
    # measured shares track the registry within a few points
    for name, value in shares.items():
        assert abs(value - isp_db.isp(name).share) < 0.06
