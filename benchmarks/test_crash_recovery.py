"""Campaign durability benchmark: recovery cost and zero report loss.

Not a paper figure.  A checkpointed campaign is killed mid-run (abandon
without ``close()``, a torn half-record appended to the active trace
segment) and then resumed.  Two quantities are reported:

- **recovery time** — wall clock to scan/repair the segmented store,
  roll it back to the checkpoint cut and rebuild the simulator state,
  versus re-running the whole campaign from scratch;
- **replay cost** — the rounds between the last checkpoint and the kill
  that must be re-simulated (the only work a crash can cost).

The zero-report-loss claim is asserted, not just reported: after
resume, the trace content hash equals an uninterrupted twin's, so no
measurement report was lost or duplicated.
"""

import shutil

from benchmarks.conftest import show
from repro.simulator import (
    CheckpointManager,
    SystemConfig,
    UUSeeSystem,
    restore_into,
)
from repro.traces import SegmentedTraceStore

SEED = 2006
BASE = 150.0
ROUND = 600.0
TOTAL_ROUNDS = 36  # a 6-hour campaign slice
KILL_AFTER = 22  # checkpoints every 6 -> 4 rounds of replay
EVERY = 6
SEGMENT_RECORDS = 2_000


def _config() -> SystemConfig:
    return SystemConfig(seed=SEED, base_concurrency=BASE, flash_crowd=None)


def _run_campaign(trace_dir, *, rounds, ckpt_dir=None):
    store = SegmentedTraceStore(trace_dir, records_per_segment=SEGMENT_RECORDS)
    system = UUSeeSystem(_config(), store)
    if ckpt_dir is None:
        system.run(seconds=rounds * ROUND)
    else:
        system.run(
            seconds=rounds * ROUND,
            checkpoint=CheckpointManager(ckpt_dir),
            checkpoint_every_rounds=EVERY,
        )
    return system, store


def _content_sha(trace_dir) -> str:
    recovered = SegmentedTraceStore.recover(trace_dir)
    try:
        return recovered.content_sha256()
    finally:
        recovered.close()


def test_recovery_beats_rerun_and_loses_nothing(benchmark, tmp_path):
    twin_dir = tmp_path / "twin"
    _, twin_store = _run_campaign(twin_dir, rounds=TOTAL_ROUNDS)
    twin_store.close()

    # The wreckage: killed at round KILL_AFTER, torn record in the tail.
    wreck_dir = tmp_path / "wreck"
    ckpt_dir = tmp_path / "ckpt"
    _, wreck_store = _run_campaign(
        wreck_dir, rounds=KILL_AFTER, ckpt_dir=ckpt_dir
    )
    wreck_store.flush()
    active = wreck_dir / f"seg-{wreck_store._active_index:08d}.jsonl"
    with open(active, "ab") as fh:
        fh.write(b'{"time": 1e12, "peer_ip"')

    def recover_state():
        """Scan + repair + rollback + rebuild: everything but re-simulation."""
        scratch = tmp_path / "scratch"
        if scratch.exists():
            shutil.rmtree(scratch)
        shutil.copytree(wreck_dir, scratch)
        _, state = CheckpointManager(ckpt_dir).latest_valid()
        store = SegmentedTraceStore.recover(scratch)
        store.rollback(state["trace_records"])
        system = UUSeeSystem(_config(), store)
        restore_into(system, state)
        return system, store, state

    system, store, state = benchmark.pedantic(
        recover_state, rounds=3, iterations=1
    )
    replayed = KILL_AFTER - state["rounds_completed"]
    assert 0 < replayed <= EVERY

    system.run(seconds=(TOTAL_ROUNDS - system.rounds_completed) * ROUND)
    store.close()
    resumed_sha = _content_sha(store.directory)
    twin_sha = _content_sha(twin_dir)
    assert resumed_sha == twin_sha, "resume lost or duplicated reports"

    show(
        "campaign durability",
        ["quantity", "value"],
        [
            ("rounds total / at kill", f"{TOTAL_ROUNDS} / {KILL_AFTER}"),
            ("rounds replayed after resume", replayed),
            ("reports in final trace", len(store)),
            ("trace sha256 (resumed == twin)", resumed_sha[:16]),
        ],
    )
