"""Performance benchmark of the simulator itself.

Not a paper figure: this measures how fast the substrate advances
simulated time, the quantity that bounds every experiment's wall-clock
cost.  Reported as rounds (of 600 simulated seconds at ~300 concurrent
peers) per benchmark iteration.
"""

from benchmarks.conftest import BENCH_WORKERS
from repro.obs import NULL_OBSERVER, Observer
from repro.simulator import SystemConfig, UUSeeSystem
from repro.traces import InMemoryTraceStore


def _build_warm_system(obs=NULL_OBSERVER) -> UUSeeSystem:
    config = SystemConfig(seed=99, base_concurrency=300.0, flash_crowd=None)
    system = UUSeeSystem(config, InMemoryTraceStore(), obs=obs)
    system.run(seconds=2 * 3600)  # warm up membership
    return system


def test_simulation_round_throughput(benchmark):
    system = _build_warm_system()

    def advance_ten_rounds():
        system.run(seconds=10 * 600)
        return system.concurrent_peers()

    peers = benchmark.pedantic(advance_ten_rounds, rounds=3, iterations=1)
    assert peers > 100  # the system is alive and populated


def test_simulation_round_throughput_observed(benchmark):
    """Same workload with a live observer: the <5% overhead budget.

    Kept next to the plain variant so BENCH_report.json always carries
    the obs-on/obs-off pair; DESIGN.md §7 documents the budget.
    """
    obs = Observer()  # registry + spans, no event sink
    system = _build_warm_system(obs)

    def advance_ten_rounds():
        system.run(seconds=10 * 600)
        return system.concurrent_peers()

    peers = benchmark.pedantic(advance_ten_rounds, rounds=3, iterations=1)
    assert peers > 100
    assert obs.registry.counter("sim.rounds").value > 0


def _analytics_workload():
    """A multi-window trace plus the full Sec. 4 metric table.

    Metrics are module-level functions / partials so the same dict can
    be evaluated serially or fanned out over worker processes.
    """
    from functools import partial

    from repro.core.metrics import (
        average_degrees,
        intra_isp_degree_fractions,
        reciprocity_metrics,
        small_world,
    )
    from repro.network import build_default_database

    config = SystemConfig(seed=99, base_concurrency=300.0, flash_crowd=None)
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=6 * 3600)
    reports = list(system.trace_server.store.reports)
    db = build_default_database()
    metrics = {
        "degrees": average_degrees,
        "intra_isp": partial(intra_isp_degree_fractions, db=db),
        "reciprocity": partial(reciprocity_metrics, db=db),
        "small_world": partial(small_world, db=db, seed=1),
    }
    return reports, metrics


def _check_series(series) -> None:
    assert len(series) >= 10  # a real multi-window workload
    # early windows cover the cold start while membership ramps up, so
    # only the steady-state tail is held to a minimum graph size
    assert all(s.num_nodes > 20 for s in series.column("small_world")[5:])
    assert all(r.all_links > 0 for r in series.column("reciprocity")[5:])


def test_snapshot_analytics_throughput(benchmark):
    """Windowed analytics fan-out: snapshot + all Sec. 4 metrics per
    window, evaluated on ``REPRO_BENCH_WORKERS`` processes (default 4).

    BENCH_report.json derives the per-window time from this mean and the
    window count; the serial twin below is the speedup denominator.
    """
    from repro.core.timeseries import observe

    reports, metrics = _analytics_workload()

    def analyze():
        return observe(reports, metrics, workers=BENCH_WORKERS)

    series = benchmark.pedantic(analyze, rounds=3, iterations=1)
    _check_series(series)


def test_snapshot_analytics_throughput_serial(benchmark):
    """Same workload on one process: the parallel speedup denominator."""
    from repro.core.timeseries import observe

    reports, metrics = _analytics_workload()

    def analyze():
        return observe(reports, metrics, workers=1)

    series = benchmark.pedantic(analyze, rounds=3, iterations=1)
    _check_series(series)
