"""Performance benchmark of the simulator itself.

Not a paper figure: this measures how fast the substrate advances
simulated time, the quantity that bounds every experiment's wall-clock
cost.  Reported as rounds (of 600 simulated seconds at ~300 concurrent
peers) per benchmark iteration.
"""

from repro.obs import NULL_OBSERVER, Observer
from repro.simulator import SystemConfig, UUSeeSystem
from repro.traces import InMemoryTraceStore


def _build_warm_system(obs=NULL_OBSERVER) -> UUSeeSystem:
    config = SystemConfig(seed=99, base_concurrency=300.0, flash_crowd=None)
    system = UUSeeSystem(config, InMemoryTraceStore(), obs=obs)
    system.run(seconds=2 * 3600)  # warm up membership
    return system


def test_simulation_round_throughput(benchmark):
    system = _build_warm_system()

    def advance_ten_rounds():
        system.run(seconds=10 * 600)
        return system.concurrent_peers()

    peers = benchmark.pedantic(advance_ten_rounds, rounds=3, iterations=1)
    assert peers > 100  # the system is alive and populated


def test_simulation_round_throughput_observed(benchmark):
    """Same workload with a live observer: the <5% overhead budget.

    Kept next to the plain variant so BENCH_report.json always carries
    the obs-on/obs-off pair; DESIGN.md §7 documents the budget.
    """
    obs = Observer()  # registry + spans, no event sink
    system = _build_warm_system(obs)

    def advance_ten_rounds():
        system.run(seconds=10 * 600)
        return system.concurrent_peers()

    peers = benchmark.pedantic(advance_ten_rounds, rounds=3, iterations=1)
    assert peers > 100
    assert obs.registry.counter("sim.rounds").value > 0


def test_snapshot_analytics_throughput(benchmark):
    """Time the per-window analytics (snapshot + all Sec. 4 metrics)."""
    from repro.core import build_snapshot
    from repro.core.metrics import (
        average_degrees,
        intra_isp_degree_fractions,
        reciprocity_metrics,
        small_world,
    )
    from repro.network import build_default_database

    system = _build_warm_system()
    store = system.trace_server.store
    recent = [r for r in store.reports if r.time > system.engine.now - 600]
    db = build_default_database()

    def analyze():
        snap = build_snapshot(recent, time=0.0, window_seconds=600.0)
        return (
            average_degrees(snap),
            intra_isp_degree_fractions(snap, db),
            reciprocity_metrics(snap, db),
            small_world(snap, db=db, seed=1),
        )

    degrees, intra, rho, sw = benchmark.pedantic(analyze, rounds=3, iterations=1)
    assert degrees.mean_indegree > 0
    assert rho.all_links > 0
    assert sw.num_nodes > 20
