"""Ablation — what pins the Fig. 4(B) indegree spike near 10.

Paper Sec. 4.2.1 observes the active-supplier spike stays near 10 at
all loads and rates.  In a block-scheduling mesh that constant is the
*spreading width*: each peer requests at most a fixed fraction of the
stream from any one partner, so it needs ~demand/fraction suppliers
regardless of the absolute rate.  Doubling the per-link fraction must
therefore halve the indegree spike — while the abrupt cut-off
(demand / weakest-useful-link) stays put.
"""

from benchmarks.conftest import _cached_trace, show
from repro.core.experiments import fig4_degree_distributions
from repro.simulator.protocol import ProtocolConfig

DAY = 86_400.0
SNAPSHOTS = {"evening": int(0.9 * DAY)}


def _indegree(trace):
    result = fig4_degree_distributions(trace, snapshot_times=SNAPSHOTS)
    return result.kind_at("evening", "in")


def test_indegree_spike_tracks_spreading_width(benchmark):
    narrow_cfg = ProtocolConfig()  # 0.15 of the rate per link -> ~8+
    wide_cfg = ProtocolConfig(per_link_request_cap_fraction=0.35)  # -> ~4

    narrow_trace = _cached_trace(
        "ablation-spread-narrow",
        days=1.0,
        base_concurrency=350,
        seed=55,
        with_flash_crowd=False,
        protocol=narrow_cfg,
    )
    wide_trace = _cached_trace(
        "ablation-spread-wide",
        days=1.0,
        base_concurrency=350,
        seed=55,
        with_flash_crowd=False,
        protocol=wide_cfg,
    )
    narrow = benchmark.pedantic(
        lambda: _indegree(narrow_trace), rounds=1, iterations=1
    )
    wide = _indegree(wide_trace)
    show(
        "Ablation: block-spreading width vs indegree spike",
        ["per-link cap", "indegree mode", "mean", "max"],
        [
            ["0.15 x rate", narrow.mode(), narrow.mean(), narrow.max_degree()],
            ["0.35 x rate", wide.mode(), wide.mean(), wide.max_degree()],
        ],
    )
    # wider per-link requests -> fewer concurrent suppliers needed
    assert wide.mean() < 0.7 * narrow.mean()
    assert wide.mode() < narrow.mode()
    # the emergent cut-off never exceeds demand / min-useful-rate
    ceiling = narrow_cfg.indegree_ceiling(400.0)
    assert narrow.max_degree() <= 2 * ceiling  # first reports span 20 min
