"""Compare a BENCH_report.json against the committed perf baseline.

Usage::

    python benchmarks/check_regression.py [REPORT [BASELINE]]

Defaults: ``BENCH_report.json`` at the repo root against
``benchmarks/baseline.json``.  The gate fails (exit 1) when any
benchmark present in both files is more than ``--tolerance`` slower
than its baseline mean (default 20%).  Benchmarks missing from either
side are reported but never fail the gate, so adding or retiring a
benchmark does not require a lockstep baseline update.

The baseline is refreshed deliberately, not automatically::

    python benchmarks/check_regression.py --update-baseline

which rewrites ``benchmarks/baseline.json`` from the current report.
Commit the result together with the optimisation (or regression
acceptance) that motivated it.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_REPORT = REPO_ROOT / "BENCH_report.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baseline.json"


def _means(report: dict) -> dict[str, float]:
    """{nodeid: mean seconds} for every timed benchmark in a report."""
    out: dict[str, float] = {}
    for row in report.get("benchmarks", []):
        mean = row.get("mean_s")
        if isinstance(mean, (int, float)) and mean > 0:
            out[str(row["nodeid"])] = float(mean)
    return out


def check(
    report_path: Path, baseline_path: Path, *, tolerance: float
) -> int:
    report = json.loads(report_path.read_text())
    baseline = json.loads(baseline_path.read_text())
    current = _means(report)
    reference = {
        k: float(v) for k, v in baseline.get("means_s", {}).items()
    }

    failures: list[str] = []
    for nodeid in sorted(reference):
        base = reference[nodeid]
        now = current.get(nodeid)
        if now is None:
            print(f"SKIP  {nodeid}: not in current report")
            continue
        ratio = now / base
        verdict = "FAIL" if ratio > 1.0 + tolerance else "ok"
        print(
            f"{verdict:4}  {nodeid}: {now * 1e3:.3f} ms vs baseline"
            f" {base * 1e3:.3f} ms ({ratio - 1.0:+.1%})"
        )
        if ratio > 1.0 + tolerance:
            failures.append(nodeid)
    for nodeid in sorted(set(current) - set(reference)):
        print(f"NEW   {nodeid}: {current[nodeid] * 1e3:.3f} ms (no baseline)")

    if failures:
        print(
            f"\n{len(failures)} benchmark(s) regressed more than"
            f" {tolerance:.0%} vs benchmarks/baseline.json"
        )
        return 1
    print("\nno perf regressions beyond tolerance")
    return 0


def update_baseline(report_path: Path, baseline_path: Path) -> int:
    report = json.loads(report_path.read_text())
    payload = {
        "config": report.get("config", {}),
        "means_s": _means(report),
    }
    baseline_path.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )
    print(f"baseline rewritten from {report_path} -> {baseline_path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("report", nargs="?", type=Path, default=DEFAULT_REPORT)
    parser.add_argument(
        "baseline", nargs="?", type=Path, default=DEFAULT_BASELINE
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.20,
        help="allowed slowdown fraction before failing (default 0.20)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the report instead of checking",
    )
    args = parser.parse_args(argv)
    if args.update_baseline:
        return update_baseline(args.report, args.baseline)
    return check(args.report, args.baseline, tolerance=args.tolerance)


if __name__ == "__main__":
    sys.exit(main())
