"""Ablation — upload-capacity volunteering on/off.

DESIGN.md Sec. 4: UUSee's scalability (Fig. 3, especially under the
flash crowd) rests on peers with spare upload capacity volunteering at
the tracker, which is how newcomers find supply.  Disabling
volunteering (spare threshold above any peer's capacity) leaves only
the streaming servers to bootstrap from, and quality collapses.
"""

from benchmarks.conftest import _cached_trace, show
from repro.core.experiments import fig3_streaming_quality
from repro.simulator.protocol import ProtocolConfig


def test_no_volunteering_collapses_quality(benchmark, uusee_trace):
    no_volunteer_trace = _cached_trace(
        "ablation-novolunteer",
        days=1.5,
        base_concurrency=400,
        seed=77,
        with_flash_crowd=False,
        protocol=ProtocolConfig(volunteer_spare_fraction=2.0),
    )
    with_vol = benchmark.pedantic(
        lambda: fig3_streaming_quality(uusee_trace), rounds=1, iterations=1
    )
    without = fig3_streaming_quality(no_volunteer_trace)
    q_on = with_vol.mean_quality("CCTV1")
    q_off = without.mean_quality("CCTV1")
    show(
        "Ablation: volunteering vs streaming quality (CCTV1)",
        ["configuration", "satisfied fraction"],
        [["volunteering on", q_on], ["volunteering off", q_off]],
    )
    assert q_on > 0.6
    assert q_off < q_on - 0.25
