"""Fig. 3 — percentage of peers with satisfactory streaming rates.

Paper: ~3/4 of CCTV1 and CCTV4 viewers receive >= 90% of the channel
rate, consistently over time, slightly *higher* at daily peak hours,
with a sharp increase for CCTV4 during the flash crowd — the paper's
scalability headline.
"""

from benchmarks.conftest import DAY, FLASH_PEAK, show
from repro.core.experiments import fig3_streaming_quality


def test_fig3_streaming_quality(benchmark, flagship_trace):
    result = benchmark.pedantic(
        lambda: fig3_streaming_quality(flagship_trace), rounds=1, iterations=1
    )
    cctv1 = result.mean_quality("CCTV1")
    cctv4 = result.mean_quality("CCTV4")
    previous_evening = FLASH_PEAK - DAY
    rows = [
        ["CCTV1 mean satisfied", "~0.75", cctv1],
        ["CCTV4 mean satisfied", "~0.75", cctv4],
        ["CCTV1 at flash crowd", "no collapse", result.quality_at("CCTV1", FLASH_PEAK)],
        ["CCTV1 prev evening", "-", result.quality_at("CCTV1", previous_evening)],
        ["CCTV4 at flash crowd", "sharp increase", result.quality_at("CCTV4", FLASH_PEAK)],
        ["CCTV4 prev evening", "-", result.quality_at("CCTV4", previous_evening)],
    ]
    show("Fig. 3 streaming quality", ["metric", "paper", "measured"], rows)

    assert 0.6 <= cctv1 <= 0.99
    assert 0.6 <= cctv4 <= 0.995
    # scalability: the flash crowd does not collapse streaming quality
    fc1 = result.quality_at("CCTV1", FLASH_PEAK)
    assert fc1 is not None and fc1 > 0.55
    fc4 = result.quality_at("CCTV4", FLASH_PEAK)
    assert fc4 is not None and fc4 > 0.55
