"""Backend and analytics throughput: object vs SoA, full vs incremental.

Two benchmark pairs, kept adjacent so every BENCH_report.json carries
both sides of each ratio:

- the 5 000-peer *exchange round* (demand spreading, allocation,
  accounting — the data plane the SoA backend vectorises) on the object
  backend vs the SoA backend.  This deliberately isolates ``run_round``
  from membership churn: at UUSee churn rates the tracker/connect
  control plane does comparable work per round, is identical Python on
  both backends, and would otherwise drown the quantity under test.
- windowed structure analytics (degree histograms, reciprocity,
  clustering) recomputed per window vs maintained incrementally from
  edge deltas (target >= 2x), on a 12-hour ~700-peer trace.

Ratios are derived from the report, not asserted here: wall-clock on a
shared box is too noisy for a hard gate, and ``baseline.json`` already
flags regressions run-over-run.
"""

from benchmarks.conftest import BENCH_ANALYTICS
from repro.core.experiments import windowed_structure
from repro.simulator import SystemConfig, UUSeeSystem
from repro.traces import InMemoryTraceStore

FIVE_K = 5_000.0
ROUND = 600.0


def _warm_system(engine: str) -> UUSeeSystem:
    config = SystemConfig(
        seed=99, base_concurrency=FIVE_K, flash_crowd=None, engine=engine
    )
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=2 * 3600)  # ramp membership to steady state
    return system


def _bench_exchange_rounds(benchmark, engine: str) -> None:
    system = _warm_system(engine)
    exchange = system.exchange
    clock = [system.engine.now]

    def five_exchange_rounds():
        stats = None
        for _ in range(5):
            clock[0] += ROUND
            stats = exchange.run_round(clock[0], ROUND)
        return stats

    stats = benchmark.pedantic(five_exchange_rounds, rounds=3, iterations=1)
    assert stats.viewers > 1_000  # populated at the target scale
    assert stats.transfers > 0


def test_exchange_round_5k_object(benchmark):
    _bench_exchange_rounds(benchmark, "object")


def test_exchange_round_5k_soa(benchmark):
    _bench_exchange_rounds(benchmark, "soa")


def _window_trace():
    """12 simulated hours at ~700 peers: ~70 analysis windows."""
    config = SystemConfig(
        seed=99, base_concurrency=700.0, flash_crowd=None, engine="soa"
    )
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=12 * 3600)
    return list(system.trace_server.store.reports)


def _check_series(series) -> None:
    assert len(series.times) >= 60
    assert all(v is not None for v in series.values["clustering"])


def test_window_structure_full(benchmark):
    reports = _window_trace()

    def analyze():
        return windowed_structure(reports, mode="full")

    _check_series(benchmark.pedantic(analyze, rounds=3, iterations=1))


def test_window_structure_incremental(benchmark):
    reports = _window_trace()

    def analyze():
        return windowed_structure(reports, mode="incremental")

    _check_series(benchmark.pedantic(analyze, rounds=3, iterations=1))


def test_window_structure_configured_mode(benchmark):
    """The mode selected by REPRO_BENCH_ANALYTICS (default incremental).

    This is the row dashboards track over time; the explicit pair above
    exists to measure the ratio regardless of the configured mode.
    """
    reports = _window_trace()

    def analyze():
        return windowed_structure(reports, mode=BENCH_ANALYTICS)

    _check_series(benchmark.pedantic(analyze, rounds=3, iterations=1))
