"""Fig. 6 — evolution of average intra-ISP degree fractions.

Paper: both the intra-ISP indegree and outdegree proportions hover
around 0.4 — far above what ISP-blind selection would give (the sum of
squared ISP shares) — and peak at the daily peak hours, when peers have
more partner choices and can keep the best, largely intra-ISP, links.
"""

from benchmarks.conftest import show
from repro.core.experiments import fig6_intra_isp_degrees


def _hourly_mean(result, hours, column="intra"):
    vals = []
    for t, v in zip(result.series.times, result.series.column(column)):
        if t < 12 * 3600:
            continue
        if int((t % 86_400) // 3_600) in hours:
            vals.append(v)
    return vals


def test_fig6_intra_isp_degrees(benchmark, flagship_trace, isp_db):
    result = benchmark.pedantic(
        lambda: fig6_intra_isp_degrees(flagship_trace, isp_db),
        rounds=1,
        iterations=1,
    )
    frac_in, frac_out = result.mean_fractions()
    peak = _hourly_mean(result, {20, 21, 22})
    trough = _hourly_mean(result, {4, 5, 6})
    peak_in = sum(v.indegree_fraction for v in peak) / len(peak)
    trough_in = sum(v.indegree_fraction for v in trough) / len(trough)
    show(
        "Fig. 6 intra-ISP degree fractions",
        ["metric", "paper", "measured"],
        [
            ["mean intra-ISP indegree fraction", "~0.4", frac_in],
            ["mean intra-ISP outdegree fraction", "~0.4", frac_out],
            ["ISP-blind baseline", "much lower", result.random_baseline],
            ["at daily peak hours (21h)", "higher", peak_in],
            ["at night trough (5h)", "lower", trough_in],
        ],
    )
    assert frac_in > result.random_baseline + 0.06
    assert frac_out > result.random_baseline + 0.06
    assert 0.30 <= frac_in <= 0.60
    assert 0.30 <= frac_out <= 0.60
    # natural clustering strengthens when the network is large
    assert peak_in >= trough_in - 0.03
