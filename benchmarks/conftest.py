"""Shared fixtures for the figure-regeneration benchmarks.

The flagship trace reproduces the paper's evaluation setting at ~1/100
scale: 8 simulated days starting Sunday 2006-10-01 00:00, double-peak
diurnal load, slight weekend boost, and the mid-autumn-festival flash
crowd on day 5 (Friday Oct 6) at 9 p.m.  It is simulated once and
cached under ``benchmarks/.cache/`` keyed by its parameters; delete the
directory to force a re-run.

Scale knobs (environment):
  REPRO_BENCH_DAYS  simulated days  (default 8; paper used 14)
  REPRO_BENCH_BASE  base concurrency (default 1000; paper saw ~100k)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.experiments import run_simulation_to_trace
from repro.network import build_default_database
from repro.simulator.protocol import SelectionPolicy
from repro.traces import TraceReader

CACHE_DIR = Path(__file__).parent / ".cache"

BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "8"))
BENCH_BASE = float(os.environ.get("REPRO_BENCH_BASE", "1000"))
BENCH_SEED = 2006
#: partner-selection policy spec driving the flagship trace
#: (NAME[:key=val,...] from the overlay registry)
BENCH_POLICY = os.environ.get("REPRO_BENCH_POLICY", "uusee")
#: exchange-engine backend generating the cached traces
#: (object | soa | soa-exact); part of the trace cache key
BENCH_ENGINE = os.environ.get("REPRO_BENCH_ENGINE", "object")
#: windowed-structure analytics mode (incremental | full) for the
#: benchmarks that honour it; recorded in BENCH_report.json so runs on
#: different modes are never compared as like-for-like
BENCH_ANALYTICS = os.environ.get("REPRO_BENCH_ANALYTICS", "incremental")
#: process count for the parallel-analytics benchmarks; capped at the
#: host's core count — on a single-core box pool fan-out only adds
#: overhead, so the parallel benchmark degrades to the serial path
BENCH_WORKERS = int(
    os.environ.get("REPRO_BENCH_WORKERS", str(min(4, os.cpu_count() or 1)))
)

DAY = 86_400.0
HOUR = 3_600.0
#: centre of the flash-crowd hold phase (FlashCrowdEvent defaults)
FLASH_PEAK = 5 * DAY + 20.5 * HOUR + 1_800 + 3_600


def _cached_trace(name: str, **kwargs) -> TraceReader:
    import dataclasses
    import hashlib

    CACHE_DIR.mkdir(exist_ok=True)
    # hash only values with stable reprs; anything else (e.g. a channel
    # catalogue) must be reflected in ``name`` by the caller
    stable = [
        (k, repr(v))
        for k, v in sorted(kwargs.items())
        if isinstance(v, (int, float, str, bool, type(None)))
        or dataclasses.is_dataclass(v)
        or hasattr(v, "value")  # enums
    ]
    key = hashlib.sha256(repr(stable).encode()).hexdigest()[:16]
    path = CACHE_DIR / f"{name}-{key}.jsonl.gz"
    if not path.exists():
        # staging name keeps the .jsonl.gz suffix so compression is inferred
        tmp = path.with_name("tmp-" + path.name)
        run_simulation_to_trace(tmp, **kwargs)
        tmp.rename(path)
    return TraceReader(path)


@pytest.fixture(scope="session")
def flagship_trace() -> TraceReader:
    """The paper's two selected weeks, scaled (see module docstring)."""
    return _cached_trace(
        "flagship",
        days=BENCH_DAYS,
        base_concurrency=BENCH_BASE,
        seed=BENCH_SEED,
        with_flash_crowd=True,
        policy=BENCH_POLICY,
        engine=BENCH_ENGINE,
    )


def _ablation_trace(policy: SelectionPolicy) -> TraceReader:
    return _cached_trace(
        f"ablation-{policy.value}",
        days=1.5,
        base_concurrency=400,
        seed=77,
        with_flash_crowd=False,
        policy=policy,
        engine=BENCH_ENGINE,
    )


@pytest.fixture(scope="session")
def uusee_trace() -> TraceReader:
    return _ablation_trace(SelectionPolicy.UUSEE)


@pytest.fixture(scope="session")
def random_trace() -> TraceReader:
    return _ablation_trace(SelectionPolicy.RANDOM)


@pytest.fixture(scope="session")
def tree_trace() -> TraceReader:
    return _ablation_trace(SelectionPolicy.TREE)


@pytest.fixture(scope="session")
def isp_db():
    return build_default_database()


def show(title: str, headers, rows) -> None:
    """Print a paper-vs-measured comparison table into the bench log."""
    from repro.core.report import format_table

    print()
    print(format_table(headers, rows, title=f"== {title} =="))


# --------------------------------------------------------- bench report
#
# Every benchmark run leaves a machine-readable BENCH_report.json at the
# repo root (uploaded as a CI artifact): call-phase wall time per test,
# plus pytest-benchmark timing stats where the `benchmark` fixture was
# used.  Local runs overwrite it; the file is gitignored.

REPORT_PATH = Path(
    os.environ.get("REPRO_BENCH_REPORT", Path(__file__).parent.parent / "BENCH_report.json")
)

_call_reports: dict[str, dict[str, object]] = {}


def pytest_runtest_logreport(report) -> None:
    if report.when != "call" or not report.nodeid.startswith("benchmarks/"):
        return
    _call_reports[report.nodeid] = {
        "nodeid": report.nodeid,
        "outcome": report.outcome,
        "wall_s": round(report.duration, 6),
    }


def _benchmark_stats(config) -> dict[str, dict[str, object]]:
    """Timing stats per test from pytest-benchmark, read defensively."""
    session = getattr(config, "_benchmarksession", None)
    out: dict[str, dict[str, object]] = {}
    for bench in getattr(session, "benchmarks", None) or ():
        stats = getattr(bench, "stats", None)
        mean = getattr(stats, "mean", None)
        if mean is None:
            continue
        out[getattr(bench, "fullname", getattr(bench, "name", "?"))] = {
            "mean_s": round(mean, 6),
            "stddev_s": round(getattr(stats, "stddev", 0.0), 6),
            "rounds": getattr(stats, "rounds", None),
            "ops_per_s": round(1.0 / mean, 3) if mean > 0 else None,
        }
    return out


def _policy_info(spec: str) -> dict[str, object]:
    """Name/params/canonical-spec triple for the bench report config."""
    from repro.overlay import canonical_spec, parse_policy_spec

    name, params = parse_policy_spec(spec)
    return {"name": name, "params": params, "spec": canonical_spec(name, params)}


def _git_sha() -> str | None:
    """HEAD commit of the benchmarked tree, or None outside a checkout."""
    import subprocess

    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except OSError:
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def pytest_sessionfinish(session, exitstatus) -> None:
    if not _call_reports:
        return
    import json

    stats = _benchmark_stats(session.config)
    rows = []
    for nodeid, row in sorted(_call_reports.items()):
        bench = stats.get(nodeid)
        if bench is not None:
            row = {**row, **bench}
        rows.append(row)
    payload = {
        "config": {
            "days": BENCH_DAYS,
            "base": BENCH_BASE,
            "peers": BENCH_BASE,
            "seed": BENCH_SEED,
            "policy": _policy_info(BENCH_POLICY),
            "engine": BENCH_ENGINE,
            "analytics": BENCH_ANALYTICS,
            "workers": BENCH_WORKERS,
            "git_sha": _git_sha(),
        },
        "exitstatus": int(exitstatus),
        "benchmarks": rows,
    }
    REPORT_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
