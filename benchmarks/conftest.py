"""Shared fixtures for the figure-regeneration benchmarks.

The flagship trace reproduces the paper's evaluation setting at ~1/100
scale: 8 simulated days starting Sunday 2006-10-01 00:00, double-peak
diurnal load, slight weekend boost, and the mid-autumn-festival flash
crowd on day 5 (Friday Oct 6) at 9 p.m.  It is simulated once and
cached under ``benchmarks/.cache/`` keyed by its parameters; delete the
directory to force a re-run.

Scale knobs (environment):
  REPRO_BENCH_DAYS  simulated days  (default 8; paper used 14)
  REPRO_BENCH_BASE  base concurrency (default 1000; paper saw ~100k)
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.experiments import run_simulation_to_trace
from repro.network import build_default_database
from repro.simulator.protocol import SelectionPolicy
from repro.traces import TraceReader

CACHE_DIR = Path(__file__).parent / ".cache"

BENCH_DAYS = float(os.environ.get("REPRO_BENCH_DAYS", "8"))
BENCH_BASE = float(os.environ.get("REPRO_BENCH_BASE", "1000"))
BENCH_SEED = 2006

DAY = 86_400.0
HOUR = 3_600.0
#: centre of the flash-crowd hold phase (FlashCrowdEvent defaults)
FLASH_PEAK = 5 * DAY + 20.5 * HOUR + 1_800 + 3_600


def _cached_trace(name: str, **kwargs) -> TraceReader:
    import dataclasses
    import hashlib

    CACHE_DIR.mkdir(exist_ok=True)
    # hash only values with stable reprs; anything else (e.g. a channel
    # catalogue) must be reflected in ``name`` by the caller
    stable = [
        (k, repr(v))
        for k, v in sorted(kwargs.items())
        if isinstance(v, (int, float, str, bool, type(None)))
        or dataclasses.is_dataclass(v)
        or hasattr(v, "value")  # enums
    ]
    key = hashlib.sha256(repr(stable).encode()).hexdigest()[:16]
    path = CACHE_DIR / f"{name}-{key}.jsonl.gz"
    if not path.exists():
        # staging name keeps the .jsonl.gz suffix so compression is inferred
        tmp = path.with_name("tmp-" + path.name)
        run_simulation_to_trace(tmp, **kwargs)
        tmp.rename(path)
    return TraceReader(path)


@pytest.fixture(scope="session")
def flagship_trace() -> TraceReader:
    """The paper's two selected weeks, scaled (see module docstring)."""
    return _cached_trace(
        "flagship",
        days=BENCH_DAYS,
        base_concurrency=BENCH_BASE,
        seed=BENCH_SEED,
        with_flash_crowd=True,
    )


def _ablation_trace(policy: SelectionPolicy) -> TraceReader:
    return _cached_trace(
        f"ablation-{policy.value}",
        days=1.5,
        base_concurrency=400,
        seed=77,
        with_flash_crowd=False,
        policy=policy,
    )


@pytest.fixture(scope="session")
def uusee_trace() -> TraceReader:
    return _ablation_trace(SelectionPolicy.UUSEE)


@pytest.fixture(scope="session")
def random_trace() -> TraceReader:
    return _ablation_trace(SelectionPolicy.RANDOM)


@pytest.fixture(scope="session")
def tree_trace() -> TraceReader:
    return _ablation_trace(SelectionPolicy.TREE)


@pytest.fixture(scope="session")
def isp_db():
    return build_default_database()


def show(title: str, headers, rows) -> None:
    """Print a paper-vs-measured comparison table into the bench log."""
    from repro.core.report import format_table

    print()
    print(format_table(headers, rows, title=f"== {title} =="))
