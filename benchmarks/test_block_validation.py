"""Validation — the aggregate flow model vs the block-accurate plane.

The two-week figure benchmarks run on the aggregate (kbps-per-round)
exchange model for tractability.  This benchmark cross-checks its
emergent observables against the block-accurate single-swarm plane:
both must agree that (1) streaming succeeds with the default capacity
mix, (2) active suppliers are far fewer than partners, and (3) the
transfer digraph is strongly reciprocal — the properties every paper
figure builds on.
"""

import statistics

from benchmarks.conftest import show
from repro.core.experiments import fig5_degree_evolution, fig8_reciprocity
from repro.simulator.blocks import BlockSwarm, SwarmConfig


def test_flow_model_matches_block_plane(benchmark, uusee_trace, isp_db):
    def run_block_plane():
        swarm = BlockSwarm(SwarmConfig(num_peers=60, seed=17))
        swarm.run(1_200)  # 20 minutes of stream
        return swarm

    swarm = benchmark.pedantic(run_block_plane, rounds=1, iterations=1)
    block_continuity = swarm.continuity_index()
    # scale the activity threshold to the observation span: the figure
    # pipeline uses >=10 segments per 10-minute report, the swarm ran for
    # 20 minutes
    block_in = statistics.mean(swarm.active_indegrees(threshold=20))
    block_rho = swarm.reciprocity(threshold=20)

    flow_fig5 = fig5_degree_evolution(uusee_trace)
    flow_in = flow_fig5.mean_indegree(skip_first_hours=6)
    flow_rho = fig8_reciprocity(uusee_trace, isp_db).means(
        skip_first_hours=6
    ).all_links

    show(
        "Validation: aggregate flow model vs block-accurate plane",
        ["observable", "flow model", "block plane"],
        [
            ["streaming works (continuity/satisfied)", ">0.6", block_continuity],
            ["mean active indegree", flow_in, block_in],
            ["edge reciprocity rho", flow_rho, block_rho],
        ],
    )
    assert block_continuity > 0.9
    # both planes put the active supplier count in the same band: far
    # above a tree's 1, far below the partner-list size
    assert 5 <= flow_in <= 20
    assert 5 <= block_in <= 30
    # both planes agree the mesh is strongly reciprocal
    assert flow_rho > 0.25
    assert block_rho > 0.25
