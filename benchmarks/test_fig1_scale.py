"""Fig. 1 — scale of the UUSee topologies.

Paper: ~100k simultaneous peers with two daily peaks (1 p.m., 9 p.m.),
stable reporting peers asymptotically 1/3 of the total, a flash crowd
on the evening of Oct 6, and up to ~1M distinct IPs per day.
"""

from benchmarks.conftest import DAY, FLASH_PEAK, HOUR, show
from repro.core.experiments import fig1_scale


def test_fig1a_simultaneous_peers(benchmark, flagship_trace):
    result = benchmark.pedantic(
        lambda: fig1_scale(flagship_trace), rounds=1, iterations=1
    )

    ratio = result.stable_ratio()
    peak_hour = result.peak_hour_of_day()
    boost = result.flash_crowd_boost(FLASH_PEAK)

    def total_at(when: float) -> int:
        idx = min(
            range(len(result.series.times)),
            key=lambda i: abs(result.series.times[i] - when),
        )
        return result.series.column("total")[idx]

    noon = total_at(2 * DAY + 13 * HOUR)
    night = total_at(2 * DAY + 5 * HOUR)
    show(
        "Fig. 1(A) simultaneous peers",
        ["metric", "paper", "measured"],
        [
            ["stable/total ratio", "~1/3", ratio],
            ["main daily peak", "21:00", f"{peak_hour}:00"],
            ["1pm vs 5am load", ">1", noon / night],
            ["flash-crowd boost vs prev evening", ">1.5x", boost],
        ],
    )
    assert 0.22 <= ratio <= 0.5
    assert 19 <= peak_hour <= 23
    assert noon > 1.15 * night  # secondary (1 p.m.) peak exists
    assert boost > 1.3


def test_fig1b_daily_distinct_ips(benchmark, flagship_trace):
    result = benchmark.pedantic(
        lambda: fig1_scale(flagship_trace), rounds=1, iterations=1
    )
    rows = [(d, total, stable) for d, total, stable in result.daily]
    show(
        "Fig. 1(B) daily distinct IPs",
        ["day", "total IPs", "stable IPs"],
        rows,
    )
    max_concurrent = max(result.series.column("total"))
    full_days = rows[1:-1]  # first/last day may be partial
    assert len(rows) >= 7
    for _, total, stable in full_days:
        assert total > stable > 0
        # daily turnover dwarfs the instantaneous population (paper: ~1M
        # daily vs ~100k concurrent)
        assert total > 3 * max_concurrent
    # flash-crowd day (5) sees the most distinct IPs of its week
    by_day = {d: total for d, total, _ in rows}
    assert by_day[5] == max(by_day[d] for d in range(1, 7))
