"""Fig. 8 — edge reciprocity of the active streaming topology.

Paper: (A) the Garlaschelli-Loffredo rho of the active-link digraph is
consistently greater than zero (mesh streaming genuinely relies on
reciprocal segment exchange, not tree-like distribution), with daily
peaks; (B) intra-ISP links are more reciprocal than the topology as a
whole, inter-ISP links less.
"""

from benchmarks.conftest import show
from repro.core.experiments import fig8_reciprocity


def test_fig8a_global_reciprocity(benchmark, flagship_trace, isp_db):
    result = benchmark.pedantic(
        lambda: fig8_reciprocity(flagship_trace, isp_db), rounds=1, iterations=1
    )
    rows = [
        m
        for t, m in zip(result.series.times, result.series.column("rho"))
        if t >= 12 * 3600
    ]
    values = [m.all_links for m in rows]
    show(
        "Fig. 8(A) edge reciprocity (all links)",
        ["metric", "paper", "measured"],
        [
            ["mean rho", "0.1-0.4, always > 0", sum(values) / len(values)],
            ["min rho", "> 0", min(values)],
            ["max rho", "-", max(values)],
        ],
    )
    assert min(values) > 0.1  # never tree-like, never uncorrelated
    assert sum(values) / len(values) > 0.25


def test_fig8b_isp_split(benchmark, flagship_trace, isp_db):
    result = benchmark.pedantic(
        lambda: fig8_reciprocity(flagship_trace, isp_db), rounds=1, iterations=1
    )
    means = result.means()
    show(
        "Fig. 8(B) reciprocity by link locality",
        ["link set", "paper", "measured rho"],
        [
            ["intra-ISP", "highest", means.intra_isp],
            ["all links", "middle", means.all_links],
            ["inter-ISP", "lowest", means.inter_isp],
        ],
    )
    assert means.intra_isp > means.all_links > means.inter_isp
    assert means.inter_isp > 0  # still reciprocal, just less so
