"""Fig. 7 — small-world metrics of stable-peer graphs.

Paper: (A) the global stable-peer graph has clustering coefficients
consistently more than an order of magnitude above matched random
graphs while average path lengths stay comparable (~5 hops at 100k
scale) — a small world; (B) a single ISP's subgraph (China Netcom) is
even more clustered.  Path lengths shrink with graph size, so at this
simulation scale absolute L is smaller; the ratios carry the claim.
"""

from benchmarks.conftest import show
from repro.core.experiments import fig7_small_world


def test_fig7a_global_small_world(benchmark, flagship_trace, isp_db):
    result = benchmark.pedantic(
        lambda: fig7_small_world(flagship_trace, db=isp_db),
        rounds=1,
        iterations=1,
    )
    metrics = [
        m
        for t, m in zip(result.series.times, result.series.column("sw"))
        if t >= 12 * 3600
    ]
    c_ratio = result.mean_clustering_ratio()
    l_ratio = result.mean_path_ratio()
    mean_c = sum(m.clustering for m in metrics) / len(metrics)
    mean_l = sum(m.path_length for m in metrics) / len(metrics)
    show(
        "Fig. 7(A) global small-world metrics",
        ["metric", "paper", "measured"],
        [
            ["C / C_random", ">10x", c_ratio],
            ["L / L_random", "~1x", l_ratio],
            ["C (absolute)", "0.2-0.6", mean_c],
            ["L (absolute)", "~5 at 100k peers", mean_l],
            ["graph size", "~30k stable", metrics[0].num_nodes],
        ],
    )
    assert c_ratio > 8
    assert 0.4 <= l_ratio <= 2.0
    assert all(m.clustering > 5 * m.random_clustering for m in metrics)


def test_fig7b_isp_subgraph(benchmark, flagship_trace, isp_db):
    netcom = benchmark.pedantic(
        lambda: fig7_small_world(flagship_trace, isp="China Netcom", db=isp_db),
        rounds=1,
        iterations=1,
    )
    global_result = fig7_small_world(flagship_trace, db=isp_db)

    def means(result):
        ms = [
            m
            for t, m in zip(result.series.times, result.series.column("sw"))
            if t >= 12 * 3600
        ]
        return (
            sum(m.clustering for m in ms) / len(ms),
            sum(m.path_length for m in ms) / len(ms),
        )

    c_netcom, l_netcom = means(netcom)
    c_global, l_global = means(global_result)
    show(
        "Fig. 7(B) China Netcom subgraph vs global",
        ["graph", "C", "L"],
        [["China Netcom", c_netcom, l_netcom], ["global", c_global, l_global]],
    )
    # the ISP subgraph is more clustered than the complete topology
    assert c_netcom > c_global
    # and still a connected small community (short internal paths)
    assert 0 < l_netcom <= l_global + 1.5
