"""Ablation — quality-biased selection vs ISP/quality-blind selection.

DESIGN.md Sec. 4: the paper attributes ISP clustering (Figs. 6, 7B)
entirely to quality-biased peer selection over an Internet where
intra-ISP links are faster.  Replacing UUSee's selection with uniform
random choice must therefore collapse the intra-ISP degree fractions
toward the ISP-blind baseline.
"""

from benchmarks.conftest import show
from repro.core.experiments import fig6_intra_isp_degrees


def test_random_selection_destroys_isp_clustering(
    benchmark, uusee_trace, random_trace, isp_db
):
    uusee = benchmark.pedantic(
        lambda: fig6_intra_isp_degrees(uusee_trace, isp_db), rounds=1, iterations=1
    )
    blind = fig6_intra_isp_degrees(random_trace, isp_db)
    u_in, u_out = uusee.mean_fractions()
    b_in, b_out = blind.mean_fractions()
    show(
        "Ablation: selection policy vs ISP clustering",
        ["policy", "intra-ISP indegree", "intra-ISP outdegree", "blind baseline"],
        [
            ["uusee", u_in, u_out, uusee.random_baseline],
            ["random", b_in, b_out, blind.random_baseline],
        ],
    )
    # UUSee selection clusters well above the baseline ...
    assert u_in > uusee.random_baseline + 0.06
    # ... random selection sits near it ...
    assert abs(b_in - blind.random_baseline) < 0.06
    # ... and the gap between the policies is the clustering effect
    assert u_in > b_in + 0.05
