"""Ablation — mesh exchange vs tree-like distribution.

DESIGN.md Sec. 4 / paper Sec. 4.4: if media propagated tree-like (each
peer only drawing from peers strictly closer to the servers), edge
reciprocity would be negative (rho = -abar/(1-abar) < 0).  The TREE
policy enforces exactly that; the UUSee mesh should stay strongly
reciprocal.
"""

from benchmarks.conftest import show
from repro.core.experiments import fig8_reciprocity


def test_tree_distribution_is_antireciprocal(
    benchmark, uusee_trace, tree_trace, random_trace, isp_db
):
    mesh = benchmark.pedantic(
        lambda: fig8_reciprocity(uusee_trace, isp_db), rounds=1, iterations=1
    )
    tree = fig8_reciprocity(tree_trace, isp_db)
    random_policy = fig8_reciprocity(random_trace, isp_db)
    mesh_rho = mesh.means().all_links
    tree_rho = tree.means().all_links
    random_rho = random_policy.means().all_links
    show(
        "Ablation: reciprocity by distribution structure",
        ["policy", "rho", "interpretation"],
        [
            ["uusee (mesh)", mesh_rho, "reciprocal exchange"],
            ["random (mesh)", random_rho, "structural mesh reciprocity"],
            ["tree", tree_rho, "antireciprocal"],
        ],
    )
    assert mesh_rho > 0.2
    assert tree_rho <= 0.05  # ~ -abar/(1-abar), never meaningfully positive
    assert mesh_rho > tree_rho + 0.2
    # bilateral exchange is structural to mesh block exchange: even
    # direction-blind selection stays reciprocal (unlike the tree)
    assert random_rho > 0.1
