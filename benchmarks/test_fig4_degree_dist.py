"""Fig. 4 — degree distributions of stable peers in the global topology.

Paper: (A) total-partner distributions are *not* power laws — they have
interior spikes near 10 in the morning, larger in the evening, near 25
in the flash crowd; (B) indegree spikes around 10 and drops abruptly
near 23 (the streaming-rate cap on useful suppliers); (C) outdegree is
closer to a two-segment power law with a heavier tail, flatter at peak
times.
"""

import pytest

from benchmarks.conftest import show
from repro.core.experiments import FIG4_SNAPSHOT_TIMES, fig4_degree_distributions
from repro.graph import powerlaw_fit

MORNING = "9am normal"
EVENING = "9pm normal"
CROWD = "9pm flash crowd"


@pytest.fixture(scope="module")
def fig4(flagship_trace):
    return fig4_degree_distributions(flagship_trace)


def test_fig4a_total_partners(benchmark, flagship_trace):
    result = benchmark.pedantic(
        lambda: fig4_degree_distributions(flagship_trace), rounds=1, iterations=1
    )
    rows = []
    for label in FIG4_SNAPSHOT_TIMES:
        dist = result.kind_at(label, "partners")
        fit = powerlaw_fit(dist, min_degree=3)
        rows.append([label, dist.mode(), round(dist.mean(), 1), dist.max_degree(), fit.r_squared])
    show(
        "Fig. 4(A) total partner distribution",
        ["snapshot", "mode (paper: 10->25)", "mean", "max", "powerlaw R^2"],
        rows,
    )
    morning = result.kind_at(MORNING, "partners")
    crowd = result.kind_at(CROWD, "partners")
    # interior spike, not a monotone power-law decay
    assert morning.mode() >= 4
    assert not powerlaw_fit(morning, min_degree=3).is_plausible_powerlaw
    assert not powerlaw_fit(crowd, min_degree=3).is_plausible_powerlaw
    # peers engage more partners under load (paper: spike moves right),
    # and the whole distribution shifts significantly (two-sample KS)
    assert crowd.mean() > 1.15 * morning.mean()
    from repro.stats import ks_two_sample

    def expand(dist):
        return [d for d, c in dist.counts for _ in range(c)]

    ks = ks_two_sample(expand(morning), expand(crowd))
    assert ks.significant(0.01)


def test_fig4b_indegree(fig4, benchmark):
    result = benchmark.pedantic(lambda: fig4, rounds=1, iterations=1)
    rows = []
    for label in FIG4_SNAPSHOT_TIMES:
        dist = result.kind_at(label, "in")
        rows.append(
            [label, dist.mode(), dist.drop_point(fraction_floor=5e-3), dist.max_degree()]
        )
    show(
        "Fig. 4(B) indegree (active suppliers)",
        ["snapshot", "mode (paper ~10)", "drop point (paper ~23)", "max"],
        rows,
    )
    for label in FIG4_SNAPSHOT_TIMES:
        dist = result.kind_at(label, "in")
        assert 7 <= dist.mode() <= 16
        assert dist.drop_point(fraction_floor=5e-3) <= 25
        assert dist.max_degree() <= 31  # emergent ceiling, nothing beyond
    # flash crowd spike at a slightly larger degree than the normal morning
    assert result.kind_at(CROWD, "in").mean() >= result.kind_at(MORNING, "in").mean() - 0.5


def test_fig4c_outdegree(fig4, benchmark):
    result = benchmark.pedantic(lambda: fig4, rounds=1, iterations=1)
    rows = []
    for label in FIG4_SNAPSHOT_TIMES:
        dist = result.kind_at(label, "out")
        rows.append([label, dist.mode(), dist.quantile(0.99), dist.max_degree()])
    show(
        "Fig. 4(C) outdegree (active receivers)",
        ["snapshot", "mode", "p99", "max"],
        rows,
    )
    for label in (EVENING, CROWD):
        out = result.kind_at(label, "out")
        indeg = result.kind_at(label, "in")
        # heavier tail than indegree: high-capacity peers serve many,
        # while indegree is hard-capped by the streaming rate
        assert out.max_degree() > 1.2 * indeg.max_degree()
        assert out.quantile(0.99) > indeg.quantile(0.99)
    # at peak times more requesting peers stretch the outdegree tail
    # (the paper's 'flatter first segment' reads as a heavier body+tail)
    assert (
        result.kind_at(EVENING, "out").max_degree()
        >= result.kind_at(MORNING, "out").max_degree()
    )
