"""Comparison — UUSee streaming vs Gnutella file-sharing topologies.

Paper Sec. 4.2.1/4.3: most prior P2P topology work reported power-law
degrees (legacy Gnutella) or a spiked distribution around the client's
neighbour target (modern Gnutella, Stutzbach et al.); UUSee's degree
distributions are spiked too but at positions set by the *streaming
workload*, and its mesh is far more clustered relative to random than
a crawler-built file-sharing mesh.
"""

from benchmarks.conftest import show
from repro.baselines import (
    GnutellaConfig,
    legacy_gnutella_snapshot,
    modern_gnutella_snapshot,
)
from repro.baselines.gnutella import ultrapeer_ids
from repro.core.experiments import fig4_degree_distributions, fig7_small_world
from repro.graph import DegreeDistribution, powerlaw_fit, small_world_metrics

DAY = 86_400.0
SNAPSHOT = {"evening": int(0.9 * DAY)}


def test_degree_distribution_contrast(benchmark, uusee_trace):
    uusee = benchmark.pedantic(
        lambda: fig4_degree_distributions(uusee_trace, snapshot_times=SNAPSHOT),
        rounds=1,
        iterations=1,
    )
    uusee_in = uusee.kind_at("evening", "in")

    cfg = GnutellaConfig(num_peers=3_000, seed=5)
    legacy = legacy_gnutella_snapshot(cfg)
    legacy_dist = DegreeDistribution.from_degrees(
        legacy.degree(n) for n in legacy.nodes()
    )
    modern = modern_gnutella_snapshot(cfg)
    ultra = set(ultrapeer_ids(cfg))
    modern_dist = DegreeDistribution.from_degrees(
        modern.subgraph(ultra).degree(n) for n in ultra
    )

    fits = {
        "UUSee indegree": powerlaw_fit(uusee_in, min_degree=3),
        "legacy Gnutella": powerlaw_fit(legacy_dist, min_degree=3),
        "modern Gnutella (ultra)": powerlaw_fit(modern_dist, min_degree=3),
    }
    show(
        "Degree distributions: streaming vs file sharing",
        ["topology", "mode", "log-log R^2", "power law?"],
        [
            ["UUSee indegree", uusee_in.mode(), fits["UUSee indegree"].r_squared, "no (paper)"],
            ["legacy Gnutella", legacy_dist.mode(), fits["legacy Gnutella"].r_squared, "yes"],
            [
                "modern Gnutella (ultra)",
                modern_dist.mode(),
                fits["modern Gnutella (ultra)"].r_squared,
                "no (spike ~30)",
            ],
        ],
    )
    # legacy file sharing: power law (mass at minimum degree, linear fit)
    assert legacy_dist.mode() <= 4
    assert fits["legacy Gnutella"].r_squared > 0.7
    # both modern systems: interior spikes, no power law
    assert uusee_in.mode() >= 7
    assert 24 <= modern_dist.mode() <= 36
    assert not fits["UUSee indegree"].is_plausible_powerlaw
    assert not fits["modern Gnutella (ultra)"].is_plausible_powerlaw


def test_clustering_contrast(benchmark, uusee_trace, isp_db):
    uusee = benchmark.pedantic(
        lambda: fig7_small_world(uusee_trace, db=isp_db), rounds=1, iterations=1
    )
    uusee_ratio = uusee.mean_clustering_ratio(skip_first_hours=6)

    cfg = GnutellaConfig(num_peers=3_000, seed=6)
    modern = modern_gnutella_snapshot(cfg)
    ultra = set(ultrapeer_ids(cfg))
    gnutella_metrics = small_world_metrics(
        modern.subgraph(ultra), seed=1, path_sample_sources=48
    )
    show(
        "Clustering vs matched random graphs",
        ["topology", "C/C_random"],
        [
            ["UUSee stable-peer mesh", uusee_ratio],
            ["modern Gnutella ultrapeer mesh", gnutella_metrics.clustering_ratio],
        ],
    )
    # the streaming mesh's gossip-built structure clusters far more
    # strongly than the crawler-observed random-wired file-sharing mesh
    assert uusee_ratio > 2 * gnutella_metrics.clustering_ratio
