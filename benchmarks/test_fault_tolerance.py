"""End-to-end fault tolerance: graceful degradation and a dirty trace.

A single simulated day-part (9 hours) is hit mid-run by a tracker
brownout and an ISP partition while its measurement reports cross a
faulty collection channel (bursty 5% loss, duplication, reordering and
a little corruption).  The claims under test:

- the run completes and streaming quality *recovers* after the fault
  windows close, back to within 5% of a fault-free baseline;
- the tolerant analytics path reproduces the clean-trace metrics from
  the dirty trace within tolerance, while reporting non-zero
  ``TraceHealth``;
- the strict reader still refuses the same dirty trace.
"""

import pytest

from benchmarks.conftest import HOUR, show
from repro.core.resilience import quality_dip, satisfied_series
from repro.core.timeseries import observe
from repro.core.metrics import streaming_quality
from repro.simulator import (
    Brownout,
    FaultPlan,
    IspPartition,
    SystemConfig,
    UUSeeSystem,
)
from repro.traces import (
    ChannelFaults,
    FaultyChannel,
    JsonlTraceStore,
    TolerantTraceReader,
    TraceFormatError,
    TraceReader,
)

BASE = 250.0
SEED = 31
RUN_HOURS = 9.0
FAULT_START = 3 * HOUR  # tracker brownout begins
FAULT_END = 5.5 * HOUR  # partition heals; all faults over


class _TeeStore:
    """Writes every report to both sinks (clean file + faulty channel)."""

    def __init__(self, *sinks):
        self.sinks = sinks

    def append(self, report):
        for sink in self.sinks:
            sink.append(report)


def _fault_plan():
    return FaultPlan(
        tracker_brownouts=[Brownout(FAULT_START, 4.5 * HOUR, capacity=0.2)],
        partitions=[
            IspPartition(4 * HOUR, FAULT_END, isps=frozenset({"China Netcom"}))
        ],
    )


def _channel_faults():
    return ChannelFaults(
        loss_rate=0.05,
        burst_length=4.0,
        duplicate_rate=0.03,
        reorder_rate=0.03,
        corrupt_rate=0.005,
    )


def _run(tmp_path, *, faulted):
    tag = "faulted" if faulted else "baseline"
    clean_path = tmp_path / f"{tag}-clean.jsonl"
    dirty_path = tmp_path / f"{tag}-dirty.jsonl"
    clean_store = JsonlTraceStore(clean_path)
    dirty_store = JsonlTraceStore(dirty_path)
    channel = FaultyChannel(dirty_store, _channel_faults(), seed=SEED)
    config = SystemConfig(
        seed=SEED,
        base_concurrency=BASE,
        flash_crowd=None,
        faults=_fault_plan() if faulted else None,
    )
    system = UUSeeSystem(config, _TeeStore(clean_store, channel))
    system.run(seconds=RUN_HOURS * HOUR)
    channel.close()
    clean_store.close()
    return system, clean_path, dirty_path, channel


def _mean_quality(stats_list, start, end):
    vals = [
        s.satisfied_fraction() for s in stats_list if start <= s.time < end
    ]
    return sum(vals) / len(vals) if vals else 0.0


def test_fault_tolerance_end_to_end(benchmark, tmp_path):
    system, clean_path, dirty_path, channel = benchmark.pedantic(
        lambda: _run(tmp_path, faulted=True), rounds=1, iterations=1
    )
    baseline_system, _, _, _ = _run(tmp_path, faulted=False)

    # --- the run completed, with faults demonstrably injected --------
    expected_rounds = int(RUN_HOURS * HOUR / system.config.protocol.round_seconds)
    assert len(system.round_stats) == expected_rounds
    assert channel.counters.dropped > 0
    assert channel.counters.duplicated > 0
    assert channel.counters.corrupted > 0

    # --- graceful degradation and recovery ---------------------------
    times, values = satisfied_series(system.round_stats)
    dip = quality_dip(
        times,
        values,
        fault_start=FAULT_START,
        fault_end=FAULT_END,
        baseline_span_s=2 * HOUR,
    )
    post_faulted = _mean_quality(system.round_stats, 6.5 * HOUR, RUN_HOURS * HOUR)
    post_baseline = _mean_quality(
        baseline_system.round_stats, 6.5 * HOUR, RUN_HOURS * HOUR
    )
    show(
        "Fault tolerance: quality dip and recovery",
        ["metric", "expectation", "measured"],
        [
            ["pre-fault baseline", "-", dip.baseline],
            ["min during faults", "dips", dip.min_during],
            ["dip depth", "> 0", dip.dip_depth],
            ["recovery time (s)", "finite", dip.recovery_time_s],
            ["post-fault quality", "within 5% of baseline", post_faulted],
            ["fault-free same span", "-", post_baseline],
        ],
    )
    assert dip.recovered, "quality never recovered after the fault windows"
    # recovers to within 5% of the fault-free baseline run
    assert post_faulted >= 0.95 * post_baseline
    # and the faults actually hurt while active (guards against a plan
    # that silently no-ops)
    assert dip.min_during < dip.baseline

    # --- dirty-trace analytics match clean-trace analytics -----------
    clean_trace = TraceReader(clean_path)
    dirty_trace = TolerantTraceReader(dirty_path, slack_s=600.0)

    def quality_metrics(trace):
        series = observe(
            trace,
            {
                "total": lambda s: s.num_total,
                "q": lambda s: streaming_quality(s, 0, 400.0),
            },
            window_seconds=600.0,
            observe_every=HOUR,
        )
        totals = [v for v in series.column("total") if v]
        quals = [v for v in series.column("q") if v is not None]
        return (
            sum(totals) / len(totals),
            sum(quals) / len(quals) if quals else 0.0,
        )

    clean_total, clean_q = quality_metrics(clean_trace)
    dirty_total, dirty_q = quality_metrics(dirty_trace)
    show(
        "Dirty vs clean trace analytics",
        ["metric", "clean", "dirty (tolerant)"],
        [
            ["mean snapshot peers", clean_total, dirty_total],
            ["mean streaming quality", clean_q, dirty_q],
        ],
    )
    # ~5% report loss thins snapshots slightly; metrics stay close
    assert dirty_total == pytest.approx(clean_total, rel=0.10)
    assert dirty_q == pytest.approx(clean_q, abs=0.05)

    # --- the dirt was seen and accounted ------------------------------
    health = dirty_trace.health
    show(
        "Trace health (dirty read)",
        ["counter", "value"],
        health.rows(),
    )
    assert health.dirty
    assert health.duplicates > 0
    assert health.parse_failures == channel.counters.corrupted

    # --- strict mode still refuses the dirty trace --------------------
    with pytest.raises(TraceFormatError):
        for _ in TraceReader(dirty_path):
            pass
