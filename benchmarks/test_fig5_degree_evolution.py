"""Fig. 5 — evolution of average degrees for stable peers.

Paper: the average total partner count swings with the daily load
(peaking at peak hours, 20-80), while the average active indegree stays
flat around 10 throughout — peers *know* more peers at peak times but do
not need to stream from more of them.
"""

from benchmarks.conftest import show
from repro.core.experiments import fig5_degree_evolution


def test_fig5_degree_evolution(benchmark, flagship_trace):
    result = benchmark.pedantic(
        lambda: fig5_degree_evolution(flagship_trace), rounds=1, iterations=1
    )
    mean_in = result.mean_indegree()
    lo, hi = result.partner_count_range()
    summaries = [
        s
        for t, s in zip(result.series.times, result.series.column("degrees"))
        if t >= 12 * 3600
    ]
    in_values = [s.mean_indegree for s in summaries]
    out_values = [s.mean_outdegree for s in summaries]
    in_spread = max(in_values) - min(in_values)
    show(
        "Fig. 5 average degree evolution",
        ["metric", "paper", "measured"],
        [
            ["mean indegree", "~10, flat", mean_in],
            ["indegree spread (max-min)", "small", in_spread],
            ["partner count range", "swings 20-80", f"{lo:.1f} .. {hi:.1f}"],
            ["mean outdegree", "~indegree", sum(out_values) / len(out_values)],
        ],
    )
    assert 8 <= mean_in <= 16
    # partner counts swing much more than the flat indegree
    assert (hi - lo) > 1.5 * in_spread
    assert hi > 1.25 * lo
    # flow conservation: average out ~= average in over stable peers
    mean_out = sum(out_values) / len(out_values)
    assert 0.5 * mean_in <= mean_out <= 2.0 * mean_in
