#!/usr/bin/env python3
"""Full paper reproduction: every figure from one two-week trace.

Simulates the paper's two selected weeks (Sunday 2006-10-01 through
Saturday 2006-10-14, flash crowd on Friday Oct 6 at 9 p.m.), collects
the Magellan trace, regenerates Figures 1-8 and writes both the tables
and per-figure CSV series.

This is the long-running flagship driver; scale it down with flags:

    python examples/paper_reproduction.py --days 4 --base 400
    python examples/paper_reproduction.py            # full 14 days, ~15 min
    python examples/paper_reproduction.py --out-dir results/

The pytest benchmarks run the same pipeline on an 8-day trace with
shape assertions; this script is for producing the full artifact set.
"""

import argparse
import time
from pathlib import Path

from repro.cli import _ANALYZERS  # the per-figure renderers
from repro.core.experiments import run_simulation_to_trace
from repro.traces import TraceReader
from repro.workloads import presets


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--days", type=float, default=None, help="default: 14")
    parser.add_argument("--base", type=float, default=None, help="default: 1000")
    parser.add_argument("--seed", type=int, default=2006)
    parser.add_argument("--out-dir", type=Path, default=Path("paper_run"))
    args = parser.parse_args()

    config, preset_days = presets.paper_two_weeks(seed=args.seed)
    days = args.days if args.days is not None else preset_days
    base = args.base if args.base is not None else config.base_concurrency

    args.out_dir.mkdir(parents=True, exist_ok=True)
    trace_path = args.out_dir / "trace.jsonl.gz"
    print(
        f"Simulating {days:g} days at base concurrency {base:g} "
        f"(seed {args.seed}) -> {trace_path}"
    )
    t0 = time.time()
    run_simulation_to_trace(
        trace_path,
        days=days,
        base_concurrency=base,
        seed=args.seed,
        with_flash_crowd=True,
    )
    print(f"simulation finished in {time.time() - t0:.0f}s")

    trace = TraceReader(trace_path)
    csv_dir = args.out_dir / "csv"
    csv_dir.mkdir(exist_ok=True)
    for fig, render in _ANALYZERS.items():
        print(f"\n{'=' * 72}\nRegenerating {fig} ...\n")
        try:
            render(trace, csv_dir)
        except ValueError as exc:
            print(f"{fig}: skipped ({exc}) — run with more days")
    print(f"\nAll figure series written under {csv_dir}/")


if __name__ == "__main__":
    main()
