#!/usr/bin/env python3
"""Flash crowd study (paper Secs. 4.1.1, 4.1.3, 4.2.1).

Simulates 2.5 days with a large flash crowd on the second evening (the
paper's mid-autumn-festival scenario, moved earlier so the run stays
short) and shows how the system absorbs it: population surges, streaming
quality *improves*, and partner counts rise — the paper's scalability
argument.

Run:  python examples/flash_crowd_study.py   (about two minutes)
"""

import tempfile
from pathlib import Path

from repro.core.experiments import (
    fig1_scale,
    fig3_streaming_quality,
    fig4_degree_distributions,
)
from repro.core.report import format_table
from repro.simulator.protocol import ProtocolConfig
from repro.simulator.system import SystemConfig, UUSeeSystem
from repro.traces import JsonlTraceStore, TraceReader
from repro.workloads import FlashCrowdEvent

DAY = 86_400.0
HOUR = 3_600.0
CROWD_START = int(1 * DAY + 20.5 * HOUR)  # second evening, 20:30


def main() -> None:
    trace_path = Path(tempfile.mkdtemp()) / "flashcrowd.jsonl.gz"
    event = FlashCrowdEvent(start=CROWD_START, magnitude=2.3)
    config = SystemConfig(
        seed=7,
        base_concurrency=500,
        flash_crowd=event,
        protocol=ProtocolConfig(),
    )
    print("Simulating 2.5 days with a flash crowd on the second evening ...")
    with JsonlTraceStore(trace_path) as store:
        system = UUSeeSystem(config, store)
        system.run(days=2.5)
    trace = TraceReader(trace_path)

    fig1 = fig1_scale(trace)
    fig3 = fig3_streaming_quality(trace)
    crowd_peak = event.peak_time

    # Compare the flash-crowd evening to the previous (normal) evening.
    normal_evening = crowd_peak - DAY
    boost = fig1.flash_crowd_boost(crowd_peak - 7 * DAY + 7 * DAY)  # at event
    rows = []
    for label, when in (("normal 9pm", normal_evening), ("flash crowd 9pm", crowd_peak)):
        idx = min(
            range(len(fig1.series.times)),
            key=lambda i, t=when: abs(fig1.series.times[i] - t),
        )
        rows.append(
            [
                label,
                fig1.series.column("total")[idx],
                fig1.series.column("stable")[idx],
                fig3.quality_at("CCTV1", when),
                fig3.quality_at("CCTV4", when),
            ]
        )
    print()
    print(
        format_table(
            ["evening", "total peers", "stable", "CCTV1 ok", "CCTV4 ok"],
            rows,
            title="Population and streaming quality (paper: quality RISES in the crowd)",
        )
    )

    times = {
        "9am day2": 1 * DAY + 9 * HOUR,
        "9pm normal (day1)": 21.0 * HOUR,
        "9pm flash (day2)": 1 * DAY + 21.5 * HOUR,
    }
    fig4 = fig4_degree_distributions(trace, snapshot_times=times)
    rows = [
        [
            label,
            fig4.kind_at(label, "partners").mode(),
            round(fig4.kind_at(label, "partners").mean(), 1),
            fig4.kind_at(label, "in").mode(),
            fig4.kind_at(label, "in").max_degree(),
        ]
        for label in times
    ]
    print()
    print(
        format_table(
            ["snapshot", "partner mode", "partner mean", "indegree mode", "indegree max"],
            rows,
            title="Degrees (paper Fig. 4: spikes shift right under the crowd)",
        )
    )


if __name__ == "__main__":
    main()
