#!/usr/bin/env python3
"""Quickstart: simulate a small UUSee deployment, collect a Magellan
trace, and compute the paper's headline topology metrics.

Run:  python examples/quickstart.py
Takes about half a minute.
"""

import tempfile
from pathlib import Path

from repro.core.experiments import (
    fig1_scale,
    fig2_isp_shares,
    fig3_streaming_quality,
    fig6_intra_isp_degrees,
    fig7_small_world,
    fig8_reciprocity,
    run_simulation_to_trace,
)
from repro.core.report import format_table
from repro.traces import TraceReader


def main() -> None:
    trace_path = Path(tempfile.mkdtemp()) / "quickstart.jsonl.gz"
    print("Simulating 1.5 days of a ~400-peer UUSee deployment ...")
    run_simulation_to_trace(
        trace_path,
        days=1.5,
        base_concurrency=400,
        seed=42,
        with_flash_crowd=False,
    )
    trace = TraceReader(trace_path)

    fig1 = fig1_scale(trace)
    fig3 = fig3_streaming_quality(trace)
    fig6 = fig6_intra_isp_degrees(trace)
    fig7 = fig7_small_world(trace)
    fig8 = fig8_reciprocity(trace)

    frac_in, frac_out = fig6.mean_fractions()
    rho = fig8.means()
    rows = [
        ["stable / total peers", fig1.stable_ratio(), "~1/3 (Fig. 1A)"],
        ["daily peak hour", fig1.peak_hour_of_day(), "21:00 (Fig. 1A)"],
        ["CCTV1 satisfied fraction", fig3.mean_quality("CCTV1"), "~0.75 (Fig. 3)"],
        ["intra-ISP indegree fraction", frac_in, "~0.4 (Fig. 6)"],
        ["   (ISP-blind baseline)", fig6.random_baseline, "sum of share^2"],
        ["clustering vs random", fig7.mean_clustering_ratio(), ">10x (Fig. 7A)"],
        ["path length vs random", fig7.mean_path_ratio(), "~1x (Fig. 7A)"],
        ["edge reciprocity rho", rho.all_links, ">0 (Fig. 8A)"],
        ["   intra-ISP rho", rho.intra_isp, "> global (Fig. 8B)"],
        ["   inter-ISP rho", rho.inter_isp, "< global (Fig. 8B)"],
    ]
    print()
    print(format_table(["metric", "measured", "paper"], rows, title="Magellan quickstart"))
    print(f"\nISP shares (Fig. 2): ")
    shares = fig2_isp_shares(trace)
    for name in sorted(shares, key=shares.get, reverse=True):
        print(f"  {name:16s} {shares[name]:.3f}")
    print(f"\nTrace file: {trace_path}")


if __name__ == "__main__":
    main()
