#!/usr/bin/env python3
"""Backbone structure and churn dynamics (extension analyses).

The paper calls the reporting peers a 'stable backbone' and promises
protocol-improvement work built on these traces.  This study runs the
extension analytics this library adds on top of the paper's metric set:

- mesh structure: strongly connected core, k-core depth, dyad census,
  degree assortativity, ISP mixing;
- churn dynamics: reporting spans, stable-population turnover,
  partner-list persistence between consecutive reports;
- traffic locality: the ISP-to-ISP segment matrix and how much traffic
  still flows from the UUSee servers.

Run:  python examples/backbone_dynamics_study.py   (about a minute)
"""

import tempfile
from pathlib import Path

from repro.core import build_snapshot
from repro.core.dynamics import (
    partner_stability,
    population_turnover,
    session_statistics,
)
from repro.core.experiments import run_simulation_to_trace
from repro.core.locality import isp_traffic_matrix
from repro.core.report import format_table
from repro.core.structure import mesh_structure
from repro.network import build_default_database
from repro.traces import TraceReader
from repro.traces.store import iter_windows


def main() -> None:
    trace_path = Path(tempfile.mkdtemp()) / "backbone.jsonl.gz"
    print("Simulating 1 day of a ~450-peer UUSee deployment ...")
    run_simulation_to_trace(
        trace_path, days=1.0, base_concurrency=450, seed=31, with_flash_crowd=False
    )
    trace = TraceReader(trace_path)
    db = build_default_database()

    # one evening snapshot for the structural metrics
    target = 21 * 3600.0
    snapshot = None
    for start, reports in iter_windows(trace, 600.0):
        if start <= target < start + 600.0:
            snapshot = build_snapshot(reports, time=start, window_seconds=600.0)
            break
    assert snapshot is not None

    m = mesh_structure(snapshot, db)
    print()
    print(
        format_table(
            ["metric", "value", "reading"],
            [
                ["stable peers / active links", f"{m.num_nodes} / {m.num_edges}", ""],
                ["largest SCC fraction", m.largest_scc_fraction,
                 "bounded by the largest channel's share"],
                ["k-core depth (degeneracy)", m.degeneracy, "deep = stable backbone"],
                ["peers in deepest core", m.deep_core_fraction, ""],
                ["degree assortativity", m.degree_assortativity, ""],
                ["ISP mixing coefficient", m.isp_mixing, "> 0: ISP clustering"],
                ["mutual dyads", m.dyads.mutual, "bilateral exchange"],
                ["asymmetric dyads", m.dyads.asymmetric, ""],
            ],
            title="Mesh structure (9 p.m. snapshot)",
        )
    )

    traffic = isp_traffic_matrix(snapshot, db)
    print()
    rows = [[a, b, v] for a, b, v in traffic.top_flows(6)]
    rows.append(["(intra-ISP fraction)", "", traffic.intra_fraction()])
    rows.append(["(from servers)", "", traffic.server_fraction()])
    print(
        format_table(
            ["from ISP", "to ISP", "segments"],
            rows,
            title="Traffic locality (segments received in the window)",
        )
    )

    sessions = session_statistics(trace)
    turnover = population_turnover(trace)
    stability = partner_stability(trace)
    steady = turnover[len(turnover) // 4 :]
    mean_turnover = sum(p.turnover_rate for p in steady) / len(steady)
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["stable peers seen", sessions.num_peers],
                ["mean reporting span (min)", sessions.mean_span_s / 60.0],
                ["mean session estimate (min)", sessions.mean_session_estimate_s / 60.0],
                ["mean reports per peer", sessions.mean_reports_per_peer],
                ["stable-population turnover / 10 min", mean_turnover],
                ["partner-list jaccard between reports", stability.mean_jaccard],
                ["partners kept between reports", stability.mean_kept_fraction],
            ],
            title="Churn dynamics over the whole trace",
        )
    )


if __name__ == "__main__":
    main()
