#!/usr/bin/env python3
"""Streaming vs file-sharing topologies (paper Secs. 2, 4.2.1, 4.3).

Magellan repeatedly contrasts UUSee's topology with the Gnutella
generations studied before it: legacy Gnutella's power-law degrees,
and modern two-tier Gnutella's spiked ultrapeer degree distribution
(Stutzbach et al.).  This study generates all three topologies and
puts the paper's comparisons side by side.

Run:  python examples/gnutella_comparison.py   (about a minute)
"""

import tempfile
from pathlib import Path

from repro.baselines import (
    GnutellaConfig,
    legacy_gnutella_snapshot,
    modern_gnutella_snapshot,
)
from repro.baselines.gnutella import ultrapeer_ids
from repro.core.experiments import fig4_degree_distributions, run_simulation_to_trace
from repro.core.report import format_table
from repro.graph import DegreeDistribution, powerlaw_fit, small_world_metrics
from repro.traces import TraceReader

DAY = 86_400.0


def main() -> None:
    print("Simulating 1 day of UUSee ...")
    trace_path = Path(tempfile.mkdtemp()) / "uusee.jsonl.gz"
    run_simulation_to_trace(
        trace_path, days=1.0, base_concurrency=400, seed=77, with_flash_crowd=False
    )
    uusee = fig4_degree_distributions(
        TraceReader(trace_path), snapshot_times={"evening": int(0.9 * DAY)}
    )
    uusee_in = uusee.kind_at("evening", "in")

    print("Generating Gnutella snapshots ...")
    cfg = GnutellaConfig(num_peers=3_000, seed=5)
    legacy = legacy_gnutella_snapshot(cfg)
    legacy_dist = DegreeDistribution.from_degrees(
        legacy.degree(n) for n in legacy.nodes()
    )
    modern = modern_gnutella_snapshot(cfg)
    ultra = set(ultrapeer_ids(cfg))
    top_mesh = modern.subgraph(ultra)
    modern_dist = DegreeDistribution.from_degrees(
        top_mesh.degree(n) for n in ultra
    )

    rows = []
    for name, dist in (
        ("UUSee active indegree", uusee_in),
        ("legacy Gnutella", legacy_dist),
        ("modern Gnutella ultrapeers", modern_dist),
    ):
        fit = powerlaw_fit(dist, min_degree=3)
        # power-law-like: monotone decay from the minimum degree with a
        # reasonably linear log-log pmf (empirical fits are never perfect)
        verdict = "yes" if (fit.r_squared > 0.7 and dist.mode() <= 4) else "no"
        rows.append(
            [
                name,
                dist.mode(),
                round(dist.mean(), 1),
                dist.max_degree(),
                round(fit.r_squared, 2),
                verdict,
            ]
        )
    print()
    print(
        format_table(
            ["topology", "mode", "mean", "max", "log-log R^2", "power law?"],
            rows,
            title="Degree distributions (paper: UUSee is NOT a power law)",
        )
    )

    legacy_sw = small_world_metrics(legacy, seed=0, path_sample_sources=48)
    modern_sw = small_world_metrics(top_mesh, seed=0, path_sample_sources=48)
    print()
    print(
        format_table(
            ["topology", "C/C_rand", "L/L_rand"],
            [
                ["legacy Gnutella", legacy_sw.clustering_ratio, legacy_sw.path_length_ratio],
                ["modern Gnutella ultrapeers", modern_sw.clustering_ratio, modern_sw.path_length_ratio],
                ["UUSee stable mesh (Fig. 7)", "~10x (see benchmarks)", "~1x"],
            ],
            title="Small-world comparison",
        )
    )


if __name__ == "__main__":
    main()
