#!/usr/bin/env python3
"""Reciprocity ablation (paper Sec. 4.4).

Is mesh streaming really reciprocal, or does content flow tree-like
from the servers outward?  The paper answers with the
Garlaschelli-Loffredo edge reciprocity rho: tree-like distribution
gives rho < 0, a random direction-uncorrelated mesh gives rho ~ 0, and
mutual block exchange gives rho > 0.  This study runs all three
regimes: the UUSee policy, direction-blind RANDOM selection, and a
TREE policy in which peers may only draw from partners strictly closer
to the streaming server.

Run:  python examples/reciprocity_study.py   (about three minutes)
"""

import tempfile
from pathlib import Path

from repro.core.experiments import fig8_reciprocity, run_simulation_to_trace
from repro.core.report import format_table
from repro.simulator.protocol import SelectionPolicy
from repro.traces import TraceReader

EXPECTED = {
    SelectionPolicy.UUSEE: "rho > 0 (reciprocal mesh)",
    SelectionPolicy.RANDOM: "rho > 0 (mesh bilateral exchange)",
    SelectionPolicy.TREE: "rho <= 0 (antireciprocal)",
}

# Note on RANDOM: at this simulation scale supplier sets cover a large
# fraction of each partner list, so even direction-blind selection yields
# many bilateral links — reciprocity is *structural* to mesh block
# exchange.  The decisive contrast, exactly as in the paper's argument,
# is mesh (rho > 0) versus tree-like distribution (rho <= 0).


def main() -> None:
    tmp = Path(tempfile.mkdtemp())
    rows = []
    for policy in (SelectionPolicy.UUSEE, SelectionPolicy.RANDOM, SelectionPolicy.TREE):
        print(f"Simulating with {policy.value} selection ...")
        path = tmp / f"{policy.value}.jsonl.gz"
        run_simulation_to_trace(
            path,
            days=1.5,
            base_concurrency=400,
            seed=21,
            with_flash_crowd=False,
            policy=policy,
        )
        means = fig8_reciprocity(TraceReader(path)).means()
        rows.append(
            [
                policy.value,
                means.all_links,
                means.intra_isp,
                means.inter_isp,
                EXPECTED[policy],
            ]
        )
    print()
    print(
        format_table(
            ["policy", "rho all", "rho intra-ISP", "rho inter-ISP", "paper expectation"],
            rows,
            title="Edge reciprocity by selection policy (paper Fig. 8)",
        )
    )


if __name__ == "__main__":
    main()
