#!/usr/bin/env python3
"""ISP clustering ablation (paper Secs. 4.2.3, 4.3).

The paper argues ISP clusters form *naturally* because intra-ISP
connections have higher throughput and lower delay, so quality-biased
peer selection prefers them — the protocol never looks at ISP
membership.  This study re-runs the same workload with the UUSEE
policy and with ISP/quality-blind RANDOM selection: the intra-ISP
degree fractions collapse to the random baseline, and per-ISP subgraph
clustering weakens.

Run:  python examples/isp_clustering_study.py   (about two minutes)
"""

import tempfile
from pathlib import Path

from repro.core.experiments import (
    fig6_intra_isp_degrees,
    fig7_small_world,
    run_simulation_to_trace,
)
from repro.core.report import format_table
from repro.simulator.protocol import SelectionPolicy
from repro.traces import TraceReader


def run_policy(policy: SelectionPolicy, tmp: Path) -> TraceReader:
    path = tmp / f"{policy.value}.jsonl.gz"
    run_simulation_to_trace(
        path,
        days=1.5,
        base_concurrency=450,
        seed=13,
        with_flash_crowd=False,
        policy=policy,
    )
    return TraceReader(path)


def main() -> None:
    tmp = Path(tempfile.mkdtemp())
    rows = []
    for policy in (SelectionPolicy.UUSEE, SelectionPolicy.RANDOM):
        print(f"Simulating with {policy.value} selection ...")
        trace = run_policy(policy, tmp)
        fig6 = fig6_intra_isp_degrees(trace)
        frac_in, frac_out = fig6.mean_fractions()
        fig7_global = fig7_small_world(trace)
        fig7_netcom = fig7_small_world(trace, isp="China Netcom")
        netcom_c = [m.clustering for m in fig7_netcom.metrics()]
        rows.append(
            [
                policy.value,
                frac_in,
                frac_out,
                fig6.random_baseline,
                fig7_global.mean_clustering_ratio(),
                sum(netcom_c) / len(netcom_c) if netcom_c else 0.0,
            ]
        )
    print()
    print(
        format_table(
            [
                "policy",
                "intra-ISP in",
                "intra-ISP out",
                "blind baseline",
                "C/C_rand global",
                "C (Netcom subgraph)",
            ],
            rows,
            title=(
                "ISP clustering: UUSee's quality-biased selection vs random "
                "(paper: ~0.4 vs ISP-blind baseline)"
            ),
        )
    )


if __name__ == "__main__":
    main()
