#!/usr/bin/env python3
"""Infrastructure-fault resilience (extension experiment).

The paper shows the UUSee mesh absorbs user-side stress (flash crowds);
this study injects *infrastructure* faults instead, one scenario per
axis of the fault model:

- a hard one-hour tracker outage (no bootstrap, no refresh);
- a tracker brownout (80% of requests time out; clients retry with
  bounded exponential backoff);
- a half-hour streaming-server outage and a server brownout;
- an ISP-level partition cutting one ISP off from the rest;
- a crash wave (peers vanish without goodbyes, leaving stale tracker
  entries).

For each scenario the dip-and-recovery statistics (baseline quality,
dip depth, time to recover) are printed via ``quality_dip``.  The
mesh's reciprocal exchange keeps established peers streaming through
every fault, and quality recovers once the window closes.

Run:  python examples/outage_resilience_study.py   (a few minutes)
"""

from repro.core.report import format_table
from repro.core.resilience import quality_dip, satisfied_series
from repro.simulator import (
    Brownout,
    CrashWindow,
    FaultPlan,
    IspPartition,
    Outage,
    OutageSchedule,
    SystemConfig,
    UUSeeSystem,
)
from repro.traces import InMemoryTraceStore

HOUR = 3_600.0
FAULT_START = 4 * HOUR
FAULT_END = 5 * HOUR


def run(faults: FaultPlan) -> UUSeeSystem:
    config = SystemConfig(
        seed=9, base_concurrency=300.0, flash_crowd=None, faults=faults
    )
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=9 * HOUR)
    return system


def main() -> None:
    scenarios = {
        "no fault": FaultPlan(),
        "tracker outage 4h-5h": FaultPlan(
            outages=OutageSchedule(tracker_outages=[Outage(FAULT_START, FAULT_END)])
        ),
        "tracker brownout 20%": FaultPlan(
            tracker_brownouts=[Brownout(FAULT_START, FAULT_END, capacity=0.2)]
        ),
        "servers down 4h-4.5h": FaultPlan(
            outages=OutageSchedule(
                server_outages=[Outage(FAULT_START, FAULT_START + 0.5 * HOUR)]
            )
        ),
        # origin capacity is ~10x the per-channel draw, so only a deep
        # brownout (5%) actually bites; milder ones are absorbed whole
        "server brownout 5%": FaultPlan(
            server_brownouts=[Brownout(FAULT_START, FAULT_END, capacity=0.05)]
        ),
        "Netcom partitioned": FaultPlan(
            partitions=[
                IspPartition(FAULT_START, FAULT_END, isps=frozenset({"China Netcom"}))
            ]
        ),
        "crash wave 2/h": FaultPlan(
            crashes=[CrashWindow(FAULT_START, FAULT_END, rate_per_hour=2.0)]
        ),
    }
    rows = []
    for name, plan in scenarios.items():
        print(f"Simulating: {name} ...")
        system = run(plan)
        times, values = satisfied_series(system.round_stats)
        dip = quality_dip(
            times,
            values,
            fault_start=FAULT_START,
            fault_end=FAULT_END,
            baseline_span_s=2 * HOUR,
        )
        rows.append(
            [
                name,
                dip.baseline,
                dip.min_during,
                dip.dip_depth,
                dip.recovery_time_s / 60.0 if dip.recovered else None,
                dip.recovered_value,
                system.total_crashes,
            ]
        )
    print()
    print(
        format_table(
            [
                "scenario",
                "baseline",
                "min during",
                "dip depth",
                "recover (min)",
                "recovered to",
                "crashes",
            ],
            rows,
            title=(
                "Quality dip and recovery per fault scenario "
                "(fault window 4h-5h; expect a dip, then recovery)"
            ),
        )
    )


if __name__ == "__main__":
    main()
