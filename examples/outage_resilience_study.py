#!/usr/bin/env python3
"""Infrastructure-outage resilience (extension experiment).

The paper shows the UUSee mesh absorbs user-side stress (flash crowds);
this study injects *infrastructure* failures instead: a one-hour
tracker outage (no bootstrap, no volunteering, no last-resort refresh)
and a half-hour streaming-server outage (no origin supply).  The mesh's
reciprocal exchange keeps established peers streaming through both, and
quality recovers once the component returns.

Run:  python examples/outage_resilience_study.py   (about two minutes)
"""

from repro.core.report import format_table
from repro.simulator import Outage, OutageSchedule, SystemConfig, UUSeeSystem
from repro.traces import InMemoryTraceStore

HOUR = 3_600.0


def run(outages: OutageSchedule) -> UUSeeSystem:
    config = SystemConfig(
        seed=9, base_concurrency=300.0, flash_crowd=None, outages=outages
    )
    system = UUSeeSystem(config, InMemoryTraceStore())
    system.run(seconds=9 * HOUR)
    return system


def quality_series(system: UUSeeSystem, hours: list[float]) -> list[float]:
    out = []
    for h in hours:
        stats = min(system.round_stats, key=lambda s: abs(s.time - h * HOUR))
        out.append(stats.satisfied_fraction())
    return out


def main() -> None:
    checkpoints = [3.5, 4.5, 5.2, 6.5, 8.5]
    scenarios = {
        "no failure": OutageSchedule(),
        "tracker down 4h-5h": OutageSchedule(
            tracker_outages=[Outage(4 * HOUR, 5 * HOUR)]
        ),
        "servers down 4h-4.5h": OutageSchedule(
            server_outages=[Outage(4 * HOUR, 4.5 * HOUR)]
        ),
    }
    rows = []
    for name, schedule in scenarios.items():
        print(f"Simulating: {name} ...")
        system = run(schedule)
        rows.append([name] + quality_series(system, checkpoints))
    print()
    print(
        format_table(
            ["scenario"] + [f"t={h}h" for h in checkpoints],
            rows,
            title=(
                "Satisfied fraction (all viewers) around the failure window "
                "(failures at 4h; outage effects visible at 4.5-5.2h, recovery after)"
            ),
        )
    )


if __name__ == "__main__":
    main()
