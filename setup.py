"""Legacy setup shim.

The execution environment has no ``wheel`` package and no network, so
``pip install -e .`` cannot build the editable wheel modern pip wants.
``python setup.py develop`` installs the same editable package via the
setuptools-native path.  All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
