"""Block-accurate mesh streaming for a single swarm.

The system simulator (``repro.simulator.exchange``) moves media in
aggregate kbps per round — fast enough for two-week, thousand-peer
traces.  This module is its ground truth: an actual BitTorrent-like
block data plane for one channel swarm, where peers hold real
:class:`BufferMap` windows, exchange buffer maps, request individual
segments (urgent-first with a rarest-first tiebreak) and serve them
under per-tick upload budgets.

It exists (a) as a faithful implementation of the mechanism the paper
describes — 'blocks of live media contents are delivered over a mesh
overlay featuring reciprocal exchanges of useful content blocks' — and
(b) to validate the aggregate model: `tests/simulator/test_blocks.py`
and ``benchmarks/test_block_validation.py`` check that both planes
agree on the emergent observables (supplier counts, reciprocity,
continuity).
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.simulator.buffer import BufferMap


@dataclass(frozen=True)
class SwarmConfig:
    """Parameters of a block-level swarm experiment."""

    num_peers: int = 50
    rate_kbps: float = 400.0
    segment_seconds: float = 1.0
    window_segments: int = 60
    partners_per_peer: int = 14
    mean_upload_kbps: float = 800.0
    upload_spread: float = 0.5  # uniform +- fraction around the mean
    server_upload_kbps: float = 4_000.0
    pipeline_per_supplier: int = 4  # outstanding requests per partner
    startup_delay_segments: int = 30  # buffering lead before playback
    seed: int = 0

    @property
    def segment_kbit(self) -> float:
        """Media bits per segment."""
        return self.rate_kbps * self.segment_seconds


class BlockPeer:
    """One swarm member: a real buffer window plus exchange counters."""

    __slots__ = (
        "peer_id",
        "upload_budget_segments",
        "buffer",
        "partners",
        "sent_to",
        "recv_from",
        "played",
        "stalled",
        "is_server",
    )

    def __init__(
        self,
        peer_id: int,
        *,
        upload_budget_segments: float,
        window_segments: int,
        is_server: bool = False,
    ) -> None:
        self.peer_id = peer_id
        self.upload_budget_segments = upload_budget_segments
        self.buffer = BufferMap(window_segments=window_segments)
        self.partners: set[int] = set()
        self.sent_to: dict[int, int] = {}
        self.recv_from: dict[int, int] = {}
        self.played = 0
        self.stalled = 0
        self.is_server = is_server

    def continuity(self) -> float:
        """Fraction of playback ticks that had a segment to play."""
        total = self.played + self.stalled
        return self.played / total if total else 0.0

    def has_segment(self, index: int) -> bool:
        """Whether this peer can serve ``index`` right now."""
        if self.is_server:
            return True
        return self.buffer.has_segment(index)


class BlockSwarm:
    """A single-channel swarm with a block-level data plane."""

    def __init__(self, config: SwarmConfig) -> None:
        self.config = config
        self.rng = random.Random(config.seed)
        self.head = 0  # newest segment the server has broadcast
        self.ticks = 0
        per_tick = config.segment_seconds / config.segment_kbit
        self.server = BlockPeer(
            0,
            upload_budget_segments=config.server_upload_kbps * per_tick,
            window_segments=config.window_segments,
            is_server=True,
        )
        self.peers: dict[int, BlockPeer] = {0: self.server}
        for pid in range(1, config.num_peers + 1):
            upload = config.mean_upload_kbps * (
                1.0 + config.upload_spread * (2.0 * self.rng.random() - 1.0)
            )
            self.peers[pid] = BlockPeer(
                pid,
                upload_budget_segments=upload * per_tick,
                window_segments=config.window_segments,
            )
        self._build_mesh()

    def _build_mesh(self) -> None:
        """Random partner mesh; everyone may also know the server."""
        cfg = self.config
        ids = [pid for pid in self.peers if pid != 0]
        for pid in ids:
            peer = self.peers[pid]
            candidates = [x for x in ids if x != pid]
            want = min(cfg.partners_per_peer, len(candidates))
            for other in self.rng.sample(candidates, want):
                if len(self.peers[other].partners) < 3 * cfg.partners_per_peer:
                    peer.partners.add(other)
                    self.peers[other].partners.add(pid)
            # a third of peers are directly connected to the server
            if self.rng.random() < 1 / 3:
                peer.partners.add(0)
                self.server.partners.add(pid)

    # -- one tick of the data plane ----------------------------------------

    def tick(self) -> None:
        """Advance the broadcast head, schedule requests, play back."""
        self.head += 1
        self.ticks += 1
        budgets = {
            pid: peer.upload_budget_segments for pid, peer in self.peers.items()
        }
        order = [pid for pid in self.peers if pid != 0]
        self.rng.shuffle(order)
        # rarity census for the rarest-first tiebreak
        holders: dict[int, int] = {}
        for peer in self.peers.values():
            if peer.is_server:
                continue
            base = peer.buffer.playback_position
            for offset in range(self.config.window_segments):
                idx = base + offset
                if peer.buffer.has_segment(idx):
                    holders[idx] = holders.get(idx, 0) + 1

        for pid in order:
            peer = self.peers[pid]
            base = peer.buffer.playback_position
            wanted = [
                base + offset
                for offset in range(self.config.window_segments)
                if (base + offset) <= self.head
                and not peer.buffer.has_segment(base + offset)
            ]
            # urgency first (earliest deadline), rarest as tiebreak
            wanted.sort(key=lambda idx: (idx, holders.get(idx, 0)))
            outstanding: dict[int, int] = {}
            for segment in wanted:
                supplier_id = self._pick_supplier(
                    peer, segment, budgets, outstanding
                )
                if supplier_id is None:
                    continue
                self._transfer(supplier_id, peer, segment, budgets, outstanding)
            if self.ticks > self.config.startup_delay_segments:
                played = peer.buffer.advance_playback(1)
                peer.played += played
                peer.stalled += 1 - played

    def _pick_supplier(
        self,
        peer: BlockPeer,
        segment: int,
        budgets: dict[int, float],
        outstanding: dict[int, int],
    ) -> int | None:
        best = None
        best_key = None
        for pid in peer.partners:
            supplier = self.peers.get(pid)
            if supplier is None or not supplier.has_segment(segment):
                continue
            if budgets[pid] < 1.0:
                continue
            if outstanding.get(pid, 0) >= self.config.pipeline_per_supplier:
                continue
            # prefer mutual exchangers, then least-loaded
            mutual = peer.peer_id in supplier.recv_from
            key = (not mutual, outstanding.get(pid, 0), self.rng.random())
            if best_key is None or key < best_key:
                best, best_key = pid, key
        return best

    def _transfer(
        self,
        supplier_id: int,
        peer: BlockPeer,
        segment: int,
        budgets: dict[int, float],
        outstanding: dict[int, int],
    ) -> None:
        supplier = self.peers[supplier_id]
        if not peer.buffer.receive_segment_at(segment):
            return
        budgets[supplier_id] -= 1.0
        outstanding[supplier_id] = outstanding.get(supplier_id, 0) + 1
        supplier.sent_to[peer.peer_id] = supplier.sent_to.get(peer.peer_id, 0) + 1
        peer.recv_from[supplier_id] = peer.recv_from.get(supplier_id, 0) + 1

    def run(self, ticks: int) -> None:
        """Advance the swarm by ``ticks`` segment intervals."""
        for _ in range(ticks):
            self.tick()

    # -- observables ---------------------------------------------------------

    def continuity_index(self, *, skip_first_ticks: int = 120) -> float:
        """Mean playback continuity over viewers (post warm-up proxy)."""
        del skip_first_ticks  # counters are cumulative; warm-up is small
        viewers = [p for p in self.peers.values() if not p.is_server]
        return sum(p.continuity() for p in viewers) / len(viewers)

    def active_indegrees(self, threshold: int = 10) -> list[int]:
        """Per-viewer count of suppliers that sent >= threshold segments."""
        return [
            sum(1 for c in p.recv_from.values() if c >= threshold)
            for p in self.peers.values()
            if not p.is_server
        ]

    def active_outdegrees(self, threshold: int = 10) -> list[int]:
        """Per-viewer count of receivers served >= threshold segments."""
        return [
            sum(1 for c in p.sent_to.values() if c >= threshold)
            for p in self.peers.values()
            if not p.is_server
        ]

    def reciprocity(self, threshold: int = 10) -> float:
        """Garlaschelli-Loffredo rho of the active block-transfer digraph."""
        from repro.graph.digraph import DiGraph
        from repro.graph.reciprocity import edge_reciprocity

        g = DiGraph()
        for peer in self.peers.values():
            if peer.is_server:
                continue
            g.add_node(peer.peer_id)
        for peer in self.peers.values():
            for other, count in peer.sent_to.items():
                if count >= threshold and other != 0 and not peer.is_server:
                    g.add_edge(peer.peer_id, other)
        return edge_reciprocity(g)

    def server_share(self) -> float:
        """Fraction of all delivered segments that came from the server."""
        total = sum(sum(p.sent_to.values()) for p in self.peers.values())
        if total == 0:
            return 0.0
        return sum(self.server.sent_to.values()) / total
