"""Sliding-window buffer map (paper Sec. 3.1 / 3.2).

UUSee peers exchange blocks of the media stream inside a sliding
window and report their buffer maps to the trace server.  The exchange
rounds of this simulator move media in aggregate (kbps), so the buffer
map tracks segment *occupancy* within the window: playback drains one
segment per segment-interval, received throughput fills the earliest
holes first, and the compact encoding reported in traces is the
window offset plus a fill bitmap.
"""

from __future__ import annotations


class BufferMap:
    """Occupancy of the sliding playback window, in segments."""

    __slots__ = ("window_segments", "_playback_pos", "_held")

    def __init__(self, *, window_segments: int = 120) -> None:
        if window_segments <= 0:
            raise ValueError("window must hold at least one segment")
        self.window_segments = window_segments
        self._playback_pos = 0  # absolute index of the next segment to play
        self._held: set[int] = set()  # absolute indices currently buffered

    @property
    def playback_position(self) -> int:
        """Absolute index of the next segment to play."""
        return self._playback_pos

    def fill_count(self) -> int:
        """Segments currently buffered."""
        return len(self._held)

    def fill_fraction(self) -> float:
        """Window occupancy in [0, 1]."""
        return len(self._held) / self.window_segments

    def has_segment(self, index: int) -> bool:
        """True when absolute segment ``index`` is buffered."""
        return index in self._held

    def receive_segments(self, count: int) -> int:
        """Fill the ``count`` earliest missing window slots; returns added."""
        if count < 0:
            raise ValueError("segment count must be non-negative")
        added = 0
        idx = self._playback_pos
        end = self._playback_pos + self.window_segments
        while added < count and idx < end:
            if idx not in self._held:
                self._held.add(idx)
                added += 1
            idx += 1
        return added

    def receive_segment_at(self, index: int) -> bool:
        """Store the specific segment ``index`` if it is inside the window.

        Returns True when newly stored; False for duplicates or segments
        outside the current window (too old or too far ahead).
        """
        if not (self._playback_pos <= index < self._playback_pos + self.window_segments):
            return False
        if index in self._held:
            return False
        self._held.add(index)
        return True

    def advance_playback(self, segments: int) -> int:
        """Consume up to ``segments`` from the playback point.

        Playback can only consume contiguously held segments; it stalls
        at the first hole.  Returns the number actually played.
        """
        if segments < 0:
            raise ValueError("segment count must be non-negative")
        played = 0
        while played < segments and self._playback_pos in self._held:
            self._held.discard(self._playback_pos)
            self._playback_pos += 1
            played += 1
        if played < segments and not self._held:
            # Total stall with an empty buffer: skip ahead (live stream —
            # the playback point follows the broadcast, not the buffer).
            self._playback_pos += segments - played
        return played

    def to_bitmap(self) -> str:
        """Compact hex encoding of window occupancy (traces' buffer map)."""
        bits = 0
        for offset in range(self.window_segments):
            if (self._playback_pos + offset) in self._held:
                bits |= 1 << offset
        width = (self.window_segments + 3) // 4
        return f"{bits:0{width}x}"

    @classmethod
    def occupancy_from_bitmap(cls, bitmap: str, window_segments: int) -> float:
        """Fill fraction encoded in a trace buffer map."""
        bits = int(bitmap, 16)
        count = bin(bits).count("1")
        return count / window_segments
