"""Crash-safe checkpoint/resume for :class:`~repro.simulator.system.UUSeeSystem`.

A two-month measurement campaign dies to power cuts, OOM kills and
reboots; losing the whole run to one of them is what this module
prevents.  A checkpoint captures *everything* that makes the simulation
deterministic — peers, tracker, partner lists, workload phase, the
departure heap, and the exact ``getstate()`` of every named
``random.Random`` stream — so a resumed run continues draw-for-draw
identically to a run that was never interrupted.

On disk a checkpoint is a single file written atomically
(write-temp + fsync + ``os.replace``) with a self-describing header::

    REPROCKPT <version> <sha256-of-payload> <payload-length>\\n
    <pickle payload>

Loading verifies magic, version, length and checksum before unpickling,
so a checkpoint torn by the very crash it was meant to survive is
*detected* (:class:`CheckpointCorruptError`) rather than silently
restoring garbage; :class:`CheckpointManager` then falls back to the
previous intact file in its keep-last-K rotation.

Restore deliberately does **not** unpickle a whole ``UUSeeSystem``:
the caller first constructs a fresh system from the *same config* (which
replays the construction-time draws and rebuilds everything stateless),
then :func:`restore_into` overwrites the mutable state in place.  This
keeps non-serializable members (the trace store's file handles) out of
the checkpoint and preserves the object identities the engine shares
(``system.peers`` *is* ``system.exchange.peers``).
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import pickle
import re
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.ioutil import atomic_write_bytes
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.faults import FaultyChannel

if TYPE_CHECKING:
    from repro.simulator.system import SystemConfig, UUSeeSystem

#: Envelope magic; a file that does not start with this is not a checkpoint.
MAGIC = b"REPROCKPT"
#: Envelope format version.
VERSION = 1

_CKPT_RE = re.compile(r"^ckpt-(\d{10})\.bin$")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found or applied."""


class CheckpointCorruptError(CheckpointError):
    """A checkpoint file failed magic/version/length/checksum validation.

    The expected signature of a crash landing *during* a checkpoint
    write on a filesystem without atomic rename, or of bit rot; the
    manager skips such files and resumes from the previous intact one.
    """


def _canonical(value: object) -> str:
    """A hash-stable textual form of a config value.

    ``repr`` alone is not stable across processes: set and frozenset
    iteration order depends on hash randomization.  Dataclasses render
    field-by-field in declaration order, sets sort their canonical
    elements, dicts sort by canonical key.  Fields marked with
    ``token_exclude`` metadata are skipped: they were added after
    tokens existed, and rendering them would reshuffle every
    pre-existing token (such fields opt into the token through an
    explicit suffix in :func:`config_token` instead).
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        body = ",".join(
            f"{f.name}={_canonical(getattr(value, f.name))}"
            for f in dataclasses.fields(value)
            if not f.metadata.get("token_exclude")
        )
        return f"{type(value).__qualname__}({body})"
    if isinstance(value, enum.Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, (set, frozenset)):
        return "{" + ",".join(sorted(_canonical(v) for v in value)) + "}"
    if isinstance(value, dict):
        items = sorted(
            ((_canonical(k), _canonical(v)) for k, v in value.items())
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if isinstance(value, (list, tuple)):
        return "[" + ",".join(_canonical(v) for v in value) + "]"
    if isinstance(value, (str, int, float, bool)) or value is None:
        return repr(value)
    # Plain objects (e.g. OutageSchedule): vars() in sorted key order.
    body = ",".join(
        f"{k}={_canonical(v)}" for k, v in sorted(vars(value).items())
    )
    return f"{type(value).__qualname__}({body})"


def config_token(config: SystemConfig, scope: str = "") -> str:
    """Fingerprint of a :class:`SystemConfig`, stable across processes.

    Stored in every checkpoint and compared on restore, so resuming a
    campaign with a *different* configuration fails loudly instead of
    producing a silently-inconsistent hybrid run.

    ``scope`` narrows the token beyond the config: sharded fleet
    campaigns pass their shard identity (shard index + channel subset)
    so shard 2's checkpoint can never restore into shard 3's worker
    even though both run the same :class:`SystemConfig` shape.  The
    empty scope leaves the token byte-identical to pre-scope builds, so
    existing checkpoints stay restorable.

    The engine backend participates the same way: the default
    ``"object"`` engine leaves the token unchanged (the field is
    ``token_exclude``-marked), while ``engine="soa"`` or
    ``engine="soa-exact"`` appends an ``#engine=`` suffix — an SoA
    campaign's checkpoints restore only into a system configured with
    the same backend, even when (as with ``soa-exact``) the two
    backends are draw-identical.
    """
    canonical = _canonical(config)
    engine = getattr(config, "engine", "object")
    if engine != "object":
        canonical = f"{canonical}#engine={engine}"
    if scope:
        canonical = f"{canonical}#scope={scope}"
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def draw_fingerprint(system: UUSeeSystem) -> str:
    """Digest of every named RNG stream's exact state, for equivalence.

    Two systems with equal fingerprints will make identical draws
    forever after — the property the fleet's kill/resume tests pin:
    a shard that crashed and resumed must land on the *same* fingerprint
    as one that ran straight through.
    """
    states = {
        "latency": system.latency._rng.getstate(),
        "bandwidth": system.bandwidth._rng.getstate(),
        "exchange": system.exchange.rng.getstate(),
        "system": system._rng.getstate(),
        "fault": system._fault_rng.getstate(),
        "trace_server": system.trace_server._rng.getstate(),
    }
    # Only policies owning a private stream contribute; legacy policies
    # return None, keeping pre-overlay fingerprints byte-identical.
    overlay_rng = system.exchange.partner_policy.rng_state()
    if overlay_rng is not None:
        states["overlay"] = overlay_rng
    digest = hashlib.sha256()
    for name in sorted(states):
        digest.update(name.encode("utf-8"))
        digest.update(repr(states[name]).encode("utf-8"))
    return digest.hexdigest()


def _allocator_state(allocator: Any) -> dict[str, Any]:
    # _in_use is membership-only (never iterated by the simulator), but
    # serialize it sorted anyway so payload bytes are reproducible.
    return {
        "cursor": allocator._cursor,
        "in_use": sorted(allocator._in_use),
        "released": list(allocator._released),
    }


def _restore_allocator(allocator: Any, state: dict[str, Any]) -> None:
    allocator._cursor = state["cursor"]
    allocator._in_use = set(state["in_use"])
    allocator._released = list(state["released"])


def snapshot_system(
    system: UUSeeSystem, *, trace_records: int | None = None, scope: str = ""
) -> dict[str, Any]:
    """Capture every piece of mutable :class:`UUSeeSystem` state.

    ``trace_records`` is the trace store's durable record count at this
    cut (``len(store)`` after a sync); resume uses it to roll the store
    back so the replayed rounds do not duplicate reports.  The returned
    dict is ready for :func:`save_checkpoint`; it references live
    objects, so serialize it before advancing the system further.
    """
    channel_state: dict[str, Any] | None = None
    store = system.trace_server.store
    if isinstance(store, FaultyChannel):
        channel_state = {
            "rng": store._rng.getstate(),
            "in_burst": store._in_burst,
            "held": store._held,
            "held_for": store._held_for,
            "counters": store.counters,
        }
    return {
        "config_token": config_token(system.config, scope),
        # Self-describing engine backend (absent in older checkpoints
        # means "object").  Peers pickle engine-agnostically — SoA views
        # reduce to plain Peer/Link objects — so this key documents
        # provenance and backstops the config-token check on restore.
        "engine": system.config.engine,
        "clock": system.engine.clock_state(),
        "rounds_completed": system.rounds_completed,
        "trace_records": trace_records,  # repro: noqa[REP101] consumed by run_campaign's store.rollback, not restore_into
        "peers": system.peers,
        "tracker": system.tracker,
        "arrivals": system.arrivals,
        "trace_server": {
            "rng": system.trace_server._rng.getstate(),
            "received": system.trace_server.received,
            "dropped": system.trace_server.dropped,
        },
        "channel": channel_state,
        "rng": {
            "latency": system.latency._rng.getstate(),
            "bandwidth": system.bandwidth._rng.getstate(),
            "exchange": system.exchange.rng.getstate(),
            "system": system._rng.getstate(),
            "fault": system._fault_rng.getstate(),
        },
        "allocators": {
            name: _allocator_state(alloc)
            for name, alloc in system._allocators.items()
        },
        "server_allocator": _allocator_state(system._server_allocator),
        "departures": list(system._departures),
        # None for the stateless legacy policies; a dict of the policy's
        # own RNG state and topology structures otherwise, so a resumed
        # overlay campaign continues draw-for-draw.
        "overlay": system.exchange.partner_policy.checkpoint_state(),
        "next_peer_id": system._next_peer_id,
        "round_stats": system.round_stats,
        "totals": (
            system.total_arrivals,
            system.total_departures,
            system.total_crashes,
        ),
        # Duck-typed: present when the store is an ingest ReportClient
        # (next seq, pending spill frames, backoff RNG, partial batch),
        # so a resumed campaign resends the unacked tail and regenerates
        # identical frame identities for the server to deduplicate.
        "ingest_client": (
            store.checkpoint_state()
            if hasattr(store, "checkpoint_state")
            else None
        ),
        # None for the no-op observer; plain dicts otherwise, so resumed
        # campaigns report cumulative metric totals, not restart at zero.
        "obs": system.obs.checkpoint_state(),
    }


def restore_into(
    system: UUSeeSystem, state: dict[str, Any], *, scope: str = ""
) -> None:
    """Overwrite a *freshly constructed* system with checkpointed state.

    ``system`` must have been built from the same config the checkpoint
    was taken under (verified via the stored config token, scoped the
    same way it was at save time) and not yet run.  Mutation is in-place
    where object identity is shared — ``peers`` is cleared and refilled
    rather than rebound, because the exchange engine holds the same
    dict.
    """
    token = config_token(system.config, scope)
    if state["config_token"] != token:
        raise CheckpointError(
            "checkpoint was taken under a different configuration "
            f"(token {state['config_token'][:12]}… vs {token[:12]}…); "
            "resume with the original config or start a fresh campaign"
        )
    engine = state.get("engine", "object")
    if engine != system.config.engine:
        raise CheckpointError(
            f"checkpoint was taken under the {engine!r} engine backend "
            f"but this system runs {system.config.engine!r}; resume with "
            "the original --engine"
        )
    system.engine.restore_clock(state["clock"])
    system.rounds_completed = state["rounds_completed"]
    system.peers.clear()
    system.peers.update(state["peers"])
    # SoA systems re-pack the restored plain peers/links into fresh
    # arrays; the object backend's hook is a no-op.  Row packing after
    # resume differs from the uninterrupted run, but no engine reduction
    # depends on row order, so the resumed run stays draw-identical.
    system.exchange.adopt_restored()
    system.tracker = state["tracker"]
    system.exchange.tracker = state["tracker"]
    system.arrivals = state["arrivals"]
    ts = state["trace_server"]
    system.trace_server._rng.setstate(ts["rng"])
    system.trace_server.received = ts["received"]
    system.trace_server.dropped = ts["dropped"]
    channel_state = state.get("channel")
    store = system.trace_server.store
    if channel_state is not None:
        if not isinstance(store, FaultyChannel):
            raise CheckpointError(
                "checkpoint carries collection-channel fault state but the "
                "resumed system's store is not wrapped in a FaultyChannel"
            )
        store._rng.setstate(channel_state["rng"])
        store._in_burst = channel_state["in_burst"]
        store._held = channel_state["held"]
        store._held_for = channel_state["held_for"]
        store.counters = channel_state["counters"]
    rngs = state["rng"]
    system.latency._rng.setstate(rngs["latency"])
    system.bandwidth._rng.setstate(rngs["bandwidth"])
    system.exchange.rng.setstate(rngs["exchange"])
    system._rng.setstate(rngs["system"])
    system._fault_rng.setstate(rngs["fault"])
    for name, alloc_state in state["allocators"].items():
        if name not in system._allocators:
            raise CheckpointError(f"checkpoint references unknown ISP {name!r}")
        _restore_allocator(system._allocators[name], alloc_state)
    _restore_allocator(system._server_allocator, state["server_allocator"])
    system._departures = list(state["departures"])
    # The matching policy is guaranteed by the config token above (the
    # overlay spec is a SystemConfig field); .get() keeps checkpoints
    # written before the overlay lab restorable.
    system.exchange.clock = system.engine.now
    system.exchange.partner_policy.restore_checkpoint(state.get("overlay"))
    system._next_peer_id = state["next_peer_id"]
    system.round_stats = state["round_stats"]
    (
        system.total_arrivals,
        system.total_departures,
        system.total_crashes,
    ) = state["totals"]
    ingest_state = state.get("ingest_client")
    if ingest_state is not None:
        if not hasattr(store, "restore_checkpoint"):
            raise CheckpointError(
                "checkpoint carries ingest reporter state but the resumed "
                "system's store is not an ingest ReportClient"
            )
        store.restore_checkpoint(ingest_state)
    # .get(): checkpoints written before observability existed lack the
    # key; restoring into a no-op observer is itself a no-op.
    system.obs.restore_checkpoint(state.get("obs"))


def save_checkpoint(path: str | Path, state: dict[str, Any]) -> Path:
    """Serialize ``state`` to ``path`` atomically and durably.

    The payload is pickled, framed with a magic/version/checksum/length
    header, and written via write-temp + fsync + ``os.replace`` — a
    crash at any instant leaves either the previous checkpoint or the
    complete new one, never a torn file.
    """
    payload = pickle.dumps(state, protocol=pickle.HIGHEST_PROTOCOL)
    digest = hashlib.sha256(payload).hexdigest()
    header = f"{MAGIC.decode()} {VERSION} {digest} {len(payload)}\n".encode()
    return atomic_write_bytes(path, header + payload)


def load_checkpoint(path: str | Path) -> dict[str, Any]:
    """Read, validate and deserialize a checkpoint file.

    Raises :class:`CheckpointCorruptError` on any framing or checksum
    mismatch (truncation, bit rot, not-a-checkpoint) — corruption is a
    *skip signal* for the manager, never an excuse to unpickle
    unverified bytes.
    """
    path = Path(path)
    try:
        blob = path.read_bytes()
    except OSError as exc:
        raise CheckpointCorruptError(f"{path}: unreadable: {exc}") from exc
    newline = blob.find(b"\n")
    if newline < 0 or not blob.startswith(MAGIC + b" "):
        raise CheckpointCorruptError(f"{path}: not a {MAGIC.decode()} file")
    fields = blob[:newline].decode("ascii", "replace").split()
    if len(fields) != 4:
        raise CheckpointCorruptError(f"{path}: malformed header")
    _, version, digest, length = fields
    if int(version) != VERSION:
        raise CheckpointCorruptError(
            f"{path}: unsupported checkpoint version {version} "
            f"(this build reads version {VERSION})"
        )
    payload = blob[newline + 1 :]
    if len(payload) != int(length):
        raise CheckpointCorruptError(
            f"{path}: payload is {len(payload)} bytes, header promises "
            f"{length} (torn write?)"
        )
    if hashlib.sha256(payload).hexdigest() != digest:
        raise CheckpointCorruptError(f"{path}: payload checksum mismatch")
    state = pickle.loads(payload)
    if not isinstance(state, dict):
        raise CheckpointCorruptError(f"{path}: unexpected payload type")
    return state


class CheckpointManager:
    """Periodic checkpoints with keep-last-K rotation under one directory.

    Files are named ``ckpt-<round:010d>.bin`` so lexicographic order is
    round order without touching the wall clock (the simulator packages
    are wall-clock-free by QA rule).  :meth:`save` syncs the trace store
    first, so the recorded ``trace_records`` cut is durable before the
    checkpoint that references it exists; :meth:`latest_valid` walks
    newest-to-oldest past corrupt files.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        keep_last: int = 3,
        scope: str = "",
        obs: AnyObserver = NULL_OBSERVER,
    ) -> None:
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        self.directory = Path(directory)
        self.keep_last = keep_last
        self.scope = scope
        self.obs = obs
        #: Corrupt envelopes skipped by :meth:`latest_valid` so far.
        self.corrupt_skipped = 0
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, rounds: int) -> Path:
        """The checkpoint file name for a given completed-round count."""
        return self.directory / f"ckpt-{rounds:010d}.bin"

    def checkpoints(self) -> list[Path]:
        """Every checkpoint file present, oldest first."""
        found = [
            p for p in self.directory.iterdir() if _CKPT_RE.match(p.name)
        ]
        found.sort()
        return found

    def save(self, system: UUSeeSystem) -> Path:
        """Checkpoint ``system`` now; returns the file written.

        Ordering is the crash-safety invariant: (1) flush-and-fsync the
        trace store, (2) capture ``len(store)`` as the durable cut,
        (3) write the checkpoint atomically, (4) prune old files.  A
        crash between any two steps leaves a resumable state.
        """
        store = system.trace_server.store
        inner = store.store if isinstance(store, FaultyChannel) else store
        sync = getattr(inner, "sync", None) or getattr(inner, "flush", None)
        if sync is not None:
            sync()
        trace_records = len(inner) if hasattr(inner, "__len__") else None
        state = snapshot_system(
            system, trace_records=trace_records, scope=self.scope
        )
        path = save_checkpoint(self.path_for(system.rounds_completed), state)
        self._prune()
        return path

    def latest_valid(self) -> tuple[Path, dict[str, Any]] | None:
        """Newest checkpoint that passes validation, or ``None``.

        Corrupt files (e.g. torn by the crash itself on a filesystem
        without atomic rename) are skipped, not deleted — they are
        evidence.  Every skip is surfaced to the observer as a
        ``checkpoint.corrupt_skipped`` count plus an event naming the
        file and the validation failure, so silent rollback to an older
        cut is visible in the run's telemetry.
        """
        for path in reversed(self.checkpoints()):
            try:
                return path, load_checkpoint(path)
            except CheckpointCorruptError as exc:
                self.corrupt_skipped += 1
                self.obs.count("checkpoint.corrupt_skipped")
                self.obs.emit(
                    {
                        "type": "checkpoint.corrupt",
                        "path": str(path),
                        "error": str(exc),
                    }
                )
                continue
        return None

    def _prune(self) -> None:
        for path in self.checkpoints()[: -self.keep_last]:
            path.unlink()
