"""Discrete-event simulator of the UUSee P2P live streaming system.

This is the substrate that stands in for the paper's proprietary data
source.  It implements the UUSee protocol as described in Sec. 3.1:

- tracker-assisted bootstrap with an initial partner set of up to 50;
- RTT/TCP-throughput measurement per connection and selection of ~30
  most suitable supplying peers;
- upload-capacity monitoring and 'volunteering' at the tracker;
- partner recommendation (gossip) between neighbours;
- tracker re-contact as a last resort when playback is not sustained;
- BitTorrent-like block exchange in a sliding window, aggregated into
  fixed exchange rounds with bandwidth-constrained allocation.

The observable behaviours the paper measures (degree spikes, the ~23
indegree cut-off, ISP clustering, reciprocity, flash-crowd resilience)
all *emerge* from these rules plus the synthetic network model; they
are not scripted.
"""

from repro.simulator.engine import EventEngine, ScheduledEvent
from repro.simulator.checkpoint import (
    CheckpointCorruptError,
    CheckpointError,
    CheckpointManager,
    config_token,
    draw_fingerprint,
    load_checkpoint,
    restore_into,
    save_checkpoint,
    snapshot_system,
)
from repro.simulator.protocol import ProtocolConfig, SelectionPolicy
from repro.simulator.buffer import BufferMap
from repro.simulator.channel import Channel, ChannelCatalogue, default_catalogue
from repro.simulator.tracker import Tracker, TrackerPool
from repro.simulator.peer import Link, Peer
from repro.simulator.failures import (
    Brownout,
    CrashWindow,
    FaultPlan,
    IspPartition,
    LinkDegradation,
    Outage,
    OutageSchedule,
)
from repro.simulator.blocks import BlockSwarm, SwarmConfig
from repro.simulator.system import SystemConfig, UUSeeSystem

__all__ = [
    "EventEngine",
    "ScheduledEvent",
    "CheckpointCorruptError",
    "CheckpointError",
    "CheckpointManager",
    "config_token",
    "draw_fingerprint",
    "load_checkpoint",
    "restore_into",
    "save_checkpoint",
    "snapshot_system",
    "ProtocolConfig",
    "SelectionPolicy",
    "BufferMap",
    "Channel",
    "ChannelCatalogue",
    "default_catalogue",
    "Tracker",
    "TrackerPool",
    "Brownout",
    "CrashWindow",
    "FaultPlan",
    "IspPartition",
    "LinkDegradation",
    "Outage",
    "OutageSchedule",
    "BlockSwarm",
    "SwarmConfig",
    "Link",
    "Peer",
    "SystemConfig",
    "UUSeeSystem",
]
