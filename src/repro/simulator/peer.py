"""Peer and partner-link state.

A ``Peer`` is one streaming client (or a streaming server, flagged).
Each TCP partnership is represented by a ``Link`` at *both* endpoints:
every peer keeps its own view with its own sent/received segment
counters, mirroring the paper's measurement design where each peer
reports, per partner, the number of segments sent to and received from
that partner.  Links carry the measured RTT and the per-connection TCP
throughput ceiling drawn from the network model, plus the EWMA
throughput estimate UUSee's selection uses.
"""

from __future__ import annotations


class Link:
    """One endpoint's view of a TCP partnership."""

    __slots__ = (
        "rtt_ms",
        "cap_kbps",
        "est_kbps",
        "penalty",
        "sent_segments",
        "recv_segments",
        "reported_sent",
        "reported_recv",
        "established_at",
        "partner_ip",
    )

    def __init__(
        self,
        rtt_ms: float,
        cap_kbps: float,
        *,
        established_at: float = 0.0,
        partner_ip: int = 0,
    ) -> None:
        self.rtt_ms = rtt_ms
        self.cap_kbps = cap_kbps
        self.partner_ip = partner_ip
        # Initial throughput estimate: optimistic half the ceiling, so new
        # links get tried; measurement then corrects it.
        self.est_kbps = cap_kbps * 0.5
        # Quadratic RTT selection penalty, fixed for the link's lifetime
        # (RTT never changes after establishment) — precomputed so the
        # per-round scoring loops pay one attribute read, not an
        # exponentiation.
        self.penalty = 1.0 + (rtt_ms / 60.0) ** 2
        self.sent_segments = 0.0  # cumulative, this endpoint -> partner
        self.recv_segments = 0.0  # cumulative, partner -> this endpoint
        self.reported_sent = 0.0  # snapshot at last trace report
        self.reported_recv = 0.0
        self.established_at = established_at

    def __setstate__(
        self, state: tuple[dict[str, float] | None, dict[str, float]]
    ) -> None:
        # Checkpoints pickle Links with the default slots protocol; ones
        # written before the ``penalty`` slot existed lack it, so derive
        # it from the restored RTT.
        _, slots = state
        for name, value in slots.items():
            setattr(self, name, value)
        if "penalty" not in slots:
            self.penalty = 1.0 + (self.rtt_ms / 60.0) ** 2

    def observe_throughput(self, achieved_kbps: float, smoothing: float) -> None:
        """Blend a measured per-round rate into the selection estimate."""
        self.est_kbps = (1.0 - smoothing) * self.est_kbps + smoothing * achieved_kbps

    def unreported_deltas(self) -> tuple[float, float]:
        """(sent, received) segments since the last trace report."""
        return (
            self.sent_segments - self.reported_sent,
            self.recv_segments - self.reported_recv,
        )

    def mark_reported(self) -> None:
        """Roll the reported counters forward to the current totals."""
        self.reported_sent = self.sent_segments
        self.reported_recv = self.recv_segments


class Peer:
    """One UUSee client (or server) and all its protocol state."""

    __slots__ = (
        "peer_id",
        "ip",
        "isp",
        "is_china",
        "is_server",
        "channel_id",
        "upload_kbps",
        "download_kbps",
        "class_name",
        "join_time",
        "depart_time",
        "partners",
        "suppliers",
        "health",
        "buffer_fill",
        "recv_rate_kbps",
        "sent_rate_kbps",
        "last_tick",
        "next_report",
        "volunteered",
        "starving_ticks",
        "depth",
        "playback_position",
        "registered",
        "tracker_failures",
        "next_tracker_retry",
    )

    def __init__(
        self,
        peer_id: int,
        *,
        ip: int,
        isp: str,
        is_china: bool,
        channel_id: int,
        upload_kbps: float,
        download_kbps: float,
        class_name: str,
        join_time: float,
        depart_time: float,
        is_server: bool = False,
    ) -> None:
        self.peer_id = peer_id
        self.ip = ip
        self.isp = isp
        self.is_china = is_china
        self.is_server = is_server
        self.channel_id = channel_id
        self.upload_kbps = upload_kbps
        self.download_kbps = download_kbps
        self.class_name = class_name
        self.join_time = join_time
        self.depart_time = depart_time
        self.partners: dict[int, Link] = {}
        self.suppliers: set[int] = set()
        self.health = 0.0  # EWMA of recv_rate / stream_rate, 0..1
        self.buffer_fill = 0.0  # sliding-window occupancy estimate, 0..1
        self.recv_rate_kbps = 0.0
        self.sent_rate_kbps = 0.0
        self.last_tick = join_time
        self.next_report = float("inf")
        self.volunteered = False
        self.starving_ticks = 0
        # Hop distance from the streaming server (servers are 0); used by
        # the TREE ablation policy and interesting in its own right.
        self.depth = 0 if is_server else 64
        self.playback_position = 0
        # Tracker-contact state: whether the tracker has accepted this
        # peer's registration, and the bounded-exponential-backoff retry
        # schedule used while the tracker is down or browned out.
        self.registered = False
        self.tracker_failures = 0
        self.next_tracker_retry = float("inf")

    @property
    def partner_count(self) -> int:
        """Current partner-list size."""
        return len(self.partners)

    def age(self, now: float) -> float:
        """Seconds since this peer joined."""
        return now - self.join_time

    def add_partner(self, partner_id: int, link: Link) -> bool:
        """Record a partnership; returns False if it already existed."""
        if partner_id in self.partners or partner_id == self.peer_id:
            return False
        self.partners[partner_id] = link
        return True

    def remove_partner(self, partner_id: int) -> None:
        """Forget a partner (and drop it from the supplier set)."""
        self.partners.pop(partner_id, None)
        self.suppliers.discard(partner_id)

    def spare_upload_kbps(self) -> float:
        """Unused upload capacity as of the last exchange round."""
        return max(0.0, self.upload_kbps - self.sent_rate_kbps)

    def __repr__(self) -> str:  # debugging aid only
        kind = "server" if self.is_server else self.class_name
        return (
            f"Peer({self.peer_id}, {kind}, isp={self.isp!r}, "
            f"ch={self.channel_id}, partners={len(self.partners)})"
        )
