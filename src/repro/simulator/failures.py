"""Failure injection: infrastructure outages during a run.

The paper's system keeps streaming through flash crowds; a natural
robustness question (and a standard distributed-systems test) is what
happens when the *infrastructure* fails instead: tracking servers
unreachable (no bootstrap, no refresh) or streaming servers down (no
origin supply).  ``OutageSchedule`` holds the windows;
:class:`UUSeeSystem` consults it each round.

Expected behaviour, asserted in tests: during a tracker outage new
peers join with empty partner lists and only recover through gossip,
so quality dips for newcomers and recovers after the outage; during a
server outage the mesh keeps redistributing whatever peers hold (the
paper's reciprocity argument) and recovers when origins return.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Outage:
    """One failure window [start, end) in simulation seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("outage must end after it starts")

    def active(self, now: float) -> bool:
        """Whether the component is down at ``now``."""
        return self.start <= now < self.end

    @property
    def duration(self) -> float:
        """Outage length in seconds."""
        return self.end - self.start


@dataclass
class OutageSchedule:
    """Failure windows for the tracker farm and the streaming servers."""

    tracker_outages: list[Outage] = field(default_factory=list)
    server_outages: list[Outage] = field(default_factory=list)

    def tracker_down(self, now: float) -> bool:
        """True while no tracking server is reachable."""
        return any(o.active(now) for o in self.tracker_outages)

    def servers_down(self, now: float) -> bool:
        """True while the streaming origin servers are offline."""
        return any(o.active(now) for o in self.server_outages)

    @property
    def empty(self) -> bool:
        """No failures scheduled."""
        return not self.tracker_outages and not self.server_outages
