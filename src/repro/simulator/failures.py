"""Fault injection: infrastructure failures and degradations during a run.

The paper's system keeps streaming through flash crowds; a natural
robustness question (and a standard distributed-systems test) is what
happens when the *infrastructure* fails or degrades instead.  The fault
model spans four axes:

- **Tracker faults** — binary outages (:class:`Outage`, no bootstrap,
  no refresh, no volunteering) and fractional *brownouts*
  (:class:`Brownout`: an overloaded tracker farm serves only a fraction
  of requests; the rest time out and the client retries with bounded
  exponential backoff).
- **Origin faults** — streaming-server outages and brownouts (degraded
  origin upload capacity).
- **Network faults** — ISP-level partitions (:class:`IspPartition`:
  links crossing the cut carry nothing and new connections across it
  fail) and cross-ISP degradation windows (:class:`LinkDegradation`:
  inter-ISP throughput scaled down, modelling congested peering links).
- **Peer crashes** — :class:`CrashWindow`: peers vanish *without* a
  goodbye, so the tracker keeps stale registrations and partners only
  discover the death via the idle timeout — distinct from graceful
  departures, which unregister immediately.

A :class:`FaultPlan` bundles all of these; :class:`UUSeeSystem` and the
exchange engine consult it each round.  ``OutageSchedule`` is kept as
the binary-outage subset (and remains the ``SystemConfig.outages``
back-compat surface); its membership checks are O(log n) via merged
sorted windows.

Expected behaviour, asserted in tests and benchmarks: quality dips
while a fault window is active and recovers within a few rounds after
it closes, because the mesh keeps redistributing whatever peers hold
(the paper's reciprocity argument).
"""

from __future__ import annotations

import math
from bisect import bisect_right
from dataclasses import dataclass, field
from collections.abc import Iterable


def _check_window(start: float, end: float) -> None:
    if not (math.isfinite(start) and math.isfinite(end)):
        raise ValueError(f"window bounds must be finite, got [{start}, {end})")
    if end <= start:
        raise ValueError("window must end after it starts")


def _window_active(start: float, end: float, now: float) -> bool:
    return start <= now < end


@dataclass(frozen=True)
class Outage:
    """One binary failure window [start, end) in simulation seconds."""

    start: float
    end: float

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)

    def active(self, now: float) -> bool:
        """Whether the component is down at ``now``."""
        return _window_active(self.start, self.end, now)

    @property
    def duration(self) -> float:
        """Outage length in seconds."""
        return self.end - self.start


class _WindowIndex:
    """Merged, sorted half-open windows with O(log n) membership tests."""

    __slots__ = ("_starts", "_ends")

    def __init__(self, windows: Iterable[tuple[float, float]]) -> None:
        merged: list[list[float]] = []
        for start, end in sorted(windows):
            if merged and start <= merged[-1][1]:
                merged[-1][1] = max(merged[-1][1], end)
            else:
                merged.append([start, end])
        self._starts = [w[0] for w in merged]
        self._ends = [w[1] for w in merged]

    def contains(self, now: float) -> bool:
        i = bisect_right(self._starts, now) - 1
        return i >= 0 and now < self._ends[i]


@dataclass
class OutageSchedule:
    """Binary failure windows for the tracker farm and streaming servers.

    Windows are merged into sorted indexes at construction, so the
    per-round ``tracker_down``/``servers_down`` checks bisect instead of
    scanning every window.  Mutating the outage lists after construction
    is unsupported (the indexes would go stale).
    """

    tracker_outages: list[Outage] = field(default_factory=list)
    server_outages: list[Outage] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._tracker_index = _WindowIndex(
            (o.start, o.end) for o in self.tracker_outages
        )
        self._server_index = _WindowIndex(
            (o.start, o.end) for o in self.server_outages
        )

    def tracker_down(self, now: float) -> bool:
        """True while no tracking server is reachable."""
        return self._tracker_index.contains(now)

    def servers_down(self, now: float) -> bool:
        """True while the streaming origin servers are offline."""
        return self._server_index.contains(now)

    @property
    def empty(self) -> bool:
        """No failures scheduled."""
        return not self.tracker_outages and not self.server_outages

    def merged_with(self, other: OutageSchedule) -> OutageSchedule:
        """A new schedule holding both schedules' windows."""
        return OutageSchedule(
            tracker_outages=self.tracker_outages + other.tracker_outages,
            server_outages=self.server_outages + other.server_outages,
        )


@dataclass(frozen=True)
class Brownout:
    """Fractional-capacity window: only ``capacity`` of requests succeed.

    Applied to the tracker farm it models overload (a fraction of
    bootstrap/refresh/volunteer messages are served, the rest time out);
    applied to the origin servers it scales their usable upload.
    """

    start: float
    end: float
    capacity: float  # fraction of normal service still available, 0..1

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not (math.isfinite(self.capacity) and 0.0 <= self.capacity <= 1.0):
            raise ValueError(f"brownout capacity must be in [0, 1]: {self.capacity}")

    def active(self, now: float) -> bool:
        """Whether the brownout is in effect at ``now``."""
        return _window_active(self.start, self.end, now)


@dataclass(frozen=True)
class IspPartition:
    """Network partition isolating a set of ISPs from everyone else.

    While active, no traffic flows between a peer inside ``isps`` and a
    peer outside, and new connections across the cut fail.  Traffic on
    either side of the cut is unaffected.  The check is symmetric by
    construction.
    """

    start: float
    end: float
    isps: frozenset[str]

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        object.__setattr__(self, "isps", frozenset(self.isps))
        if not self.isps:
            raise ValueError("partition needs at least one ISP")

    def active(self, now: float) -> bool:
        """Whether the partition is in effect at ``now``."""
        return _window_active(self.start, self.end, now)

    def severs(self, isp_a: str, isp_b: str, now: float) -> bool:
        """Whether a link between the two ISPs crosses the active cut."""
        return self.active(now) and ((isp_a in self.isps) != (isp_b in self.isps))


@dataclass(frozen=True)
class LinkDegradation:
    """Window during which link throughput is scaled by ``factor``.

    By default only cross-ISP links degrade (a congested peering link —
    the scenario where locality-aware selection should shine); set
    ``cross_isp_only=False`` for a global degradation.
    """

    start: float
    end: float
    factor: float  # achieved-throughput multiplier, 0..1
    cross_isp_only: bool = True

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not (math.isfinite(self.factor) and 0.0 <= self.factor <= 1.0):
            raise ValueError(f"degradation factor must be in [0, 1]: {self.factor}")

    def active(self, now: float) -> bool:
        """Whether the degradation is in effect at ``now``."""
        return _window_active(self.start, self.end, now)

    def applies(self, isp_a: str, isp_b: str, now: float) -> bool:
        """Whether a link between the two ISPs is degraded at ``now``."""
        if not self.active(now):
            return False
        return not self.cross_isp_only or isp_a != isp_b


@dataclass(frozen=True)
class CrashWindow:
    """Window of abrupt peer departures (no goodbye).

    Each online viewer crashes with hazard ``rate_per_hour`` while the
    window is active.  Crashed peers are *not* unregistered from the
    tracker (they said no goodbye); the tracker only learns of the death
    when it hands the stale entry to a joining peer whose connection
    attempt fails, and partners learn via the idle timeout.
    """

    start: float
    end: float
    rate_per_hour: float  # per-peer crash hazard while active

    def __post_init__(self) -> None:
        _check_window(self.start, self.end)
        if not (math.isfinite(self.rate_per_hour) and self.rate_per_hour >= 0.0):
            raise ValueError(f"crash rate must be finite and >= 0: {self.rate_per_hour}")

    def active(self, now: float) -> bool:
        """Whether crashes are being injected at ``now``."""
        return _window_active(self.start, self.end, now)


@dataclass
class FaultPlan:
    """Every scheduled fault of a run, across all three system layers.

    The plan is consulted each round; all queries are cheap (bisect for
    the binary outages, short linear scans over the typically-few
    windows of the other kinds).
    """

    outages: OutageSchedule = field(default_factory=OutageSchedule)
    tracker_brownouts: list[Brownout] = field(default_factory=list)
    server_brownouts: list[Brownout] = field(default_factory=list)
    partitions: list[IspPartition] = field(default_factory=list)
    degradations: list[LinkDegradation] = field(default_factory=list)
    crashes: list[CrashWindow] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        """No faults scheduled at all."""
        return (
            self.outages.empty
            and not self.tracker_brownouts
            and not self.server_brownouts
            and not self.partitions
            and not self.degradations
            and not self.crashes
        )

    @property
    def has_link_faults(self) -> bool:
        """Whether any partition or degradation is scheduled (fast gate)."""
        return bool(self.partitions or self.degradations)

    def tracker_capacity(self, now: float) -> float:
        """Fraction of tracker requests served at ``now`` (0 = outage)."""
        if self.outages.tracker_down(now):
            return 0.0
        capacity = 1.0
        for b in self.tracker_brownouts:
            if b.active(now):
                capacity = min(capacity, b.capacity)
        return capacity

    def server_capacity(self, now: float) -> float:
        """Fraction of origin upload capacity available at ``now``."""
        if self.outages.servers_down(now):
            return 0.0
        capacity = 1.0
        for b in self.server_brownouts:
            if b.active(now):
                capacity = min(capacity, b.capacity)
        return capacity

    def link_blocked(self, isp_a: str, isp_b: str, now: float) -> bool:
        """Whether traffic between the two ISPs is partitioned away."""
        return any(p.severs(isp_a, isp_b, now) for p in self.partitions)

    def link_factor(self, isp_a: str, isp_b: str, now: float) -> float:
        """Throughput multiplier for a link between the two ISPs."""
        factor = 1.0
        for d in self.degradations:
            if d.applies(isp_a, isp_b, now):
                factor = min(factor, d.factor)
        return factor

    def crash_hazard(self, now: float) -> float:
        """Per-peer crash hazard at ``now``, in 1/seconds."""
        return (
            sum(c.rate_per_hour for c in self.crashes if c.active(now)) / 3_600.0
        )

    def merged_with_outages(self, outages: OutageSchedule) -> FaultPlan:
        """A new plan with ``outages`` folded in (other axes shared)."""
        if outages.empty:
            return self
        return FaultPlan(
            outages=self.outages.merged_with(outages),
            tracker_brownouts=self.tracker_brownouts,
            server_brownouts=self.server_brownouts,
            partitions=self.partitions,
            degradations=self.degradations,
            crashes=self.crashes,
        )
