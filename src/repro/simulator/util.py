"""Small utilities for the simulator hot path."""

from __future__ import annotations

import random
from collections.abc import Hashable, Iterable, Iterator

Item = Hashable


class SampleableSet:
    """A set supporting O(1) add/discard and O(k) random sampling.

    Backed by the classic list + index-map pair: removal swaps the victim
    with the list tail.  Used for tracker volunteer lists, which need
    frequent membership changes *and* uniform random bootstrap samples.
    """

    def __init__(self, items: Iterable[Item] = ()) -> None:
        self._items: list[Item] = []
        self._index: dict[Item, int] = {}
        for item in items:
            self.add(item)

    def add(self, item: Item) -> None:
        if item not in self._index:
            self._index[item] = len(self._items)
            self._items.append(item)

    def discard(self, item: Item) -> None:
        idx = self._index.pop(item, None)
        if idx is None:
            return
        tail = self._items.pop()
        if idx < len(self._items):
            self._items[idx] = tail
            self._index[tail] = idx

    def sample(
        self, rng: random.Random, k: int, *, exclude: Item | None = None
    ) -> list[Item]:
        """Up to ``k`` distinct items, uniformly, optionally excluding one."""
        n = len(self._items)
        if n == 0 or k <= 0:
            return []
        if k >= n:
            result = [x for x in self._items if x != exclude]
            rng.shuffle(result)
            return result
        picked: list[Item] = []
        seen: set[int] = set()
        # Rejection sampling; k << n in practice (bootstrap from a large
        # volunteer list), so this stays near k draws.
        attempts = 0
        max_attempts = 20 * k + 50
        while len(picked) < k and attempts < max_attempts:
            attempts += 1
            idx = rng.randrange(n)
            if idx in seen:
                continue
            seen.add(idx)
            item = self._items[idx]
            if item == exclude:
                continue
            picked.append(item)
        return picked

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, item: Item) -> bool:
        return item in self._index

    def __iter__(self) -> Iterator[Item]:
        return iter(self._items)
