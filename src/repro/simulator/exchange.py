"""Partnership dynamics and per-round block exchange.

The simulator advances in fixed exchange rounds (default 600 s).  Within
a round, every viewer spreads its demand across its active suppliers
(respecting UUSee's block scheduling, which requests different blocks
from different partners — modelled as a per-link request cap), and every
supplier divides its upload capacity among requesters, preferring mutual
exchangers.  Between rounds, maintenance ticks implement the protocol's
control plane: dead-partner cleanup, idle-connection pruning, partner
recommendation gossip, capacity volunteering, supplier refinement, and
last-resort tracker refresh.

Everything the paper measures emerges here:

- indegree ~= demand / per-link-achieved-rate, spiking near 10 and cut
  off near demand / min-useful-rate ~= 23 (Fig. 4(B));
- outdegree follows upload capacity heterogeneity (Fig. 4(C));
- intra-ISP links win selection because the network model gives them
  higher throughput (Fig. 6);
- gossip creates triadic closure, hence clustering (Fig. 7);
- the reciprocation preference plus mutual usefulness creates bilateral
  active links (Fig. 8).
"""

from __future__ import annotations

import math
import random
from collections.abc import Callable
from dataclasses import dataclass, field
from typing import NamedTuple

from repro.network.latency import LatencyModel
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.overlay import PartnerPolicy, build_policy
from repro.simulator.channel import ChannelCatalogue
from repro.simulator.failures import FaultPlan, OutageSchedule
from repro.simulator.peer import Link, Peer
from repro.simulator.protocol import ProtocolConfig, SelectionPolicy
from repro.simulator.tracker import Tracker
from repro.traces.records import PeerReport
from repro.traces.reporter import build_report


@dataclass
class RoundStats:
    """Aggregate outcome of one exchange round (for tests/monitoring)."""

    time: float = 0.0
    viewers: int = 0
    total_received_kbps: float = 0.0
    satisfied: int = 0  # viewers receiving >= 90% of the stream rate
    per_channel_viewers: dict[int, int] = field(default_factory=dict)
    per_channel_satisfied: dict[int, int] = field(default_factory=dict)
    #: Block-transfer allocations made this round (supplier->requester
    #: pairs that moved data); counted inline so the hot loop never pays
    #: an observability call.
    transfers: int = 0

    def satisfied_fraction(self, channel_id: int | None = None) -> float:
        if channel_id is None:
            return self.satisfied / self.viewers if self.viewers else 0.0
        viewers = self.per_channel_viewers.get(channel_id, 0)
        if not viewers:
            return 0.0
        return self.per_channel_satisfied.get(channel_id, 0) / viewers


class ChannelConsts(NamedTuple):
    """Per-channel protocol constants, derived once instead of per call.

    Every float here is computed with exactly the expression the call
    sites used inline, so cached and uncached runs are bit-identical.
    """

    rate_kbps: float
    request_cap: float  # cfg.request_cap_kbps(rate)
    demand: float  # cfg.demand_kbps(rate)
    demand_standby: float  # demand * cfg.standby_surplus
    cap06: float  # 0.6 * request_cap
    neutral_hi: float  # max(cap06, cfg.min_useful_link_kbps)


class ExchangeEngine:
    """Implements partnerships, selection, ticks and exchange rounds."""

    def __init__(
        self,
        *,
        peers: dict[int, Peer],
        catalogue: ChannelCatalogue,
        tracker: Tracker,
        latency: LatencyModel,
        config: ProtocolConfig,
        policy: SelectionPolicy = SelectionPolicy.UUSEE,
        seed: int = 0,
        outages: OutageSchedule | None = None,
        faults: FaultPlan | None = None,
        obs: AnyObserver = NULL_OBSERVER,
        partner_policy: PartnerPolicy | None = None,
    ) -> None:
        self.peers = peers
        self.catalogue = catalogue
        self.tracker = tracker
        self.latency = latency
        self.config = config
        self.policy = policy
        self.obs = obs
        if faults is None:
            faults = FaultPlan(outages=outages or OutageSchedule())
        elif outages is not None:
            faults = faults.merged_with_outages(outages)
        self.faults = faults
        self.outages = self.faults.outages
        self.rng = random.Random(seed)
        # Selection decisions are delegated to a PartnerPolicy
        # (repro.overlay).  The default is built from the legacy enum so
        # direct-engine construction keeps working; legacy policies share
        # self.rng and reproduce the pre-extraction draws bit-for-bit.
        if partner_policy is None:
            partner_policy = build_policy(policy.value, seed=seed)
        self.partner_policy = partner_policy
        partner_policy.bind(self)
        #: Simulated time of the engine's latest entry point; structured
        #: policies timestamp the links they materialise with it.
        self.clock = 0.0
        # links are mutual; last_active is tracked via Link.established_at
        # updates inside _record_transfer.
        # Per-channel derived constants (request cap, demand budget,
        # fresh-link floors) are computed once instead of in every hot
        # call; anything that changes a channel's rate or the protocol
        # config mid-run must call ``invalidate_channel_consts``.
        self._channel_consts: dict[int, ChannelConsts] = {}

    def invalidate_channel_consts(self, channel_id: int | None = None) -> None:
        """Drop cached per-channel constants after a config change.

        Must be called whenever a channel's rate or any protocol-config
        field feeding :class:`ChannelConsts` changes mid-campaign —
        otherwise the engine keeps allocating against stale demand and
        request-cap values.  ``None`` invalidates every channel.
        """
        if channel_id is None:
            self._channel_consts.clear()
        else:
            self._channel_consts.pop(channel_id, None)

    # -- engine-specific peer representation hooks ---------------------------
    #
    # The object backend stores protocol state directly on Peer/Link, so
    # these are identities; the SoA backend overrides them to move state
    # into flat arrays (and back) at admission/departure/restore edges.

    def adopt_peer(self, peer: Peer) -> Peer:
        """Convert a freshly built peer into this engine's representation."""
        return peer

    def release_peer(self, peer: Peer) -> None:
        """Reclaim engine resources for a departed/crashed peer."""

    def adopt_restored(self) -> None:
        """Rebuild engine state after ``self.peers`` was checkpoint-restored."""

    def _consts(self, channel_id: int) -> ChannelConsts:
        """Cached per-channel protocol constants."""
        consts = self._channel_consts.get(channel_id)
        if consts is None:
            cfg = self.config
            rate = self.catalogue.get(channel_id).rate_kbps
            cap = cfg.request_cap_kbps(rate)
            cap06 = 0.6 * cap
            consts = ChannelConsts(
                rate_kbps=rate,
                request_cap=cap,
                demand=cfg.demand_kbps(rate),
                demand_standby=cfg.demand_kbps(rate) * cfg.standby_surplus,
                cap06=cap06,
                neutral_hi=max(cap06, cfg.min_useful_link_kbps),
            )
            self._channel_consts[channel_id] = consts
        return consts

    # -- partnership management ---------------------------------------------

    def connect(self, a: Peer, b: Peer, now: float) -> bool:
        """Establish a mutual partnership; False if refused or duplicate.

        The callee refuses when its partner list is full (servers have a
        higher ceiling since they exist to accept connections).
        """
        if a.peer_id == b.peer_id:
            return False
        if b.peer_id in a.partners:
            return False
        if self.faults.has_link_faults and self.faults.link_blocked(
            a.isp, b.isp, now
        ):
            self.obs.count("faults.link_blocked")
            return False  # TCP handshake cannot cross the partition
        limit_b = self.config.max_partners * (4 if b.is_server else 1)
        if len(b.partners) >= limit_b:
            return False
        if len(a.partners) >= self.config.max_partners:
            return False
        quality = self.latency.sample_link(
            a.isp, b.isp, a_china=a.is_china, b_china=b.is_china
        )
        link_ab = Link(
            quality.rtt_ms,
            quality.throughput_kbps,
            established_at=now,
            partner_ip=b.ip,
        )
        link_ba = Link(
            quality.rtt_ms,
            quality.throughput_kbps,
            established_at=now,
            partner_ip=a.ip,
        )
        # Conservative initial throughput estimate: a fresh link must rank
        # *below* proven-good links (else the steady inbound-partner churn
        # makes request priority thrash across unproven links every round),
        # but high enough to be tried when proven links under-deliver.
        # ... and never below the useful-link floor: the demand budget
        # counts every supplier as contributing at least min_useful, so
        # starting fresh links lower would make peers over-provision past
        # the Fig. 4(B) indegree ceiling.
        neutral = min(
            self._consts(a.channel_id).neutral_hi,
            quality.throughput_kbps * 0.5,
        )
        link_ab.est_kbps = neutral
        link_ba.est_kbps = neutral
        a.add_partner(b.peer_id, link_ab)
        b.add_partner(a.peer_id, link_ba)
        self.obs.count("exchange.connects")
        return True

    def disconnect(self, a: Peer, partner_id: int) -> None:
        """Tear down both ends of a partnership (if the partner is alive)."""
        self.obs.count("exchange.disconnects")
        a.remove_partner(partner_id)
        other = self.peers.get(partner_id)
        if other is not None:
            other.remove_partner(a.peer_id)

    def bootstrap_peer(self, peer: Peer, now: float) -> int:
        """Tracker bootstrap + initial supplier selection; returns #partners."""
        self.clock = now
        candidate_ids = self.tracker.bootstrap(
            peer.channel_id, peer.peer_id, self.config.bootstrap_partners
        )
        connected = 0
        for pid in candidate_ids:
            other = self.peers.get(pid)
            if other is None:
                # Stale entry: the peer crashed without a goodbye.  The
                # failed connection attempt is how the tracker learns.
                self.tracker.unregister(peer.channel_id, pid)
                continue
            if self.connect(peer, other, now):
                connected += 1
        self.select_suppliers(peer)
        return connected

    # -- tracker contact with bounded exponential backoff ---------------------

    def _tracker_reachable(self, now: float) -> bool:
        """Whether one tracker request gets through right now.

        Full capacity and full outage short-circuit without consuming
        randomness, so fault-free runs keep their exact random streams.
        """
        capacity = self.faults.tracker_capacity(now)
        if capacity >= 1.0:
            return True
        if capacity <= 0.0:
            return False
        return self.rng.random() < capacity

    def _schedule_tracker_retry(self, peer: Peer, now: float) -> None:
        """Back off exponentially (bounded) before the next tracker try."""
        cfg = self.config
        delay = min(
            cfg.tracker_retry_base_s * (2.0 ** peer.tracker_failures),
            cfg.tracker_retry_cap_s,
        )
        if cfg.tracker_retry_jitter > 0.0:
            delay *= 1.0 + cfg.tracker_retry_jitter * self.rng.random()
        peer.tracker_failures += 1
        peer.next_tracker_retry = now + delay

    def tracker_contact(self, peer: Peer, now: float) -> bool:
        """One tracker request: register+bootstrap, or refresh partners.

        On failure (outage or brownout drop) the peer schedules a
        bounded-exponential-backoff retry instead of starving silently;
        ``maintenance_tick`` fires the retry when it comes due.
        """
        self.clock = now
        if not self._tracker_reachable(now):
            self._schedule_tracker_retry(peer, now)
            self.obs.count("faults.tracker_unreachable")
            return False
        self.obs.count("exchange.tracker_contacts")
        peer.tracker_failures = 0
        peer.next_tracker_retry = math.inf
        if not peer.registered:
            peer.registered = True
            self.tracker.register(peer.channel_id, peer.peer_id)
            self.bootstrap_peer(peer, now)
            return True
        want = self.config.bootstrap_partners - len(peer.partners)
        if want > 0:
            for pid in self.tracker.refresh(peer.channel_id, peer.peer_id, want):
                other = self.peers.get(pid)
                if other is None:
                    self.tracker.unregister(peer.channel_id, pid)
                else:
                    self.connect(peer, other, now)
            self.select_suppliers(peer)
        return True

    # -- supplier selection ---------------------------------------------------

    def _expected_link_rate(self, link: Link, cap_kbps: float) -> float:
        return min(link.est_kbps, cap_kbps)

    @staticmethod
    def _rtt_penalty(rtt_ms: float) -> float:
        """Quadratic RTT penalty: UUSee measures round-trip delay per
        connection and strongly prefers nearby (in practice intra-ISP)
        partners; block requests over high-RTT paths also pipeline badly.

        Hot paths read the precomputed ``Link.penalty`` (same formula,
        fixed at link establishment) instead of calling this.
        """
        return 1.0 + (rtt_ms / 60.0) ** 2

    def _candidate_score(self, peer: Peer, pid: int, link: Link) -> float:
        score: float = self.partner_policy.candidate_score(peer, pid, link)
        return score

    def select_suppliers(self, peer: Peer) -> None:
        """(Re)build the active supplier set from the partner list.

        Delegates to the bound :class:`~repro.overlay.PartnerPolicy`;
        the default ``uusee`` policy reproduces the pre-extraction
        greedy loop draw-for-draw.
        """
        self.partner_policy.select_suppliers(peer)

    def refine_suppliers(self, peer: Peer, *, sample_size: int = 10) -> None:
        """Incremental improvement: drop useless suppliers, try new ones.

        Cheaper than full reselection and closer to how a running client
        behaves; delegated to the bound policy (structured overlays
        re-derive the supplier set from their topology instead).
        """
        self.partner_policy.refine_suppliers(peer, sample_size=sample_size)

    # -- maintenance tick -------------------------------------------------------

    def maintenance_tick(self, peer: Peer, now: float) -> None:
        """Control-plane work a client does every few minutes."""
        cfg = self.config
        self.clock = now
        if peer.next_tracker_retry <= now:
            self.tracker_contact(peer, now)
        self._clean_dead_partners(peer)
        self._recover_estimates(peer)
        self._prune_idle_partners(peer, now)
        self._gossip(peer, now)
        self.refine_suppliers(peer)
        self._update_volunteering(peer, now)
        self._starvation_check(peer, now)
        peer.last_tick = now

    def _clean_dead_partners(self, peer: Peer) -> None:
        dead = [pid for pid in peer.partners if pid not in self.peers]
        for pid in dead:
            peer.remove_partner(pid)

    def _recover_estimates(self, peer: Peer) -> None:
        """Let idle links' estimates drift back toward the request cap.

        Peers exchange buffer maps with all partners periodically, so a
        link that was measured slow while its supplier was overloaded is
        eventually re-probed.  Without recovery, a transiently congested
        supplier would never be tried again even after it drained.
        """
        cap06 = self._consts(peer.channel_id).cap06
        for link in peer.partners.values():
            # recover only to the conservative fresh-link level: a link
            # must re-earn a top rank through measured delivery
            target = min(cap06, 0.7 * link.cap_kbps)
            if link.est_kbps < target:
                link.est_kbps += 0.2 * (target - link.est_kbps)

    def _prune_idle_partners(self, peer: Peer, now: float) -> None:
        """Close TCP connections with no segment flow for a while.

        This is what keeps partner counts near the *active* mesh size
        (the paper's Fig. 4(A) spike at 10-25, far below the initial 50):
        bootstrap and gossip fan out optimistically, and idle links decay.
        """
        idle_timeout = 1.5 * self.config.report_interval_s
        victims = []
        for pid, link in peer.partners.items():
            if pid in peer.suppliers:
                continue
            if now - link.established_at > idle_timeout:
                victims.append(pid)
        for pid in victims:
            self.disconnect(peer, pid)

    def _gossip(self, peer: Peer, now: float) -> None:
        """Ask one partner for recommendations (triadic closure)."""
        if not peer.partners or peer.is_server:
            return
        alive_partners = [
            pid for pid in peer.partners if pid in self.peers
        ]
        if not alive_partners:
            return
        helper_id = self.rng.choice(alive_partners)
        helper = self.peers[helper_id]
        their_ids = [
            pid
            for pid in helper.partners
            if pid != peer.peer_id and pid not in peer.partners and pid in self.peers
        ]
        if not their_ids:
            return
        # The helper recommends the partners most likely to be able to
        # assist (paper Sec. 3.1): in practice its own best-RTT partners,
        # which are largely in its own ISP — recommendations therefore
        # propagate intra-ISP structure and close triangles.
        k = min(self.config.gossip_fanout, len(their_ids))
        pool = (
            self.rng.sample(their_ids, min(2 * k, len(their_ids)))
            if len(their_ids) > 2 * k
            else their_ids
        )
        pool = self.partner_policy.order_gossip_pool(helper, pool)
        for pid in pool[:k]:
            other = self.peers.get(pid)
            if other is not None and not other.is_server:
                self.connect(peer, other, now)

    def _update_volunteering(self, peer: Peer, now: float = 0.0) -> None:
        """Inform the tracker when sending throughput is below capacity.

        Per the paper this depends only on spare upload capacity; what a
        low-buffer peer can actually serve is limited separately by its
        content availability (see ``_content_factor``).
        """
        if not self._tracker_reachable(now):
            return  # request lost (outage or brownout); try next tick
        spare = peer.spare_upload_kbps()
        threshold = self.config.volunteer_spare_fraction * peer.upload_kbps
        should = spare >= threshold
        if should:
            # Re-asserted every tick: the tracker de-lists volunteers once
            # their handout budget is consumed, and re-volunteering resets it.
            self.tracker.volunteer(peer.channel_id, peer.peer_id)
            peer.volunteered = True
        elif peer.volunteered:
            self.tracker.unvolunteer(peer.channel_id, peer.peer_id)
            peer.volunteered = False

    def _starvation_check(self, peer: Peer, now: float = 0.0) -> None:
        """Last resort: re-contact the tracker after sustained starvation."""
        if peer.is_server:
            return
        if peer.health < self.config.starvation_health:
            peer.starving_ticks += 1
        else:
            peer.starving_ticks = 0
            return
        if peer.starving_ticks >= self.config.starvation_ticks:
            if peer.next_tracker_retry < math.inf:
                return  # a backoff retry is already scheduled
            if self.tracker_contact(peer, now):
                peer.starving_ticks = 0

    # -- exchange round -------------------------------------------------------

    def run_round(self, now: float, duration: float) -> RoundStats:
        """One exchange round: demand spreading, allocation, accounting."""
        cfg = self.config
        stats = RoundStats(time=now)
        self.clock = now

        # Pass 1: each viewer requests from its suppliers.
        # Request priority follows the selection score (measured
        # throughput discounted by RTT): low-RTT — in practice
        # intra-ISP — links are drawn on first, so they are the ones
        # that become *active*, exactly the paper's explanation of
        # ISP clustering (Sec. 4.2.3).  The RANDOM ablation removes
        # the bias here too (stable pseudo-random order per link).
        blind = self.partner_policy.blind_requests
        link_faults = self.faults.has_link_faults
        min_useful = cfg.min_useful_link_kbps
        peers = self.peers
        requests: dict[int, list[tuple[Peer, Link, float]]] = {}
        for peer in peers.values():
            if peer.is_server:
                continue
            consts = self._consts(peer.channel_id)
            cap = consts.request_cap
            remaining = consts.demand
            dead: list[int] = []
            supplier_links: list[tuple[float, int, Link]] = []
            partners_get = peer.partners.get
            for pid in peer.suppliers:
                link = partners_get(pid)
                if link is None or pid not in peers:
                    dead.append(pid)
                    continue
                if link_faults and self.faults.link_blocked(
                    peer.isp, peers[pid].isp, now
                ):
                    continue  # partitioned away this round; keep the link
                if blind:
                    priority = float(hash((peer.peer_id, pid)) % 1_000_003)
                else:
                    priority = link.est_kbps / link.penalty
                supplier_links.append((priority, pid, link))
            for pid in dead:
                peer.suppliers.discard(pid)
            supplier_links.sort(key=lambda t: (-t[0], t[1]))
            for _, pid, link in supplier_links:
                if remaining <= 0.0:
                    break
                req = min(cap, link.cap_kbps, remaining)
                if req <= 0.0:
                    continue
                requests.setdefault(pid, []).append((peer, link, req))
                # Budget against the *measured* delivery estimate (floored
                # at the useful minimum), not the optimistic request: a
                # peer whose suppliers under-deliver keeps asking further
                # suppliers, up to demand / min_useful ~= 23 of them — the
                # emergent indegree ceiling of Fig. 4(B).
                est = link.est_kbps
                budget = est if est > min_useful else min_useful
                remaining -= req if req < budget else budget

        # Pass 2: suppliers allocate capacity, preferring mutual exchangers.
        bonus1 = 1.0 + cfg.reciprocation_bonus
        received: dict[int, float] = {}
        for supplier_id, reqs in requests.items():
            supplier = peers.get(supplier_id)
            if supplier is None:
                continue
            supplier_suppliers = supplier.suppliers
            weights: list[float] = []
            for requester, _, req in reqs:
                weights.append(
                    req * bonus1
                    if requester.peer_id in supplier_suppliers
                    else req
                )
            total_weighted = sum(weights)
            total_requested = sum(req for _, _, req in reqs)
            if supplier.is_server:
                # Origin capacity scales with outages/brownouts: 0 while
                # offline, fractional while degraded, full otherwise.
                capacity = (
                    supplier.upload_kbps
                    * self._content_factor(supplier)
                    * self.faults.server_capacity(now)
                )
            else:
                capacity = supplier.upload_kbps * self._content_factor(supplier)
            sent_total = 0.0
            if total_requested <= capacity:
                scale = 1.0
            else:
                scale = capacity / total_weighted if total_weighted else 0.0
            degraded = self.faults.has_link_faults and bool(self.faults.degradations)
            for (requester, link, req), weight in zip(reqs, weights):
                achieved = req if total_requested <= capacity else min(
                    req, weight * scale
                )
                if degraded:
                    achieved *= self.faults.link_factor(
                        supplier.isp, requester.isp, now
                    )
                if achieved <= 0.0:
                    continue
                self._record_transfer(
                    supplier, requester, link, achieved, duration, now
                )
                stats.transfers += 1
                sent_total += achieved
                received[requester.peer_id] = (
                    received.get(requester.peer_id, 0.0) + achieved
                )
            supplier.sent_rate_kbps = sent_total

        # Suppliers with no requests this round sent nothing.
        for peer in peers.values():
            if peer.peer_id not in requests:
                peer.sent_rate_kbps = 0.0

        # Pass 3: viewer-side accounting (health, buffer, depth, stats).
        hs = cfg.health_smoothing
        one_minus_hs = 1.0 - hs
        window_s = 120.0 * cfg.segment_seconds
        segments_advanced = int(duration / cfg.segment_seconds)
        received_get = received.get
        for peer in peers.values():
            if peer.is_server:
                continue
            rate = self._consts(peer.channel_id).rate_kbps
            got = received_get(peer.peer_id, 0.0)
            peer.recv_rate_kbps = got
            ratio = min(1.0, got / rate) if rate else 0.0
            peer.health = one_minus_hs * peer.health + hs * ratio
            peer.buffer_fill = min(
                1.0,
                max(0.0, peer.buffer_fill + (got - rate) * duration / (rate * window_s)),
            )
            peer.playback_position += segments_advanced
            self._update_depth(peer)
            stats.viewers += 1
            stats.total_received_kbps += got
            stats.per_channel_viewers[peer.channel_id] = (
                stats.per_channel_viewers.get(peer.channel_id, 0) + 1
            )
            if got >= 0.9 * rate:
                stats.satisfied += 1
                stats.per_channel_satisfied[peer.channel_id] = (
                    stats.per_channel_satisfied.get(peer.channel_id, 0) + 1
                )
        return stats

    # -- measurement ----------------------------------------------------------

    def emit_reports(
        self,
        cutoff: float,
        interval: float,
        receive: Callable[[PeerReport], bool],
    ) -> None:
        """Emit every report due strictly before ``cutoff``.

        A report due exactly at the round boundary belongs to the next
        round, which keeps the emitted trace non-decreasing across
        report windows.  Report order — peers in dict order, a peer's
        due reports in time order — is part of the draw contract: the
        trace server consumes one loss draw per report.
        """
        for peer in self.peers.values():
            if peer.is_server:
                continue
            while peer.next_report < cutoff:
                receive(build_report(peer, peer.next_report))
                peer.next_report += interval

    @staticmethod
    def _content_factor(supplier: Peer) -> float:
        """How much of its upload a peer can usefully serve.

        A peer whose own playback is healthy holds (and keeps refreshing)
        essentially the whole sliding window, so nearly all its capacity
        is useful to partners; a starving peer has little to offer.
        Servers always hold the full window.
        """
        if supplier.is_server:
            return 1.0
        return 0.30 + 0.70 * supplier.health

    def _record_transfer(
        self,
        supplier: Peer,
        requester: Peer,
        requester_link: Link,
        rate_kbps: float,
        duration: float,
        now: float,
    ) -> None:
        cfg = self.config
        stream_rate = self._consts(requester.channel_id).rate_kbps
        segment_kbit = stream_rate * cfg.segment_seconds
        segments = rate_kbps * duration / segment_kbit
        requester_link.recv_segments += segments
        requester_link.observe_throughput(rate_kbps, cfg.estimate_smoothing)
        requester_link.established_at = now  # carries 'last active' forward
        supplier_link = supplier.partners.get(requester.peer_id)
        if supplier_link is not None:
            supplier_link.sent_segments += segments
            supplier_link.established_at = now

    def _update_depth(self, peer: Peer) -> None:
        best = 64
        for pid in peer.suppliers:
            other = self.peers.get(pid)
            if other is not None and other.depth + 1 < best:
                best = other.depth + 1
        peer.depth = best
