"""UUSee protocol parameters (paper Sec. 3.1) and selection policies.

Only the starred constants are stated in the paper; the rest are tuning
knobs of the reconstruction, each documented with the behaviour it
controls.  DESIGN.md records which figure each knob influences.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class SelectionPolicy(enum.Enum):
    """How peers pick active supplying partners.

    UUSEE — measured-quality greedy selection with a reciprocation
    preference (the real protocol, per the paper).
    RANDOM — uniform choice among partners; ablation that should destroy
    ISP clustering (DESIGN.md Sec. 4).
    TREE — only partners strictly closer to the streaming server may
    supply; ablation that should drive edge reciprocity negative.
    """

    UUSEE = "uusee"
    RANDOM = "random"
    TREE = "tree"


@dataclass(frozen=True)
class ProtocolConfig:
    """All protocol constants, with paper-stated values starred."""

    # -- partnership ------------------------------------------------------
    bootstrap_partners: int = 50  # * initial partner set 'up to 50'
    max_partners: int = 150  # partner list capacity
    gossip_interval_s: float = 300.0  # maintenance tick period
    gossip_fanout: int = 8  # partners recommended per exchange

    # -- active supplier selection ----------------------------------------
    max_active_suppliers: int = 30  # * 'selects around 30 most suitable'
    demand_surplus: float = 1.15  # request rate = surplus * stream rate
    standby_surplus: float = 1.6  # selection over-provisions; extra links
    #   are standby: requested only when better links under-deliver, so
    #   the *active* indegree stays near demand / per-link rate (~10).
    per_link_request_cap_fraction: float = 0.15  # block spread across links
    min_useful_link_kbps: float = 20.0  # below this, a supplier is dropped
    reciprocation_bonus: float = 0.8  # score boost for mutual exchange
    estimate_smoothing: float = 0.7  # EWMA for measured link throughput

    # -- reporting (the measurement methodology, Sec. 3.2) -----------------
    first_report_delay_s: float = 1_200.0  # * first report after 20 min
    report_interval_s: float = 600.0  # * then once every 10 min
    active_partner_segments: int = 10  # * active-link threshold

    # -- volunteering and last-resort tracker contact ----------------------
    volunteer_spare_fraction: float = 0.35  # spare upload to volunteer;
    #   a high bar concentrates volunteering on high-capacity peers, which
    #   become the partner-list hubs behind Fig. 4(A)'s heavy tail.
    starvation_health: float = 0.85  # health below this is 'starving'
    starvation_ticks: int = 2  # sustained ticks before tracker re-contact

    # -- tracker-contact retry (fault tolerance) ----------------------------
    #: When a tracker request fails (outage or brownout), the client
    #: retries with exponential backoff: base * 2^failures seconds, capped,
    #: plus uniform jitter to de-synchronise the retry herd.
    tracker_retry_base_s: float = 300.0
    tracker_retry_cap_s: float = 3_600.0
    tracker_retry_jitter: float = 0.1  # extra delay: U(0, jitter) fraction

    # -- media / rounds -----------------------------------------------------
    segment_seconds: float = 1.0  # one media segment = 1 s of stream
    round_seconds: float = 600.0  # exchange-round aggregation step
    health_smoothing: float = 0.4  # EWMA for playback health

    def request_cap_kbps(self, stream_rate_kbps: float) -> float:
        """Maximum rate requested from one supplier."""
        return self.per_link_request_cap_fraction * stream_rate_kbps

    def demand_kbps(self, stream_rate_kbps: float) -> float:
        """Total download rate a peer tries to line up."""
        return self.demand_surplus * stream_rate_kbps

    def indegree_ceiling(self, stream_rate_kbps: float) -> float:
        """Emergent indegree cut-off: demand / weakest useful link.

        With default constants this is 1.15 * 400 / 20 = 23 — the abrupt
        drop the paper observes in Fig. 4(B).
        """
        return self.demand_kbps(stream_rate_kbps) / self.min_useful_link_kbps
