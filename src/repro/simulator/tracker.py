"""Tracking server (paper Sec. 3.1).

The tracker keeps, per channel, the set of registered peers and the
subset that has volunteered spare upload capacity.  New peers are
bootstrapped with up to ``bootstrap_partners`` peers *randomly selected
from the volunteer list* (exactly the paper's description), and peers
whose playback cannot be sustained re-contact the tracker for more
partners as a last resort.
"""

from __future__ import annotations

import random

from repro.simulator.util import SampleableSet


class Tracker:
    """Central peer registry with per-channel volunteer lists."""

    def __init__(
        self,
        *,
        seed: int = 0,
        server_probability: float = 0.25,
        handout_limit: int = 12,
    ) -> None:
        """``handout_limit``: how many times a volunteer may be handed to
        new peers before the tracker considers its spare capacity consumed
        and de-lists it (it re-volunteers at its next maintenance tick if
        capacity is still spare).  This throttles the inbound-connection
        rate at popular volunteers."""
        self._members: dict[int, SampleableSet] = {}
        self._volunteers: dict[int, SampleableSet] = {}
        self._servers: dict[int, list[int]] = {}
        self._handouts: dict[int, dict[int, int]] = {}
        self._rng = random.Random(seed)
        self.server_probability = server_probability
        self.handout_limit = handout_limit
        self.bootstrap_requests = 0
        self.refresh_requests = 0

    # -- registration ------------------------------------------------------

    def add_server(self, channel_id: int, server_peer_id: int) -> None:
        """Register a streaming server for a channel."""
        self._servers.setdefault(channel_id, []).append(server_peer_id)
        self._ensure_channel(channel_id)

    def register(self, channel_id: int, peer_id: int) -> None:
        """Record ``peer_id`` as a member of the channel."""
        self._ensure_channel(channel_id)
        self._members[channel_id].add(peer_id)

    def unregister(self, channel_id: int, peer_id: int) -> None:
        """Remove a departed peer from membership and volunteer lists."""
        if channel_id in self._members:
            self._members[channel_id].discard(peer_id)
            self._volunteers[channel_id].discard(peer_id)

    def volunteer(self, channel_id: int, peer_id: int) -> None:
        """Peer reports spare upload capacity and accepts new connections.

        Idempotent; also resets the peer's handout budget, so peers that
        keep having spare capacity keep getting advertised.
        """
        self._ensure_channel(channel_id)
        self._volunteers[channel_id].add(peer_id)
        self._handouts[channel_id][peer_id] = 0

    def unvolunteer(self, channel_id: int, peer_id: int) -> None:
        """Withdraw a peer from the volunteer list."""
        if channel_id in self._volunteers:
            self._volunteers[channel_id].discard(peer_id)
            self._handouts[channel_id].pop(peer_id, None)

    # -- queries -------------------------------------------------------------

    def member_count(self, channel_id: int) -> int:
        """Registered peers in the channel."""
        return len(self._members.get(channel_id, ()))

    def volunteer_count(self, channel_id: int) -> int:
        """Currently listed volunteers in the channel."""
        return len(self._volunteers.get(channel_id, ()))

    def bootstrap(
        self, channel_id: int, peer_id: int, count: int
    ) -> list[int]:
        """Initial partner set: random volunteers, maybe plus a server."""
        self.bootstrap_requests += 1
        return self._partners_for(channel_id, peer_id, count, include_server=True)

    def refresh(self, channel_id: int, peer_id: int, count: int) -> list[int]:
        """Last-resort additional partners for a starving peer."""
        self.refresh_requests += 1
        return self._partners_for(channel_id, peer_id, count, include_server=False)

    # -- internals -----------------------------------------------------------

    def _ensure_channel(self, channel_id: int) -> None:
        if channel_id not in self._members:
            self._members[channel_id] = SampleableSet()
            self._volunteers[channel_id] = SampleableSet()
            self._handouts[channel_id] = {}

    def _partners_for(
        self, channel_id: int, peer_id: int, count: int, *, include_server: bool
    ) -> list[int]:
        self._ensure_channel(channel_id)
        volunteers = self._volunteers[channel_id]
        picked = volunteers.sample(self._rng, count, exclude=peer_id)
        handouts = self._handouts[channel_id]
        servers = set(self._servers.get(channel_id, ()))
        for pid in picked:
            if pid in servers:
                continue
            handouts[pid] = handouts.get(pid, 0) + 1
            if handouts[pid] >= self.handout_limit:
                volunteers.discard(pid)
                handouts.pop(pid, None)
        if include_server:
            servers = self._servers.get(channel_id, [])
            if servers and self._rng.random() < self.server_probability:
                server = servers[self._rng.randrange(len(servers))]
                if server not in picked:
                    picked.append(server)
        return picked


class TrackerPool:
    """Several tracking servers sharing the load (paper Sec. 3.1).

    UUSee deploys multiple tracking servers; each peer talks to one of
    them.  Peers are assigned a home tracker by id, so every tracker
    sees (and hands out) only its own partition of the volunteer
    population — new peers therefore bootstrap from a subset of the
    network, exactly the partial-view effect a tracker farm has.
    Streaming servers are registered with every tracker.
    """

    def __init__(
        self,
        num_trackers: int,
        *,
        seed: int = 0,
        server_probability: float = 0.25,
        handout_limit: int = 12,
    ) -> None:
        if num_trackers < 1:
            raise ValueError("need at least one tracker")
        rng = random.Random(seed)
        self._trackers = [
            Tracker(
                seed=rng.randrange(2**62),
                server_probability=server_probability,
                handout_limit=handout_limit,
            )
            for _ in range(num_trackers)
        ]

    def __len__(self) -> int:
        return len(self._trackers)

    def _home(self, peer_id: int) -> Tracker:
        return self._trackers[peer_id % len(self._trackers)]

    # -- same interface as Tracker ------------------------------------------

    def add_server(self, channel_id: int, server_peer_id: int) -> None:
        """Register a streaming server with every tracker in the pool."""
        for tracker in self._trackers:
            tracker.add_server(channel_id, server_peer_id)

    def register(self, channel_id: int, peer_id: int) -> None:
        """Register the peer with its home tracker."""
        self._home(peer_id).register(channel_id, peer_id)

    def unregister(self, channel_id: int, peer_id: int) -> None:
        """Remove the peer from its home tracker."""
        self._home(peer_id).unregister(channel_id, peer_id)

    def volunteer(self, channel_id: int, peer_id: int) -> None:
        """List the peer as a volunteer on its home tracker."""
        self._home(peer_id).volunteer(channel_id, peer_id)

    def unvolunteer(self, channel_id: int, peer_id: int) -> None:
        """De-list the peer on its home tracker."""
        self._home(peer_id).unvolunteer(channel_id, peer_id)

    def bootstrap(self, channel_id: int, peer_id: int, count: int) -> list[int]:
        """Initial partners from the peer's home tracker's partition."""
        return self._home(peer_id).bootstrap(channel_id, peer_id, count)

    def refresh(self, channel_id: int, peer_id: int, count: int) -> list[int]:
        """Last-resort partners from the home tracker's partition."""
        return self._home(peer_id).refresh(channel_id, peer_id, count)

    def member_count(self, channel_id: int) -> int:
        """Members across all trackers."""
        return sum(t.member_count(channel_id) for t in self._trackers)

    def volunteer_count(self, channel_id: int) -> int:
        """Volunteers across all trackers."""
        return sum(t.volunteer_count(channel_id) for t in self._trackers)

    @property
    def bootstrap_requests(self) -> int:
        """Bootstrap requests served across all trackers."""
        return sum(t.bootstrap_requests for t in self._trackers)

    @property
    def refresh_requests(self) -> int:
        """Refresh requests served across all trackers."""
        return sum(t.refresh_requests for t in self._trackers)
