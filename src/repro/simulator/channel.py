"""Channel catalogue and popularity (paper Secs. 3.1, 4.1.3).

UUSee broadcasts over 800 channels at ~400 Kbps; the paper's per-channel
analysis uses CCTV1 and CCTV4, whose concurrent viewerships differ by a
factor of five (~30k vs ~6k, i.e. ~30% and ~6% of ~100k total).  The
scaled catalogue keeps those two anchor channels at their paper shares
and spreads the remainder across a Zipf-like tail.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class Channel:
    """One live channel."""

    channel_id: int
    name: str
    rate_kbps: float
    share: float  # fraction of the viewer population


class ChannelCatalogue:
    """Popularity-weighted channel sampler."""

    def __init__(self, channels: list[Channel]) -> None:
        if not channels:
            raise ValueError("catalogue cannot be empty")
        total = sum(c.share for c in channels)
        if abs(total - 1.0) > 1e-6:
            raise ValueError(f"channel shares must sum to 1, got {total}")
        ids = [c.channel_id for c in channels]
        if len(set(ids)) != len(ids):
            raise ValueError("duplicate channel ids")
        self._channels = list(channels)
        self._by_id = {c.channel_id: c for c in channels}
        self._cumulative: list[float] = []
        acc = 0.0
        for c in channels:
            acc += c.share
            self._cumulative.append(acc)

    def __len__(self) -> int:
        return len(self._channels)

    def __iter__(self):
        return iter(self._channels)

    def get(self, channel_id: int) -> Channel:
        """Channel by id; raises ``KeyError`` if unknown."""
        return self._by_id[channel_id]

    def by_name(self, name: str) -> Channel:
        """Channel by name; raises ``KeyError`` if unknown."""
        for c in self._channels:
            if c.name == name:
                return c
        raise KeyError(name)

    def sample(self, rng: random.Random) -> Channel:
        """Draw a channel proportionally to share."""
        u = rng.random()
        for c, edge in zip(self._channels, self._cumulative):
            if u <= edge:
                return c
        return self._channels[-1]


def default_catalogue(*, rate_kbps: float = 400.0) -> ChannelCatalogue:
    """Eight channels: CCTV1 (30%), CCTV4 (6%), and a Zipf-ish tail."""
    tail_shares = [0.22, 0.14, 0.11, 0.08, 0.055, 0.035]
    channels = [
        Channel(0, "CCTV1", rate_kbps, 0.30),
        Channel(1, "CCTV4", rate_kbps, 0.06),
    ]
    channels += [
        Channel(i + 2, f"CH{i + 2}", rate_kbps, share)
        for i, share in enumerate(tail_shares)
    ]
    return ChannelCatalogue(channels)
