"""Top-level UUSee deployment: network + workload + protocol + tracing.

``UUSeeSystem`` owns every component — ISP address plan, latency and
bandwidth models, channel catalogue, tracker, streaming servers, the
exchange engine, the arrival/churn workload and the trace server — and
advances them in fixed exchange rounds on the discrete-event engine.

Typical use::

    config = SystemConfig(base_concurrency=800, seed=7)
    store = InMemoryTraceStore()
    system = UUSeeSystem(config, store)
    system.run(days=2)

after which ``store`` holds a Magellan-style trace ready for
``repro.core`` analytics.
"""

from __future__ import annotations

import heapq
import math
import random
from collections.abc import Callable
from dataclasses import dataclass, field, replace
from functools import partial
from typing import TYPE_CHECKING

from repro.network.bandwidth import BandwidthSampler
from repro.network.ip import CidrBlock, IpAllocator
from repro.overlay import build_policy
from repro.network.isp import DEFAULT_ISPS, Isp, IspDatabase
from repro.network.latency import LatencyModel
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.simulator.channel import ChannelCatalogue, default_catalogue
from repro.simulator.engine import EventEngine
from repro.simulator.exchange import ExchangeEngine, RoundStats
from repro.simulator.failures import FaultPlan, OutageSchedule
from repro.simulator.peer import Peer
from repro.simulator.protocol import ProtocolConfig, SelectionPolicy
from repro.simulator.tracker import Tracker, TrackerPool
from repro.traces.server import TraceServer
from repro.traces.store import TraceStore
from repro.workloads.churn import SessionDurationModel
from repro.workloads.flashcrowd import FlashCrowdEvent
from repro.workloads.population import ArrivalProcess, PopulationModel

if TYPE_CHECKING:
    from repro.simulator.checkpoint import CheckpointManager

#: Dedicated address space for UUSee's streaming servers; deliberately
#: outside every ISP block so the mapping database reports them as
#: unmapped (they are infrastructure, not peers).
SERVER_BLOCK = CidrBlock.parse("8.8.0.0/16")
SERVER_ISP = "UUSee Servers"


@dataclass
class SystemConfig:
    """Everything needed to reproduce a run bit-for-bit."""

    seed: int = 0
    base_concurrency: float = 1_000.0
    flash_crowd: FlashCrowdEvent | None = field(default_factory=FlashCrowdEvent)
    weekend_boost: float = 1.07
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    policy: SelectionPolicy = SelectionPolicy.UUSEE
    #: Overlay policy spec ``name[:key=val,...]`` (see ``repro.overlay``).
    #: Overrides ``policy`` when non-empty.  Participates in the
    #: checkpoint config token, so a campaign checkpointed under one
    #: overlay refuses to resume under another.
    overlay: str = ""
    sessions: SessionDurationModel = field(default_factory=SessionDurationModel)
    num_trackers: int = 1  # UUSee runs a tracker farm; 1 is equivalent
    #   for the topology metrics, >1 partitions the volunteer view
    outages: OutageSchedule = field(default_factory=OutageSchedule)
    #   ``outages`` is the binary-failure back-compat surface; ``faults``
    #   carries the full fault plan (brownouts, partitions, degradations,
    #   crashes).  Both may be given; the outages are folded in.
    faults: FaultPlan | None = None
    servers_per_channel: int = 1
    server_upload_kbps: float = 24_000.0
    trace_loss_rate: float = 0.01
    #: Exchange-engine backend: ``"object"`` (Peer/Link object graph),
    #: ``"soa"`` (struct-of-arrays with fully vectorised numerics and
    #: its own golden fingerprint) or ``"soa-exact"`` (struct-of-arrays,
    #: bit-identical to ``"object"``).  The engine choice never changes
    #: the *modelled* system, so it is excluded from the default
    #: checkpoint config token (``token_exclude``); ``config_token``
    #: appends an ``#engine=`` suffix for non-default engines instead,
    #: keeping every pre-existing token byte-identical.
    engine: str = field(default="object", metadata={"token_exclude": True})

    def population(self) -> PopulationModel:
        """The target-population model this config describes."""
        return PopulationModel(
            base_concurrency=self.base_concurrency,
            weekend_boost=self.weekend_boost,
            flash_crowd=self.flash_crowd,
        )


def _engine_class(name: str) -> Callable[..., ExchangeEngine]:
    """Resolve an engine-backend name to an ExchangeEngine constructor."""
    if name == "object":
        return ExchangeEngine
    if name in ("soa", "soa-exact"):
        # Imported lazily: repro.soa depends on repro.simulator.
        from repro.soa.engine import SoAExchangeEngine

        return partial(
            SoAExchangeEngine,
            numerics="exact" if name == "soa-exact" else "fast",
        )
    raise ValueError(
        f"unknown engine backend {name!r} "
        "(expected 'object', 'soa' or 'soa-exact')"
    )


class UUSeeSystem:
    """A complete simulated UUSee deployment."""

    def __init__(
        self,
        config: SystemConfig,
        store: TraceStore,
        *,
        catalogue: ChannelCatalogue | None = None,
        isps: tuple[Isp, ...] = DEFAULT_ISPS,
        obs: AnyObserver = NULL_OBSERVER,
        engine: str | None = None,
    ) -> None:
        if engine is not None and engine != config.engine:
            config = replace(config, engine=engine)
        engine_cls = _engine_class(config.engine)
        self.config = config
        # Observability only *observes*: it draws nothing from the master
        # RNG (the seed_for() order below is a compatibility contract).
        self.obs = obs
        master = random.Random(config.seed)
        seed_for = lambda: master.randrange(2**62)

        self.catalogue = catalogue or default_catalogue()
        self.isps = isps
        self.isp_db = IspDatabase(isps)
        self.latency = LatencyModel(seed=seed_for())
        self.bandwidth = BandwidthSampler(seed=seed_for())
        self.engine = EventEngine()
        obs.bind_sim_clock(lambda: self.engine.now)
        if config.num_trackers > 1:
            self.tracker: Tracker | TrackerPool = TrackerPool(
                config.num_trackers, seed=seed_for()
            )
        else:
            self.tracker = Tracker(seed=seed_for())
        self.trace_server = TraceServer(
            store, loss_rate=config.trace_loss_rate, seed=seed_for(), obs=obs
        )
        self.arrivals = ArrivalProcess(
            config.population(),
            config.sessions,
            seed=seed_for(),
            lifetime_quantum_s=config.protocol.round_seconds,
        )
        self.faults = (config.faults or FaultPlan()).merged_with_outages(
            config.outages
        )
        self.peers: dict[int, Peer] = {}
        # The overlay policy draws nothing from the master RNG: policies
        # that need randomness derive their own stream from config.seed
        # by hash, so enabling one cannot shift the seed_for() order.
        self.partner_policy = build_policy(
            config.overlay or config.policy.value, seed=config.seed
        )
        self.exchange = engine_cls(
            peers=self.peers,
            catalogue=self.catalogue,
            tracker=self.tracker,
            latency=self.latency,
            config=config.protocol,
            policy=config.policy,
            seed=seed_for(),
            faults=self.faults,
            obs=obs,
            partner_policy=self.partner_policy,
        )
        self._rng = random.Random(seed_for())
        self._allocators: dict[str, IpAllocator] = {
            isp.name: isp.allocator(seed=seed_for()) for isp in isps
        }
        self._server_allocator = IpAllocator([SERVER_BLOCK], seed=seed_for())
        self._isp_cumulative: list[tuple[float, Isp]] = []
        acc = 0.0
        for isp in isps:
            acc += isp.share
            self._isp_cumulative.append((acc, isp))
        self._departures: list[tuple[float, int]] = []
        self._next_peer_id = 1
        self.round_stats: list[RoundStats] = []
        self.total_arrivals = 0
        self.total_departures = 0
        self.total_crashes = 0
        #: Exchange rounds fully completed; names checkpoint files, so it
        #: must advance only after the round's engine window has run.
        self.rounds_completed = 0
        self._create_servers()
        # Drawn last so fault-free runs keep the exact random streams of
        # builds that predate fault injection.
        self._fault_rng = random.Random(seed_for())

    # -- construction ------------------------------------------------------

    def _create_servers(self) -> None:
        for channel in self.catalogue:
            for _ in range(self.config.servers_per_channel):
                peer_id = self._next_peer_id
                self._next_peer_id += 1
                server = Peer(
                    peer_id,
                    ip=self._server_allocator.allocate(),
                    isp=SERVER_ISP,
                    is_china=True,  # servers sit in well-connected POPs
                    channel_id=channel.channel_id,
                    upload_kbps=self.config.server_upload_kbps,
                    download_kbps=self.config.server_upload_kbps,
                    class_name="server",
                    join_time=0.0,
                    depart_time=float("inf"),
                    is_server=True,
                )
                server = self.exchange.adopt_peer(server)
                server.health = 1.0
                server.buffer_fill = 1.0
                self.peers[peer_id] = server
                self.tracker.add_server(channel.channel_id, peer_id)
                self.tracker.register(channel.channel_id, peer_id)
                self.tracker.volunteer(channel.channel_id, peer_id)
                server.volunteered = True
                server.registered = True

    # -- run loop ----------------------------------------------------------

    def run(
        self,
        *,
        seconds: float | None = None,
        days: float | None = None,
        checkpoint: CheckpointManager | None = None,
        checkpoint_every_rounds: int = 0,
        stop: Callable[[], bool] | None = None,
        on_round: Callable[[int], None] | None = None,
    ) -> bool:
        """Advance the simulation by the given span (cumulative).

        With a ``checkpoint`` manager and ``checkpoint_every_rounds > 0``
        the run persists a crash-recovery checkpoint after every N-th
        completed round (trace store synced first, so the checkpoint
        never references undurable trace data).

        ``on_round`` is called with the completed-round count after each
        round (after any due checkpoint) — the fleet worker's heartbeat
        hook.  ``stop`` is polled at every round boundary; returning
        true ends the run early *after* the round completed, so the
        caller can checkpoint a consistent cut.  Returns ``True`` when
        the span finished, ``False`` when ``stop`` cut it short.
        """
        if (seconds is None) == (days is None):
            raise ValueError("pass exactly one of seconds/days")
        if checkpoint is not None and checkpoint_every_rounds < 1:
            raise ValueError(
                "checkpoint_every_rounds must be >= 1 when checkpointing"
            )
        span = seconds if seconds is not None else days * 86_400.0
        end = self.engine.now + span
        dt = self.config.protocol.round_seconds
        while self.engine.now < end - 1e-9:
            self._round(dt)
            self.engine.run_until(self.engine.now + dt)
            self.rounds_completed += 1
            if (
                checkpoint is not None
                and self.rounds_completed % checkpoint_every_rounds == 0
            ):
                checkpoint.save(self)
            if on_round is not None:
                on_round(self.rounds_completed)
            if stop is not None and stop():
                return False
        return True

    def _round(self, dt: float) -> None:
        now = self.engine.now
        obs = self.obs
        arrivals0 = self.total_arrivals
        departures0 = self.total_departures
        crashes0 = self.total_crashes
        with obs.span("round.total"):
            with obs.span("round.membership"):
                self._process_departures(now)
                self._process_crashes(now, dt)
                self._process_arrivals(now, dt)
            with obs.span("round.ticks"):
                self._run_ticks(now)
            with obs.span("round.exchange"):
                stats = self.exchange.run_round(now, dt)
            self.round_stats.append(stats)
            with obs.span("round.reports"):
                self._emit_reports(now + dt)
        if obs.enabled:
            obs.count("sim.rounds")
            obs.count("sim.arrivals", self.total_arrivals - arrivals0)
            obs.count("sim.departures", self.total_departures - departures0)
            obs.count("sim.crashes", self.total_crashes - crashes0)
            obs.count("exchange.block_transfers", stats.transfers)
            obs.gauge_set("sim.peers", stats.viewers)
            obs.gauge_set("sim.satisfied_fraction", stats.satisfied_fraction())
            obs.emit(
                {
                    "type": "round",
                    "round": self.rounds_completed + 1,
                    "sim_time": now,
                    "viewers": stats.viewers,
                    "satisfied": stats.satisfied,
                    "transfers": stats.transfers,
                    "arrivals": self.total_arrivals - arrivals0,
                    "departures": self.total_departures - departures0,
                    "crashes": self.total_crashes - crashes0,
                }
            )

    # -- membership ----------------------------------------------------------

    def _choose_isp(self) -> Isp:
        u = self._rng.random()
        for edge, isp in self._isp_cumulative:
            if u <= edge:
                return isp
        return self._isp_cumulative[-1][1]

    def _process_arrivals(self, now: float, dt: float) -> None:
        for when in self.arrivals.arrival_times_in(now, dt):
            self._admit_peer(when, now)

    def _admit_peer(self, join_time: float, now: float) -> Peer:
        isp = self._choose_isp()
        bw = self.bandwidth.sample()
        channel = self.catalogue.sample(self._rng)
        duration = self.arrivals.sample_session()
        peer_id = self._next_peer_id
        self._next_peer_id += 1
        peer = Peer(
            peer_id,
            ip=self._allocators[isp.name].allocate(),
            isp=isp.name,
            is_china=isp.is_china,
            channel_id=channel.channel_id,
            upload_kbps=bw.upload_kbps,
            download_kbps=bw.download_kbps,
            class_name=bw.class_name,
            join_time=join_time,
            depart_time=join_time + duration,
        )
        peer = self.exchange.adopt_peer(peer)
        peer.next_report = join_time + self.config.protocol.first_report_delay_s
        # Spread maintenance ticks uniformly across the tick period.
        peer.last_tick = join_time - self._rng.uniform(
            0.0, self.config.protocol.gossip_interval_s
        )
        self.peers[peer_id] = peer
        # When the tracker is down or browned out the request fails and
        # the client joins with an empty partner list; it then retries
        # with bounded exponential backoff (and may meanwhile discover
        # the mesh through gossip, once someone connects to it).
        self.exchange.tracker_contact(peer, now)
        heapq.heappush(self._departures, (peer.depart_time, peer_id))
        self.total_arrivals += 1
        return peer

    def _process_departures(self, now: float) -> None:
        while self._departures and self._departures[0][0] <= now:
            _, peer_id = heapq.heappop(self._departures)
            peer = self.peers.pop(peer_id, None)
            if peer is None:
                continue
            self.tracker.unregister(peer.channel_id, peer_id)
            self.exchange.release_peer(peer)
            self.total_departures += 1
            # Partners discover the departure lazily at their next tick;
            # the trace keeps the stale entries, exactly as real partner
            # lists keep recently-departed transients.

    def _process_crashes(self, now: float, dt: float) -> None:
        """Abrupt departures: no goodbye to partners *or* the tracker.

        Unlike a graceful leave, the tracker keeps the stale
        registration (and possibly volunteer listing) until it hands the
        dead peer out and the connection attempt fails; partners notice
        only through the idle timeout.  This is the crash/leave
        distinction the fault model tests rely on.
        """
        hazard = self.faults.crash_hazard(now)
        if hazard <= 0.0:
            return
        p_crash = 1.0 - math.exp(-hazard * dt)
        victims = [
            peer_id
            for peer_id, peer in self.peers.items()
            if not peer.is_server and self._fault_rng.random() < p_crash
        ]
        for peer_id in victims:
            self.exchange.release_peer(self.peers.pop(peer_id))
            self.total_crashes += 1

    # -- control plane ----------------------------------------------------------

    def _run_ticks(self, now: float) -> None:
        interval = self.config.protocol.gossip_interval_s
        for peer in list(self.peers.values()):
            if peer.peer_id not in self.peers:
                continue
            if now - peer.last_tick >= interval:
                self.exchange.maintenance_tick(peer, now)

    # -- measurement -----------------------------------------------------------

    def _emit_reports(self, cutoff: float) -> None:
        interval = self.config.protocol.report_interval_s
        self.exchange.emit_reports(cutoff, interval, self.trace_server.receive)

    # -- inspection helpers ------------------------------------------------------

    def concurrent_peers(self) -> int:
        """Online viewers right now (servers excluded)."""
        return sum(1 for p in self.peers.values() if not p.is_server)

    def stable_peers(self) -> int:
        """Online viewers old enough to have reported at least once."""
        now = self.engine.now
        first = self.config.protocol.first_report_delay_s
        return sum(
            1
            for p in self.peers.values()
            if not p.is_server and p.age(now) >= first
        )

    def peers_in_channel(self, channel_id: int) -> int:
        """Online viewers currently watching ``channel_id``."""
        return sum(
            1
            for p in self.peers.values()
            if not p.is_server and p.channel_id == channel_id
        )
