"""A minimal, deterministic discrete-event engine.

Events are (time, sequence) ordered on a binary heap; the sequence
counter breaks ties in scheduling order, so two runs with the same seed
execute callbacks in exactly the same order.  Cancellation is lazy
(cancelled events are skipped when popped), the standard heapq idiom.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any


class ScheduledEvent:
    """Handle to a scheduled callback; supports cancellation."""

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(
        self, time: float, seq: int, callback: Callable[..., Any], args: tuple
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True

    def __lt__(self, other: ScheduledEvent) -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventEngine:
    """Priority-queue event loop with a monotone simulation clock."""

    def __init__(self, *, start_time: float = 0.0) -> None:
        self._now = start_time
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Live (non-cancelled) events still queued."""
        return sum(1 for ev in self._queue if not ev.cancelled)

    @property
    def processed(self) -> int:
        """Events executed so far."""
        return self._processed

    def schedule_at(
        self, time: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` at absolute ``time``."""
        if time < self._now:
            raise ValueError(f"cannot schedule in the past ({time} < {self._now})")
        event = ScheduledEvent(time, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> ScheduledEvent:
        """Schedule ``callback(*args)`` after ``delay`` seconds."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def step(self) -> bool:
        """Run the next pending event; False when the queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self._now = event.time
            event.callback(*event.args)
            self._processed += 1
            return True
        return False

    def run_until(self, end_time: float) -> None:
        """Run all events with time <= ``end_time``; clock ends at end_time."""
        while self._queue:
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if head.time > end_time:
                break
            self.step()
        self._now = max(self._now, end_time)

    def clock_state(self) -> tuple[float, int, int]:
        """Snapshot ``(now, seq, processed)`` for checkpointing.

        Only the clock is captured: a queue with live events cannot be
        serialized (callbacks are bound methods into the object graph),
        so checkpoint-capable callers must drain the queue first —
        ``UUSeeSystem`` does, because its round loop schedules nothing.
        Raises ``RuntimeError`` if live events are pending.
        """
        if self.pending:
            raise RuntimeError(
                f"cannot snapshot engine clock with {self.pending} pending "
                "events; checkpoints require a drained queue"
            )
        return (self._now, self._seq, self._processed)

    def restore_clock(self, state: tuple[float, int, int]) -> None:
        """Restore a :meth:`clock_state` snapshot onto an empty engine."""
        if self.pending:
            raise RuntimeError("cannot restore clock over pending events")
        self._now, self._seq, self._processed = state

    def run(self, *, max_events: int | None = None) -> int:
        """Run until the queue drains (or ``max_events``); returns count run."""
        ran = 0
        while self.step():
            ran += 1
            if max_events is not None and ran >= max_events:
                break
        return ran
