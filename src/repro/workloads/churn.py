"""Session duration / churn model.

The paper's trace server only hears from peers that survive 20 minutes
(first report at +20 min, then every 10 min) and finds those stable
peers are asymptotically 1/3 of the concurrent population.  Sessions
are therefore modelled as a two-component lognormal mixture — a large
transient population (median a few minutes) and a smaller stable one
(median tens of minutes) — whose parameters are calibrated so that, in
steady state, roughly one third of concurrent peers have age >= 20 min.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass


def _lognormal_mean(median: float, sigma: float) -> float:
    return median * math.exp(sigma * sigma / 2.0)


def _phi(x: float) -> float:
    """Standard normal CDF."""
    return 0.5 * (1.0 + math.erf(x / math.sqrt(2.0)))


@dataclass(frozen=True)
class SessionDurationModel:
    """Two-component lognormal session mixture (seconds)."""

    transient_weight: float = 0.80
    transient_median_s: float = 300.0  # 5 min
    transient_sigma: float = 0.70
    stable_median_s: float = 1_500.0  # 25 min
    stable_sigma: float = 0.80

    def __post_init__(self) -> None:
        if not 0.0 < self.transient_weight < 1.0:
            raise ValueError("transient_weight must be in (0, 1)")

    def sample(self, rng: random.Random) -> float:
        """Draw one session duration in seconds."""
        if rng.random() < self.transient_weight:
            median, sigma = self.transient_median_s, self.transient_sigma
        else:
            median, sigma = self.stable_median_s, self.stable_sigma
        return median * math.exp(rng.gauss(0.0, sigma))

    def mean_duration(self) -> float:
        """E[D] in seconds (exact, from lognormal moments)."""
        return self.transient_weight * _lognormal_mean(
            self.transient_median_s, self.transient_sigma
        ) + (1.0 - self.transient_weight) * _lognormal_mean(
            self.stable_median_s, self.stable_sigma
        )

    def survival(self, t: float) -> float:
        """P(D > t) for the mixture."""
        if t <= 0.0:
            return 1.0
        s_t = 1.0 - _phi((math.log(t) - math.log(self.transient_median_s)) / self.transient_sigma)
        s_s = 1.0 - _phi((math.log(t) - math.log(self.stable_median_s)) / self.stable_sigma)
        return self.transient_weight * s_t + (1.0 - self.transient_weight) * s_s

    def mean_quantized_duration(self, quantum_s: float) -> float:
        """E[ceil(D / q) * q]: expected lifetime under round quantization.

        A simulator that admits and removes peers only at exchange-round
        boundaries stretches every session to a whole number of rounds;
        arrival rates must divide by this quantity (not ``mean_duration``)
        for realised concurrency to track the target population.
        Uses E[ceil(D/q)] = sum_{k>=0} P(D > k q).
        """
        if quantum_s <= 0.0:
            raise ValueError("quantum must be positive")
        total = 0.0
        k = 0
        while True:
            s = self.survival(k * quantum_s)
            total += s
            k += 1
            if s < 1e-9 or k > 100_000:
                break
        return quantum_s * total

    def _component_residual_above(self, median: float, sigma: float, a: float) -> float:
        """integral_a^inf S(u) du for one lognormal component.

        Uses E[max(D - a, 0)] = E[D]*Phi(d1) - a*Phi(d2) with
        d1 = (ln(E'. )..)/sigma; the standard partial-expectation identity
        for lognormals: E[D; D>a] = mean * Phi((mu + sigma^2 - ln a)/sigma).
        """
        mu = math.log(median)
        mean = _lognormal_mean(median, sigma)
        tail_mass = 1.0 - _phi((math.log(a) - mu) / sigma)
        partial = mean * _phi((mu + sigma * sigma - math.log(a)) / sigma)
        return partial - a * tail_mass

    def stable_concurrent_fraction(self, age_threshold_s: float = 1_200.0) -> float:
        """Steady-state fraction of concurrent peers with age >= threshold.

        By the renewal-theoretic observed-age distribution, a random
        concurrent peer has age >= a with probability
        (integral_a^inf S(u) du) / E[D].  This is the analytic prediction
        for the paper's 'stable peers are ~1/3 of total' observation.
        """
        numerator = self.transient_weight * self._component_residual_above(
            self.transient_median_s, self.transient_sigma, age_threshold_s
        ) + (1.0 - self.transient_weight) * self._component_residual_above(
            self.stable_median_s, self.stable_sigma, age_threshold_s
        )
        return numerator / self.mean_duration()
