"""Target population and the arrival process that realises it.

``PopulationModel`` composes the diurnal, weekly and flash-crowd
multipliers into a target concurrency N(t).  ``ArrivalProcess`` turns
that target into Poisson arrivals via Little's law — in steady state a
population with mean session E[D] and arrival rate lambda holds
N = lambda * E[D] concurrent peers — so the realised concurrency tracks
the target as long as the diurnal timescale is much longer than E[D]
(it is: hours vs ~15 minutes).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.workloads.churn import SessionDurationModel
from repro.workloads.diurnal import DiurnalShape, weekly_multiplier
from repro.workloads.flashcrowd import FlashCrowdEvent


@dataclass(frozen=True)
class PopulationModel:
    """Target concurrent population N(t)."""

    base_concurrency: float = 2_000.0
    diurnal: DiurnalShape = field(default_factory=DiurnalShape)
    weekend_boost: float = 1.07
    flash_crowd: FlashCrowdEvent | None = field(default_factory=FlashCrowdEvent)

    def target(self, t_seconds: float) -> float:
        """Target concurrency at ``t_seconds``."""
        n = self.base_concurrency * self.diurnal.multiplier(t_seconds)
        n *= weekly_multiplier(t_seconds, weekend_boost=self.weekend_boost)
        if self.flash_crowd is not None:
            n *= self.flash_crowd.multiplier(t_seconds)
        return n


class ArrivalProcess:
    """Poisson arrivals whose rate keeps concurrency near the target."""

    def __init__(
        self,
        population: PopulationModel,
        sessions: SessionDurationModel,
        *,
        seed: int = 0,
        lifetime_quantum_s: float | None = None,
    ) -> None:
        """``lifetime_quantum_s``: if the consumer of these arrivals only
        removes peers at fixed boundaries (e.g. exchange rounds), pass the
        boundary spacing so the rate divides by the *quantized* mean
        session; realised concurrency then still matches the target."""
        self.population = population
        self.sessions = sessions
        self._rng = random.Random(seed)
        if lifetime_quantum_s is not None:
            self._mean_duration = sessions.mean_quantized_duration(lifetime_quantum_s)
        else:
            self._mean_duration = sessions.mean_duration()

    def rate(self, t_seconds: float) -> float:
        """Instantaneous arrival rate (peers per second)."""
        return self.population.target(t_seconds) / self._mean_duration

    def arrivals_in(self, t_seconds: float, dt_seconds: float) -> int:
        """Number of arrivals in [t, t+dt), Poisson with midpoint rate."""
        lam = self.rate(t_seconds + dt_seconds / 2.0) * dt_seconds
        return self._poisson(lam)

    def arrival_times_in(self, t_seconds: float, dt_seconds: float) -> list[float]:
        """Sorted arrival instants in [t, t+dt) (uniform given the count)."""
        count = self.arrivals_in(t_seconds, dt_seconds)
        times = sorted(
            t_seconds + self._rng.random() * dt_seconds for _ in range(count)
        )
        return times

    def sample_session(self) -> float:
        """Draw a session duration for a new arrival."""
        return self.sessions.sample(self._rng)

    def _poisson(self, lam: float) -> int:
        """Poisson draw; normal approximation above lam=50 for speed."""
        if lam <= 0.0:
            return 0
        if lam > 50.0:
            return max(0, round(self._rng.gauss(lam, lam**0.5)))
        # Knuth's method
        import math

        threshold = math.exp(-lam)
        count = 0
        product = self._rng.random()
        while product > threshold:
            count += 1
            product *= self._rng.random()
        return count
