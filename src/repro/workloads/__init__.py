"""Workload models driving the simulated UUSee deployment.

The paper's evaluation hinges on load dynamics: a double-peak diurnal
cycle (~1 p.m. and ~9 p.m.), a slight weekend increase, heavy churn
(stable reporting peers are asymptotically 1/3 of the concurrent
population), and one large flash crowd (9 p.m., Oct 6 2006, the
mid-autumn festival).  These modules generate exactly those dynamics,
seeded and scaled.
"""

from repro.workloads.diurnal import DiurnalShape, weekly_multiplier
from repro.workloads.flashcrowd import FlashCrowdEvent
from repro.workloads.churn import SessionDurationModel
from repro.workloads.population import PopulationModel, ArrivalProcess

__all__ = [
    "DiurnalShape",
    "weekly_multiplier",
    "FlashCrowdEvent",
    "SessionDurationModel",
    "PopulationModel",
    "ArrivalProcess",
]

#: Simulated epoch: Sunday 2006-10-01 00:00 (GMT+8), the start of the
#: paper's two selected weeks.  All simulation times are seconds since
#: this instant.
EPOCH_DESCRIPTION = "2006-10-01 00:00 GMT+8 (Sunday)"

SECONDS_PER_HOUR = 3600
SECONDS_PER_DAY = 24 * SECONDS_PER_HOUR
SECONDS_PER_WEEK = 7 * SECONDS_PER_DAY
