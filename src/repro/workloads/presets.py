"""Named experiment presets.

Experiments across the examples, tests, benchmarks and CLI keep needing
the same handful of configurations; these constructors make them
explicit, documented, and reusable.

- ``paper_two_weeks``  — the paper's evaluation setting, scaled: 14
  simulated days from Sunday 2006-10-01, double-peak diurnal load,
  slight weekend boost, the day-5 (Friday Oct 6) 9 p.m. flash crowd;
- ``bench_week``       — the benchmark default: 8 days covering a full
  week plus the flash crowd, at laptop scale;
- ``laptop_quick``     — a 2-day warm-up-plus-one-full-day run for
  interactive exploration;
- ``smoke``            — minutes-scale run for tests.

Each returns ``(SystemConfig, days)`` so callers keep control over
stores, catalogues and execution.
"""

from __future__ import annotations

from repro.simulator.protocol import SelectionPolicy
from repro.simulator.system import SystemConfig
from repro.workloads.flashcrowd import FlashCrowdEvent


def paper_two_weeks(
    *, seed: int = 2006, base_concurrency: float = 1_000.0
) -> tuple[SystemConfig, float]:
    """The paper's two selected weeks (Oct 1-14 2006), scaled."""
    config = SystemConfig(
        seed=seed,
        base_concurrency=base_concurrency,
        flash_crowd=FlashCrowdEvent(),
    )
    return config, 14.0


def bench_week(
    *, seed: int = 2006, base_concurrency: float = 1_000.0
) -> tuple[SystemConfig, float]:
    """One full week plus the flash crowd: the benchmark default."""
    config = SystemConfig(
        seed=seed,
        base_concurrency=base_concurrency,
        flash_crowd=FlashCrowdEvent(),
    )
    return config, 8.0


def laptop_quick(
    *, seed: int = 7, base_concurrency: float = 400.0
) -> tuple[SystemConfig, float]:
    """Two simulated days without a flash crowd; runs in ~a minute."""
    config = SystemConfig(
        seed=seed, base_concurrency=base_concurrency, flash_crowd=None
    )
    return config, 2.0


def smoke(
    *,
    seed: int = 1,
    base_concurrency: float = 120.0,
    policy: SelectionPolicy = SelectionPolicy.UUSEE,
) -> tuple[SystemConfig, float]:
    """A few simulated hours at toy scale for fast tests."""
    config = SystemConfig(
        seed=seed,
        base_concurrency=base_concurrency,
        flash_crowd=None,
        policy=policy,
    )
    return config, 0.25
