"""Flash crowd event (paper Sec. 4.1.1).

The paper's traces contain one large flash crowd: around 9 p.m. on
Friday October 6 2006 (the mid-autumn festival), caused by a CCTV
celebration broadcast.  The event is modelled as a population
multiplier that ramps up quickly, holds through the broadcast, and
decays exponentially afterwards.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600

#: Epoch day 0 is Sunday Oct 1 2006, so the festival evening is day 5.
DEFAULT_FLASH_CROWD_START = 5 * SECONDS_PER_DAY + 20 * SECONDS_PER_HOUR + 1800


@dataclass(frozen=True)
class FlashCrowdEvent:
    """A population surge: ramp, hold, exponential decay."""

    start: float = DEFAULT_FLASH_CROWD_START
    ramp_seconds: float = 1_800.0
    hold_seconds: float = 7_200.0
    decay_seconds: float = 4_500.0  # exponential time constant
    magnitude: float = 2.3  # peak population multiplier

    def __post_init__(self) -> None:
        if self.magnitude < 1.0:
            raise ValueError("flash crowd magnitude must be >= 1")
        if min(self.ramp_seconds, self.hold_seconds, self.decay_seconds) <= 0:
            raise ValueError("phase durations must be positive")

    def multiplier(self, t_seconds: float) -> float:
        """Population multiplier at ``t_seconds`` (1.0 outside the event)."""
        dt = t_seconds - self.start
        excess = self.magnitude - 1.0
        if dt < 0:
            return 1.0
        if dt < self.ramp_seconds:
            return 1.0 + excess * (dt / self.ramp_seconds)
        dt -= self.ramp_seconds
        if dt < self.hold_seconds:
            return self.magnitude
        dt -= self.hold_seconds
        return 1.0 + excess * math.exp(-dt / self.decay_seconds)

    @property
    def peak_time(self) -> float:
        """Centre of the hold phase (the '9 p.m.' the paper marks)."""
        return self.start + self.ramp_seconds + self.hold_seconds / 2.0
