"""Diurnal and weekly load shape (paper Fig. 1(A)).

The paper observes a daily peak around 9 p.m., a second daily peak
around 1 p.m., and only a slight increase over the weekend.  The shape
is a baseline plus two wrapped Gaussian bumps in time-of-day, scaled so
the 9 p.m. peak value is exactly 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

SECONDS_PER_DAY = 86_400
SECONDS_PER_HOUR = 3_600


def _wrapped_gauss(hour: float, centre: float, width_hours: float) -> float:
    """Gaussian bump in time-of-day with 24 h wraparound."""
    delta = abs(hour - centre)
    delta = min(delta, 24.0 - delta)
    return math.exp(-0.5 * (delta / width_hours) ** 2)


@dataclass(frozen=True)
class DiurnalShape:
    """Time-of-day load multiplier, normalised to 1.0 at the main peak."""

    baseline: float = 0.52
    noon_peak_hour: float = 13.0
    noon_peak_amplitude: float = 0.24
    noon_peak_width_hours: float = 2.2
    evening_peak_hour: float = 21.0
    evening_peak_amplitude: float = 0.48
    evening_peak_width_hours: float = 2.6
    _peak_value: float = field(init=False, repr=False, default=0.0)

    def __post_init__(self) -> None:
        raw_peak = self._raw(self.evening_peak_hour)
        object.__setattr__(self, "_peak_value", raw_peak)

    def _raw(self, hour: float) -> float:
        return (
            self.baseline
            + self.noon_peak_amplitude
            * _wrapped_gauss(hour, self.noon_peak_hour, self.noon_peak_width_hours)
            + self.evening_peak_amplitude
            * _wrapped_gauss(hour, self.evening_peak_hour, self.evening_peak_width_hours)
        )

    def multiplier(self, t_seconds: float) -> float:
        """Load multiplier at simulation time ``t_seconds`` (0..1]."""
        hour = (t_seconds % SECONDS_PER_DAY) / SECONDS_PER_HOUR
        return self._raw(hour) / self._peak_value

    def peak_hours(self) -> tuple[float, float]:
        """(noon peak, evening peak) hours of day."""
        return (self.noon_peak_hour, self.evening_peak_hour)


def weekly_multiplier(t_seconds: float, *, weekend_boost: float = 1.07) -> float:
    """Slight weekend increase; epoch day 0 is a Sunday.

    Days 0 (Sunday) and 6 (Saturday) of each simulated week get the
    boost; weekdays are 1.0.
    """
    day_of_week = int(t_seconds // SECONDS_PER_DAY) % 7
    if day_of_week in (0, 6):
        return weekend_boost
    return 1.0
