"""Deterministic datagram-level fault injection for the ingest path.

The paper's reports crossed the public Internet; ours cross loopback,
which never loses, duplicates or truncates anything.  To prove the
ingestion service's robustness we therefore inject those faults at the
transport boundary, with a seeded RNG so every run is replayable —
the same idiom PR 1's :class:`~repro.traces.faults.FaultyChannel` uses
on the in-process collection path, moved down to the datagram layer.

Crucially, the injector *counts what it destroys*: a dropped or
truncated datagram is accounted at the moment of damage, so end-to-end
reconciliation (client sent == server stored + every counted loss) can
be asserted exactly, with no "probably lost somewhere" slack.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class DatagramFaults:
    """Per-datagram fault probabilities on the reporter→server path.

    ``loss_rate`` drops the datagram entirely; ``duplicate_rate`` sends
    an extra copy; ``truncate_rate`` cuts the datagram at a random byte
    (the server's crc/length checks will quarantine it).  All are
    independent per-datagram coin flips from one seeded stream.
    """

    loss_rate: float = 0.0
    duplicate_rate: float = 0.0
    truncate_rate: float = 0.0

    def __post_init__(self) -> None:
        for name in ("loss_rate", "duplicate_rate", "truncate_rate"):
            v = getattr(self, name)
            if not math.isfinite(v) or not 0.0 <= v < 1.0:
                raise ValueError(f"{name} must be in [0, 1), got {v}")

    @property
    def any_active(self) -> bool:
        """Whether this configuration injects any fault at all."""
        return bool(self.loss_rate or self.duplicate_rate or self.truncate_rate)


@dataclass
class InjectorCounters:
    """What the injector did, in datagrams and in the reports they held."""

    offered: int = 0  # datagrams handed to the injector
    dropped: int = 0  # datagrams destroyed outright
    dropped_reports: int = 0  # reports inside the destroyed datagrams
    truncated: int = 0  # datagrams damaged (server will quarantine)
    truncated_reports: int = 0  # reports inside the damaged datagrams
    duplicated: int = 0  # extra copies emitted


@dataclass
class FaultDecision:
    """The injector's verdict for one datagram."""

    payloads: list[bytes] = field(default_factory=list)  # what to send
    dropped: bool = False
    truncated: bool = False


class DatagramFaultInjector:
    """Applies :class:`DatagramFaults` to outgoing datagrams.

    The caller hands in each encoded frame with its report count; the
    injector returns what should actually hit the wire (possibly
    nothing, possibly two copies, possibly a damaged prefix) and keeps
    exact counters of every report it destroyed or damaged.
    """

    def __init__(self, faults: DatagramFaults, *, seed: int = 0) -> None:
        self.faults = faults
        self.counters = InjectorCounters()
        self._rng = random.Random(seed)

    def apply(self, payload: bytes, report_count: int) -> FaultDecision:
        """Decide the fate of one datagram carrying ``report_count`` reports."""
        c = self.counters
        c.offered += 1
        decision = FaultDecision()
        f = self.faults
        if f.loss_rate > 0.0 and self._rng.random() < f.loss_rate:
            c.dropped += 1
            c.dropped_reports += report_count
            decision.dropped = True
            return decision
        if f.truncate_rate > 0.0 and self._rng.random() < f.truncate_rate:
            cut = self._rng.randint(1, max(1, len(payload) - 1))
            decision.payloads.append(payload[:cut])
            decision.truncated = True
            c.truncated += 1
            c.truncated_reports += report_count
            return decision
        decision.payloads.append(payload)
        if f.duplicate_rate > 0.0 and self._rng.random() < f.duplicate_rate:
            decision.payloads.append(payload)
            c.duplicated += 1
        return decision

    def state(self) -> dict[str, Any]:
        """Serialisable snapshot (for campaign checkpoints)."""
        return {
            "rng": self._rng.getstate(),
            "counters": vars(self.counters).copy(),
        }

    def restore(self, state: dict[str, Any]) -> None:
        """Restore RNG position and counters from :meth:`state` output."""
        self._rng.setstate(state["rng"])
        for name, value in state["counters"].items():
            setattr(self.counters, name, value)
