"""Networked trace ingestion: the paper's collection path, made real.

``repro.ingest`` replaces the in-process trace-server coin flip with an
actual client/server collection surface on loopback: report batches are
framed (:mod:`~repro.ingest.framing`), shipped by a hardened reporter
with retry/backoff, a circuit breaker and a bounded spill buffer
(:mod:`~repro.ingest.client`), optionally damaged in flight by a
deterministic fault injector (:mod:`~repro.ingest.faults`), and admitted
under backpressure into crash-tolerant exactly-once storage by the
asyncio service (:mod:`~repro.ingest.service`).  Every report a
campaign emits is either durably stored exactly once or accounted in
:class:`~repro.traces.health.TraceHealth` — loss is never silent.
"""

from repro.ingest.client import ClientStats, ReportClient
from repro.ingest.faults import (
    DatagramFaultInjector,
    DatagramFaults,
    InjectorCounters,
)
from repro.ingest.framing import (
    Frame,
    FrameError,
    FrameHeader,
    decode_frame,
    encode_frame,
)
from repro.ingest.service import ServiceStats, ShardCursor, TraceIngestService
from repro.ingest.spill import SpillBuffer

__all__ = [
    "ClientStats",
    "DatagramFaultInjector",
    "DatagramFaults",
    "Frame",
    "FrameError",
    "FrameHeader",
    "InjectorCounters",
    "ReportClient",
    "ServiceStats",
    "ShardCursor",
    "SpillBuffer",
    "TraceIngestService",
    "decode_frame",
    "encode_frame",
]
