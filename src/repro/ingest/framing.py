"""Wire framing for the trace ingestion service.

A *frame* is one batch of report lines travelling from a reporter shard
to the ingest server — the unit of admission, acknowledgement, dedup
and fsync.  The same binary layout is used for a UDP datagram (one
datagram = one frame) and for the TCP stream (frames back to back)::

    magic   4s   b"MGTI"
    version B    FRAME_VERSION
    kind    B    KIND_REPORTS
    shard   I    reporter shard id (one per campaign process)
    seq     Q    per-shard batch sequence number, starting at 1
    count   I    number of report lines in the payload
    length  I    payload byte length
    crc32   I    zlib.crc32 of the payload bytes
    payload      ``count`` JSON report lines joined by b"\\n"

The (shard, seq) pair is the frame's identity: the server admits each
identity at most once, which turns the client's resend-until-acked loop
into at-least-once delivery *with* exactly-once storage.  The crc and
the declared length/count let the server quarantine a truncated or
bit-damaged datagram instead of parsing garbage — and, on TCP, let it
skip the damaged payload without losing stream synchronisation.
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

#: First bytes of every frame; a TCP connection whose first bytes are
#: not this magic is a line-oriented query connection instead.
MAGIC = b"MGTI"
#: Frame format version.
FRAME_VERSION = 1
#: Frame kind carrying report lines (the only kind so far).
KIND_REPORTS = 1

_HEADER = struct.Struct(">4sBBIQIII")
#: Fixed byte length of a frame header.
HEADER_SIZE = _HEADER.size

#: Largest payload the server will admit; bigger frames are quarantined
#: (oversized datagrams are a classic collector crash vector).
MAX_PAYLOAD_BYTES = 1 << 20
#: Absolute cap past which a TCP stream is considered unrecoverable
#: garbage rather than merely an oversized frame.
INSANE_PAYLOAD_BYTES = 1 << 24


class FrameError(ValueError):
    """A frame could not be decoded (damage, truncation, bad version)."""


@dataclass(frozen=True)
class Frame:
    """One decoded batch of report lines from a reporter shard."""

    shard_id: int
    seq: int
    lines: tuple[str, ...]

    @property
    def count(self) -> int:
        """Number of report lines carried."""
        return len(self.lines)


@dataclass(frozen=True)
class FrameHeader:
    """A parsed frame header (payload not yet read/verified)."""

    kind: int
    shard_id: int
    seq: int
    count: int
    payload_len: int
    crc32: int


def encode_frame(frame: Frame) -> bytes:
    """Serialise ``frame`` into header + payload bytes."""
    payload = "\n".join(frame.lines).encode("utf-8")
    header = _HEADER.pack(
        MAGIC,
        FRAME_VERSION,
        KIND_REPORTS,
        frame.shard_id,
        frame.seq,
        len(frame.lines),
        len(payload),
        zlib.crc32(payload),
    )
    return header + payload


def parse_header(data: bytes) -> FrameHeader:
    """Parse and validate the fixed-size header at the start of ``data``.

    Raises :class:`FrameError` on bad magic, unknown version or kind —
    the caller decides whether that means quarantine (UDP) or stream
    desynchronisation (TCP).
    """
    if len(data) < HEADER_SIZE:
        raise FrameError(
            f"short frame header: {len(data)} bytes < {HEADER_SIZE}"
        )
    magic, version, kind, shard_id, seq, count, payload_len, crc = (
        _HEADER.unpack_from(data)
    )
    if magic != MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise FrameError(f"unsupported frame version {version}")
    if kind != KIND_REPORTS:
        raise FrameError(f"unknown frame kind {kind}")
    return FrameHeader(
        kind=kind,
        shard_id=shard_id,
        seq=seq,
        count=count,
        payload_len=payload_len,
        crc32=crc,
    )


def decode_payload(header: FrameHeader, payload: bytes) -> Frame:
    """Verify ``payload`` against ``header`` and build the frame.

    Raises :class:`FrameError` when the payload is truncated, oversized,
    fails its checksum, or carries a different line count than declared
    — exactly the damage a lossy datagram path inflicts.
    """
    if header.payload_len > MAX_PAYLOAD_BYTES:
        raise FrameError(
            f"oversized frame payload: {header.payload_len} bytes "
            f"> {MAX_PAYLOAD_BYTES}"
        )
    if len(payload) != header.payload_len:
        raise FrameError(
            f"truncated frame payload: {len(payload)} bytes, "
            f"header promises {header.payload_len}"
        )
    if zlib.crc32(payload) != header.crc32:
        raise FrameError("frame payload checksum mismatch")
    try:
        text = payload.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise FrameError(f"frame payload is not UTF-8: {exc}") from exc
    lines = tuple(text.split("\n")) if text else ()
    if len(lines) != header.count:
        raise FrameError(
            f"frame carries {len(lines)} lines, header promises {header.count}"
        )
    return Frame(shard_id=header.shard_id, seq=header.seq, lines=lines)


def decode_frame(data: bytes) -> Frame:
    """Decode one complete frame (the UDP datagram path)."""
    header = parse_header(data)
    return decode_payload(header, data[HEADER_SIZE:])
