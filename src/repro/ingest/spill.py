"""Bounded client-side spill buffer for unacknowledged report batches.

While the ingest server is down (restarting, SIGKILLed, overloaded),
the reporter keeps producing.  The spill buffer holds every sealed
frame until the server durably acknowledges it, so a server restart
loses nothing the client still remembers — but it is *bounded*:
holding a two-month campaign in RAM is exactly the unbounded-memory
failure this module exists to prevent.  When the cap is exceeded the
oldest frames are evicted and their report counts are added to
:attr:`overflow_reports`; the loss is counted, never silent.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import Any

from repro.ingest.framing import Frame


class SpillBuffer:
    """FIFO of pending (unacked) frames with a bounded report count."""

    def __init__(self, *, max_reports: int = 100_000) -> None:
        if max_reports < 1:
            raise ValueError("max_reports must be >= 1")
        self.max_reports = max_reports
        self._frames: OrderedDict[int, Frame] = OrderedDict()  # seq -> frame
        self._reports = 0  # repro: noqa[REP101] derived: restore() recomputes it by re-pushing frames
        #: Reports dropped by eviction since construction (or restore).
        self.overflow_reports = 0
        #: Frames dropped by eviction since construction (or restore).
        self.overflow_frames = 0

    def __len__(self) -> int:
        return len(self._frames)

    @property
    def report_count(self) -> int:
        """Reports currently held across all pending frames."""
        return self._reports

    def push(self, frame: Frame) -> None:
        """Hold ``frame`` until acked, evicting oldest frames if full."""
        self._frames[frame.seq] = frame
        self._reports += frame.count
        while self._reports > self.max_reports and len(self._frames) > 1:
            _, evicted = self._frames.popitem(last=False)
            self._reports -= evicted.count
            self.overflow_reports += evicted.count
            self.overflow_frames += 1

    def ack(self, seq: int) -> Frame | None:
        """Drop the frame ``seq`` (server stored it durably), if held."""
        frame = self._frames.pop(seq, None)
        if frame is not None:
            self._reports -= frame.count
        return frame

    def pending(self) -> list[Frame]:
        """Every held frame, oldest first (the resend order)."""
        return list(self._frames.values())

    def __iter__(self) -> Iterator[Frame]:
        return iter(self._frames.values())

    def state(self) -> dict[str, Any]:
        """Serialisable snapshot (for campaign checkpoints)."""
        return {
            "max_reports": self.max_reports,
            "frames": [
                (f.shard_id, f.seq, list(f.lines))
                for f in self._frames.values()
            ],
            "overflow_reports": self.overflow_reports,
            "overflow_frames": self.overflow_frames,
        }

    @classmethod
    def restore(cls, state: dict[str, Any]) -> SpillBuffer:
        """Rebuild a buffer from :meth:`state` output."""
        buf = cls(max_reports=state["max_reports"])
        for shard_id, seq, lines in state["frames"]:
            buf.push(Frame(shard_id=shard_id, seq=seq, lines=tuple(lines)))
        buf.overflow_reports = state["overflow_reports"]
        buf.overflow_frames = state["overflow_frames"]
        return buf
