"""Hardened reporter client for the trace ingestion service.

:class:`ReportClient` is a drop-in :class:`~repro.traces.store.TraceStore`
(it has ``append(report)``), so a simulator shard pointed at an ingest
server instead of a local file changes nothing upstream.  Internally it
batches reports into frames and ships them with the failure handling a
real collection path needs:

- **at-least-once TCP** — every frame is held in a bounded
  :class:`~repro.ingest.spill.SpillBuffer` until the server durably
  acknowledges it; resends after reconnects are deduplicated
  server-side by (shard, seq), so storage stays exactly-once;
- **bounded exponential backoff** with deterministic seeded jitter
  between connection attempts (mirroring the simulator's tracker-retry
  policy);
- a **circuit breaker**: after ``breaker_threshold`` consecutive TCP
  failures the client stops hammering the dead server and degrades to
  fire-and-forget UDP copies (kept in the spill buffer — if a UDP copy
  lands, the later TCP resend acks as a duplicate); a half-open probe
  after ``breaker_cooldown_s`` closes the breaker again;
- **counted loss, never silent**: spill-buffer overflow, injected
  datagram damage, server rejections and reports still unacked at close
  all fold into :class:`~repro.traces.health.TraceHealth`.

Pure ``transport="udp"`` mode reproduces the paper's actual collection
channel — fire-and-forget datagrams, at-most-once — with every
injected loss accounted by the seeded
:class:`~repro.ingest.faults.DatagramFaultInjector`.

Wall-clock time is read only through the injectable
:class:`~repro.obs.clock.Clock` seam (QA rule REP002 scopes this
package), so backoff schedules and breaker transitions are exactly
testable with a manual clock.
"""

from __future__ import annotations

import random
import socket
import time
from dataclasses import dataclass
from typing import Any, Callable

from repro.ingest.faults import DatagramFaultInjector, DatagramFaults
from repro.ingest.framing import Frame, encode_frame
from repro.ingest.spill import SpillBuffer
from repro.obs.clock import Clock, WallClock
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.health import TraceHealth
from repro.traces.records import PeerReport

#: Circuit-breaker states.
BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass
class ClientStats:
    """Counters describing everything the client did with its reports."""

    reports_enqueued: int = 0  # reports handed to append()
    reports_acked: int = 0  # durably stored server-side (OK or DUP ack)
    reports_rejected: int = 0  # server replied ERR (frame quarantined)
    reports_udp: int = 0  # shipped in fire-and-forget datagrams
    reports_lost_inflight: int = 0  # destroyed by the fault injector
    reports_unsent: int = 0  # still unacked when the client closed
    frames_sent_tcp: int = 0
    frames_sent_udp: int = 0
    tcp_failures: int = 0  # connect/send/ack failures
    reconnects: int = 0  # successful connections after a failure
    retry_after: int = 0  # backpressure responses honoured
    breaker_opens: int = 0


class ReportClient:
    """Batches reports into frames and ships them to an ingest server."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        udp_port: int | None = None,
        shard_id: int = 0,
        transport: str = "tcp",
        batch_size: int = 64,
        timeout_s: float = 2.0,
        retry_base_s: float = 0.05,
        retry_cap_s: float = 2.0,
        retry_jitter: float = 0.5,
        breaker_threshold: int = 5,
        breaker_cooldown_s: float = 5.0,
        sync_max_attempts: int = 8,
        spill_max_reports: int = 100_000,
        faults: DatagramFaults | None = None,
        seed: int = 0,
        clock: Clock | None = None,
        sleep: Callable[[float], None] | None = None,
        obs: AnyObserver = NULL_OBSERVER,
    ) -> None:
        if transport not in ("tcp", "udp"):
            raise ValueError(f"transport must be 'tcp' or 'udp', got {transport!r}")
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        self.host = host
        self.port = port
        self.udp_port = udp_port if udp_port is not None else port
        self.shard_id = shard_id
        self.transport = transport
        self.batch_size = batch_size
        self.timeout_s = timeout_s
        self.retry_base_s = retry_base_s
        self.retry_cap_s = retry_cap_s
        self.retry_jitter = retry_jitter
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        self.sync_max_attempts = sync_max_attempts
        self.stats = ClientStats()
        self._spill = SpillBuffer(max_reports=spill_max_reports)
        self._injector = (
            DatagramFaultInjector(faults, seed=seed ^ 0x5EED)
            if faults is not None and faults.any_active
            else None
        )
        self._clock: Clock = clock if clock is not None else WallClock()
        self._sleep = sleep if sleep is not None else time.sleep
        self._obs = obs
        self._rng = random.Random(seed)  # backoff jitter only
        self._batch: list[str] = []
        self._next_seq = 1
        self._failures = 0  # consecutive TCP failures
        self._next_attempt = 0.0  # earliest clock time for the next TCP try
        self._breaker = BREAKER_CLOSED
        self._breaker_opened_at = 0.0
        self._udp_shipped: set[int] = set()  # seqs already degraded to UDP
        self._sock: socket.socket | None = None  # repro: noqa[REP101] live OS handle; reconnected lazily after restore
        self._udp_sock: socket.socket | None = None  # repro: noqa[REP101] live OS handle; reopened lazily after restore
        self._closed = False  # repro: noqa[REP101] lifecycle flag; restore targets a live (open) client
        self._folded_dropped = 0  # repro: noqa[REP101] fold_into() bookkeeping consumed within one process
        self._folded_overflow = 0  # repro: noqa[REP101] fold_into() bookkeeping consumed within one process

    # -- TraceStore surface -------------------------------------------------

    def append(self, report: PeerReport) -> None:
        """Buffer one report; ships a frame when the batch fills."""
        if self._closed:
            raise RuntimeError("cannot append to a closed ReportClient")
        self._batch.append(report.to_json())
        self.stats.reports_enqueued += 1
        if len(self._batch) >= self.batch_size:
            self._seal_batch()
            self._pump()

    def flush(self) -> None:
        """Seal the current partial batch and attempt delivery (non-blocking)."""
        self._seal_batch()
        self._pump()

    def sync(self) -> bool:
        """Seal and try hard to drain every pending frame (durable barrier).

        Blocks through up to ``sync_max_attempts`` consecutive failures
        (sleeping out the backoff between them), then gives up, leaving
        the remainder in the spill buffer — a later sync, the campaign
        checkpoint, or the resend-on-reconnect path picks them up.
        Returns whether everything pending was acked.
        """
        self._seal_batch()
        if self.transport == "udp":
            self._pump()
            return len(self._spill) == 0
        attempts = 0
        while self._spill and attempts < self.sync_max_attempts:
            before = self._failures
            wait = self._next_attempt - self._clock.now()
            if wait > 0:
                self._sleep(wait)
            if self._breaker == BREAKER_OPEN:
                # sync() is the durability barrier: it may probe early
                # rather than wait out the whole cooldown.
                self._breaker = BREAKER_HALF_OPEN
            self._pump()
            if self._failures > before:
                attempts += 1
        return len(self._spill) == 0

    def close(self) -> None:
        """Final sync, then account anything still undelivered (idempotent)."""
        if self._closed:
            return
        self.sync()
        self.stats.reports_unsent += self._spill.report_count
        self._closed = True
        self._teardown_tcp()
        if self._udp_sock is not None:
            self._udp_sock.close()
            self._udp_sock = None

    def __enter__(self) -> ReportClient:
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- accounting ---------------------------------------------------------

    @property
    def breaker_state(self) -> str:
        """Current circuit-breaker state (closed / open / half-open)."""
        if (
            self._breaker == BREAKER_OPEN
            and self._clock.now() - self._breaker_opened_at >= self.breaker_cooldown_s
        ):
            return BREAKER_HALF_OPEN
        return self._breaker

    @property
    def pending_reports(self) -> int:
        """Reports sealed but not yet durably acknowledged."""
        return self._spill.report_count + len(self._batch)

    def fold_into(self, health: TraceHealth) -> TraceHealth:
        """Fold this client's counted losses into ``health``.

        Safe to call repeatedly: like
        :meth:`~repro.traces.server.TraceServer.fold_into`, only the
        delta since the previous fold is added.
        """
        lost = self.stats.reports_lost_inflight
        if self._injector is not None:
            c = self._injector.counters
            lost += c.dropped_reports + c.truncated_reports
        dropped = lost + self.stats.reports_rejected + self.stats.reports_unsent
        overflow = self._spill.overflow_reports
        health.server_dropped += dropped - self._folded_dropped
        health.spill_overflow += overflow - self._folded_overflow
        self._folded_dropped = dropped
        self._folded_overflow = overflow
        return health

    # -- batching -----------------------------------------------------------

    def _seal_batch(self) -> None:
        if not self._batch:
            return
        frame = Frame(
            shard_id=self.shard_id,
            seq=self._next_seq,
            lines=tuple(self._batch),
        )
        self._next_seq += 1
        self._batch = []
        self._spill.push(frame)
        self._udp_shipped.discard(frame.seq)

    # -- delivery -----------------------------------------------------------

    def _pump(self) -> None:
        """One delivery pass over the pending frames (never raises)."""
        if self.transport == "udp":
            self._pump_udp(pop=True)
            return
        state = self.breaker_state
        if state == BREAKER_OPEN:
            self._pump_udp(pop=False)  # degraded best-effort copies
            return
        now = self._clock.now()
        if state == BREAKER_CLOSED and now < self._next_attempt:
            return
        for frame in self._spill.pending():
            if not self._send_tcp(frame):
                break

    def _pump_udp(self, *, pop: bool) -> None:
        """Ship pending frames as datagrams.

        With ``pop=True`` (pure UDP transport) each frame leaves the
        spill buffer immediately — at-most-once, the paper's semantics
        — so any loss the client can observe must be counted here.
        With ``pop=False`` (breaker-open degradation) frames stay
        pending for the durable TCP path to ack later; each is shipped
        at most once per breaker episode and losses need no counting.
        """
        for frame in self._spill.pending():
            if not pop and frame.seq in self._udp_shipped:
                continue
            self._send_udp(frame, count_losses=pop)
            if pop:
                self._spill.ack(frame.seq)
            else:
                self._udp_shipped.add(frame.seq)

    def _send_udp(self, frame: Frame, *, count_losses: bool) -> None:
        payload = encode_frame(frame)
        if self._injector is not None:
            decision = self._injector.apply(payload, frame.count)
            payloads = decision.payloads
            # The injector already counted dropped/truncated reports.
            damage_counted = decision.dropped or decision.truncated
        else:
            payloads = [payload]
            damage_counted = False
        sent_any = False
        for data in payloads:
            try:
                self._udp_socket().send(data)
                sent_any = True
            except OSError:
                # A refused/failed datagram socket is recreated lazily;
                # the next send gets a fresh verdict.
                if self._udp_sock is not None:
                    self._udp_sock.close()
                    self._udp_sock = None
        if payloads:
            self.stats.frames_sent_udp += 1
            self.stats.reports_udp += frame.count
        if count_losses and not damage_counted and not sent_any:
            # Connection-refused: the server is gone and the frame
            # provably never left this host.
            self.stats.reports_lost_inflight += frame.count

    def _udp_socket(self) -> socket.socket:
        if self._udp_sock is None:
            sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
            # Connected, so ICMP port-unreachable surfaces as an OSError
            # on a later send instead of vanishing silently.
            sock.connect((self.host, self.udp_port))
            sock.settimeout(self.timeout_s)
            self._udp_sock = sock
        return self._udp_sock

    def _send_tcp(self, frame: Frame) -> bool:
        """Send one frame and wait for its verdict; False stops the pump."""
        try:
            sock = self._tcp_socket()
            sock.sendall(encode_frame(frame))
            line = self._read_line(sock)
        except OSError:
            self._on_tcp_failure()
            return False
        self.stats.frames_sent_tcp += 1
        verb, _, arg = line.partition(" ")
        if verb in ("OK", "DUP"):
            self._on_tcp_success()
            if self._spill.ack(frame.seq) is not None:
                self.stats.reports_acked += frame.count
            self._udp_shipped.discard(frame.seq)
            if self._obs.enabled:
                self._obs.count("ingest.client.reports_acked", frame.count)
            return True
        if verb == "RETRY-AFTER":
            # Backpressure, not failure: the server is alive but full.
            try:
                hint = float(arg)
            except ValueError:
                hint = self.retry_base_s
            self.stats.retry_after += 1
            self._next_attempt = self._clock.now() + max(hint, self.retry_base_s)
            return False
        if verb == "ERR":
            # The server quarantined this frame; resending identical
            # bytes would loop forever, so the loss is counted instead.
            self._spill.ack(frame.seq)
            self.stats.reports_rejected += frame.count
            return True
        self._on_tcp_failure()
        return False

    def _tcp_socket(self) -> socket.socket:
        if self._sock is None:
            self._sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout_s
            )
            if self._failures > 0:
                self.stats.reconnects += 1
        return self._sock

    def _read_line(self, sock: socket.socket) -> str:
        chunks = bytearray()
        while True:
            b = sock.recv(1)
            if not b:
                raise ConnectionError("server closed the connection mid-reply")
            if b == b"\n":
                return chunks.decode("utf-8", "replace")
            chunks += b
            if len(chunks) > 4096:
                raise ConnectionError("oversized reply line")

    # -- failure / breaker policy -------------------------------------------

    def backoff_delay(self, failures: int) -> float:
        """The post-failure delay: bounded exponential, seeded jitter.

        Mirrors the tracker-retry policy in the simulator
        (``base * 2^failures`` capped, stretched by up to
        ``retry_jitter`` of itself from the client's own seeded RNG).
        """
        delay = min(
            self.retry_base_s * (2.0 ** max(0, failures - 1)),
            self.retry_cap_s,
        )
        if self.retry_jitter > 0.0:
            delay *= 1.0 + self.retry_jitter * self._rng.random()
        return delay

    def _on_tcp_failure(self) -> None:
        effective = self.breaker_state  # before mutating anything
        self._teardown_tcp()
        self._failures += 1
        self.stats.tcp_failures += 1
        now = self._clock.now()
        self._next_attempt = now + self.backoff_delay(self._failures)
        if effective == BREAKER_HALF_OPEN or (
            effective == BREAKER_CLOSED
            and self._failures >= self.breaker_threshold
        ):
            # A failed half-open probe re-opens with a fresh cooldown.
            self.stats.breaker_opens += 1
            self._breaker = BREAKER_OPEN
            self._breaker_opened_at = now
            if self._obs.enabled:
                self._obs.count("ingest.client.breaker_opens")

    def _on_tcp_success(self) -> None:
        self._failures = 0
        self._breaker = BREAKER_CLOSED
        self._next_attempt = 0.0

    def _teardown_tcp(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    # -- campaign checkpoint integration --------------------------------------

    def checkpoint_state(self) -> dict[str, Any]:
        """Everything needed to resume reporting draw- and seq-identically."""
        return {
            "next_seq": self._next_seq,
            "batch": list(self._batch),
            "spill": self._spill.state(),
            "stats": vars(self.stats).copy(),
            "failures": self._failures,
            "breaker": self._breaker,
            "next_attempt": self._next_attempt,
            "breaker_opened_at": self._breaker_opened_at,
            "udp_shipped": sorted(self._udp_shipped),
            "rng": self._rng.getstate(),
            "injector": (
                self._injector.state() if self._injector is not None else None
            ),
        }

    def restore_checkpoint(self, state: dict[str, Any]) -> None:
        """Restore :meth:`checkpoint_state` output into this client."""
        self._next_seq = state["next_seq"]
        self._batch = list(state["batch"])
        self._spill = SpillBuffer.restore(state["spill"])
        for name, value in state["stats"].items():
            setattr(self.stats, name, value)
        self._failures = state["failures"]
        self._breaker = state["breaker"]
        # .get(): tolerate checkpoints written before these were captured.
        self._next_attempt = state.get("next_attempt", 0.0)
        self._breaker_opened_at = state.get("breaker_opened_at", 0.0)
        self._udp_shipped = set(state.get("udp_shipped", ()))
        self._rng.setstate(state["rng"])
        if state["injector"] is not None and self._injector is not None:
            self._injector.restore(state["injector"])
