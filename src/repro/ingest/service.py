"""The trace ingestion service: a real network collection surface.

The paper's measurement infrastructure was a set of dedicated trace
servers that hundreds of thousands of UUSee clients reported to over
the public Internet (Sec. 3.2).  The in-process
:class:`~repro.traces.server.TraceServer` models that path as a single
coin flip; :class:`TraceIngestService` replaces the coin flip with the
actual failure surface — an asyncio server on loopback accepting
length-prefixed report frames over UDP *and* TCP, where loss,
duplication, truncation, overload and crashes all genuinely happen and
must be survived:

- **loss-tolerant admission** — a malformed, oversized or damaged frame
  is quarantined and counted into :class:`~repro.traces.health
  .TraceHealth` (``parse_failures``, frame granularity); a duplicate
  (shard, seq) identity is acknowledged but not stored twice; nothing a
  client sends can crash the accept loop;
- **two-watermark backpressure** — admitted frames enter a bounded
  queue; above the high watermark TCP producers are told
  ``RETRY-AFTER`` and their sockets are not read again until the writer
  drains below the low watermark, while UDP frames are deterministically
  shed and counted into ``server_dropped``;
- **crash-tolerant exactly-once storage** — the writer appends each
  batch to a :class:`~repro.traces.segments.SegmentedTraceStore`,
  fsyncs, *then* journals the admitted (shard, seq) cursor atomically
  in ``admissions.json``, and only then acknowledges.  After a SIGKILL,
  :meth:`TraceIngestService.open` crash-recovers the segments and rolls
  the store back to the journal's durable cut, so the client's
  resend-until-acked loop never loses or duplicates a report;
- **graceful drain** — SIGTERM (or the ``SHUTDOWN`` query) stops the
  listeners, drains and commits the queue, seals the store, and
  publishes a campaign-format ``health.json`` plus a final metrics
  snapshot, exactly like a campaign that ended normally;
- **a line-oriented query API** on the TCP port (``HEALTH``,
  ``WINDOWS``, ``CHANNEL``, ``METRICS``, ``SHUTDOWN``) so ``repro
  info``/``analyze`` — or a human with ``nc`` — can inspect a live
  collection without touching its files.

Wall-clock durations are read through the
:class:`~repro.obs.clock.LoopClock` seam (QA rule REP002 covers this
package); the service itself draws no randomness at all.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
from pathlib import Path
from typing import Any, Callable

from repro.ingest.framing import (
    HEADER_SIZE,
    INSANE_PAYLOAD_BYTES,
    MAGIC,
    Frame,
    FrameError,
    decode_frame,
    decode_payload,
    parse_header,
)
from repro.ioutil import atomic_write_bytes
from repro.obs.clock import LoopClock
from repro.obs.exporters import render_prometheus
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.health import TraceHealth
from repro.traces.segments import SegmentedTraceStore
from repro.traces.store import iter_windows

#: Admission-journal file name inside the trace directory.
ADMISSIONS_NAME = "admissions.json"
#: Journal format version.
ADMISSIONS_VERSION = 1


class ShardCursor:
    """Compact record of every (shard, seq) identity admitted so far.

    The client's sequence numbers per shard are contiguous from 1, so
    the cursor is a high-water mark plus a (normally tiny) set of
    out-of-order extras — bounded state that serialises into the
    admission journal, unlike a full seen-set.
    """

    def __init__(self, contiguous: int = 0, extra: set[int] | None = None) -> None:
        self.contiguous = contiguous
        self.extra: set[int] = set(extra or ())

    def seen(self, seq: int) -> bool:
        """Whether ``seq`` was already admitted."""
        return seq <= self.contiguous or seq in self.extra

    def add(self, seq: int) -> None:
        """Mark ``seq`` admitted, absorbing extras into the watermark."""
        if self.seen(seq):
            return
        self.extra.add(seq)
        while self.contiguous + 1 in self.extra:
            self.contiguous += 1
            self.extra.discard(self.contiguous)

    def state(self) -> dict[str, Any]:
        """JSON-safe snapshot for the admission journal."""
        return {"contiguous": self.contiguous, "extra": sorted(self.extra)}

    @classmethod
    def restore(cls, state: dict[str, Any]) -> ShardCursor:
        """Rebuild a cursor from :meth:`state` output."""
        return cls(int(state["contiguous"]), {int(s) for s in state["extra"]})


@dataclasses.dataclass
class ServiceStats:
    """What the service did, at frame and report granularity."""

    frames_tcp: int = 0  # complete frames read off TCP streams
    frames_udp: int = 0  # datagrams received
    frames_admitted: int = 0  # entered the admission queue
    frames_duplicate: int = 0  # already-admitted identities turned away
    frames_quarantined: int = 0  # damaged frames refused
    frames_shed: int = 0  # refused by backpressure
    reports_stored: int = 0  # report lines durably committed
    reports_duplicate: int = 0
    reports_shed: int = 0
    retry_after_sent: int = 0  # backpressure replies to TCP producers
    commits: int = 0  # durable batch commits (fsync + journal)
    queries: int = 0  # query-API commands served
    connections: int = 0  # TCP connections accepted


class _Admission:
    """One queued frame plus the futures awaiting its durable commit."""

    __slots__ = ("frame", "waiters")

    def __init__(self, frame: Frame) -> None:
        self.frame = frame
        self.waiters: list[asyncio.Future[None]] = []


class TraceIngestService:
    """Accepts report frames on loopback and stores them exactly once.

    Construct via :meth:`open` (which handles both a fresh directory and
    crash recovery), then either ``await serve()`` inside an existing
    event loop or call :meth:`run` to own one, with SIGTERM/SIGINT
    wired to the graceful drain.
    """

    def __init__(
        self,
        store: SegmentedTraceStore,
        cursors: dict[int, ShardCursor],
        *,
        host: str = "127.0.0.1",
        tcp_port: int = 0,
        udp_port: int = 0,
        queue_high_reports: int = 8_192,
        queue_low_reports: int = 2_048,
        commit_batch_frames: int = 64,
        retry_after_s: float = 0.25,
        obs: AnyObserver = NULL_OBSERVER,
    ) -> None:
        if queue_low_reports >= queue_high_reports:
            raise ValueError("queue_low_reports must be < queue_high_reports")
        self.store = store
        self.directory = store.directory
        self.host = host
        self.tcp_port = tcp_port  # replaced by the bound port after start()
        self.udp_port = udp_port
        self.queue_high_reports = queue_high_reports
        self.queue_low_reports = queue_low_reports
        self.commit_batch_frames = commit_batch_frames
        self.retry_after_s = retry_after_s
        self.stats = ServiceStats()
        #: Live collection-side accounting (recovery repairs live in
        #: ``store.health`` and are merged into published summaries).
        self.health = TraceHealth()
        self._cursors = cursors
        self._obs = obs
        self._queue: asyncio.Queue[_Admission | None] = asyncio.Queue()
        self._queued_reports = 0
        self._pending: dict[tuple[int, int], _Admission] = {}
        self._below_low = asyncio.Event()
        self._below_low.set()
        self._shutdown = asyncio.Event()
        self._tcp_server: asyncio.AbstractServer | None = None
        self._udp_transport: asyncio.DatagramTransport | None = None
        self._writer_task: asyncio.Task[None] | None = None
        self._clock: LoopClock | None = None

    # -- construction / recovery --------------------------------------------

    @classmethod
    def open(
        cls,
        directory: str | Path,
        *,
        records_per_segment: int = 100_000,
        compress: bool = False,
        obs: AnyObserver = NULL_OBSERVER,
        **kwargs: Any,
    ) -> TraceIngestService:
        """Open ``directory`` for ingestion — fresh or after a crash.

        A directory that already holds a segmented trace is
        crash-recovered and rolled back to the admission journal's
        durable record cut: records the dead process appended but never
        journalled (and therefore never acknowledged) are discarded, so
        the client's resend makes storage exactly-once.  The journal's
        per-shard cursors come back too, turning those resends into
        acknowledged duplicates rather than double stores.
        """
        directory = Path(directory)
        manifest = directory / "manifest.json"
        cursors: dict[int, ShardCursor] = {}
        if manifest.exists():
            store = SegmentedTraceStore.recover(directory, obs=obs)
            journal = cls._load_journal(directory)
            if journal is not None:
                store.rollback(int(journal["records"]))
                cursors = {
                    int(shard): ShardCursor.restore(state)
                    for shard, state in journal["shards"].items()
                }
        else:
            store = SegmentedTraceStore(
                directory,
                records_per_segment=records_per_segment,
                compress=compress,
                obs=obs,
            )
        return cls(store, cursors, obs=obs, **kwargs)

    @staticmethod
    def _load_journal(directory: Path) -> dict[str, Any] | None:
        try:
            raw = (directory / ADMISSIONS_NAME).read_text(encoding="utf-8")
            payload = json.loads(raw)
        except (OSError, ValueError):
            return None
        if not isinstance(payload, dict) or "records" not in payload:
            return None
        return payload

    def _write_journal(self) -> None:
        """Atomically publish the durable admission cut (post-fsync)."""
        payload = {
            "version": ADMISSIONS_VERSION,
            "records": len(self.store),
            "shards": {
                str(shard): cursor.state()
                for shard, cursor in sorted(self._cursors.items())
            },
        }
        atomic_write_bytes(
            self.directory / ADMISSIONS_NAME,
            (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"),
        )

    def _cursor(self, shard_id: int) -> ShardCursor:
        cursor = self._cursors.get(shard_id)
        if cursor is None:
            cursor = self._cursors[shard_id] = ShardCursor()
        return cursor

    # -- serving -------------------------------------------------------------

    async def start(self) -> None:
        """Bind the TCP and UDP listeners and start the writer."""
        loop = asyncio.get_running_loop()
        self._clock = LoopClock(loop)
        self._tcp_server = await asyncio.start_server(
            self._handle_connection, self.host, self.tcp_port
        )
        self.tcp_port = self._tcp_server.sockets[0].getsockname()[1]
        self._udp_transport, _ = await loop.create_datagram_endpoint(
            lambda: _DatagramProtocol(self),
            local_addr=(self.host, self.udp_port),
        )
        sock = self._udp_transport.get_extra_info("sockname")
        self.udp_port = sock[1]
        self._writer_task = asyncio.create_task(self._writer())

    async def serve(self) -> None:
        """Start, run until shutdown is requested, then drain and seal."""
        await self.start()
        await self._shutdown.wait()
        await self._drain_and_seal()

    def request_shutdown(self) -> None:
        """Trigger the graceful drain (idempotent, signal-handler safe)."""
        self._shutdown.set()

    def run(
        self,
        *,
        port_file: str | Path | None = None,
        announce: "Callable[[int, int], None] | None" = None,
    ) -> None:
        """Own an event loop: serve until SIGTERM/SIGINT, then drain.

        ``port_file`` (if given) receives a one-line JSON object with
        the bound ``tcp`` and ``udp`` ports once the listeners are up —
        the rendezvous used by tests and the CLI's ``run --ingest``.
        ``announce`` is called with the bound (tcp, udp) ports at the
        same moment (the CLI prints its listening line through it).
        """
        asyncio.run(self._run_async(port_file, announce))

    async def _run_async(
        self,
        port_file: str | Path | None,
        announce: "Callable[[int, int], None] | None" = None,
    ) -> None:
        import signal

        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            # Signals only register on the main thread (tests run the
            # service on a side thread and drain via SHUTDOWN instead).
            with contextlib.suppress(
                NotImplementedError, ValueError, RuntimeError
            ):
                loop.add_signal_handler(signum, self.request_shutdown)
        await self.start()
        if port_file is not None:
            await asyncio.to_thread(
                atomic_write_bytes,
                Path(port_file),
                (
                    json.dumps({"tcp": self.tcp_port, "udp": self.udp_port})
                    + "\n"
                ).encode("utf-8"),
            )
        if announce is not None:
            announce(self.tcp_port, self.udp_port)
        await self._shutdown.wait()
        await self._drain_and_seal()

    async def _drain_and_seal(self) -> None:
        """Stop listening, commit everything queued, seal and publish."""
        if self._tcp_server is not None:
            # close() without wait_closed(): on 3.12+ the latter blocks
            # until every open reporter connection ends, which would
            # deadlock the drain against a client waiting for its ack.
            self._tcp_server.close()
        if self._udp_transport is not None:
            self._udp_transport.close()
        await self._queue.put(None)  # writer drains everything before this
        if self._writer_task is not None:
            await self._writer_task
        # Sealing fsyncs segment and journal files; keep the event loop
        # responsive (reporter acks, UDP datagrams) while disks catch up.
        await asyncio.to_thread(self.store.close)
        await asyncio.to_thread(self._write_journal)
        await asyncio.to_thread(self._publish_summary)

    def _publish_summary(self) -> None:
        """Write the campaign-format health.json plus a metrics snapshot."""
        health = self.merged_health()
        payload = {
            "ingest": True,
            "rounds_completed": None,
            "resumed_from_round": None,
            "trace_records": len(self.store),
            "health": dataclasses.asdict(health),
            "stats": dataclasses.asdict(self.stats),
        }
        atomic_write_bytes(
            self.directory / "health.json",
            (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
        if self._obs.enabled:
            atomic_write_bytes(
                self.directory / "metrics.prom",
                render_prometheus(self._obs.registry).encode("utf-8"),
            )

    def merged_health(self) -> TraceHealth:
        """Collection-side accounting merged with recovery repairs."""
        health = TraceHealth()
        health.merge(self.store.health)
        health.merge(self.health)
        return health

    # -- admission -----------------------------------------------------------

    def _admit(
        self, frame: Frame, *, datagram: bool
    ) -> asyncio.Future[None] | str:
        """Decide one decoded frame's fate.

        Returns the commit future when admitted, ``"DUP"`` for an
        already-durable identity, ``"RETRY"`` when backpressure refused
        it (UDP callers shed instead), or ``"PENDING"`` joined onto an
        in-flight admission of the same identity.
        """
        key = (frame.shard_id, frame.seq)
        if self._cursor(frame.shard_id).seen(frame.seq):
            self.stats.frames_duplicate += 1
            self.stats.reports_duplicate += frame.count
            self.health.duplicates += frame.count
            if self._obs.enabled:
                self._obs.count("ingest.frames_duplicate")
            return "DUP"
        inflight = self._pending.get(key)
        if inflight is not None:
            # Same identity already queued (a duplicated datagram, or a
            # TCP resend racing its own UDP copy): join its commit.
            future: asyncio.Future[None] = (
                asyncio.get_running_loop().create_future()
            )
            inflight.waiters.append(future)
            return future
        if self._queued_reports >= self.queue_high_reports:
            if datagram:
                self.stats.frames_shed += 1
                self.stats.reports_shed += frame.count
                self.health.server_dropped += frame.count
                if self._obs.enabled:
                    self._obs.count("ingest.reports_shed", frame.count)
            return "RETRY"
        admission = _Admission(frame)
        if not datagram:
            admission.waiters.append(asyncio.get_running_loop().create_future())
        self._pending[key] = admission
        self._queued_reports += frame.count
        if self._queued_reports >= self.queue_high_reports:
            self._below_low.clear()
        self.stats.frames_admitted += 1
        self._queue.put_nowait(admission)
        if self._obs.enabled:
            self._obs.gauge_set("ingest.queued_reports", self._queued_reports)
        return admission.waiters[0] if admission.waiters else "UDP"

    def _quarantine_frame(self, exc: FrameError, *, datagram: bool) -> None:
        self.stats.frames_quarantined += 1
        self.health.parse_failures += 1  # frame granularity (see DESIGN 9)
        if self._obs.enabled:
            self._obs.count("ingest.frames_quarantined")
            self._obs.emit(
                {
                    "type": "ingest.quarantine",
                    "transport": "udp" if datagram else "tcp",
                    "error": str(exc),
                }
            )

    # -- the writer (single consumer) -----------------------------------------

    async def _writer(self) -> None:
        """Drain the queue in batches: append, fsync, journal, ack."""
        stopping = False
        while not stopping:
            first = await self._queue.get()
            if first is None:
                break
            batch = [first]
            while len(batch) < self.commit_batch_frames:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is None:
                    stopping = True
                    break
                batch.append(nxt)
            t0 = self._clock.now() if self._clock is not None else 0.0
            await asyncio.to_thread(self._commit, [a.frame for a in batch])
            stored = 0
            for admission in batch:
                frame = admission.frame
                stored += frame.count
                self._pending.pop((frame.shard_id, frame.seq), None)
                self._queued_reports -= frame.count
                for waiter in admission.waiters:
                    if not waiter.done():
                        waiter.set_result(None)
            self.stats.commits += 1
            self.stats.reports_stored += stored
            self.health.lines_read += stored
            self.health.records_ok += stored
            if self._queued_reports <= self.queue_low_reports:
                self._below_low.set()
            if self._obs.enabled and self._clock is not None:
                self._obs.observe("ingest.commit_seconds", self._clock.now() - t0)
                self._obs.count("ingest.reports_stored", stored)
                self._obs.gauge_set("ingest.queued_reports", self._queued_reports)

    def _commit(self, frames: list[Frame]) -> None:
        """Durably store a batch, then advance the admission journal.

        Runs in a worker thread.  Order matters: lines, fsync, cursors,
        journal.  A kill between the fsync and the journal leaves a
        durable-but-unjournalled tail that :meth:`open` rolls back — the
        unacknowledged client resends it, preserving exactly-once.
        """
        for frame in frames:
            for line in frame.lines:
                self.store.append_line(line)
        self.store.sync()
        for frame in frames:
            self._cursor(frame.shard_id).add(frame.seq)
        self._write_journal()

    # -- TCP: frames and queries ----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.stats.connections += 1
        try:
            first = await reader.read(4)
            if not first:
                return
            if first == MAGIC:
                await self._frame_stream(first, reader, writer)
            else:
                await self._query_stream(first, reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # peers vanish; the accept loop must not care
        finally:
            writer.close()
            with contextlib.suppress(ConnectionError, OSError):
                await writer.wait_closed()

    async def _frame_stream(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """One reporter connection: frames in, verdict lines out."""
        head = first
        while True:
            header_bytes = head + await reader.readexactly(HEADER_SIZE - len(head))
            try:
                header = parse_header(header_bytes)
            except FrameError as exc:
                # Bad magic/version mid-stream: the length field cannot
                # be trusted, so resync is impossible — drop the
                # connection; the client reconnects and resends.
                self._quarantine_frame(exc, datagram=False)
                return
            if header.payload_len > INSANE_PAYLOAD_BYTES:
                self._quarantine_frame(
                    FrameError(f"insane payload length {header.payload_len}"),
                    datagram=False,
                )
                return
            payload = await reader.readexactly(header.payload_len)
            self.stats.frames_tcp += 1
            try:
                frame = decode_payload(header, payload)  # rejects oversize too
            except FrameError as exc:
                # The declared length was honoured, so the stream is
                # still in sync: quarantine just this frame.
                self._quarantine_frame(exc, datagram=False)
                writer.write(f"ERR {exc}\n".encode("utf-8"))
                await writer.drain()
                head = await reader.readexactly(4)
                continue
            verdict = self._admit(frame, datagram=False)
            if verdict == "DUP":
                writer.write(f"DUP {frame.seq}\n".encode("utf-8"))
            elif verdict == "RETRY":
                self.stats.retry_after_sent += 1
                if self._obs.enabled:
                    self._obs.count("ingest.retry_after_sent")
                writer.write(
                    f"RETRY-AFTER {self.retry_after_s}\n".encode("utf-8")
                )
                await writer.drain()
                # Backpressure: stop reading this producer entirely
                # until the writer drains below the low watermark.
                await self._below_low.wait()
                head = await reader.readexactly(4)
                continue
            else:
                assert isinstance(verdict, asyncio.Future)
                await verdict  # durable commit barrier — ack-after-fsync
                writer.write(f"OK {frame.seq}\n".encode("utf-8"))
            await writer.drain()
            head = await reader.readexactly(4)

    async def _query_stream(
        self,
        first: bytes,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        """Line-oriented query API (HEALTH / WINDOWS / CHANNEL / ...)."""
        rest = await reader.readline()
        line = (first + rest).decode("utf-8", "replace").strip()
        while line:
            self.stats.queries += 1
            parts = line.split()
            command = parts[0].upper()
            if command == "HEALTH":
                payload = {
                    "records": len(self.store),
                    "queued_reports": self._queued_reports,
                    "health": dataclasses.asdict(self.merged_health()),
                    "stats": dataclasses.asdict(self.stats),
                }
                writer.write((json.dumps(payload, sort_keys=True) + "\n").encode("utf-8"))
            elif command == "WINDOWS":
                window_s = float(parts[1]) if len(parts) > 1 else 600.0
                rows = await asyncio.to_thread(self._query_windows, window_s)
                writer.write((json.dumps(rows) + "\n").encode("utf-8"))
            elif command == "CHANNEL" and len(parts) == 4:
                summary = await asyncio.to_thread(
                    self._query_channel,
                    int(parts[1]),
                    float(parts[2]),
                    float(parts[3]),
                )
                writer.write((json.dumps(summary, sort_keys=True) + "\n").encode("utf-8"))
            elif command == "METRICS":
                if self._obs.enabled:
                    text = render_prometheus(self._obs.registry)
                else:
                    text = "# observability disabled\n"
                writer.write(text.encode("utf-8"))
                await writer.drain()
                return  # raw text is EOF-terminated: close the stream
            elif command == "SHUTDOWN":
                writer.write(b"OK draining\n")
                await writer.drain()
                self.request_shutdown()
                return
            else:
                writer.write(f"ERR unknown command: {line}\n".encode("utf-8"))
            await writer.drain()
            line = (await reader.readline()).decode("utf-8", "replace").strip()

    def _read_snapshot(self) -> Any:
        """A tolerant reader over everything durable right now."""
        from repro.traces.segments import SegmentedTraceReader

        self.store.flush()
        return SegmentedTraceReader(self.directory, tolerant=True)

    def _query_windows(self, window_s: float) -> list[dict[str, float]]:
        return [
            {"start": start, "reports": len(reports)}
            for start, reports in iter_windows(self._read_snapshot(), window_s)
        ]

    def _query_channel(self, channel_id: int, t0: float, t1: float) -> dict[str, Any]:
        reports = 0
        peers: set[int] = set()
        for report in self._read_snapshot():
            if report.channel_id == channel_id and t0 <= report.time < t1:
                reports += 1
                peers.add(report.peer_ip)
        return {
            "channel": channel_id,
            "start": t0,
            "end": t1,
            "reports": reports,
            "distinct_peers": len(peers),
        }

    # -- UDP ------------------------------------------------------------------

    def _handle_datagram(self, data: bytes) -> None:
        """Admit one datagram: at-most-once, loss-tolerant, crash-proof."""
        self.stats.frames_udp += 1
        try:
            frame = decode_frame(data)
        except FrameError as exc:
            self._quarantine_frame(exc, datagram=True)
            return
        self._admit(frame, datagram=True)


class _DatagramProtocol(asyncio.DatagramProtocol):
    """Feeds received datagrams into the service's admission path."""

    def __init__(self, service: TraceIngestService) -> None:
        self._service = service

    def datagram_received(self, data: bytes, addr: tuple[str, int]) -> None:
        self._service._handle_datagram(data)

    def error_received(self, exc: Exception) -> None:
        pass  # ICMP errors from vanished peers are not our problem
