"""Durable-write primitives shared by the campaign-durability layer.

Checkpoints and segment manifests must never be observable half-written:
a collector killed mid-write is this codebase's canonical failure mode
(PAPER.md Sec. 3.2), so every metadata file goes through the classic
write-temp + fsync + ``os.replace`` dance, followed by a directory fsync
so the rename itself survives a crash.
"""

from __future__ import annotations

import os
from pathlib import Path


def fsync_directory(directory: Path) -> None:
    """fsync ``directory`` so a just-renamed entry survives a power cut.

    Best effort: platforms without directory file descriptors (or
    filesystems that refuse to fsync them) silently skip the sync; the
    preceding ``os.replace`` is still atomic with respect to readers.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write ``data`` to ``path`` atomically and durably.

    The bytes land in a same-directory temp file, are flushed and
    fsynced, and only then renamed over ``path`` — a reader (or a
    recovery scan after a crash) sees either the complete old content or
    the complete new content, never a torn mixture.  Returns ``path``.
    """
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    fsync_directory(path.parent)
    return path
