"""Locality-aware selection with a tunable locality/random mix.

After Clegg et al. (arxiv 1303.6807): each candidate's score blends an
ISP-distance preference with an independent uniform draw,

    score = mix * locality + (1 - mix) * U(0, 1)

where locality is 1 for a same-ISP partner, 0.5 for a different Chinese
ISP and 0 for an overseas one.  ``mix=0`` degenerates to uniform-random
selection, ``mix=1`` to pure locality ranking; in between the parameter
monotonically shifts the intra-ISP fraction of the chosen suppliers
(the invariant the overlay tests pin).

The uniform draws come from the policy's own derived RNG stream, so a
locality campaign never perturbs the engine's named streams.
"""

from __future__ import annotations

import random
from typing import ClassVar

from repro.overlay.base import LinkLike, PartnerPolicy, PeerLike, PolicyError
from repro.overlay.registry import derive_policy_seed, register


@register
class LocalityPolicy(PartnerPolicy):
    """Tunable locality/random mix over ISP distance."""

    name: ClassVar[str] = "locality"

    def __init__(self, *, seed: int = 0, mix: float = 0.75, **params: float) -> None:
        super().__init__(seed=seed, **params)
        if not 0.0 <= mix <= 1.0:
            raise PolicyError(f"locality mix must be in [0, 1], got {mix}")
        self.mix = float(mix)
        self._rng = random.Random(derive_policy_seed(seed, self.name))

    @property
    def params(self) -> dict[str, float]:
        return {"mix": self.mix}

    @staticmethod
    def _locality(peer: PeerLike, other: PeerLike) -> float:
        if other.isp == peer.isp:
            return 1.0
        if peer.is_china and other.is_china:
            return 0.5
        return 0.0

    def _blend(self, peer: PeerLike, pid: int) -> float | None:
        other = self.engine.peers.get(pid)
        if other is None:
            return None
        u = self._rng.random()
        return self.mix * self._locality(peer, other) + (1.0 - self.mix) * u

    def select_suppliers(self, peer: PeerLike) -> None:
        if peer.is_server:
            return
        candidates: list[tuple[float, int, LinkLike]] = []
        for pid, link in peer.partners.items():
            score = self._blend(peer, pid)
            if score is None:
                continue
            candidates.append((score, pid, link))
        self._greedy_fill(peer, candidates)

    def refine_score(
        self, peer: PeerLike, pid: int, link: LinkLike, other: PeerLike
    ) -> float | None:
        u = self._rng.random()
        return self.mix * self._locality(peer, other) + (1.0 - self.mix) * u

    def order_gossip_pool(self, helper: PeerLike, pool: list[int]) -> list[int]:
        # Recommendations follow the same preference the scorer uses:
        # the helper's own-ISP partners first, then by RTT.
        return sorted(
            pool,
            key=lambda pid: (
                -self._locality(helper, self.engine.peers[pid])
                if pid in self.engine.peers
                else 1.0,
                helper.partners[pid].rtt_ms,
            ),
        )

    # -- checkpoint obligations -------------------------------------------

    def checkpoint_state(self) -> dict[str, object] | None:
        return {"rng": self._rng.getstate()}

    def restore_checkpoint(self, state: dict[str, object] | None) -> None:
        if state is None:
            return
        self._rng.setstate(state["rng"])  # type: ignore[arg-type]

    def rng_state(self) -> object | None:
        return self._rng.getstate()
