"""The :class:`PartnerPolicy` interface and its engine-facing contract.

A partner policy decides which partners a viewer actively draws the
stream from.  The exchange engine owns everything else — partnership
bookkeeping, gossip, block allocation, accounting — and delegates
exactly four decisions to the bound policy:

* :meth:`PartnerPolicy.select_suppliers` — (re)build a peer's active
  supplier set after bootstrap or a tracker refresh;
* :meth:`PartnerPolicy.refine_suppliers` — the cheaper per-tick
  incremental improvement;
* :meth:`PartnerPolicy.candidate_score` — rank one partner link (the
  engine also uses it for request priority via the same formula);
* :meth:`PartnerPolicy.order_gossip_pool` — order a gossip helper's
  recommendations before the fanout cut.

**Draw-identity contract.**  The legacy policies (``uusee``, ``random``,
``tree``) share the engine's named ``exchange`` RNG stream and must
reproduce the pre-extraction draw sequence bit-for-bit — the golden
fingerprint test pins this.  New policies must never touch the engine's
stream: they derive their own named stream hash-style from the campaign
seed (:func:`repro.overlay.registry.derive_policy_seed`), so enabling a
new policy cannot shift any existing stream.

**Checkpoint contract.**  A policy with mutable state implements
``checkpoint_state``/``restore_checkpoint`` (and ``rng_state`` when it
owns an RNG) so a resumed campaign continues draw-for-draw; the policy
spec string is part of the campaign's config token, so a checkpoint
taken under one policy refuses to restore under another.

The protocols below are *structural*: the overlay package never imports
the simulator, which keeps it strictly typecheckable in isolation and
keeps the interface honest about what a policy may touch.
"""

from __future__ import annotations

import random
from typing import ClassVar, Protocol


class PolicyError(ValueError):
    """A policy spec could not be parsed or built."""


class LinkLike(Protocol):
    """What a policy may read from a partnership link."""

    est_kbps: float
    penalty: float
    rtt_ms: float


class PeerLike(Protocol):
    """What a policy may read (and which sets it may rebuild) on a peer."""

    peer_id: int
    channel_id: int
    is_server: bool
    is_china: bool
    isp: str
    depth: int
    partners: dict[int, LinkLike]
    suppliers: set[int]


class ChannelConstsLike(Protocol):
    """Per-channel derived protocol constants (see ``ExchangeEngine``)."""

    rate_kbps: float
    request_cap: float
    demand: float
    demand_standby: float


class ProtocolConfigLike(Protocol):
    """The protocol constants selection logic reads."""

    reciprocation_bonus: float
    min_useful_link_kbps: float
    max_active_suppliers: int


class EngineLike(Protocol):
    """The slice of the exchange engine a bound policy may use.

    ``rng`` is the engine's named ``exchange`` stream — *legacy policies
    only*.  ``clock`` is the engine's notion of current simulated time,
    maintained at every entry point that can reach a policy; structured
    policies use it to timestamp the links they materialise.
    """

    peers: dict[int, PeerLike]
    config: ProtocolConfigLike
    rng: random.Random
    clock: float

    def connect(self, a: PeerLike, b: PeerLike, now: float) -> bool: ...

    def _consts(self, channel_id: int) -> ChannelConstsLike: ...


class PartnerPolicy:
    """Base class: shared greedy fill, refinement loop and no-op state.

    Subclasses set :attr:`name` (the registry key), implement
    :meth:`select_suppliers`, and override the hooks they need.  The
    base implementations reproduce the UUSee selection machinery
    exactly, so score-based policies only supply scores.
    """

    #: Registry key; also the policy's RNG stream tag.
    name: ClassVar[str] = ""
    #: True when request priority must ignore measured link quality
    #: (the RANDOM ablation's stable pseudo-random order per link).
    blind_requests: ClassVar[bool] = False

    #: Bound by :meth:`bind`; declared here for the type checker.
    engine: EngineLike  # repro: noqa[REP101] runtime wiring; bind() runs at construction, before any restore

    def __init__(self, *, seed: int = 0, **params: float) -> None:
        if params:
            unknown = ", ".join(sorted(params))
            raise PolicyError(
                f"policy {self.name!r} does not accept parameter(s): {unknown}"
            )
        self._seed = seed

    def bind(self, engine: EngineLike) -> None:
        """Attach to the engine that will consult this policy."""
        self.engine = engine

    # -- identity ----------------------------------------------------------

    @property
    def params(self) -> dict[str, float]:
        """The policy's tunable parameters (empty for parameterless ones)."""
        return {}

    def spec(self) -> str:
        """Canonical ``name[:key=val,...]`` form (sorted keys)."""
        params = self.params
        if not params:
            return self.name
        body = ",".join(f"{k}={params[k]:g}" for k in sorted(params))
        return f"{self.name}:{body}"

    # -- scoring -----------------------------------------------------------

    def candidate_score(self, peer: PeerLike, pid: int, link: LinkLike) -> float:
        """UUSee's measured-quality score with the reciprocation bonus."""
        engine = self.engine
        score = link.est_kbps / link.penalty
        other = engine.peers.get(pid)
        if other is not None and peer.peer_id in other.suppliers:
            # mutual exchange preference
            score *= 1.0 + engine.config.reciprocation_bonus
        return score

    # -- selection ---------------------------------------------------------

    def select_suppliers(self, peer: PeerLike) -> None:
        """(Re)build ``peer.suppliers`` from its partner list."""
        raise NotImplementedError

    def _greedy_fill(
        self, peer: PeerLike, candidates: list[tuple[float, int, LinkLike]]
    ) -> None:
        """Greedy demand fill over scored candidates (the UUSee loop).

        Sorts by (-score, pid) and admits candidates until the standby
        demand budget or the active-supplier cap is reached, budgeting
        each link's contribution at its capped estimate (floored at the
        useful minimum).  Bit-identical to the pre-extraction inline
        loop.
        """
        engine = self.engine
        cfg = engine.config
        consts = engine._consts(peer.channel_id)
        demand = consts.demand_standby
        cap = consts.request_cap
        candidates.sort(key=lambda t: (-t[0], t[1]))

        min_useful = cfg.min_useful_link_kbps
        max_active = cfg.max_active_suppliers
        chosen: set[int] = set()
        expected = 0.0
        for _, pid, link in candidates:
            if expected >= demand or len(chosen) >= max_active:
                break
            est = link.est_kbps
            contribution = max(min_useful, est if est < cap else cap)
            chosen.add(pid)
            expected += contribution
        peer.suppliers = chosen

    # -- refinement --------------------------------------------------------

    def refine_score(
        self, peer: PeerLike, pid: int, link: LinkLike, other: PeerLike
    ) -> float | None:
        """Score a non-supplier candidate during refinement; None skips it."""
        return self.candidate_score(peer, pid, link)

    def refine_suppliers(self, peer: PeerLike, *, sample_size: int = 10) -> None:
        """Incremental improvement: drop useless suppliers, try new ones.

        Cheaper than full reselection and closer to how a running client
        behaves: it reacts to measured throughput rather than re-ranking
        everything.  Draw-identical to the pre-extraction engine method.
        """
        if peer.is_server:
            return
        engine = self.engine
        cfg = engine.config
        consts = engine._consts(peer.channel_id)
        demand = consts.demand_standby
        cap = consts.request_cap

        # Drop dead suppliers and those measured below the useful floor.
        for pid in list(peer.suppliers):
            other = engine.peers.get(pid)
            link = peer.partners.get(pid)
            if other is None or link is None:
                peer.suppliers.discard(pid)
            elif link.est_kbps < cfg.min_useful_link_kbps:
                peer.suppliers.discard(pid)

        # Sorted so the float sum is identical regardless of set-table
        # history (a checkpoint round-trip rebuilds the set and may
        # change raw iteration order).
        expected = sum(
            min(peer.partners[pid].est_kbps, cap)
            for pid in sorted(peer.suppliers)
            if pid in peer.partners
        )
        if expected >= demand or len(peer.suppliers) >= cfg.max_active_suppliers:
            return

        # Try the best of a small random sample of non-supplier partners.
        non_suppliers = [
            pid for pid in peer.partners if pid not in peer.suppliers
        ]
        if not non_suppliers:
            return
        if len(non_suppliers) > sample_size:
            pool = engine.rng.sample(non_suppliers, sample_size)
        else:
            pool = non_suppliers
        scored: list[tuple[float, int]] = []
        for pid in pool:
            other = engine.peers.get(pid)
            if other is None:
                continue
            score = self.refine_score(peer, pid, peer.partners[pid], other)
            if score is None:
                continue
            scored.append((score, pid))
        scored.sort(reverse=True)
        for _, pid in scored:
            if expected >= demand or len(peer.suppliers) >= cfg.max_active_suppliers:
                break
            link = peer.partners[pid]
            peer.suppliers.add(pid)
            est = link.est_kbps
            expected += max(cfg.min_useful_link_kbps, est if est < cap else cap)

    # -- gossip ------------------------------------------------------------

    def order_gossip_pool(self, helper: PeerLike, pool: list[int]) -> list[int]:
        """Order a helper's recommendation pool before the fanout cut.

        The default prefers the helper's best-RTT partners — largely its
        own ISP — which is how recommendations propagate intra-ISP
        structure and close triangles.
        """
        return sorted(pool, key=lambda pid: helper.partners[pid].rtt_ms)

    # -- checkpoint obligations -------------------------------------------

    def checkpoint_state(self) -> dict[str, object] | None:
        """Everything mutable the policy owns, or None for stateless ones."""
        return None

    def restore_checkpoint(self, state: dict[str, object] | None) -> None:
        """Restore what :meth:`checkpoint_state` captured (no-op base)."""

    def rng_state(self) -> object | None:
        """The policy's own RNG state, or None when it shares the engine's.

        Folded into :func:`repro.simulator.checkpoint.draw_fingerprint`
        only when not None, so legacy policies leave the fingerprint of
        pre-overlay builds byte-identical.
        """
        return None
