"""Policy registry, spec parsing and per-policy RNG seed derivation.

A policy is addressed by a *spec string*::

    uusee
    locality:mix=0.8
    hamiltonian:k=3
    random-regular:d=4

``name`` keys the registry; ``key=val`` pairs become constructor
keyword arguments (ints stay ints, everything else parses as float).
:func:`canonical_spec` renders the parsed form back with sorted keys so
equal configurations hash to equal checkpoint config tokens regardless
of how the user ordered the parameters.
"""

from __future__ import annotations

import hashlib

from repro.overlay.base import PartnerPolicy, PolicyError

_REGISTRY: dict[str, type[PartnerPolicy]] = {}


def register(cls: type[PartnerPolicy]) -> type[PartnerPolicy]:
    """Class decorator: add a policy to the registry under ``cls.name``."""
    if not cls.name:
        raise PolicyError(f"{cls.__qualname__} has no name")
    if cls.name in _REGISTRY:
        raise PolicyError(f"duplicate policy name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def available_policies() -> list[str]:
    """Registered policy names, sorted."""
    return sorted(_REGISTRY)


def _parse_value(text: str) -> float:
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError as exc:
        raise PolicyError(f"policy parameter value {text!r} is not a number") from exc


def parse_policy_spec(spec: str) -> tuple[str, dict[str, float]]:
    """Split ``name[:key=val,...]`` into a name and a parameter dict."""
    name, _, rest = spec.strip().partition(":")
    name = name.strip()
    if not name:
        raise PolicyError(f"empty policy name in spec {spec!r}")
    params: dict[str, float] = {}
    if rest:
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key:
                raise PolicyError(
                    f"malformed policy parameter {item!r} in spec {spec!r} "
                    "(expected key=value)"
                )
            params[key] = _parse_value(value.strip())
    return name, params


def canonical_spec(name: str, params: dict[str, float]) -> str:
    """Render a parsed spec back to its canonical (sorted-key) string."""
    if not params:
        return name
    body = ",".join(f"{k}={params[k]:g}" for k in sorted(params))
    return f"{name}:{body}"


def derive_policy_seed(seed: int, name: str) -> int:
    """A policy's own RNG seed, derived from the campaign seed by hash.

    Deriving (instead of drawing from the master seed chain) means a
    policy stream can be added without shifting the ``seed_for()`` order
    that every existing named stream depends on — the same idiom as
    ``repro.fleet.plan.shard_seed``.
    """
    digest = hashlib.sha256(f"repro.overlay:{seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


def build_policy(spec: str, *, seed: int = 0) -> PartnerPolicy:
    """Instantiate the policy a spec string names.

    ``seed`` is the campaign seed; policies that own an RNG derive their
    stream from it via :func:`derive_policy_seed`.
    """
    name, params = parse_policy_spec(spec)
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(available_policies())
        raise PolicyError(f"unknown partner policy {name!r} (available: {known})")
    try:
        return cls(seed=seed, **params)
    except TypeError as exc:
        raise PolicyError(f"bad parameters for policy {name!r}: {exc}") from exc
