"""d-regular random digraph: every viewer draws from d random members.

Each viewer is assigned exactly ``d`` suppliers sampled uniformly
(policy RNG) from the other live members of its channel — servers
included, so the stream has entry points.  Churn triggers local
rewiring: dead suppliers are replaced by fresh uniform samples, so the
in-degree stays ``min(d, |channel| - 1)`` at all times (the invariant
the overlay tests pin).  The resulting active topology is the classic
random regular digraph baseline of Kim & Srikant (arxiv 1207.3110),
with clustering near the G(n, m) baseline and no ISP locality.
"""

from __future__ import annotations

import random
from typing import ClassVar

from repro.overlay.base import PartnerPolicy, PeerLike, PolicyError
from repro.overlay.registry import derive_policy_seed, register


@register
class RandomRegularPolicy(PartnerPolicy):
    """d-regular random supplier assignment with rewiring under churn."""

    name: ClassVar[str] = "random-regular"

    def __init__(self, *, seed: int = 0, d: float = 4, **params: float) -> None:
        super().__init__(seed=seed, **params)
        self.d = int(d)
        if self.d < 1 or self.d != d:
            raise PolicyError(f"random-regular d must be a positive integer, got {d}")
        self._rng = random.Random(derive_policy_seed(seed, self.name))
        #: channel -> viewer -> assigned supplier tuple.
        self._assigned: dict[int, dict[int, tuple[int, ...]]] = {}

    @property
    def params(self) -> dict[str, float]:
        return {"d": self.d}

    # -- assignment maintenance -------------------------------------------

    def _sync(self, channel_id: int) -> None:
        """Drop dead nodes, rewire dead suppliers, top up joiners."""
        engine = self.engine
        members = sorted(
            pid for pid, p in engine.peers.items() if p.channel_id == channel_id
        )
        member_set = set(members)
        table = self._assigned.setdefault(channel_id, {})
        for pid in sorted(pid for pid in table if pid not in member_set):
            del table[pid]
        want_cap = min(self.d, len(members) - 1)
        for pid in members:
            if engine.peers[pid].is_server:
                continue
            current = [s for s in table.get(pid, ()) if s in member_set]
            if len(current) < want_cap:
                have = set(current)
                candidates = [
                    c for c in members if c != pid and c not in have
                ]
                current.extend(
                    self._rng.sample(candidates, want_cap - len(current))
                )
            elif len(current) > want_cap:
                current = current[:want_cap]
            table[pid] = tuple(current)

    def assigned(self, channel_id: int) -> dict[int, tuple[int, ...]]:
        """Copy of the channel's assignment table (for tests/inspection)."""
        return dict(self._assigned.get(channel_id, {}))

    # -- selection ---------------------------------------------------------

    def select_suppliers(self, peer: PeerLike) -> None:
        if peer.is_server:
            return
        engine = self.engine
        self._sync(peer.channel_id)
        chosen: set[int] = set()
        for pid in self._assigned[peer.channel_id].get(peer.peer_id, ()):
            other = engine.peers.get(pid)
            if other is None:
                continue
            if pid not in peer.partners:
                engine.connect(peer, other, engine.clock)
            if pid in peer.partners:
                chosen.add(pid)
        peer.suppliers = chosen

    def refine_suppliers(self, peer: PeerLike, *, sample_size: int = 10) -> None:
        # Rewiring happens in _sync; re-derive the supplier set from it.
        self.select_suppliers(peer)

    # -- checkpoint obligations -------------------------------------------

    def checkpoint_state(self) -> dict[str, object] | None:
        return {
            "rng": self._rng.getstate(),
            "assigned": {
                channel: dict(sorted(table.items()))
                for channel, table in sorted(self._assigned.items())
            },
        }

    def restore_checkpoint(self, state: dict[str, object] | None) -> None:
        if state is None:
            return
        assigned = state["assigned"]
        assert isinstance(assigned, dict)
        self._rng.setstate(state["rng"])  # type: ignore[arg-type]
        self._assigned = {
            channel: dict(table) for channel, table in assigned.items()
        }

    def rng_state(self) -> object | None:
        return self._rng.getstate()
