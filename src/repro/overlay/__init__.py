"""Pluggable partner-selection policies — the overlay lab (DESIGN.md Sec. 11).

Magellan's headline findings are properties of UUSee's *particular*
partner-selection protocol.  This package turns that protocol into one
implementation of a :class:`~repro.overlay.base.PartnerPolicy`
interface and ships alternatives from the related literature behind a
registry, so the identical simulator, trace pipeline and metric suite
measure every overlay:

- ``uusee`` — measured-quality greedy selection (the paper's protocol),
  extracted draw-identically from the exchange engine;
- ``random`` / ``tree`` — the pre-existing ablations;
- ``locality`` — tunable locality/random mix over ISP distance
  (Clegg et al., arxiv 1303.6807), ``mix`` in [0, 1];
- ``hamiltonian`` — k random Hamiltonian cycles per channel, maintained
  under churn (Kim & Srikant, arxiv 1207.3110);
- ``random-regular`` — d-regular random digraph with rewiring;
- ``strandcast`` — single-chain baseline (one strand per channel).

Select a policy with a spec string (``run --policy locality:mix=0.8``);
``repro compare-overlays`` runs the full Magellan metric suite across
policies.
"""

from repro.overlay.base import (
    EngineLike,
    LinkLike,
    PartnerPolicy,
    PeerLike,
    PolicyError,
)
from repro.overlay.registry import (
    available_policies,
    build_policy,
    canonical_spec,
    derive_policy_seed,
    parse_policy_spec,
    register,
)

# Importing the implementation modules populates the registry.
from repro.overlay.legacy import RandomPolicy, TreePolicy, UUSeePolicy
from repro.overlay.locality import LocalityPolicy
from repro.overlay.hamiltonian import HamiltonianPolicy
from repro.overlay.regular import RandomRegularPolicy
from repro.overlay.strandcast import StrandCastPolicy

__all__ = [
    "EngineLike",
    "LinkLike",
    "PartnerPolicy",
    "PeerLike",
    "PolicyError",
    "available_policies",
    "build_policy",
    "canonical_spec",
    "derive_policy_seed",
    "parse_policy_spec",
    "register",
    "UUSeePolicy",
    "RandomPolicy",
    "TreePolicy",
    "LocalityPolicy",
    "HamiltonianPolicy",
    "RandomRegularPolicy",
    "StrandCastPolicy",
]
