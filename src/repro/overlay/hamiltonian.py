"""k random Hamiltonian cycles per channel, maintained under churn.

After Kim & Srikant (arxiv 1207.3110): the channel population (servers
included, so the stream enters the overlay at k places) is arranged in
``k`` independent random cycles.  A peer's suppliers are its cycle
predecessors, so every viewer has indegree <= k and the union of the
cycles is a k-regular random digraph with guaranteed connectivity per
cycle.

Churn maintenance is local: a leaving member's predecessor is spliced
to its successor; a joining member is spliced in at a position chosen
uniformly by the policy's own RNG.  Each next-map therefore remains a
single cycle covering exactly the live channel members — the invariant
the overlay tests walk.
"""

from __future__ import annotations

import random
from typing import ClassVar

from repro.overlay.base import PartnerPolicy, PeerLike, PolicyError
from repro.overlay.registry import derive_policy_seed, register


@register
class HamiltonianPolicy(PartnerPolicy):
    """k random Hamiltonian cycles over each channel population."""

    name: ClassVar[str] = "hamiltonian"

    def __init__(self, *, seed: int = 0, k: float = 2, **params: float) -> None:
        super().__init__(seed=seed, **params)
        self.k = int(k)
        if self.k < 1 or self.k != k:
            raise PolicyError(f"hamiltonian k must be a positive integer, got {k}")
        self._rng = random.Random(derive_policy_seed(seed, self.name))
        #: channel -> k successor maps; each is one cycle over members.
        self._next: dict[int, list[dict[int, int]]] = {}
        #: Inverse maps, kept in lockstep (rebuilt from _next on restore).
        self._prev: dict[int, list[dict[int, int]]] = {}

    @property
    def params(self) -> dict[str, float]:
        return {"k": self.k}

    # -- cycle maintenance -------------------------------------------------

    def _sync(self, channel_id: int) -> None:
        """Make every cycle cover exactly the live channel members."""
        engine = self.engine
        alive = sorted(
            pid for pid, p in engine.peers.items() if p.channel_id == channel_id
        )
        alive_set = set(alive)
        nexts = self._next.setdefault(
            channel_id, [{} for _ in range(self.k)]
        )
        prevs = self._prev.setdefault(
            channel_id, [{} for _ in range(self.k)]
        )
        for nxt, prv in zip(nexts, prevs):
            # Departures first: bridge predecessor -> successor.
            for pid in sorted(pid for pid in nxt if pid not in alive_set):
                succ = nxt.pop(pid)
                pred = prv.pop(pid)
                if pred != pid:
                    nxt[pred] = succ
                    prv[succ] = pred
            # Then joins: splice in at a uniformly random position.
            for pid in alive:
                if pid in nxt:
                    continue
                if not nxt:
                    nxt[pid] = pid
                    prv[pid] = pid
                    continue
                anchor = self._rng.choice(sorted(nxt))
                succ = nxt[anchor]
                nxt[anchor] = pid
                nxt[pid] = succ
                prv[pid] = anchor
                prv[succ] = pid

    def cycles(self, channel_id: int) -> list[dict[int, int]]:
        """Copies of the channel's successor maps (for tests/inspection)."""
        return [dict(m) for m in self._next.get(channel_id, [])]

    # -- selection ---------------------------------------------------------

    def select_suppliers(self, peer: PeerLike) -> None:
        if peer.is_server:
            return
        engine = self.engine
        self._sync(peer.channel_id)
        chosen: set[int] = set()
        for prv in self._prev[peer.channel_id]:
            pred = prv.get(peer.peer_id)
            if pred is None or pred == peer.peer_id:
                continue
            other = engine.peers.get(pred)
            if other is None:
                continue
            if pred not in peer.partners:
                engine.connect(peer, other, engine.clock)
            if pred in peer.partners:
                chosen.add(pred)
        peer.suppliers = chosen

    def refine_suppliers(self, peer: PeerLike, *, sample_size: int = 10) -> None:
        # The structure *is* the refinement: re-derive from the cycles.
        self.select_suppliers(peer)

    # -- checkpoint obligations -------------------------------------------

    def checkpoint_state(self) -> dict[str, object] | None:
        return {
            "rng": self._rng.getstate(),
            "next": {
                channel: [dict(m) for m in maps]
                for channel, maps in sorted(self._next.items())
            },
        }

    def restore_checkpoint(self, state: dict[str, object] | None) -> None:
        if state is None:
            return
        rng_state = state["rng"]
        nexts = state["next"]
        assert isinstance(nexts, dict)
        self._rng.setstate(rng_state)  # type: ignore[arg-type]
        self._next = {
            channel: [dict(m) for m in maps] for channel, maps in nexts.items()
        }
        self._prev = {
            channel: [{succ: pred for pred, succ in m.items()} for m in maps]
            for channel, maps in self._next.items()
        }

    def rng_state(self) -> object | None:
        return self._rng.getstate()
