"""StrandCast: a single ordered chain of viewers per channel.

The degenerate baseline overlay: viewers form one linear strand, each
drawing the stream from its predecessor; the head of the strand draws
straight from the channel's streaming server.  Joins append to the
tail, leaves bridge the gap — both O(1) membership changes, no
randomness at all.  Topologically this is the anti-UUSee control:
indegree is exactly 1, clustering and reciprocity are zero, and depth
grows linearly with population, which is precisely what makes it a
useful far-end anchor in the ``compare-overlays`` study.
"""

from __future__ import annotations

from typing import ClassVar

from repro.overlay.base import PartnerPolicy, PeerLike
from repro.overlay.registry import register


@register
class StrandCastPolicy(PartnerPolicy):
    """Single-chain forwarding: each viewer supplies the next in line."""

    name: ClassVar[str] = "strandcast"

    def __init__(self, *, seed: int = 0, **params: float) -> None:
        super().__init__(seed=seed, **params)
        #: channel -> viewer pids in strand order (head first).
        self._chains: dict[int, list[int]] = {}

    # -- strand maintenance ------------------------------------------------

    def _sync(self, channel_id: int) -> None:
        """Drop departed viewers (bridging the gap), append joiners."""
        engine = self.engine
        viewers = {
            pid
            for pid, p in engine.peers.items()
            if p.channel_id == channel_id and not p.is_server
        }
        chain = self._chains.setdefault(channel_id, [])
        chain[:] = [pid for pid in chain if pid in viewers]
        present = set(chain)
        for pid in sorted(viewers - present):
            chain.append(pid)

    def _server_for(self, channel_id: int) -> int | None:
        servers = [
            pid
            for pid, p in self.engine.peers.items()
            if p.channel_id == channel_id and p.is_server
        ]
        return min(servers) if servers else None

    def chain(self, channel_id: int) -> list[int]:
        """Copy of the channel's strand order (for tests/inspection)."""
        return list(self._chains.get(channel_id, []))

    # -- selection ---------------------------------------------------------

    def select_suppliers(self, peer: PeerLike) -> None:
        if peer.is_server:
            return
        engine = self.engine
        self._sync(peer.channel_id)
        chain = self._chains[peer.channel_id]
        idx = chain.index(peer.peer_id)
        pred = chain[idx - 1] if idx > 0 else self._server_for(peer.channel_id)
        chosen: set[int] = set()
        if pred is not None:
            other = engine.peers.get(pred)
            if other is not None:
                if pred not in peer.partners:
                    engine.connect(peer, other, engine.clock)
                if pred in peer.partners:
                    chosen.add(pred)
        peer.suppliers = chosen

    def refine_suppliers(self, peer: PeerLike, *, sample_size: int = 10) -> None:
        # The strand *is* the refinement: re-derive the predecessor.
        self.select_suppliers(peer)

    # -- checkpoint obligations -------------------------------------------

    def checkpoint_state(self) -> dict[str, object] | None:
        return {
            "chains": {
                channel: list(chain)
                for channel, chain in sorted(self._chains.items())
            }
        }

    def restore_checkpoint(self, state: dict[str, object] | None) -> None:
        if state is None:
            return
        chains = state["chains"]
        assert isinstance(chains, dict)
        self._chains = {channel: list(chain) for channel, chain in chains.items()}
