"""The three pre-overlay policies, extracted draw-identically.

These reproduce the selection logic that used to be inlined in
``ExchangeEngine.select_suppliers``/``refine_suppliers``: every float
expression, iteration order and RNG draw is byte-for-byte the same, so
the golden fingerprint test (``tests/simulator/test_exchange_golden``)
pins the extraction.  All three share the engine's named ``exchange``
RNG stream and carry no state of their own.
"""

from __future__ import annotations

from typing import ClassVar

from repro.overlay.base import LinkLike, PartnerPolicy, PeerLike
from repro.overlay.registry import register


@register
class UUSeePolicy(PartnerPolicy):
    """Measured-quality greedy selection with a reciprocation preference.

    The real protocol, per the paper: score = estimated throughput
    discounted by a quadratic RTT penalty, boosted for mutual exchange,
    filled greedily against the standby demand budget.
    """

    name: ClassVar[str] = "uusee"

    def select_suppliers(self, peer: PeerLike) -> None:
        if peer.is_server:
            return
        engine = self.engine
        peers_get = engine.peers.get
        peer_id = peer.peer_id
        bonus1 = 1.0 + engine.config.reciprocation_bonus

        # Inlined candidate_score: this loop dominates selection cost.
        candidates: list[tuple[float, int, LinkLike]] = []
        for pid, link in peer.partners.items():
            other = peers_get(pid)
            if other is None:
                continue
            score = link.est_kbps / link.penalty
            if peer_id in other.suppliers:
                score *= bonus1
            candidates.append((score, pid, link))
        self._greedy_fill(peer, candidates)


@register
class RandomPolicy(PartnerPolicy):
    """Uniform choice among partners — the ablation that should destroy
    ISP clustering (DESIGN.md Sec. 4).  Request priority is blind too:
    a stable pseudo-random order per link instead of measured quality.
    """

    name: ClassVar[str] = "random"
    blind_requests: ClassVar[bool] = True

    def select_suppliers(self, peer: PeerLike) -> None:
        if peer.is_server:
            return
        engine = self.engine
        peers_get = engine.peers.get
        rng = engine.rng
        candidates: list[tuple[float, int, LinkLike]] = []
        for pid, link in peer.partners.items():
            if peers_get(pid) is None:
                continue
            candidates.append((rng.random(), pid, link))
        self._greedy_fill(peer, candidates)

    def refine_score(
        self, peer: PeerLike, pid: int, link: LinkLike, other: PeerLike
    ) -> float | None:
        return self.engine.rng.random()

    def order_gossip_pool(self, helper: PeerLike, pool: list[int]) -> list[int]:
        # No RTT preference: recommendations stay in sampled order.
        return pool


@register
class TreePolicy(PartnerPolicy):
    """Only partners strictly closer to the streaming server may supply
    — the ablation that should drive edge reciprocity negative.
    """

    name: ClassVar[str] = "tree"

    def select_suppliers(self, peer: PeerLike) -> None:
        if peer.is_server:
            return
        engine = self.engine
        peers_get = engine.peers.get
        candidates: list[tuple[float, int, LinkLike]] = []
        for pid, link in peer.partners.items():
            other = peers_get(pid)
            if other is None:
                continue
            if other.depth >= peer.depth and not other.is_server:
                continue
            score = link.est_kbps / link.penalty
            candidates.append((score, pid, link))
        self._greedy_fill(peer, candidates)

    def refine_score(
        self, peer: PeerLike, pid: int, link: LinkLike, other: PeerLike
    ) -> float | None:
        if other.depth >= peer.depth and not other.is_server:
            return None
        return self.candidate_score(peer, pid, link)
