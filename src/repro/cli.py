"""Command-line interface: ``python -m repro <command>``.

Seven subcommands cover the whole pipeline:

- ``simulate`` — run a UUSee deployment and write its Magellan trace;
- ``run``      — run a crash-safe campaign (segmented trace directory +
  periodic checkpoints); ``--resume`` continues a killed campaign,
  ``--shards N`` partitions the channels across N supervised worker
  subprocesses (heartbeats, crash-resume, poison-shard quarantine),
  ``--obs-dir`` records live metrics/spans while it runs, and
  ``--ingest`` ships reports over the network to a ``repro serve``
  ingestion server instead of writing locally; SIGTERM/SIGINT stop
  gracefully (final checkpoint, sealed trace, exit code 3);
- ``serve``    — run the trace ingestion service (UDP + TCP on
  loopback, crash-tolerant admission, SIGTERM drains gracefully);
- ``analyze``  — regenerate any paper figure (or all) from a trace file
  or campaign directory, printing series (or ``--json``) and optionally
  exporting CSV;
- ``info``     — summarise a trace (span, peers, reports, dynamics), or
  query a live ingest server's health with ``--server``;
- ``obs``      — observability utilities (``obs summarize <dir>``);
- ``qa``       — determinism & correctness static analysis (the CI gate);
- ``compare-overlays`` — run the same deployment under every
  partner-selection policy (``--policies``) and print the cross-policy
  Magellan metric table (DESIGN.md Sec. 11).

``simulate``/``run`` accept ``--policy NAME[:key=val,...]`` specs from
the overlay registry (``uusee``, ``random``, ``tree``, ``locality``,
``hamiltonian``, ``random-regular``, ``strandcast``).
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import io
import json
import sys
from pathlib import Path

from repro.core import experiments as ex
from repro.core.dynamics import (
    partner_stability,
    population_turnover,
    session_statistics,
)
from repro.core.report import (
    format_series,
    format_table,
    format_trace_health,
    write_csv,
)
from repro.obs.exporters import create_observer, finalize_observer
from repro.obs.summarize import render_summary
from repro.overlay import PolicyError, available_policies
from repro.qa.cli import add_qa_arguments, run_qa
from repro.simulator.checkpoint import CheckpointError
from repro.simulator.protocol import SelectionPolicy
from repro.traces.segments import SegmentedTraceReader
from repro.traces.store import TolerantTraceReader, TraceReader

FIGURES = ("fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Magellan (ICDCS 2007) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="simulate a deployment to a trace file")
    sim.add_argument("--out", type=Path, required=True, help="trace path (.jsonl[.gz])")
    sim.add_argument("--days", type=float, default=2.0)
    sim.add_argument("--base", type=float, default=500.0, help="base concurrency")
    sim.add_argument("--seed", type=int, default=2006)
    sim.add_argument(
        "--policy",
        default=SelectionPolicy.UUSEE.value,
        metavar="SPEC",
        help="partner-selection policy spec NAME[:key=val,...] "
        f"(available: {', '.join(available_policies())})",
    )
    sim.add_argument(
        "--no-flash-crowd",
        action="store_true",
        help="disable the day-5 flash crowd event",
    )
    sim.add_argument(
        "--engine",
        choices=("object", "soa", "soa-exact"),
        default="object",
        help="exchange backend: object (reference), soa (vectorised, "
        "own RNG contract), soa-exact (vectorised gather, draw-identical "
        "to object)",
    )

    run = sub.add_parser(
        "run",
        help="crash-safe campaign: segmented trace + checkpoints (--resume)",
    )
    run.add_argument(
        "--trace-dir", type=Path, required=True,
        help="campaign directory (rotating trace segments + manifest)",
    )
    run.add_argument(
        "--checkpoint-dir", type=Path,
        help="checkpoint directory (default: <trace-dir>/checkpoints)",
    )
    run.add_argument(
        "--resume", action="store_true",
        help="restore the newest valid checkpoint, recover the trace "
        "store and continue the campaign (with --shards: resume every "
        "shard in place)",
    )
    run.add_argument(
        "--shards", type=int, default=1, metavar="N",
        help="partition the campaign's channels across N supervised "
        "worker subprocesses (crash-resume, backoff, quarantine); "
        "their traces merge deterministically when all finish",
    )
    run.add_argument(
        "--max-restarts", type=int, default=3, metavar="K",
        help="consecutive no-progress failures before a shard is "
        "quarantined as poisoned (fleet mode)",
    )
    run.add_argument(
        "--heartbeat-timeout", type=float, default=30.0, metavar="SECONDS",
        help="worker silence tolerated before it is declared hung "
        "and SIGKILLed (fleet mode)",
    )
    run.add_argument(
        "--progress-timeout", type=float, default=120.0, metavar="SECONDS",
        help="longest a worker may heartbeat without completing new "
        "rounds before it is declared hung (fleet mode)",
    )
    run.add_argument("--days", type=float, default=2.0)
    run.add_argument("--base", type=float, default=500.0, help="base concurrency")
    run.add_argument("--seed", type=int, default=2006)
    run.add_argument(
        "--policy",
        default=SelectionPolicy.UUSEE.value,
        metavar="SPEC",
        help="partner-selection policy spec NAME[:key=val,...] "
        f"(available: {', '.join(available_policies())})",
    )
    run.add_argument(
        "--no-flash-crowd", action="store_true",
        help="disable the day-5 flash crowd event",
    )
    run.add_argument(
        "--engine",
        choices=("object", "soa", "soa-exact"),
        default="object",
        help="exchange backend (checkpoints pin it: resume with the "
        "same --engine)",
    )
    run.add_argument(
        "--checkpoint-every", type=int, default=36, metavar="ROUNDS",
        help="checkpoint every N completed rounds (default 36 = 6 h)",
    )
    run.add_argument(
        "--keep-last", type=int, default=3,
        help="checkpoints retained in rotation",
    )
    run.add_argument(
        "--segment-records", type=int, default=100_000,
        help="records per trace segment before rotation",
    )
    run.add_argument(
        "--compress", action="store_true", help="gzip trace segments"
    )
    run.add_argument(
        "--fsync", action="store_true",
        help="fsync the trace on every flush (bounds power-cut loss)",
    )
    run.add_argument(
        "--obs-dir", type=Path,
        help="record observability data (metrics + spans) into this "
        "directory; inspect it with `repro obs summarize`",
    )
    run.add_argument(
        "--ingest", metavar="TARGET",
        help="report to a running `repro serve` instead of a local "
        "store: HOST:TCP[:UDP] or the path of its --port-file",
    )
    run.add_argument(
        "--ingest-transport", choices=("tcp", "udp"), default="tcp",
        help="tcp = durable at-least-once with server dedup (default); "
        "udp = fire-and-forget, the paper's collection semantics",
    )
    run.add_argument(
        "--ingest-loss", type=float, default=0.0, metavar="RATE",
        help="inject deterministic datagram loss at this rate on the "
        "reporter's UDP path (accounted, for fault-harness runs)",
    )
    run.add_argument(
        "--ingest-shard", type=int, default=0, metavar="ID",
        help="reporter shard identity; frames dedup server-side by "
        "(shard, seq), so every campaign sharing a server needs its "
        "own shard",
    )

    serve = sub.add_parser(
        "serve",
        help="trace ingestion service: UDP+TCP admission on loopback, "
        "crash-tolerant storage, graceful SIGTERM drain",
    )
    serve.add_argument(
        "--trace-dir", type=Path, required=True,
        help="server-side trace directory (crash-recovered if it "
        "already holds segments + an admission journal)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--tcp-port", type=int, default=0, help="0 = ephemeral")
    serve.add_argument("--udp-port", type=int, default=0, help="0 = ephemeral")
    serve.add_argument(
        "--port-file", type=Path,
        help="write the bound ports as one-line JSON once listening "
        "(the rendezvous for `run --ingest <path>`)",
    )
    serve.add_argument(
        "--segment-records", type=int, default=100_000,
        help="records per trace segment before rotation",
    )
    serve.add_argument(
        "--compress", action="store_true", help="gzip trace segments"
    )
    serve.add_argument(
        "--queue-high", type=int, default=8_192, metavar="REPORTS",
        help="admission-queue high watermark (backpressure above)",
    )
    serve.add_argument(
        "--queue-low", type=int, default=2_048, metavar="REPORTS",
        help="low watermark (resume reading TCP producers below)",
    )
    serve.add_argument(
        "--obs-dir", type=Path,
        help="record metrics/spans; also enables the METRICS endpoint",
    )

    ana = sub.add_parser("analyze", help="regenerate paper figures from a trace")
    ana.add_argument("--trace", type=Path, required=True)
    ana.add_argument(
        "--figure",
        choices=FIGURES + ("windows", "all"),
        default="all",
        help="which figure to regenerate ('windows' is the incremental "
        "per-window structure series; not part of 'all')",
    )
    ana.add_argument(
        "--analytics",
        choices=("incremental", "full"),
        default="incremental",
        help="backend for --figure windows: delta-maintained state or "
        "per-window snapshot kernels (identical output)",
    )
    ana.add_argument("--csv-dir", type=Path, help="also export series as CSV")
    ana.add_argument(
        "--tolerant",
        action="store_true",
        help="read a dirty trace (skip/dedup/re-sort bad records) and "
        "print a trace-health summary",
    )
    ana.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document instead of formatted tables",
    )
    ana.add_argument(
        "--obs-dir", type=Path,
        help="record per-metric analytics timings into this directory",
    )
    ana.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="evaluate snapshot windows on N worker processes "
        "(output is byte-identical to --workers 1)",
    )

    info = sub.add_parser("info", help="summarise a trace file")
    info.add_argument("--trace", type=Path)
    info.add_argument(
        "--tolerant",
        action="store_true",
        help="read a dirty trace and print a trace-health summary",
    )
    info.add_argument(
        "--server", metavar="HOST:PORT",
        help="query a live ingest server's HEALTH instead of a trace",
    )

    obs = sub.add_parser("obs", help="observability utilities")
    obs_sub = obs.add_subparsers(dest="obs_command", required=True)
    obs_sum = obs_sub.add_parser(
        "summarize",
        help="render span timings and counters from an --obs-dir",
    )
    obs_sum.add_argument("obs_dir", type=Path, help="directory passed as --obs-dir")

    qa = sub.add_parser(
        "qa", help="determinism & correctness static analysis (REP rules)"
    )
    add_qa_arguments(qa)

    cmp = sub.add_parser(
        "compare-overlays",
        help="run the same deployment under each partner policy and "
        "print the cross-policy Magellan metric table",
    )
    cmp.add_argument(
        "--policies",
        default=",".join(ex.DEFAULT_OVERLAY_SPECS),
        metavar="SPEC[,SPEC...]",
        help="comma-separated policy specs to compare "
        f"(default: {','.join(ex.DEFAULT_OVERLAY_SPECS)})",
    )
    cmp.add_argument("--hours", type=float, default=6.0, help="simulated hours per policy")
    cmp.add_argument("--base", type=float, default=120.0, help="base concurrency")
    cmp.add_argument("--seed", type=int, default=2006)
    cmp.add_argument(
        "--json",
        action="store_true",
        help="emit one JSON document instead of the formatted table",
    )
    cmp.add_argument(
        "--markdown",
        action="store_true",
        help="emit the GitHub-flavoured markdown table (for EXPERIMENTS.md)",
    )
    return parser


def cmd_simulate(args: argparse.Namespace) -> int:
    print(
        f"simulating {args.days} days at base concurrency {args.base:.0f} "
        f"(seed {args.seed}, policy {args.policy}) ..."
    )
    try:
        ex.run_simulation_to_trace(
            args.out,
            days=args.days,
            base_concurrency=args.base,
            seed=args.seed,
            with_flash_crowd=not args.no_flash_crowd,
            policy=args.policy,
            engine=args.engine,
        )
    except PolicyError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(f"trace written to {args.out}")
    return 0


def cmd_compare_overlays(args: argparse.Namespace) -> int:
    specs = [s.strip() for s in args.policies.split(",") if s.strip()]
    if not specs:
        print("error: --policies lists no policy specs", file=sys.stderr)
        return 2
    if not args.json and not args.markdown:
        # Keep the machine-readable outputs clean for redirection.
        print(
            f"comparing {len(specs)} overlays over {args.hours:g} h at base "
            f"concurrency {args.base:.0f} (seed {args.seed}) ..."
        )
    try:
        study = ex.compare_overlays(
            specs,
            hours=args.hours,
            base_concurrency=args.base,
            seed=args.seed,
        )
    except (PolicyError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        doc = {
            "hours": study.hours,
            "base_concurrency": study.base_concurrency,
            "seed": study.seed,
            "random_intra_baseline": study.random_intra_baseline,
            "rows": [dataclasses.asdict(row) for row in study.rows],
        }
        print(json.dumps(doc, indent=2, sort_keys=True))
        return 0
    if args.markdown:
        print(study.markdown())
    else:
        print(format_table(
            list(ex.OVERLAY_TABLE_HEADERS),
            [row.table_row() for row in study.rows],
            title="overlay comparison",
        ))
    print(f"ISP-blind intra-ISP baseline: {study.random_intra_baseline:.3f}")
    return 0


def _parse_ingest_target(target: str) -> tuple[str, int, int]:
    """Resolve ``--ingest`` into (host, tcp_port, udp_port).

    Accepts ``HOST:TCP[:UDP]`` or the path of a ``repro serve``
    ``--port-file`` (a one-line JSON object with ``tcp``/``udp``).
    """
    path = Path(target)
    if path.exists():
        ports = json.loads(path.read_text(encoding="utf-8"))
        return "127.0.0.1", int(ports["tcp"]), int(ports["udp"])
    parts = target.rsplit(":", 2)
    if len(parts) == 2:
        host, tcp = parts
        return host, int(tcp), int(tcp)
    if len(parts) == 3:
        host, tcp, udp = parts
        return host, int(tcp), int(udp)
    raise ValueError(
        f"--ingest expects HOST:TCP[:UDP] or a port file, got {target!r}"
    )


@contextlib.contextmanager
def _graceful_stop():
    """SIGTERM/SIGINT set an event instead of killing the process.

    ``repro run`` polls the event at round boundaries, takes a final
    checkpoint, seals the trace store and exits with code 3 — so an
    operator's Ctrl-C (or a scheduler's SIGTERM) always leaves a
    campaign that ``--resume`` continues losslessly.
    """
    import signal
    import threading

    stop = threading.Event()

    def _handler(signum: int, frame: object) -> None:
        stop.set()

    previous = {
        sig: signal.signal(sig, _handler)
        for sig in (signal.SIGTERM, signal.SIGINT)
    }
    try:
        yield stop
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)


def _cmd_run_fleet(args: argparse.Namespace) -> int:
    """The ``run --shards N`` path: a supervised sharded campaign."""
    from repro.fleet import FleetCampaignConfig, run_fleet_campaign
    from repro.fleet.plan import IngestSpec
    from repro.fleet.supervisor import SupervisorPolicy

    ingest_spec = None
    if args.ingest is not None:
        try:
            host, tcp_port, udp_port = _parse_ingest_target(args.ingest)
        except (ValueError, OSError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        ingest_spec = IngestSpec(
            host=host,
            tcp_port=tcp_port,
            udp_port=udp_port,
            transport=args.ingest_transport,
            loss_rate=args.ingest_loss,
            shard_base=args.ingest_shard,
        )
    config = FleetCampaignConfig(
        campaign_dir=args.trace_dir,
        num_shards=args.shards,
        days=args.days,
        base_concurrency=args.base,
        seed=args.seed,
        with_flash_crowd=not args.no_flash_crowd,
        policy=args.policy,
        checkpoint_every_rounds=args.checkpoint_every,
        keep_last=args.keep_last,
        records_per_segment=args.segment_records,
        compress=args.compress,
        fsync_on_flush=args.fsync,
        engine=args.engine,
        supervisor=SupervisorPolicy(
            heartbeat_timeout_s=args.heartbeat_timeout,
            progress_timeout_s=args.progress_timeout,
            max_restarts=args.max_restarts,
        ),
        ingest=ingest_spec,
    )
    obs = create_observer(args.obs_dir)
    try:
        with _graceful_stop() as stop:
            result = run_fleet_campaign(config, stop=stop, obs=obs)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if args.obs_dir is not None:
            finalize_observer(obs, args.obs_dir)
    for sid, outcome in sorted(result.outcomes.items()):
        restarts = f", {outcome.restarts} restarts" if outcome.restarts else ""
        print(
            f"shard {sid}: {outcome.status} "
            f"({outcome.rounds_completed} rounds{restarts})"
        )
    if result.quarantined:
        print(
            f"QUARANTINED shards: {result.quarantined} — their channels "
            "are missing from the merged trace (see health.json)"
        )
    if result.interrupted:
        print(
            f"campaign interrupted; every shard checkpointed — "
            f"rerun the same command to resume in {args.trace_dir}"
        )
        return 3
    if result.merge is not None:
        print(
            f"campaign complete: {result.merge.records} reports merged "
            f"from {len(result.merge.shards)} shards into {args.trace_dir}"
        )
        print(f"merged trace sha256: {result.merge.content_sha256}")
    else:
        print(f"campaign complete: reports shipped to {args.ingest}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    if args.shards < 1:
        print("error: --shards must be >= 1", file=sys.stderr)
        return 2
    if args.shards > 1:
        verb = "resuming" if args.resume else "starting"
        print(
            f"{verb} {args.shards}-shard campaign in {args.trace_dir}: "
            f"{args.days} days at base concurrency {args.base:.0f} "
            f"(seed {args.seed}, policy {args.policy}) ..."
        )
        return _cmd_run_fleet(args)
    verb = "resuming" if args.resume else "starting"
    print(
        f"{verb} campaign in {args.trace_dir}: {args.days} days at base "
        f"concurrency {args.base:.0f} (seed {args.seed}, policy {args.policy}) ..."
    )
    obs = create_observer(args.obs_dir)
    ingest = None
    if args.ingest is not None:
        from repro.ingest.client import ReportClient
        from repro.ingest.faults import DatagramFaults

        try:
            host, tcp_port, udp_port = _parse_ingest_target(args.ingest)
        except (ValueError, OSError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        faults = (
            DatagramFaults(loss_rate=args.ingest_loss)
            if args.ingest_loss > 0.0
            else None
        )
        ingest = ReportClient(
            host,
            tcp_port,
            udp_port=udp_port,
            transport=args.ingest_transport,
            shard_id=args.ingest_shard,
            faults=faults,
            seed=args.seed,
            obs=obs,
        )
        print(
            f"reporting over {args.ingest_transport} to "
            f"{host}:{tcp_port} (udp {udp_port})"
        )
    try:
        with _graceful_stop() as stop:
            result = ex.run_campaign(
                args.trace_dir,
                days=args.days,
                base_concurrency=args.base,
                seed=args.seed,
                with_flash_crowd=not args.no_flash_crowd,
                policy=args.policy,
                checkpoint_dir=args.checkpoint_dir,
                checkpoint_every_rounds=args.checkpoint_every,
                keep_last=args.keep_last,
                resume=args.resume,
                records_per_segment=args.segment_records,
                compress=args.compress,
                fsync_on_flush=args.fsync,
                stop=stop.is_set,
                ingest=ingest,
                engine=args.engine,
                obs=obs,
            )
    except (CheckpointError, FileExistsError, PolicyError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        # Flush metrics even when the campaign errors out: a partial
        # event log is exactly what post-mortems need.
        if args.obs_dir is not None:
            finalize_observer(obs, args.obs_dir)
    if result.resumed_from_round is not None:
        print(f"resumed from checkpoint at round {result.resumed_from_round}")
    if result.interrupted:
        print(
            f"campaign interrupted at round {result.rounds_completed}: "
            f"checkpoint taken, trace sealed — resume with --resume"
        )
    else:
        print(
            f"campaign complete: {result.rounds_completed} rounds, "
            f"{result.trace_records} reports in {result.trace_dir}"
        )
    if result.health.dirty:
        print(format_trace_health(result.health, title="campaign health"))
    if args.obs_dir is not None:
        print(
            f"observability data in {args.obs_dir} "
            f"(inspect with: repro obs summarize {args.obs_dir})"
        )
    return 3 if result.interrupted else 0


def cmd_serve(args: argparse.Namespace) -> int:
    from repro.ingest.service import TraceIngestService

    obs = create_observer(args.obs_dir)
    try:
        service = TraceIngestService.open(
            args.trace_dir,
            records_per_segment=args.segment_records,
            compress=args.compress,
            host=args.host,
            tcp_port=args.tcp_port,
            udp_port=args.udp_port,
            queue_high_reports=args.queue_high,
            queue_low_reports=args.queue_low,
            obs=obs,
        )
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        service.run(
            port_file=args.port_file,
            announce=lambda tcp, udp: print(
                f"ingest listening tcp={tcp} udp={udp} "
                f"trace-dir={args.trace_dir}",
                flush=True,
            ),
        )
    finally:
        if args.obs_dir is not None:
            finalize_observer(obs, args.obs_dir)
    health = service.merged_health()
    print(
        f"drained: {service.stats.reports_stored} reports stored, "
        f"{service.stats.reports_shed} shed, "
        f"{service.stats.frames_quarantined} frames quarantined"
    )
    if health.dirty:
        print(format_trace_health(health, title="ingest health"))
    return 0


def _query_server_health(target: str) -> dict[str, object]:
    """One HEALTH round-trip against a live ingest server."""
    import socket

    host, _, port = target.rpartition(":")
    with socket.create_connection((host or "127.0.0.1", int(port)), timeout=5.0) as sock:
        sock.sendall(b"HEALTH\n")
        buf = bytearray()
        while not buf.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                break
            buf += chunk
    payload = json.loads(buf.decode("utf-8"))
    if not isinstance(payload, dict):
        raise ValueError("unexpected HEALTH reply")
    return payload


def _open_trace(path: Path, *, tolerant: bool):
    """A re-iterable reader for a trace file or campaign directory."""
    if path.is_dir():
        return SegmentedTraceReader(path, tolerant=tolerant)
    return TolerantTraceReader(path) if tolerant else TraceReader(path)


def _analyze_fig1(trace, csv_dir, obs, workers=1):
    result = ex.fig1_scale(trace, workers=workers, obs=obs)
    print(format_series(result.series, ["total", "stable"], title="Fig. 1(A) simultaneous peers"))
    print()
    print(format_table(["day", "total IPs", "stable IPs"], result.daily, title="Fig. 1(B) daily distinct IPs"))
    print(f"\nstable/total ratio: {result.stable_ratio():.3f} (paper: ~1/3)")
    if csv_dir:
        rows = zip(result.series.times, result.series.values.get("total", ()), result.series.values.get("stable", ()))
        write_csv(csv_dir / "fig1a.csv", ["t", "total", "stable"], rows)
        write_csv(csv_dir / "fig1b.csv", ["day", "total", "stable"], result.daily)
    return {
        "times": list(result.series.times),
        "total": list(result.series.values.get("total", ())),
        "stable": list(result.series.values.get("stable", ())),
        "daily": [list(row) for row in result.daily],
        "stable_ratio": result.stable_ratio(),
    }


def _analyze_fig2(trace, csv_dir, obs, workers=1):
    shares = ex.fig2_isp_shares(trace, workers=workers, obs=obs)
    rows = sorted(shares.items(), key=lambda kv: kv[1], reverse=True)
    print(format_table(["ISP", "share"], rows, title="Fig. 2 ISP shares"))
    if csv_dir:
        write_csv(csv_dir / "fig2.csv", ["isp", "share"], rows)
    return {"shares": dict(rows)}


def _analyze_fig3(trace, csv_dir, obs, workers=1):
    result = ex.fig3_streaming_quality(trace, workers=workers, obs=obs)
    print(format_series(result.series, list(result.channels), title="Fig. 3 streaming quality"))
    for name in result.channels:
        print(f"mean {name}: {result.mean_quality(name):.3f} (paper: ~0.75)")
    if csv_dir:
        cols = list(result.channels)
        rows = [
            [t] + [row.get(c) for c in cols] for t, row in result.series.rows()
        ]
        write_csv(csv_dir / "fig3.csv", ["t"] + cols, rows)
    return {
        "times": list(result.series.times),
        "quality": {name: list(result.series.values.get(name, ())) for name in result.channels},
        "mean_quality": {name: result.mean_quality(name) for name in result.channels},
    }


def _analyze_fig4(trace, csv_dir, obs, workers=1):
    # Fig. 4 reads four specific instants from one streaming pass; there
    # is nothing to fan out, so it always runs serially.
    del workers
    result = ex.fig4_degree_distributions(trace, obs=obs)
    payload = {}
    for label, kinds in result.distributions.items():
        rows = [
            [kind, dist.mode(), round(dist.mean(), 1), dist.max_degree()]
            for kind, dist in kinds.items()
        ]
        print(format_table(["kind", "mode", "mean", "max"], rows, title=f"Fig. 4 degrees @ {label}"))
        print()
        payload[label] = {
            kind: {"mode": dist.mode(), "mean": dist.mean(), "max": dist.max_degree()}
            for kind, dist in kinds.items()
        }
        if csv_dir:
            for kind, dist in kinds.items():
                tag = label.replace(" ", "_")
                write_csv(
                    csv_dir / f"fig4_{tag}_{kind}.csv",
                    ["degree", "fraction"],
                    dist.pmf(),
                )
    return {"distributions": payload}


def _analyze_fig5(trace, csv_dir, obs, workers=1):
    result = ex.fig5_degree_evolution(trace, workers=workers, obs=obs)
    rows = [
        [t / 3600.0, d.mean_partners, d.mean_indegree, d.mean_outdegree]
        for t, d in zip(result.series.times, result.series.values.get("degrees", ()))
    ]
    print(format_table(["t_hours", "partners", "indegree", "outdegree"], rows, title="Fig. 5 average degrees"))
    if csv_dir:
        write_csv(csv_dir / "fig5.csv", ["t_hours", "partners", "in", "out"], rows)
    return {"columns": ["t_hours", "partners", "indegree", "outdegree"], "rows": rows}


def _analyze_fig6(trace, csv_dir, obs, workers=1):
    result = ex.fig6_intra_isp_degrees(trace, workers=workers, obs=obs)
    rows = [
        [t / 3600.0, v.indegree_fraction, v.outdegree_fraction]
        for t, v in zip(result.series.times, result.series.values.get("intra", ()))
    ]
    print(format_table(["t_hours", "intra in", "intra out"], rows, title="Fig. 6 intra-ISP degree fractions"))
    print(f"ISP-blind baseline: {result.random_baseline:.3f}")
    if csv_dir:
        write_csv(csv_dir / "fig6.csv", ["t_hours", "in", "out"], rows)
    return {
        "columns": ["t_hours", "intra_in", "intra_out"],
        "rows": rows,
        "random_baseline": result.random_baseline,
    }


def _analyze_fig7(trace, csv_dir, obs, workers=1):
    payload = {}
    for isp in (None, "China Netcom"):
        result = ex.fig7_small_world(trace, isp=isp, workers=workers, obs=obs)
        tag = isp or "global"
        rows = [
            [t / 3600.0, m.clustering, m.random_clustering, m.path_length, m.random_path_length]
            for t, m in zip(result.series.times, result.series.values.get("sw", ()))
        ]
        print(format_table(
            ["t_hours", "C", "C_rand", "L", "L_rand"], rows,
            title=f"Fig. 7 small world ({tag})",
        ))
        print()
        payload[tag] = {
            "columns": ["t_hours", "C", "C_rand", "L", "L_rand"],
            "rows": rows,
        }
        if csv_dir:
            write_csv(
                csv_dir / f"fig7_{tag.replace(' ', '_')}.csv",
                ["t_hours", "C", "C_rand", "L", "L_rand"],
                rows,
            )
    return payload


def _analyze_fig8(trace, csv_dir, obs, workers=1):
    result = ex.fig8_reciprocity(trace, workers=workers, obs=obs)
    rows = [
        [t / 3600.0, m.all_links, m.intra_isp, m.inter_isp]
        for t, m in zip(result.series.times, result.series.values.get("rho", ()))
    ]
    print(format_table(["t_hours", "rho all", "rho intra", "rho inter"], rows, title="Fig. 8 edge reciprocity"))
    if csv_dir:
        write_csv(csv_dir / "fig8.csv", ["t_hours", "all", "intra", "inter"], rows)
    return {"columns": ["t_hours", "rho_all", "rho_intra", "rho_inter"], "rows": rows}


def _analyze_windows(trace, csv_dir, obs, workers=1, analytics="incremental"):
    series = ex.windowed_structure(
        trace, mode=analytics, workers=workers, obs=obs
    )
    rows = [
        [
            t / 3600.0,
            deg["partners"].num_peers,
            deg["partners"].mean(),
            rho,
            clu,
        ]
        for t, deg, rho, clu in zip(
            series.times,
            series.values.get("degrees", ()),
            series.values.get("reciprocity", ()),
            series.values.get("clustering", ()),
        )
    ]
    print(format_table(
        ["t_hours", "peers", "mean partners", "rho", "C"],
        rows,
        title=f"per-window structure ({analytics})",
    ))
    if csv_dir:
        write_csv(
            csv_dir / "windows.csv",
            ["t_hours", "peers", "mean_partners", "rho", "C"],
            rows,
        )
    return {
        "columns": ["t_hours", "peers", "mean_partners", "rho", "C"],
        "rows": rows,
        "analytics": analytics,
    }


_ANALYZERS = {
    "fig1": _analyze_fig1,
    "fig2": _analyze_fig2,
    "fig3": _analyze_fig3,
    "fig4": _analyze_fig4,
    "fig5": _analyze_fig5,
    "fig6": _analyze_fig6,
    "fig7": _analyze_fig7,
    "fig8": _analyze_fig8,
}


def _campaign_health_rows(health: dict[str, object]) -> list[list[object]]:
    """Collection/recovery accounting rows from a persisted health.json."""
    counters = health.get("health")
    counters = counters if isinstance(counters, dict) else {}
    rows: list[list[object]] = [
        ["rounds completed", health.get("rounds_completed", "?")],
        ["trace records", health.get("trace_records", "?")],
        ["resumed from round", health.get("resumed_from_round")],
    ]
    policy = health.get("policy")
    if isinstance(policy, dict):
        rows.append(["partner policy", policy.get("spec", policy.get("name", "?"))])
        params = policy.get("params")
        if isinstance(params, dict) and params:
            rows.append([
                "policy params",
                ", ".join(f"{k}={v}" for k, v in sorted(params.items())),
            ])
    rows += [
        ["server-dropped reports", counters.get("server_dropped", 0)],
        ["quarantined records (recovery)", counters.get("quarantined", 0)],
        ["truncated lines (recovery)", counters.get("truncated_lines", 0)],
        ["parse failures (recovery)", counters.get("parse_failures", 0)],
    ]
    fleet = health.get("fleet")
    if isinstance(fleet, dict):
        rows.append(["fleet shards", fleet.get("num_shards", "?")])
        shards = fleet.get("shards")
        if isinstance(shards, dict):
            for sid, shard in sorted(shards.items(), key=lambda kv: int(kv[0])):
                if not isinstance(shard, dict):
                    continue
                restarts = shard.get("restarts", 0)
                suffix = f", {restarts} restarts" if restarts else ""
                rows.append(
                    [
                        f"shard {sid}",
                        f"{shard.get('status', '?')} "
                        f"({shard.get('rounds_completed', '?')} rounds{suffix})",
                    ]
                )
        quarantined = fleet.get("quarantined")
        if quarantined:
            rows.append(["QUARANTINED shards", quarantined])
        incidents = fleet.get("incidents")
        if isinstance(incidents, list) and incidents:
            rows.append(["fleet incidents", len(incidents)])
            for incident in incidents:
                if not isinstance(incident, dict):
                    continue
                rows.append(
                    [
                        f"  {incident.get('kind', '?')} "
                        f"shard {incident.get('shard_id', '?')}",
                        incident.get("detail", ""),
                    ]
                )
    return rows


def _print_campaign_health(trace_path: Path) -> None:
    health = ex.load_campaign_health(trace_path)
    if health is None:
        return
    print()
    print(format_table(
        ["property", "value"],
        _campaign_health_rows(health),
        title=f"campaign health {trace_path}",
    ))


def _run_figures(
    trace, figures, csv_dir, obs, workers=1, analytics="incremental"
) -> dict[str, object]:
    payloads: dict[str, object] = {}
    for fig in figures:
        try:
            if fig == "windows":
                payloads[fig] = _analyze_windows(
                    trace, csv_dir, obs, workers, analytics
                )
            else:
                payloads[fig] = _ANALYZERS[fig](trace, csv_dir, obs, workers)
        except ValueError as exc:
            payloads[fig] = {"skipped": str(exc)}
            print(f"{fig}: skipped ({exc})")
        print()
    return payloads


def cmd_analyze(args: argparse.Namespace) -> int:
    if not args.trace.exists():
        print(f"error: no such trace: {args.trace}", file=sys.stderr)
        return 2
    if args.csv_dir:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
    trace = _open_trace(args.trace, tolerant=args.tolerant)
    figures = FIGURES if args.figure == "all" else (args.figure,)
    if args.workers < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    obs = create_observer(args.obs_dir)
    try:
        if args.json:
            with contextlib.redirect_stdout(io.StringIO()):
                payloads = _run_figures(
                    trace, figures, args.csv_dir, obs, args.workers,
                    args.analytics,
                )
            doc: dict[str, object] = {"trace": str(args.trace), "figures": payloads}
            if args.tolerant:
                doc["trace_health"] = dataclasses.asdict(trace.health)
            campaign_health = ex.load_campaign_health(args.trace)
            if campaign_health is not None:
                doc["campaign_health"] = campaign_health
            print(json.dumps(doc, indent=2, sort_keys=True))
        else:
            _run_figures(
                trace, figures, args.csv_dir, obs, args.workers,
                args.analytics,
            )
            if args.tolerant:
                print(format_trace_health(trace.health, title=f"trace health {args.trace}"))
            _print_campaign_health(args.trace)
    finally:
        if args.obs_dir is not None:
            finalize_observer(obs, args.obs_dir)
    return 0


def cmd_info(args: argparse.Namespace) -> int:
    if args.server is not None:
        try:
            payload = _query_server_health(args.server)
        except (OSError, ValueError) as exc:
            print(f"error: cannot query {args.server}: {exc}", file=sys.stderr)
            return 2
        health = payload.get("health")
        stats = payload.get("stats")
        rows: list[list[object]] = [
            ["stored records", payload.get("records", "?")],
            ["queued reports", payload.get("queued_reports", "?")],
        ]
        if isinstance(stats, dict):
            rows += [[name.replace("_", " "), value] for name, value in sorted(stats.items())]
        if isinstance(health, dict):
            rows += [
                [f"health: {name.replace('_', ' ')}", value]
                for name, value in sorted(health.items())
                if value
            ]
        print(format_table(
            ["property", "value"], rows, title=f"ingest server {args.server}"
        ))
        return 0
    if args.trace is None:
        print("error: info needs --trace or --server", file=sys.stderr)
        return 2
    if not args.trace.exists():
        print(f"error: no such trace: {args.trace}", file=sys.stderr)
        return 2
    trace = _open_trace(args.trace, tolerant=args.tolerant)
    count = 0
    first = last = None
    ips = set()
    channels = set()
    for report in trace:
        count += 1
        first = report.time if first is None else first
        last = report.time
        ips.add(report.peer_ip)
        channels.add(report.channel_id)
    if count == 0:
        # An interrupted fleet campaign has no merged root trace yet,
        # but its health summary (per-shard status, incidents) is
        # exactly what an operator checking on it needs.
        print("empty trace")
        _print_campaign_health(args.trace)
        return 0
    sessions = session_statistics(trace)
    turnover = population_turnover(trace)
    stability = partner_stability(trace)
    span_days = (last - first) / 86_400.0
    mean_turnover = (
        sum(p.turnover_rate for p in turnover) / len(turnover) if turnover else 0.0
    )
    rows = [
        ["reports", count],
        ["reporting peers (stable IPs)", len(ips)],
        ["channels", len(channels)],
        ["span (days)", round(span_days, 2)],
        ["mean reporting span (min)", round(sessions.mean_span_s / 60.0, 1)],
        ["mean reports per peer", round(sessions.mean_reports_per_peer, 1)],
        ["mean window turnover rate", round(mean_turnover, 3)],
        ["mean partner-list jaccard", round(stability.mean_jaccard, 3)],
    ]
    print(format_table(["property", "value"], rows, title=f"trace {args.trace}"))
    if args.tolerant:
        print()
        print(format_trace_health(trace.health, title=f"trace health {args.trace}"))
    _print_campaign_health(args.trace)
    return 0


def cmd_obs(args: argparse.Namespace) -> int:
    if args.obs_command == "summarize":
        if not args.obs_dir.is_dir():
            print(f"error: no such obs directory: {args.obs_dir}", file=sys.stderr)
            return 2
        print(render_summary(args.obs_dir))
        return 0
    raise AssertionError(f"unhandled obs command {args.obs_command!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "simulate":
        return cmd_simulate(args)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "serve":
        return cmd_serve(args)
    if args.command == "analyze":
        return cmd_analyze(args)
    if args.command == "info":
        return cmd_info(args)
    if args.command == "obs":
        return cmd_obs(args)
    if args.command == "qa":
        return run_qa(args)
    if args.command == "compare-overlays":
        return cmd_compare_overlays(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    raise SystemExit(main())
