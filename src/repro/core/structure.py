"""Mesh-structure metrics beyond the paper's core set.

The paper's findings imply structural properties it never measures
directly: bilateral exchange implies a large strongly connected core,
the 'stable backbone' implies a deep k-core, and ISP clustering implies
positive ISP attribute mixing.  These metrics verify those implications
on the same snapshots — the extension analyses Magellan's conclusion
says are part of ongoing work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.snapshots import TopologySnapshot
from repro.graph.assortativity import attribute_mixing, degree_assortativity
from repro.graph.components import largest_scc_fraction
from repro.graph.kcore import core_numbers
from repro.graph.triads import DyadCensus, dyad_census
from repro.network.isp import IspDatabase


@dataclass(frozen=True)
class MeshStructure:
    """Structural summary of the stable-peer active graph."""

    num_nodes: int
    num_edges: int
    largest_scc_fraction: float  # bilateral core reach
    degeneracy: int  # deepest k-core
    deep_core_fraction: float  # peers in the (degeneracy)-core
    degree_assortativity: float
    isp_mixing: float  # Newman coefficient over ISP labels
    dyads: DyadCensus


def mesh_structure(snapshot: TopologySnapshot, db: IspDatabase) -> MeshStructure:
    """Compute the structural summary for one snapshot."""
    digraph = snapshot.stable_active_graph()
    undirected = snapshot.stable_undirected_graph()
    cores = core_numbers(undirected)
    deepest = max(cores.values()) if cores else 0
    deep_members = sum(1 for c in cores.values() if c >= deepest) if cores else 0
    return MeshStructure(
        num_nodes=digraph.num_nodes,
        num_edges=digraph.num_edges,
        largest_scc_fraction=largest_scc_fraction(digraph),
        degeneracy=deepest,
        deep_core_fraction=deep_members / digraph.num_nodes if digraph.num_nodes else 0.0,
        degree_assortativity=degree_assortativity(undirected),
        isp_mixing=attribute_mixing(undirected, db.lookup),
        dyads=dyad_census(digraph),
    )
