"""The paper's metric suite over topology snapshots (Sec. 4).

Every function takes a :class:`TopologySnapshot` (plus, where relevant,
the ISP mapping database) and returns plain values or small dataclasses,
so experiment drivers can assemble the exact series each figure plots.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Iterable

from repro.graph.compact import CompactGraph
from repro.graph.degree import DegreeDistribution
from repro.graph.digraph import Graph
from repro.graph.smallworld import SmallWorldMetrics, small_world_metrics
from repro.core.snapshots import TopologySnapshot
from repro.network.isp import IspDatabase
from repro.traces.records import PeerReport

# ----------------------------------------------------------------- Fig. 1


def peer_counts(snapshot: TopologySnapshot) -> tuple[int, int]:
    """(total IPs seen, stable reporting IPs) in the window — Fig. 1(A)."""
    return snapshot.num_total, snapshot.num_stable


def daily_distinct_ips(
    reports: Iterable[PeerReport], *, seconds_per_day: float = 86_400.0
) -> list[tuple[int, int, int]]:
    """Per-day (day index, distinct total IPs, distinct stable IPs).

    'Stable' IPs reported at least once that day; 'total' additionally
    counts every IP appearing in any partner list — Fig. 1(B).
    """
    total_by_day: dict[int, set[int]] = defaultdict(set)
    stable_by_day: dict[int, set[int]] = defaultdict(set)
    for report in reports:
        day = int(report.time // seconds_per_day)
        stable_by_day[day].add(report.peer_ip)
        total_by_day[day].add(report.peer_ip)
        for partner in report.partners:
            total_by_day[day].add(partner.ip)
    return [
        (day, len(total_by_day[day]), len(stable_by_day[day]))
        for day in sorted(total_by_day)
    ]


# ----------------------------------------------------------------- Fig. 2


def isp_shares(
    snapshot: TopologySnapshot, db: IspDatabase, *, stable_only: bool = False
) -> dict[str, float]:
    """Fraction of peers per ISP (unmapped IPs, e.g. servers, excluded)."""
    ips = snapshot.stable_ips if stable_only else snapshot.all_ips
    counts: dict[str, int] = defaultdict(int)
    mapped = 0
    for ip in ips:
        name = db.lookup(ip)
        if name is not None:
            counts[name] += 1
            mapped += 1
    if mapped == 0:
        return {}
    return {name: count / mapped for name, count in counts.items()}


# ----------------------------------------------------------------- Fig. 3


def streaming_quality(
    snapshot: TopologySnapshot,
    channel_id: int,
    stream_rate_kbps: float,
    *,
    threshold: float = 0.9,
) -> float | None:
    """Fraction of the channel's stable peers receiving >= 90% of the rate.

    Returns None when the window holds no reports for the channel.
    """
    rates = [
        r.recv_rate_kbps
        for r in snapshot.reports.values()
        if r.channel_id == channel_id
    ]
    if not rates:
        return None
    satisfied = sum(1 for rate in rates if rate >= threshold * stream_rate_kbps)
    return satisfied / len(rates)


# ------------------------------------------------------------- Figs. 4, 5


@dataclass(frozen=True)
class DegreeSummary:
    """Mean degrees of stable peers in one window — the Fig. 5 series."""

    mean_partners: float
    mean_indegree: float
    mean_outdegree: float


def degree_distributions(
    snapshot: TopologySnapshot,
) -> dict[str, DegreeDistribution]:
    """{'partners', 'in', 'out'} distributions over stable peers — Fig. 4.

    Degrees come straight from each stable peer's report, so partners may
    include transient peers — matching the paper's methodology.
    """
    thr = snapshot.active_threshold
    partners, indeg, outdeg = [], [], []
    for report in snapshot.reports.values():
        partners.append(len(report.partners))
        n_in = 0
        n_out = 0
        for p in report.partners:
            if p.recv_segments >= thr:
                n_in += 1
            if p.sent_segments >= thr:
                n_out += 1
        indeg.append(n_in)
        outdeg.append(n_out)
    return {
        "partners": DegreeDistribution.from_degrees(partners),
        "in": DegreeDistribution.from_degrees(indeg),
        "out": DegreeDistribution.from_degrees(outdeg),
    }


def average_degrees(snapshot: TopologySnapshot) -> DegreeSummary:
    """Mean partner count / active indegree / active outdegree — Fig. 5."""
    dists = degree_distributions(snapshot)
    return DegreeSummary(
        mean_partners=dists["partners"].mean(),
        mean_indegree=dists["in"].mean(),
        mean_outdegree=dists["out"].mean(),
    )


# ----------------------------------------------------------------- Fig. 6


@dataclass(frozen=True)
class IntraIspDegrees:
    """Average per-peer fraction of intra-ISP active degree — Fig. 6."""

    indegree_fraction: float
    outdegree_fraction: float
    peers_with_indegree: int
    peers_with_outdegree: int


def intra_isp_degree_fractions(
    snapshot: TopologySnapshot, db: IspDatabase
) -> IntraIspDegrees:
    """Per-peer intra-ISP proportions of active in/outdegree, averaged.

    Follows the paper exactly: for each stable peer, the proportion of
    its active supplying (receiving) partners in the same ISP, then the
    mean over peers.  Peers with zero active degree (or unmapped IPs)
    are excluded from the corresponding average.
    """
    thr = snapshot.active_threshold
    in_fracs: list[float] = []
    out_fracs: list[float] = []
    lookup = db.lookup
    # partner IPs repeat heavily across reports; memoise the prefix walk
    cache: dict[int, str | None] = {}
    for report in snapshot.reports.values():
        ip = report.peer_ip
        own = cache[ip] if ip in cache else cache.setdefault(ip, lookup(ip))
        if own is None:
            continue
        n_sup = same_sup = 0
        n_recv = same_recv = 0
        for p in report.partners:
            supplies = p.recv_segments >= thr
            receives = p.sent_segments >= thr
            if not (supplies or receives):
                continue
            pip = p.ip
            isp = cache[pip] if pip in cache else cache.setdefault(
                pip, lookup(pip)
            )
            same = isp == own
            if supplies:
                n_sup += 1
                if same:
                    same_sup += 1
            if receives:
                n_recv += 1
                if same:
                    same_recv += 1
        if n_sup:
            in_fracs.append(same_sup / n_sup)
        if n_recv:
            out_fracs.append(same_recv / n_recv)
    return IntraIspDegrees(
        indegree_fraction=sum(in_fracs) / len(in_fracs) if in_fracs else 0.0,
        outdegree_fraction=sum(out_fracs) / len(out_fracs) if out_fracs else 0.0,
        peers_with_indegree=len(in_fracs),
        peers_with_outdegree=len(out_fracs),
    )


def random_intra_isp_baseline(db: IspDatabase) -> float:
    """Expected intra-ISP fraction under ISP-blind partner selection.

    If partners were chosen uniformly, the probability that a partner
    shares the peer's ISP is that ISP's population share; averaging over
    peers gives the sum of squared shares.
    """
    return sum(isp.share**2 for isp in db.isps)


# ----------------------------------------------------------------- Fig. 7


def small_world(
    snapshot: TopologySnapshot,
    *,
    isp: str | None = None,
    db: IspDatabase | None = None,
    seed: int = 0,
    path_sample_sources: int | None = 64,
    exact_below: int = 128,
) -> SmallWorldMetrics:
    """Small-world metrics of the stable-peer graph (or one ISP's subgraph)."""
    graph: Graph | CompactGraph = snapshot.stable_undirected_compact()
    if isp is not None:
        if db is None:
            raise ValueError("ISP subgraph analysis requires the ISP database")
        members = [ip for ip in graph.nodes() if db.lookup(ip) == isp]
        graph = snapshot.stable_undirected_graph().subgraph(members)
    return small_world_metrics(
        graph,
        seed=seed,
        path_sample_sources=path_sample_sources,
        exact_below=exact_below,
    )


# ----------------------------------------------------------------- Fig. 8


@dataclass(frozen=True)
class ReciprocityMetrics:
    """Edge reciprocity rho of the active topology — Fig. 8."""

    all_links: float
    intra_isp: float
    inter_isp: float
    num_edges: int


def _rho(num_nodes: int, num_edges: int, bilateral: int) -> float:
    """Eq. (2) rho from partition counts.

    Exactly the float expressions of :func:`edge_reciprocity` /
    :func:`reciprocity_from_edges`, so counting-based callers stay
    bit-identical to the edge-set implementations.
    """
    if num_edges == 0 or num_nodes < 2:
        return 0.0
    abar = num_edges / (num_nodes * (num_nodes - 1))
    if abar >= 1.0:
        return 0.0
    r = bilateral / num_edges
    return (r - abar) / (1.0 - abar)


def reciprocity_metrics(
    snapshot: TopologySnapshot, db: IspDatabase
) -> ReciprocityMetrics:
    """rho over all active links, intra-ISP links and inter-ISP links.

    As in the paper, the intra (inter) sub-topology consists of the
    links whose endpoints share (differ in) ISP, plus incident peers.
    The partitions never materialise as graphs: one pass over the
    frozen graph's integer edge keys classifies every link, counts its
    reverse-edge probe, and accumulates the incident-vertex sets an
    induced subgraph would have.  A link's reverse (when present) is
    always in the same partition, so one probe serves all three rhos.
    """
    full = snapshot.active_compact()
    n = full.num_nodes
    succ = full.succ_sets()
    lookup = db.lookup
    isp_by_index = [lookup(ip) for ip in full.labels]

    bilateral_all = 0
    intra_m = inter_m = 0
    intra_bilateral = inter_bilateral = 0
    intra_mark = bytearray(n)
    inter_mark = bytearray(n)
    for u in range(n):
        a = isp_by_index[u]
        for v in succ[u]:
            reciprocal = u in succ[v]
            if reciprocal:
                bilateral_all += 1
            if a is None:
                continue
            b = isp_by_index[v]
            if b is None:
                continue
            if a == b:
                intra_m += 1
                intra_mark[u] = 1
                intra_mark[v] = 1
                if reciprocal:
                    intra_bilateral += 1
            else:
                inter_m += 1
                inter_mark[u] = 1
                inter_mark[v] = 1
                if reciprocal:
                    inter_bilateral += 1
    return ReciprocityMetrics(
        all_links=_rho(n, full.num_edges, bilateral_all),
        intra_isp=_rho(sum(intra_mark), intra_m, intra_bilateral),
        inter_isp=_rho(sum(inter_mark), inter_m, inter_bilateral),
        num_edges=full.num_edges,
    )
