"""The paper's metric suite over topology snapshots (Sec. 4).

Every function takes a :class:`TopologySnapshot` (plus, where relevant,
the ISP mapping database) and returns plain values or small dataclasses,
so experiment drivers can assemble the exact series each figure plots.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from collections.abc import Iterable

from repro.graph.degree import DegreeDistribution
from repro.graph.digraph import DiGraph
from repro.graph.reciprocity import edge_reciprocity
from repro.graph.smallworld import SmallWorldMetrics, small_world_metrics
from repro.core.snapshots import TopologySnapshot
from repro.network.isp import IspDatabase
from repro.traces.records import PeerReport

# ----------------------------------------------------------------- Fig. 1


def peer_counts(snapshot: TopologySnapshot) -> tuple[int, int]:
    """(total IPs seen, stable reporting IPs) in the window — Fig. 1(A)."""
    return snapshot.num_total, snapshot.num_stable


def daily_distinct_ips(
    reports: Iterable[PeerReport], *, seconds_per_day: float = 86_400.0
) -> list[tuple[int, int, int]]:
    """Per-day (day index, distinct total IPs, distinct stable IPs).

    'Stable' IPs reported at least once that day; 'total' additionally
    counts every IP appearing in any partner list — Fig. 1(B).
    """
    total_by_day: dict[int, set[int]] = defaultdict(set)
    stable_by_day: dict[int, set[int]] = defaultdict(set)
    for report in reports:
        day = int(report.time // seconds_per_day)
        stable_by_day[day].add(report.peer_ip)
        total_by_day[day].add(report.peer_ip)
        for partner in report.partners:
            total_by_day[day].add(partner.ip)
    return [
        (day, len(total_by_day[day]), len(stable_by_day[day]))
        for day in sorted(total_by_day)
    ]


# ----------------------------------------------------------------- Fig. 2


def isp_shares(
    snapshot: TopologySnapshot, db: IspDatabase, *, stable_only: bool = False
) -> dict[str, float]:
    """Fraction of peers per ISP (unmapped IPs, e.g. servers, excluded)."""
    ips = snapshot.stable_ips if stable_only else snapshot.all_ips
    counts: dict[str, int] = defaultdict(int)
    mapped = 0
    for ip in ips:
        name = db.lookup(ip)
        if name is not None:
            counts[name] += 1
            mapped += 1
    if mapped == 0:
        return {}
    return {name: count / mapped for name, count in counts.items()}


# ----------------------------------------------------------------- Fig. 3


def streaming_quality(
    snapshot: TopologySnapshot,
    channel_id: int,
    stream_rate_kbps: float,
    *,
    threshold: float = 0.9,
) -> float | None:
    """Fraction of the channel's stable peers receiving >= 90% of the rate.

    Returns None when the window holds no reports for the channel.
    """
    rates = [
        r.recv_rate_kbps
        for r in snapshot.reports.values()
        if r.channel_id == channel_id
    ]
    if not rates:
        return None
    satisfied = sum(1 for rate in rates if rate >= threshold * stream_rate_kbps)
    return satisfied / len(rates)


# ------------------------------------------------------------- Figs. 4, 5


@dataclass(frozen=True)
class DegreeSummary:
    """Mean degrees of stable peers in one window — the Fig. 5 series."""

    mean_partners: float
    mean_indegree: float
    mean_outdegree: float


def degree_distributions(
    snapshot: TopologySnapshot,
) -> dict[str, DegreeDistribution]:
    """{'partners', 'in', 'out'} distributions over stable peers — Fig. 4.

    Degrees come straight from each stable peer's report, so partners may
    include transient peers — matching the paper's methodology.
    """
    thr = snapshot.active_threshold
    partners, indeg, outdeg = [], [], []
    for report in snapshot.reports.values():
        partners.append(len(report.partners))
        indeg.append(len(report.active_suppliers(thr)))
        outdeg.append(len(report.active_receivers(thr)))
    return {
        "partners": DegreeDistribution.from_degrees(partners),
        "in": DegreeDistribution.from_degrees(indeg),
        "out": DegreeDistribution.from_degrees(outdeg),
    }


def average_degrees(snapshot: TopologySnapshot) -> DegreeSummary:
    """Mean partner count / active indegree / active outdegree — Fig. 5."""
    dists = degree_distributions(snapshot)
    return DegreeSummary(
        mean_partners=dists["partners"].mean(),
        mean_indegree=dists["in"].mean(),
        mean_outdegree=dists["out"].mean(),
    )


# ----------------------------------------------------------------- Fig. 6


@dataclass(frozen=True)
class IntraIspDegrees:
    """Average per-peer fraction of intra-ISP active degree — Fig. 6."""

    indegree_fraction: float
    outdegree_fraction: float
    peers_with_indegree: int
    peers_with_outdegree: int


def intra_isp_degree_fractions(
    snapshot: TopologySnapshot, db: IspDatabase
) -> IntraIspDegrees:
    """Per-peer intra-ISP proportions of active in/outdegree, averaged.

    Follows the paper exactly: for each stable peer, the proportion of
    its active supplying (receiving) partners in the same ISP, then the
    mean over peers.  Peers with zero active degree (or unmapped IPs)
    are excluded from the corresponding average.
    """
    thr = snapshot.active_threshold
    in_fracs: list[float] = []
    out_fracs: list[float] = []
    for report in snapshot.reports.values():
        own = db.lookup(report.peer_ip)
        if own is None:
            continue
        suppliers = report.active_suppliers(thr)
        receivers = report.active_receivers(thr)
        if suppliers:
            same = sum(1 for p in suppliers if db.lookup(p.ip) == own)
            in_fracs.append(same / len(suppliers))
        if receivers:
            same = sum(1 for p in receivers if db.lookup(p.ip) == own)
            out_fracs.append(same / len(receivers))
    return IntraIspDegrees(
        indegree_fraction=sum(in_fracs) / len(in_fracs) if in_fracs else 0.0,
        outdegree_fraction=sum(out_fracs) / len(out_fracs) if out_fracs else 0.0,
        peers_with_indegree=len(in_fracs),
        peers_with_outdegree=len(out_fracs),
    )


def random_intra_isp_baseline(db: IspDatabase) -> float:
    """Expected intra-ISP fraction under ISP-blind partner selection.

    If partners were chosen uniformly, the probability that a partner
    shares the peer's ISP is that ISP's population share; averaging over
    peers gives the sum of squared shares.
    """
    return sum(isp.share**2 for isp in db.isps)


# ----------------------------------------------------------------- Fig. 7


def small_world(
    snapshot: TopologySnapshot,
    *,
    isp: str | None = None,
    db: IspDatabase | None = None,
    seed: int = 0,
    path_sample_sources: int | None = 64,
) -> SmallWorldMetrics:
    """Small-world metrics of the stable-peer graph (or one ISP's subgraph)."""
    graph = snapshot.stable_undirected_graph()
    if isp is not None:
        if db is None:
            raise ValueError("ISP subgraph analysis requires the ISP database")
        members = [ip for ip in graph.nodes() if db.lookup(ip) == isp]
        graph = graph.subgraph(members)
    return small_world_metrics(
        graph, seed=seed, path_sample_sources=path_sample_sources
    )


# ----------------------------------------------------------------- Fig. 8


@dataclass(frozen=True)
class ReciprocityMetrics:
    """Edge reciprocity rho of the active topology — Fig. 8."""

    all_links: float
    intra_isp: float
    inter_isp: float
    num_edges: int


def _links_subgraph(edges: Iterable[tuple[int, int]]) -> DiGraph:
    g = DiGraph()
    for u, v in edges:
        g.add_edge(u, v)
    return g


def reciprocity_metrics(
    snapshot: TopologySnapshot, db: IspDatabase
) -> ReciprocityMetrics:
    """rho over all active links, intra-ISP links and inter-ISP links.

    As in the paper, the intra (inter) sub-topology consists of the
    links whose endpoints share (differ in) ISP, plus incident peers.
    """
    full = snapshot.active_graph
    intra_edges = []
    inter_edges = []
    isp_cache: dict[int, str | None] = {}

    def isp_of(ip: int) -> str | None:
        if ip not in isp_cache:
            isp_cache[ip] = db.lookup(ip)
        return isp_cache[ip]

    for u, v in full.edges():
        a, b = isp_of(u), isp_of(v)
        if a is None or b is None:
            continue
        if a == b:
            intra_edges.append((u, v))
        else:
            inter_edges.append((u, v))
    return ReciprocityMetrics(
        all_links=edge_reciprocity(full),
        intra_isp=edge_reciprocity(_links_subgraph(intra_edges)),
        inter_isp=edge_reciprocity(_links_subgraph(inter_edges)),
        num_edges=full.num_edges,
    )
