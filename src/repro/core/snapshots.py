"""Topology snapshot construction from trace windows (paper Sec. 4).

A snapshot summarises one observation window of the trace:

- *stable peers* are those whose reports arrived in the window (the
  paper's reporting peers — the 'stable backbone');
- the *active graph* is directed: an edge u -> v exists when at least
  ``active_threshold`` segments flowed from u to v in the window,
  reconstructed from both endpoints' reports (receivers report what they
  got from each partner; senders report what they sent);
- the *partner graph* is undirected and contains every partnership a
  reporting peer listed, active or not — transient peers appear here via
  the partner lists of stable peers, exactly as in the paper's traces.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable

from repro.graph.compact import CompactDigraph, CompactGraph
from repro.graph.digraph import DiGraph, Graph
from repro.traces.records import PeerReport

DEFAULT_ACTIVE_THRESHOLD = 10


@dataclass
class TopologySnapshot:
    """One observation window's topology and per-peer report data."""

    time: float
    window_seconds: float
    reports: dict[int, PeerReport]  # latest report per stable peer IP
    active_graph: DiGraph  # directed active links, all IPs
    partner_graph: Graph  # undirected partnerships, all IPs
    active_threshold: int = DEFAULT_ACTIVE_THRESHOLD
    _stable_active: DiGraph | None = field(default=None, repr=False)
    _active_compact: CompactDigraph | None = field(default=None, repr=False)
    _stable_undirected_compact: CompactGraph | None = field(
        default=None, repr=False
    )

    @property
    def stable_ips(self) -> set[int]:
        """IPs that reported in this window."""
        return set(self.reports)

    @property
    def all_ips(self) -> set[int]:
        """Every IP seen: reporters plus their listed partners."""
        return set(self.partner_graph.nodes())

    @property
    def num_stable(self) -> int:
        """Number of stable (reporting) peers."""
        return len(self.reports)

    @property
    def num_total(self) -> int:
        """All IPs seen in the window: reporters plus listed partners."""
        return self.partner_graph.num_nodes

    def stable_active_graph(self) -> DiGraph:
        """Active links restricted to stable (reporting) peers."""
        if self._stable_active is None:
            self._stable_active = self.active_graph.subgraph(self.stable_ips)
        return self._stable_active

    def stable_undirected_graph(self) -> Graph:
        """Undirected stable-peer graph of active links (Sec. 4.3)."""
        return self.stable_active_graph().to_undirected()

    def active_compact(self) -> CompactDigraph:
        """Frozen CSR view of the active graph (cached per snapshot)."""
        if self._active_compact is None:
            self._active_compact = self.active_graph.freeze()
        return self._active_compact

    def stable_undirected_compact(self) -> CompactGraph:
        """Frozen CSR view of the stable undirected graph (cached).

        Built by freezing :meth:`stable_undirected_graph`, so vertex
        order — and therefore every order-sensitive float accumulation
        downstream — matches the mutable path exactly.
        """
        if self._stable_undirected_compact is None:
            self._stable_undirected_compact = (
                self.stable_undirected_graph().freeze()
            )
        return self._stable_undirected_compact


def build_snapshot(
    reports: Iterable[PeerReport],
    *,
    time: float,
    window_seconds: float,
    active_threshold: int = DEFAULT_ACTIVE_THRESHOLD,
) -> TopologySnapshot:
    """Assemble a snapshot from the reports of one observation window.

    When a peer reported more than once in the window, its latest report
    wins (the counters are per-interval, so the latest reflects the most
    recent exchange activity).
    """
    latest: dict[int, PeerReport] = {}
    for report in reports:
        previous = latest.get(report.peer_ip)
        if previous is None or report.time >= previous.time:
            latest[report.peer_ip] = report

    # Adjacency is assembled directly on the graphs' dict-of-set storage:
    # this loop dominates per-window analytics cost and per-edge add_edge
    # calls were its hottest part.  Insertion order (reporter first, then
    # partners in report order) and dedup match the add_edge path exactly.
    active = DiGraph()
    partners = Graph()
    padj = partners._adj
    succ = active._succ
    pred = active._pred
    partner_edges = 0
    active_edges = 0
    for ip, report in latest.items():
        prow = padj.get(ip)
        if prow is None:
            prow = padj[ip] = set()
        if ip not in succ:
            succ[ip] = set()
            pred[ip] = set()
        for partner in report.partners:
            pip = partner.ip
            if pip == ip:
                continue
            orow = padj.get(pip)
            if orow is None:
                orow = padj[pip] = set()
            if pip not in prow:
                prow.add(pip)
                orow.add(ip)
                partner_edges += 1
            if partner.recv_segments >= active_threshold:
                out_pip = succ.get(pip)
                if out_pip is None:
                    out_pip = succ[pip] = set()
                    pred[pip] = set()
                if ip not in out_pip:
                    out_pip.add(ip)
                    pred[ip].add(pip)
                    active_edges += 1
            if partner.sent_segments >= active_threshold:
                out_ip = succ[ip]
                if pip not in out_ip:
                    out_ip.add(pip)
                    in_pip = pred.get(pip)
                    if in_pip is None:
                        succ[pip] = set()
                        in_pip = pred[pip] = set()
                    in_pip.add(ip)
                    active_edges += 1
    partners._num_edges = partner_edges
    active._num_edges = active_edges
    return TopologySnapshot(
        time=time,
        window_seconds=window_seconds,
        reports=latest,
        active_graph=active,
        partner_graph=partners,
        active_threshold=active_threshold,
    )
