"""Per-figure experiment drivers (DESIGN.md Sec. 3).

Each ``figN_*`` function turns a trace (any re-iterable of reports, e.g.
:class:`repro.traces.TraceReader`) into exactly the series or
distributions the corresponding paper figure plots.
``run_simulation_to_trace`` produces such traces from the simulator at a
chosen scale; benchmarks and examples share it.
"""

from __future__ import annotations

import dataclasses
import json
from functools import partial
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable, Iterable
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.ingest.client import ReportClient

from repro.core.metrics import (
    DegreeSummary,
    IntraIspDegrees,
    ReciprocityMetrics,
    average_degrees,
    daily_distinct_ips,
    degree_distributions,
    intra_isp_degree_fractions,
    isp_shares,
    random_intra_isp_baseline,
    reciprocity_metrics,
    small_world,
    streaming_quality,
)
from repro.core.snapshots import TopologySnapshot, build_snapshot
from repro.core.timeseries import MetricFn, SnapshotSeries, observe
from repro.graph.degree import DegreeDistribution
from repro.ioutil import atomic_write_bytes
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.overlay import (
    PolicyError,
    available_policies,
    build_policy,
    canonical_spec,
    parse_policy_spec,
)
from repro.graph.smallworld import SmallWorldMetrics
from repro.network.isp import IspDatabase, build_default_database
from repro.simulator.channel import ChannelCatalogue
from repro.simulator.checkpoint import (
    CheckpointError,
    CheckpointManager,
    draw_fingerprint,
    restore_into,
)
from repro.simulator.failures import FaultPlan
from repro.simulator.protocol import ProtocolConfig, SelectionPolicy
from repro.simulator.system import SystemConfig, UUSeeSystem
from repro.traces.faults import ChannelFaults, FaultyChannel
from repro.traces.health import TraceHealth
from repro.traces.records import PeerReport
from repro.traces.segments import SegmentedTraceStore
from repro.traces.store import JsonlTraceStore, iter_windows
from repro.workloads.flashcrowd import FlashCrowdEvent

SECONDS_PER_HOUR = 3_600.0
SECONDS_PER_DAY = 86_400.0

#: Default observation instants for Fig. 4: a normal Monday morning and
#: evening, and the flash-crowd Friday morning and evening (day 5 is the
#: simulated Oct 6 2006).
FIG4_SNAPSHOT_TIMES: dict[str, float] = {
    "9am normal": 1 * SECONDS_PER_DAY + 9 * SECONDS_PER_HOUR,
    "9pm normal": 1 * SECONDS_PER_DAY + 21 * SECONDS_PER_HOUR,
    "9am flash day": 5 * SECONDS_PER_DAY + 9 * SECONDS_PER_HOUR,
    "9pm flash crowd": 5 * SECONDS_PER_DAY + 21 * SECONDS_PER_HOUR,
}


# ------------------------------------------------------------------ runner


def normalize_policy(policy: SelectionPolicy | str) -> tuple[SelectionPolicy, str]:
    """Map a policy argument to the ``(policy, overlay)`` config pair.

    Legacy :class:`SelectionPolicy` values (and their bare spec strings)
    keep driving the ``policy`` enum with an empty ``overlay`` — the
    config token, checkpoint format and draw sequence of existing
    campaigns are untouched.  Any other registry spec (``locality:mix=0.8``)
    rides in ``SystemConfig.overlay`` in canonical form.  Raises
    :class:`~repro.overlay.PolicyError` for unknown names or parameters.
    """
    if isinstance(policy, SelectionPolicy):
        return policy, ""
    name, params = parse_policy_spec(policy)
    if name not in available_policies():
        raise PolicyError(
            f"unknown partner policy {name!r}; "
            f"available: {', '.join(available_policies())}"
        )
    build_policy(policy)  # validate the parameters eagerly
    if not params:
        try:
            return SelectionPolicy(name), ""
        except ValueError:
            pass
    return SelectionPolicy.UUSEE, canonical_spec(name, params)


def run_simulation_to_trace(
    path: str | Path,
    *,
    days: float = 14.0,
    base_concurrency: float = 1_000.0,
    seed: int = 2006,
    with_flash_crowd: bool = True,
    policy: SelectionPolicy | str = SelectionPolicy.UUSEE,
    protocol: ProtocolConfig | None = None,
    catalogue: ChannelCatalogue | None = None,
    faults: FaultPlan | None = None,
    channel_faults: ChannelFaults | None = None,
    trace_mode: str = "overwrite",
    engine: str = "object",
    obs: AnyObserver = NULL_OBSERVER,
) -> Path:
    """Simulate a UUSee deployment and write its trace to ``path``.

    Returns the path.  The defaults reproduce the paper's two selected
    weeks at ~1/100 scale, including the day-5 flash crowd.  ``faults``
    injects infrastructure faults into the simulated system;
    ``channel_faults`` damages the report stream on its way to disk
    (producing a dirty trace that needs the tolerant readers).
    ``engine`` picks the exchange backend (see ``SystemConfig.engine``).
    """
    path = Path(path)
    policy_enum, overlay = normalize_policy(policy)
    config = SystemConfig(
        seed=seed,
        base_concurrency=base_concurrency,
        flash_crowd=FlashCrowdEvent() if with_flash_crowd else None,
        policy=policy_enum,
        overlay=overlay,
        protocol=protocol or ProtocolConfig(),
        faults=faults,
        engine=engine,
    )
    with JsonlTraceStore(path, mode=trace_mode, obs=obs) as store:
        sink = (
            FaultyChannel(store, channel_faults, seed=seed)
            if channel_faults is not None
            else store
        )
        system = UUSeeSystem(config, sink, catalogue=catalogue, obs=obs)
        with obs.span("campaign.run"):
            system.run(days=days)
        if sink is not store:
            sink.flush()
    return path


@dataclass
class CampaignResult:
    """Outcome of a (possibly resumed) crash-safe measurement campaign."""

    trace_dir: Path
    rounds_completed: int
    trace_records: int
    resumed_from_round: int | None  # None when started fresh
    health: TraceHealth  # recovery repairs + collection-side drops
    interrupted: bool = False  # a stop signal cut the run short (checkpointed)
    rng_fingerprint: str | None = None  # final named-RNG state digest
    content_sha256: str | None = None  # trace content digest (local stores only)
    policy_name: str = "uusee"  # partner-selection policy that drove the run
    policy_params: dict[str, float] = dataclasses.field(default_factory=dict)
    policy_spec: str = "uusee"  # canonical spec string (name[:k=v,...])


def run_campaign(
    trace_dir: str | Path,
    *,
    days: float = 14.0,
    base_concurrency: float = 1_000.0,
    seed: int = 2006,
    with_flash_crowd: bool = True,
    policy: SelectionPolicy | str = SelectionPolicy.UUSEE,
    protocol: ProtocolConfig | None = None,
    catalogue: ChannelCatalogue | None = None,
    faults: FaultPlan | None = None,
    checkpoint_dir: str | Path | None = None,
    checkpoint_every_rounds: int = 36,
    keep_last: int = 3,
    resume: bool | str = False,
    records_per_segment: int = 100_000,
    compress: bool = False,
    fsync_on_flush: bool = False,
    checkpoint_scope: str = "",
    stop: Callable[[], bool] | None = None,
    on_round: Callable[[int], None] | None = None,
    compute_content_sha: bool = False,
    ingest: "ReportClient | None" = None,
    engine: str = "object",
    obs: AnyObserver = NULL_OBSERVER,
) -> CampaignResult:
    """Run a crash-safe campaign: segmented trace + periodic checkpoints.

    The durable sibling of :func:`run_simulation_to_trace` for runs long
    enough to be killed.  The trace goes to a
    :class:`~repro.traces.segments.SegmentedTraceStore` under
    ``trace_dir``; a checkpoint lands in ``checkpoint_dir`` (default
    ``trace_dir/checkpoints``) every ``checkpoint_every_rounds``
    completed rounds and once more at the end.

    With ``resume=True`` the newest valid checkpoint is restored, the
    segment store is crash-recovered and rolled back to the checkpoint's
    durable record cut, and the simulation continues until the requested
    ``days`` span — producing the same trace content, draw for draw, as
    a run that was never interrupted.  Resuming without any valid
    checkpoint raises :class:`~repro.simulator.checkpoint.CheckpointError`.

    With ``ingest`` set to a :class:`~repro.ingest.client.ReportClient`,
    reports ship over the network to a running
    :class:`~repro.ingest.service.TraceIngestService` instead of a local
    segment store; the in-flight loss model moves to the real wire, so
    the in-process coin flip is disabled (``trace_loss_rate=0.0`` — the
    draw sequence of every other RNG stream is unchanged).  The trace
    directory then lives server-side; ``trace_dir`` here still anchors
    the checkpoint directory and the client-side ``health.json``.
    Resuming an ingest campaign requires passing ``ingest`` again: the
    checkpoint carries the reporter's pending frames and sequence
    cursor, and the server deduplicates the replayed resends.

    ``resume="auto"`` is the supervised-restart mode: resume from the
    newest valid checkpoint when one exists, otherwise start fresh —
    recovering (and discarding, via ``rollback(0)``) whatever trace
    data a previous attempt left behind without ever reaching its first
    checkpoint.  A fleet worker restarted after any crash can always
    pass ``"auto"`` and converge on the uninterrupted campaign.

    ``stop`` is polled at every round boundary; when it returns true
    the campaign halts *after* the completed round, takes its final
    checkpoint, seals the store, and returns with ``interrupted=True``
    — a later ``resume`` continues exactly where it left off.
    ``on_round`` fires after every completed round (heartbeats).
    ``checkpoint_scope`` narrows the checkpoint config token (shard
    identity); ``compute_content_sha`` additionally digests the final
    trace content into ``CampaignResult.content_sha256``.  ``engine``
    picks the exchange backend (see ``SystemConfig.engine``); resumes
    must use the engine that took the checkpoint (the config token
    pins it).
    """
    if isinstance(resume, str) and resume != "auto":
        raise ValueError(f"resume must be True, False or 'auto', got {resume!r}")
    trace_dir = Path(trace_dir)
    ckpt_dir = (
        Path(checkpoint_dir) if checkpoint_dir is not None
        else trace_dir / "checkpoints"
    )
    policy_enum, overlay = normalize_policy(policy)
    config = SystemConfig(
        seed=seed,
        base_concurrency=base_concurrency,
        flash_crowd=FlashCrowdEvent() if with_flash_crowd else None,
        policy=policy_enum,
        overlay=overlay,
        protocol=protocol or ProtocolConfig(),
        faults=faults,
        engine=engine,
    )
    if ingest is not None:
        # Loss now happens on the real wire; the in-process coin flip
        # would double-apply it.  trace_server's RNG stream simply makes
        # zero draws — every other stream's sequence is untouched.
        config = dataclasses.replace(config, trace_loss_rate=0.0)
    manager = CheckpointManager(
        ckpt_dir, keep_last=keep_last, scope=checkpoint_scope, obs=obs
    )
    resumed_from: int | None = None
    store: "SegmentedTraceStore | ReportClient"
    found = manager.latest_valid() if resume else None
    if resume is True and found is None:
        raise CheckpointError(
            f"--resume: no valid checkpoint under {ckpt_dir}; "
            "start without --resume to begin a fresh campaign"
        )
    if found is not None:
        _, state = found
        if ingest is not None:
            store = ingest
        else:
            store = SegmentedTraceStore.recover(
                trace_dir, fsync_on_flush=fsync_on_flush, obs=obs
            )
            if state["trace_records"] is not None:
                store.rollback(state["trace_records"])
        system = UUSeeSystem(config, store, catalogue=catalogue, obs=obs)
        restore_into(system, state, scope=checkpoint_scope)
        resumed_from = system.rounds_completed
    else:
        if ingest is not None:
            store = ingest
        else:
            try:
                store = SegmentedTraceStore(
                    trace_dir,
                    records_per_segment=records_per_segment,
                    compress=compress,
                    fsync_on_flush=fsync_on_flush,
                    obs=obs,
                )
            except FileExistsError:
                if resume != "auto":
                    raise
                # A previous attempt died before its first checkpoint:
                # its trace data has no cut to rejoin, so recover the
                # store and discard everything — the fresh run
                # regenerates it all.
                store = SegmentedTraceStore.recover(
                    trace_dir, fsync_on_flush=fsync_on_flush, obs=obs
                )
                store.rollback(0)
        system = UUSeeSystem(config, store, catalogue=catalogue, obs=obs)
    remaining = days * SECONDS_PER_DAY - system.engine.now
    finished = True
    if remaining > 1e-9:
        with obs.span("campaign.run"):
            finished = system.run(
                seconds=remaining,
                checkpoint=manager,
                checkpoint_every_rounds=checkpoint_every_rounds,
                stop=stop,
                on_round=on_round,
            )
    manager.save(system)  # final cut: a later --resume extends cleanly
    fingerprint = draw_fingerprint(system)
    store.close()
    health = TraceHealth()
    if ingest is not None:
        # The durable trace lives server-side; the client folds what it
        # can prove was lost (injected damage, spill overflow, reports
        # unacked at close) and counts what the server acknowledged.
        ingest.fold_into(health)
        trace_records = ingest.stats.reports_acked
    else:
        health.merge(store.health)
        trace_records = len(store)
    system.trace_server.fold_into(health)
    content_sha: str | None = None
    if compute_content_sha and isinstance(store, SegmentedTraceStore):
        content_sha = store.content_sha256()
    partner_policy = system.partner_policy
    result = CampaignResult(
        trace_dir=trace_dir,
        rounds_completed=system.rounds_completed,
        trace_records=trace_records,
        resumed_from_round=resumed_from,
        health=health,
        interrupted=not finished,
        rng_fingerprint=fingerprint,
        content_sha256=content_sha,
        policy_name=partner_policy.name,
        policy_params=dict(partner_policy.params),
        policy_spec=partner_policy.spec(),
    )
    _write_campaign_health(result)
    return result


#: File name of the persisted campaign-health summary inside a trace dir.
CAMPAIGN_HEALTH_NAME = "health.json"
#: Backup of the previous valid summary, the tolerant-load fallback.
CAMPAIGN_HEALTH_PREV_NAME = "health.json.prev"


def _write_campaign_health(result: CampaignResult) -> None:
    """Persist collection/recovery accounting next to the trace segments.

    ``info``/``analyze`` read this back, so server-side drops and
    recovery repairs — which exist only inside the finished campaign
    process — survive for later inspection of the trace directory.
    Before replacing an existing *valid* summary the old file is kept
    as ``health.json.prev``; :func:`load_campaign_health` falls back to
    it when the primary copy is damaged or missing.
    """
    payload = {
        "rounds_completed": result.rounds_completed,
        "trace_records": result.trace_records,
        "resumed_from_round": result.resumed_from_round,
        "interrupted": result.interrupted,
        "rng_fingerprint": result.rng_fingerprint,
        "policy": {
            "name": result.policy_name,
            "params": result.policy_params,
            "spec": result.policy_spec,
        },
        "health": dataclasses.asdict(result.health),
    }
    write_campaign_health_payload(result.trace_dir, payload)


def write_campaign_health_payload(
    trace_dir: str | Path, payload: dict[str, object]
) -> None:
    """Atomically persist a ``health.json`` payload, keeping a backup.

    The previous file is promoted to ``health.json.prev`` only when it
    still parses — a damaged primary never overwrites a good backup.
    """
    trace_dir = Path(trace_dir)
    primary = trace_dir / CAMPAIGN_HEALTH_NAME
    previous = _read_health_file(primary)
    if previous is not None:
        atomic_write_bytes(
            trace_dir / CAMPAIGN_HEALTH_PREV_NAME,
            (json.dumps(previous, indent=2, sort_keys=True) + "\n").encode("utf-8"),
        )
    atomic_write_bytes(
        primary,
        (json.dumps(payload, indent=2, sort_keys=True) + "\n").encode("utf-8"),
    )


def _read_health_file(path: Path) -> dict[str, object] | None:
    try:
        raw = path.read_text(encoding="utf-8")
    except OSError:
        return None
    try:
        payload = json.loads(raw)
    except ValueError:
        return None
    return payload if isinstance(payload, dict) else None


def load_campaign_health(trace_dir: str | Path) -> dict[str, object] | None:
    """Read a campaign directory's persisted ``health.json`` (or None).

    Tolerant: a primary copy damaged by a crash mid-campaign (or
    deleted by hand) falls back to the ``health.json.prev`` backup kept
    by the previous successful write, so ``info`` keeps reporting the
    newest summary that ever survived intact.
    """
    trace_dir = Path(trace_dir)
    payload = _read_health_file(trace_dir / CAMPAIGN_HEALTH_NAME)
    if payload is not None:
        return payload
    return _read_health_file(trace_dir / CAMPAIGN_HEALTH_PREV_NAME)


# ------------------------------------------------------------------ Fig. 1


@dataclass
class Fig1Result:
    """Fig. 1(A) series plus Fig. 1(B) daily aggregates."""

    series: SnapshotSeries  # columns: total, stable
    daily: list[tuple[int, int, int]]  # (day, total IPs, stable IPs)

    def stable_ratio(self, *, skip_first_hours: float = 12.0) -> float:
        """Mean stable/total ratio after warm-up."""
        ratios = [
            stable / total
            for t, total, stable in zip(
                self.series.times,
                self.series.column("total"),
                self.series.column("stable"),
            )
            if t >= skip_first_hours * SECONDS_PER_HOUR and total
        ]
        return sum(ratios) / len(ratios) if ratios else 0.0

    def peak_hour_of_day(self, *, skip_first_hours: float = 12.0) -> float:
        """Hour of day at which total population peaks on average."""
        by_hour: dict[int, list[int]] = {}
        for t, total in zip(self.series.times, self.series.column("total")):
            if t < skip_first_hours * SECONDS_PER_HOUR:
                continue
            by_hour.setdefault(int((t % SECONDS_PER_DAY) // 3600), []).append(total)
        means = {h: sum(v) / len(v) for h, v in by_hour.items()}
        return max(means, key=means.get)

    def flash_crowd_boost(self, flash_time: float) -> float:
        """Population at the flash crowd vs the same hour one week later."""
        week_later = flash_time + 7 * SECONDS_PER_DAY

        def nearest_total(when: float) -> int:
            best = min(self.series.times, key=lambda t: abs(t - when))
            idx = self.series.times.index(best)
            return self.series.column("total")[idx]

        reference = nearest_total(week_later)
        return nearest_total(flash_time) / reference if reference else 0.0


def _snapshot_num_total(snapshot: TopologySnapshot) -> int:
    return snapshot.num_total


def _snapshot_num_stable(snapshot: TopologySnapshot) -> int:
    return snapshot.num_stable


def fig1_scale(
    trace: Iterable[PeerReport],
    *,
    window_seconds: float = 600.0,
    observe_every: float = 3_600.0,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> Fig1Result:
    """Fig. 1: simultaneous peer counts and daily distinct IPs."""
    series = observe(
        trace,
        {
            "total": _snapshot_num_total,
            "stable": _snapshot_num_stable,
        },
        window_seconds=window_seconds,
        observe_every=observe_every,
        workers=workers,
        obs=obs,
    )
    daily = daily_distinct_ips(trace)
    return Fig1Result(series=series, daily=daily)


# ------------------------------------------------------------------ Fig. 2


def fig2_isp_shares(
    trace: Iterable[PeerReport],
    db: IspDatabase | None = None,
    *,
    window_seconds: float = 600.0,
    observe_every: float = 6 * SECONDS_PER_HOUR,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> dict[str, float]:
    """Fig. 2: peer shares per ISP, averaged over sampled snapshots."""
    db = db or build_default_database()
    series = observe(
        trace,
        {"shares": partial(isp_shares, db=db)},
        window_seconds=window_seconds,
        observe_every=observe_every,
        workers=workers,
        obs=obs,
    )
    totals: dict[str, float] = {}
    count = 0
    # A trace shorter than observe_every yields no sampled windows at all.
    for shares in series.values.get("shares", ()):
        if not shares:
            continue
        count += 1
        for name, value in shares.items():
            totals[name] = totals.get(name, 0.0) + value
    return {name: value / count for name, value in totals.items()} if count else {}


# ------------------------------------------------------------------ Fig. 3


@dataclass
class Fig3Result:
    """Per-channel streaming-quality series."""

    series: SnapshotSeries  # one column per channel name
    channels: dict[str, int]

    def mean_quality(self, channel: str, *, skip_first_hours: float = 12.0) -> float:
        """Mean satisfied fraction for a channel after warm-up."""
        values = [
            v
            for t, v in zip(self.series.times, self.series.column(channel))
            if v is not None and t >= skip_first_hours * SECONDS_PER_HOUR
        ]
        return sum(values) / len(values) if values else 0.0

    def quality_at(self, channel: str, when: float) -> float | None:
        """Satisfied fraction at the observation nearest to ``when``."""
        best_idx = min(
            range(len(self.series.times)),
            key=lambda i: abs(self.series.times[i] - when),
        )
        return self.series.column(channel)[best_idx]


def fig3_streaming_quality(
    trace: Iterable[PeerReport],
    *,
    channels: dict[str, int] | None = None,
    stream_rate_kbps: float = 400.0,
    window_seconds: float = 600.0,
    observe_every: float = 3_600.0,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> Fig3Result:
    """Fig. 3: fraction of peers with receiving rate >= 90% of the rate."""
    channels = channels or {"CCTV1": 0, "CCTV4": 1}
    metrics: dict[str, MetricFn] = {
        name: partial(
            streaming_quality,
            channel_id=cid,
            stream_rate_kbps=stream_rate_kbps,
        )
        for name, cid in channels.items()
    }
    series = observe(
        trace,
        metrics,
        window_seconds=window_seconds,
        observe_every=observe_every,
        workers=workers,
        obs=obs,
    )
    return Fig3Result(series=series, channels=channels)


# ------------------------------------------------------------------ Fig. 4


@dataclass
class Fig4Result:
    """Degree distributions at the paper's four observation instants."""

    distributions: dict[str, dict[str, DegreeDistribution]]  # label -> kind

    def kind_at(self, label: str, kind: str) -> DegreeDistribution:
        """Distribution of one degree kind at one snapshot label."""
        return self.distributions[label][kind]


def fig4_degree_distributions(
    trace: Iterable[PeerReport],
    *,
    snapshot_times: dict[str, float] | None = None,
    window_seconds: float = 600.0,
    obs: AnyObserver = NULL_OBSERVER,
) -> Fig4Result:
    """Fig. 4: partner/in/out degree distributions at selected instants."""
    times = snapshot_times or FIG4_SNAPSHOT_TIMES
    wanted = {label: t for label, t in times.items()}
    out: dict[str, dict[str, DegreeDistribution]] = {}
    for window_start, window_reports in iter_windows(trace, window_seconds):
        for label, t in wanted.items():
            if label in out:
                continue
            if window_start <= t < window_start + window_seconds:
                with obs.span("analytics.snapshot"):
                    snapshot = build_snapshot(
                        window_reports, time=window_start, window_seconds=window_seconds
                    )
                with obs.span("analytics.metric.degrees"):
                    out[label] = degree_distributions(snapshot)
        if len(out) == len(wanted):
            break
    missing = set(wanted) - set(out)
    if missing:
        raise ValueError(f"trace too short for snapshots: {sorted(missing)}")
    return Fig4Result(distributions=out)


# ------------------------------------------------------------------ Fig. 5


@dataclass
class Fig5Result:
    """Evolution of average degrees."""

    series: SnapshotSeries  # column 'degrees' of DegreeSummary

    def summaries(self) -> list[DegreeSummary]:
        """All per-window degree summaries, in time order."""
        return list(self.series.column("degrees"))

    def mean_indegree(self, *, skip_first_hours: float = 12.0) -> float:
        """Mean active indegree after warm-up (paper: flat ~10)."""
        vals = [
            d.mean_indegree
            for t, d in zip(self.series.times, self.series.column("degrees"))
            if t >= skip_first_hours * SECONDS_PER_HOUR
        ]
        return sum(vals) / len(vals) if vals else 0.0

    def partner_count_range(self, *, skip_first_hours: float = 12.0) -> tuple[float, float]:
        """(min, max) of the mean partner count after warm-up."""
        vals = [
            d.mean_partners
            for t, d in zip(self.series.times, self.series.column("degrees"))
            if t >= skip_first_hours * SECONDS_PER_HOUR
        ]
        return (min(vals), max(vals)) if vals else (0.0, 0.0)


def fig5_degree_evolution(
    trace: Iterable[PeerReport],
    *,
    window_seconds: float = 600.0,
    observe_every: float = 3_600.0,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> Fig5Result:
    """Fig. 5: evolution of mean partner count and active in/outdegree."""
    series = observe(
        trace,
        {"degrees": average_degrees},
        window_seconds=window_seconds,
        observe_every=observe_every,
        workers=workers,
        obs=obs,
    )
    return Fig5Result(series=series)


# ------------------------------------------------------------------ Fig. 6


@dataclass
class Fig6Result:
    """Evolution of intra-ISP degree fractions, plus the random baseline."""

    series: SnapshotSeries  # column 'intra' of IntraIspDegrees
    random_baseline: float

    def mean_fractions(self, *, skip_first_hours: float = 12.0) -> tuple[float, float]:
        """(intra-ISP indegree, outdegree) fractions after warm-up."""
        rows: list[IntraIspDegrees] = [
            v
            for t, v in zip(self.series.times, self.series.column("intra"))
            if t >= skip_first_hours * SECONDS_PER_HOUR
        ]
        if not rows:
            return (0.0, 0.0)
        return (
            sum(r.indegree_fraction for r in rows) / len(rows),
            sum(r.outdegree_fraction for r in rows) / len(rows),
        )


def fig6_intra_isp_degrees(
    trace: Iterable[PeerReport],
    db: IspDatabase | None = None,
    *,
    window_seconds: float = 600.0,
    observe_every: float = 3_600.0,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> Fig6Result:
    """Fig. 6: average intra-ISP proportion of active degrees over time."""
    db = db or build_default_database()
    series = observe(
        trace,
        {"intra": partial(intra_isp_degree_fractions, db=db)},
        window_seconds=window_seconds,
        observe_every=observe_every,
        workers=workers,
        obs=obs,
    )
    return Fig6Result(series=series, random_baseline=random_intra_isp_baseline(db))


# ------------------------------------------------------------------ Fig. 7


@dataclass
class Fig7Result:
    """Small-world metric series for a graph family (global or one ISP)."""

    series: SnapshotSeries  # column 'sw' of SmallWorldMetrics
    isp: str | None

    def metrics(self) -> list[SmallWorldMetrics]:
        """All per-window small-world metrics, in time order."""
        return list(self.series.column("sw"))

    def mean_clustering_ratio(self, *, skip_first_hours: float = 12.0) -> float:
        """Mean C/C_random after warm-up (paper: >10x)."""
        vals = [
            m.clustering_ratio
            for t, m in zip(self.series.times, self.series.column("sw"))
            if t >= skip_first_hours * SECONDS_PER_HOUR
            and m.clustering_ratio != float("inf")
        ]
        return sum(vals) / len(vals) if vals else 0.0

    def mean_path_ratio(self, *, skip_first_hours: float = 12.0) -> float:
        """Mean L/L_random after warm-up (paper: ~1x)."""
        vals = [
            m.path_length_ratio
            for t, m in zip(self.series.times, self.series.column("sw"))
            if t >= skip_first_hours * SECONDS_PER_HOUR and m.path_length_ratio > 0
        ]
        return sum(vals) / len(vals) if vals else 0.0


def fig7_small_world(
    trace: Iterable[PeerReport],
    *,
    isp: str | None = None,
    db: IspDatabase | None = None,
    window_seconds: float = 600.0,
    observe_every: float = 6 * SECONDS_PER_HOUR,
    seed: int = 0,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> Fig7Result:
    """Fig. 7: C and L of the stable-peer graph vs matched random graphs.

    Pass ``isp='China Netcom'`` for the Fig. 7(B) ISP subgraph variant.
    """
    db = db or build_default_database()
    series = observe(
        trace,
        {"sw": partial(small_world, isp=isp, db=db, seed=seed)},
        window_seconds=window_seconds,
        observe_every=observe_every,
        workers=workers,
        obs=obs,
    )
    return Fig7Result(series=series, isp=isp)


# ------------------------------------------------------------------ Fig. 8


@dataclass
class Fig8Result:
    """Edge-reciprocity series: all links, intra-ISP, inter-ISP."""

    series: SnapshotSeries  # column 'rho' of ReciprocityMetrics

    def metrics(self) -> list[ReciprocityMetrics]:
        """All per-window reciprocity metrics, in time order."""
        return list(self.series.column("rho"))

    def means(self, *, skip_first_hours: float = 12.0) -> ReciprocityMetrics:
        """Mean rho (all/intra/inter) after warm-up."""
        rows = [
            m
            for t, m in zip(self.series.times, self.series.column("rho"))
            if t >= skip_first_hours * SECONDS_PER_HOUR
        ]
        n = len(rows) or 1
        from repro.core.metrics import ReciprocityMetrics as RM

        return RM(
            all_links=sum(m.all_links for m in rows) / n,
            intra_isp=sum(m.intra_isp for m in rows) / n,
            inter_isp=sum(m.inter_isp for m in rows) / n,
            num_edges=sum(m.num_edges for m in rows) // n,
        )


def fig8_reciprocity(
    trace: Iterable[PeerReport],
    db: IspDatabase | None = None,
    *,
    window_seconds: float = 600.0,
    observe_every: float = 3_600.0,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> Fig8Result:
    """Fig. 8: Garlaschelli-Loffredo reciprocity, global and ISP-split."""
    db = db or build_default_database()
    series = observe(
        trace,
        {"rho": partial(reciprocity_metrics, db=db)},
        window_seconds=window_seconds,
        observe_every=observe_every,
        workers=workers,
        obs=obs,
    )
    return Fig8Result(series=series)


# ------------------------------------------- windowed structure series


def _window_degrees(snapshot: TopologySnapshot) -> object:
    return degree_distributions(snapshot)


def _window_reciprocity(snapshot: TopologySnapshot) -> float:
    from repro.graph.reciprocity import edge_reciprocity

    return edge_reciprocity(snapshot.active_compact())


def _window_clustering(snapshot: TopologySnapshot) -> float:
    from repro.graph.clustering import average_clustering

    return average_clustering(snapshot.stable_undirected_compact())


#: The per-window structural metrics the incremental backend maintains,
#: as snapshot-kernel functions for the full (recompute) backend.
WINDOW_STRUCTURE_METRICS: dict[str, MetricFn] = {
    "degrees": _window_degrees,
    "reciprocity": _window_reciprocity,
    "clustering": _window_clustering,
}


def windowed_structure(
    trace: Iterable[PeerReport],
    *,
    mode: str = "incremental",
    window_seconds: float = 600.0,
    observe_every: float | None = None,
    active_threshold: int = 10,
    resync_every: int = 64,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> SnapshotSeries:
    """Per-window degree/reciprocity/clustering series over a trace.

    ``mode="incremental"`` streams the trace through
    :class:`repro.soa.incremental.IncrementalWindowMetrics`, updating
    delta-maintained state per window; ``mode="full"`` recomputes each
    window's snapshot and runs the CSR kernels.  Both produce the same
    series bit for bit — the incremental backend exists purely for
    throughput.  ``workers`` only applies to ``mode="full"`` (the
    incremental state is inherently serial); ``resync_every`` only to
    ``mode="incremental"``.
    """
    if mode == "incremental":
        from repro.soa.incremental import observe_incremental

        return observe_incremental(
            trace,
            window_seconds=window_seconds,
            observe_every=observe_every,
            active_threshold=active_threshold,
            resync_every=resync_every,
            obs=obs,
        )
    if mode == "full":
        return observe(
            trace,
            WINDOW_STRUCTURE_METRICS,
            window_seconds=window_seconds,
            observe_every=observe_every,
            active_threshold=active_threshold,
            workers=workers,
            obs=obs,
        )
    raise ValueError(f"unknown analytics mode {mode!r} (incremental|full)")


# -------------------------------------------------- overlay comparison


#: The comparative overlay study's default line-up: the paper's protocol
#: plus the four literature alternatives at their default parameters.
DEFAULT_OVERLAY_SPECS: tuple[str, ...] = (
    "uusee",
    "locality:mix=0.75",
    "hamiltonian:k=2",
    "random-regular:d=4",
    "strandcast",
)

#: Column headers of the overlay-comparison table, in row order.
OVERLAY_TABLE_HEADERS: tuple[str, ...] = (
    "policy",
    "peers",
    "partners (mean)",
    "indegree (max)",
    "C",
    "C/C_rand",
    "rho",
    "intra-ISP in",
    "quality",
)


@dataclass
class OverlayStudyRow:
    """One policy's Magellan metric suite over its final trace window."""

    spec: str  # canonical policy spec that produced the run
    num_peers: int  # stable peers in the measured snapshot
    mean_partners: float  # Fig. 4/5: mean partner degree
    max_indegree: int  # Fig. 4: max active indegree
    clustering: float  # Fig. 7: clustering coefficient C
    clustering_ratio: float  # Fig. 7: C / C_random
    reciprocity: float  # Fig. 8: rho over all links
    intra_isp_indegree: float  # Fig. 6: intra-ISP fraction of indegree
    quality: float | None  # Fig. 3: satisfied fraction, channel 0

    def table_row(self) -> list[object]:
        """Row values matching :data:`OVERLAY_TABLE_HEADERS`."""
        ratio = (
            "inf" if self.clustering_ratio == float("inf")
            else f"{self.clustering_ratio:.1f}"
        )
        return [
            self.spec,
            self.num_peers,
            f"{self.mean_partners:.1f}",
            self.max_indegree,
            f"{self.clustering:.3f}",
            ratio,
            f"{self.reciprocity:.3f}",
            f"{self.intra_isp_indegree:.3f}",
            "n/a" if self.quality is None else f"{self.quality:.2f}",
        ]


@dataclass
class OverlayComparison:
    """Cross-policy study: one metric row per overlay, shared settings."""

    rows: list[OverlayStudyRow]
    random_intra_baseline: float  # ISP-blind intra-ISP expectation
    hours: float
    base_concurrency: float
    seed: int

    def markdown(self) -> str:
        """The study as a GitHub-flavoured markdown table."""
        lines = [
            "| " + " | ".join(OVERLAY_TABLE_HEADERS) + " |",
            "|" + "|".join("---" for _ in OVERLAY_TABLE_HEADERS) + "|",
        ]
        for row in self.rows:
            lines.append(
                "| " + " | ".join(str(v) for v in row.table_row()) + " |"
            )
        return "\n".join(lines)


def compare_overlays(
    specs: Iterable[str] = DEFAULT_OVERLAY_SPECS,
    *,
    hours: float = 6.0,
    base_concurrency: float = 120.0,
    seed: int = 2006,
    window_seconds: float = 600.0,
    db: IspDatabase | None = None,
    obs: AnyObserver = NULL_OBSERVER,
) -> OverlayComparison:
    """Run the same deployment under each overlay and measure it.

    Every policy gets an identical simulator configuration (same seed,
    same churn, same channel catalogue, no flash crowd) differing only
    in ``SystemConfig.overlay``; the full Magellan metric suite then
    reads each run's final trace window.  The per-policy rows land in
    EXPERIMENTS.md's cross-policy table via ``repro compare-overlays``.
    """
    from repro.traces.store import InMemoryTraceStore

    db = db or build_default_database()
    rows: list[OverlayStudyRow] = []
    for spec in specs:
        policy_enum, overlay = normalize_policy(spec)
        config = SystemConfig(
            seed=seed,
            base_concurrency=base_concurrency,
            flash_crowd=None,
            policy=policy_enum,
            overlay=overlay,
        )
        store = InMemoryTraceStore()
        system = UUSeeSystem(config, store, obs=obs)
        with obs.span("overlay.run"):
            system.run(seconds=hours * SECONDS_PER_HOUR)
        final: tuple[float, list[PeerReport]] | None = None
        for window_start, window_reports in iter_windows(store, window_seconds):
            if window_reports:
                final = (window_start, list(window_reports))
        if final is None:
            raise ValueError(
                f"policy {spec!r} produced no reports in {hours} h; "
                "raise --hours or --base"
            )
        with obs.span("analytics.snapshot"):
            snapshot = build_snapshot(
                final[1], time=final[0], window_seconds=window_seconds
            )
        degrees = degree_distributions(snapshot)
        sw = small_world(snapshot, db=db, seed=seed)
        rho = reciprocity_metrics(snapshot, db=db)
        intra = intra_isp_degree_fractions(snapshot, db=db)
        rows.append(
            OverlayStudyRow(
                spec=system.partner_policy.spec(),
                num_peers=snapshot.num_stable,
                mean_partners=degrees["partners"].mean(),
                max_indegree=degrees["in"].max_degree(),
                clustering=sw.clustering,
                clustering_ratio=sw.clustering_ratio,
                reciprocity=rho.all_links,
                intra_isp_indegree=intra.indegree_fraction,
                quality=streaming_quality(
                    snapshot, channel_id=0, stream_rate_kbps=400.0
                ),
            )
        )
    return OverlayComparison(
        rows=rows,
        random_intra_baseline=random_intra_isp_baseline(db),
        hours=hours,
        base_concurrency=base_concurrency,
        seed=seed,
    )
