"""Text and CSV rendering of experiment results.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep that output aligned and machine-readable.
"""

from __future__ import annotations

import csv
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.core.timeseries import SnapshotSeries
from repro.traces.health import TraceHealth


def _fmt(value: object, precision: int) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    *,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Align rows under headers; floats rendered at ``precision``."""
    rendered = [[_fmt(cell, precision) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    series: SnapshotSeries,
    columns: Sequence[str],
    *,
    precision: int = 3,
    title: str | None = None,
    time_unit: str = "hours",
) -> str:
    """Render a SnapshotSeries with a time column first."""
    divisor = {"seconds": 1.0, "hours": 3_600.0, "days": 86_400.0}[time_unit]
    rows = []
    for t, row in series.rows():
        rows.append([t / divisor] + [row.get(c) for c in columns])
    return format_table(
        [f"t_{time_unit}"] + list(columns), rows, precision=precision, title=title
    )


def format_trace_health(
    health: TraceHealth, *, title: str = "Trace health"
) -> str:
    """Render a tolerant pass's TraceHealth counters as a table."""
    suffix = "" if health.dirty else " (clean)"
    return format_table(
        ["counter", "value"], health.rows(), title=title + suffix
    )


def write_csv(
    path: str | Path,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
) -> Path:
    """Write rows to a CSV file; returns the path."""
    path = Path(path)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            writer.writerow(list(row))
    return path
