"""Windowed evolution of metrics over a trace.

The paper's evolution figures (1A, 5, 6, 7, 8) plot a metric computed on
back-to-back snapshots across two weeks.  ``observe`` streams a trace
once, materialising a snapshot per observation instant and applying any
number of metric functions to it — so a multi-hundred-MB trace is never
resident in memory.

Snapshots are independent, so ``observe(..., workers=N)`` fans the
per-window work (snapshot build + metric evaluation) out over a process
pool.  Windows are submitted as the trace streams past a bounded
in-flight queue and results are appended strictly in submission order,
so the resulting series — and anything rendered from it — is
byte-identical to the serial path for every worker count.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from collections import deque
from collections.abc import Callable, Iterable
from concurrent.futures import Future, ProcessPoolExecutor

from repro.core.snapshots import TopologySnapshot, build_snapshot
from repro.obs.spans import NULL_OBSERVER, AnyObserver
from repro.traces.records import PeerReport
from repro.traces.store import iter_windows

MetricFn = Callable[[TopologySnapshot], object]


@dataclass
class SnapshotSeries:
    """Aligned time series: one row of metric values per observation."""

    times: list[float] = field(default_factory=list)
    values: dict[str, list[object]] = field(default_factory=dict)

    def append(self, time: float, row: dict[str, object]) -> None:
        """Add one observation row at ``time``."""
        self.times.append(time)
        for key, value in row.items():
            self.values.setdefault(key, []).append(value)

    def column(self, key: str) -> list[object]:
        """All values of one metric, aligned with :attr:`times`."""
        return self.values[key]

    def __len__(self) -> int:
        return len(self.times)

    def rows(self) -> Iterable[tuple[float, dict[str, object]]]:
        """Iterate (time, {metric: value}) rows."""
        for i, t in enumerate(self.times):
            yield t, {k: v[i] for k, v in self.values.items()}


# Per-worker state, installed once by the pool initializer so each
# window task ships only its reports, not the metric table.
_worker_metrics: dict[str, MetricFn] = {}
_worker_window_seconds: float = 600.0
_worker_active_threshold: int = 10


def _init_observe_worker(payload: bytes) -> None:
    """Process-pool initializer: unpack the pickled observation config."""
    global _worker_metrics, _worker_window_seconds, _worker_active_threshold
    _worker_metrics, _worker_window_seconds, _worker_active_threshold = (
        pickle.loads(payload)
    )


def _observe_window(
    window_start: float, window_reports: list[PeerReport]
) -> tuple[dict[str, object], int]:
    """Worker body: build one window's snapshot and apply every metric."""
    snapshot = build_snapshot(
        window_reports,
        time=window_start,
        window_seconds=_worker_window_seconds,
        active_threshold=_worker_active_threshold,
    )
    row = {name: fn(snapshot) for name, fn in _worker_metrics.items()}
    return row, snapshot.num_total


def _observe_parallel(
    reports: Iterable[PeerReport],
    metrics: dict[str, MetricFn],
    *,
    window_seconds: float,
    observe_every: float,
    start: float,
    active_threshold: int,
    workers: int,
    obs: AnyObserver,
) -> SnapshotSeries:
    """Fan observation windows out over a process pool, in order."""
    try:
        payload = pickle.dumps((metrics, window_seconds, active_threshold))
    except (pickle.PicklingError, TypeError, AttributeError) as exc:
        raise ValueError(
            "metrics must be picklable for workers > 1: use module-level "
            "functions or functools.partial instead of lambdas/closures"
        ) from exc
    series = SnapshotSeries()
    pending: deque[tuple[float, Future[tuple[dict[str, object], int]]]] = (
        deque()
    )
    max_pending = workers * 4

    def drain(down_to: int) -> None:
        while len(pending) > down_to:
            window_start, future = pending.popleft()
            row, num_total = future.result()
            if obs.enabled:
                obs.count("analytics.snapshots")
                obs.gauge_set("analytics.snapshot_nodes", num_total)
            series.append(window_start, row)

    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_init_observe_worker,
        initargs=(payload,),
    ) as pool:
        for window_start, window_reports in iter_windows(
            reports, window_seconds, start=start
        ):
            offset = window_start - start
            if (offset % observe_every) > 1e-9:
                continue
            pending.append(
                (
                    window_start,
                    pool.submit(_observe_window, window_start, window_reports),
                )
            )
            drain(max_pending - 1)
        drain(0)
    return series


def observe(
    reports: Iterable[PeerReport],
    metrics: dict[str, MetricFn],
    *,
    window_seconds: float = 600.0,
    observe_every: float | None = None,
    start: float = 0.0,
    active_threshold: int = 10,
    workers: int = 1,
    obs: AnyObserver = NULL_OBSERVER,
) -> SnapshotSeries:
    """Apply ``metrics`` to the snapshot of each observation window.

    ``observe_every`` subsamples: only windows starting on a multiple of
    it (relative to ``start``) are materialised — e.g. hourly snapshots
    from a 10-minute-resolution trace.  Defaults to every window.

    ``workers > 1`` evaluates windows on a process pool (metrics must be
    picklable — module-level functions or ``functools.partial``, not
    lambdas).  Results are reassembled in window order, so the series is
    byte-identical to the serial path for any worker count; per-metric
    obs spans are only recorded on the serial path (the snapshot counter
    and node gauge are kept either way).

    With an enabled ``obs``, each materialised snapshot is timed under
    the ``analytics.snapshot`` span and every metric function under
    ``analytics.metric.<name>``, with ``analytics.snapshot_nodes``
    tracking graph size — the per-metric compute profile of a figure.
    """
    if observe_every is None:
        observe_every = window_seconds
    if observe_every < window_seconds:
        raise ValueError("observe_every must be >= window_seconds")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if workers > 1:
        return _observe_parallel(
            reports,
            metrics,
            window_seconds=window_seconds,
            observe_every=observe_every,
            start=start,
            active_threshold=active_threshold,
            workers=workers,
            obs=obs,
        )
    series = SnapshotSeries()
    for window_start, window_reports in iter_windows(
        reports, window_seconds, start=start
    ):
        offset = window_start - start
        if (offset % observe_every) > 1e-9:
            continue
        with obs.span("analytics.snapshot"):
            snapshot = build_snapshot(
                window_reports,
                time=window_start,
                window_seconds=window_seconds,
                active_threshold=active_threshold,
            )
        if not obs.enabled:
            row = {name: fn(snapshot) for name, fn in metrics.items()}
        else:
            obs.count("analytics.snapshots")
            obs.gauge_set("analytics.snapshot_nodes", snapshot.num_total)
            row = {}
            for name, fn in metrics.items():
                with obs.span(f"analytics.metric.{name}"):
                    row[name] = fn(snapshot)
        series.append(window_start, row)
    return series


def round_event_series(events: Iterable[dict[str, object]]) -> SnapshotSeries:
    """Per-round observability events as a :class:`SnapshotSeries`.

    Consumes the ``type == "round"`` events an instrumented simulator
    appends to its JSONL event log (see ``repro.obs``): each becomes one
    row keyed by simulated time, with every other numeric field
    (viewers, satisfied, transfers, arrivals, ...) as a column — so the
    run's live telemetry plots with the same tooling as trace-derived
    series.
    """
    series = SnapshotSeries()
    for event in events:
        if event.get("type") != "round":
            continue
        row = {
            key: value
            for key, value in event.items()
            if key not in ("type", "sim_time")
        }
        time = event.get("sim_time", 0.0)
        series.append(float(time) if isinstance(time, (int, float)) else 0.0, row)
    return series
