"""Magellan analytics: the paper's topology characterisation pipeline.

Given a Magellan-style trace (from ``repro.traces``, fed by the
``repro.simulator`` substrate — or, in principle, by a real deployment),
this subpackage rebuilds topology snapshots and computes every metric of
the paper's Sec. 4:

- scale: concurrent peers, stable peers, daily distinct IPs (Fig. 1);
- ISP membership shares (Fig. 2);
- streaming quality per channel (Fig. 3);
- degree distributions and their evolution (Figs. 4, 5);
- intra-ISP degree fractions (Fig. 6);
- small-world metrics vs random baselines, global and per ISP (Fig. 7);
- Garlaschelli-Loffredo edge reciprocity, global and ISP-split (Fig. 8).
"""

from repro.core.snapshots import TopologySnapshot, build_snapshot
from repro.core.metrics import (
    DegreeSummary,
    IntraIspDegrees,
    average_degrees,
    daily_distinct_ips,
    degree_distributions,
    intra_isp_degree_fractions,
    isp_shares,
    peer_counts,
    reciprocity_metrics,
    small_world,
    streaming_quality,
)
from repro.core.timeseries import SnapshotSeries, observe, round_event_series
from repro.core.experiments import (
    CampaignResult,
    Fig1Result,
    Fig3Result,
    Fig4Result,
    Fig5Result,
    Fig6Result,
    Fig7Result,
    Fig8Result,
    run_campaign,
    run_simulation_to_trace,
)
from repro.core import experiments
from repro.core.dynamics import (
    PartnerStability,
    SessionStatistics,
    TurnoverPoint,
    partner_stability,
    population_turnover,
    session_statistics,
)
from repro.core.locality import TrafficMatrix, isp_traffic_matrix
from repro.core.structure import MeshStructure, mesh_structure
from repro.core.resilience import ResilienceStats, quality_dip, satisfied_series
from repro.core.report import (
    format_series,
    format_table,
    format_trace_health,
    write_csv,
)

__all__ = [
    "TopologySnapshot",
    "build_snapshot",
    "DegreeSummary",
    "IntraIspDegrees",
    "average_degrees",
    "daily_distinct_ips",
    "degree_distributions",
    "intra_isp_degree_fractions",
    "isp_shares",
    "peer_counts",
    "reciprocity_metrics",
    "small_world",
    "streaming_quality",
    "SnapshotSeries",
    "observe",
    "round_event_series",
    "experiments",
    "CampaignResult",
    "Fig1Result",
    "Fig3Result",
    "Fig4Result",
    "Fig5Result",
    "Fig6Result",
    "Fig7Result",
    "Fig8Result",
    "run_campaign",
    "run_simulation_to_trace",
    "ResilienceStats",
    "quality_dip",
    "satisfied_series",
    "format_series",
    "format_table",
    "format_trace_health",
    "write_csv",
    "PartnerStability",
    "SessionStatistics",
    "TurnoverPoint",
    "partner_stability",
    "population_turnover",
    "session_statistics",
    "TrafficMatrix",
    "isp_traffic_matrix",
    "MeshStructure",
    "mesh_structure",
]
