"""Churn and topology dynamics from traces.

The paper emphasises the *evolutionary* nature of the streaming
topology but only plots metric time series; these analytics quantify
the underlying dynamics directly from the same reports, the way later
measurement studies (e.g. Stutzbach et al.'s churn work) do:

- observed stable-peer session lengths (first report .. last report);
- stable-population turnover between observation windows;
- partner-list stability between a peer's consecutive reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.traces.records import PeerReport
from repro.traces.store import iter_windows


@dataclass(frozen=True)
class SessionStatistics:
    """Observed reporting spans of stable peers."""

    num_peers: int
    mean_span_s: float  # mean(first report .. last report)
    median_span_s: float
    mean_reports_per_peer: float

    @property
    def mean_session_estimate_s(self) -> float:
        """Span plus the ~20 min unobserved pre-report lifetime."""
        return self.mean_span_s + 1_200.0


def session_statistics(reports: Iterable[PeerReport]) -> SessionStatistics:
    """Summarise per-peer reporting spans over a whole trace."""
    first: dict[int, float] = {}
    last: dict[int, float] = {}
    count: dict[int, int] = {}
    for report in reports:
        ip = report.peer_ip
        if ip not in first:
            first[ip] = report.time
        last[ip] = max(last.get(ip, report.time), report.time)
        count[ip] = count.get(ip, 0) + 1
    if not first:
        return SessionStatistics(0, 0.0, 0.0, 0.0)
    spans = sorted(last[ip] - first[ip] for ip in first)
    n = len(spans)
    return SessionStatistics(
        num_peers=n,
        mean_span_s=sum(spans) / n,
        median_span_s=spans[n // 2],
        mean_reports_per_peer=sum(count.values()) / n,
    )


@dataclass(frozen=True)
class TurnoverPoint:
    """Stable-population change between two consecutive windows."""

    time: float
    present: int  # reporters in this window
    arrived: int  # reporters not present in the previous window
    departed: int  # previous reporters absent from this window

    @property
    def turnover_rate(self) -> float:
        """(arrivals + departures) / present."""
        return (self.arrived + self.departed) / self.present if self.present else 0.0


def population_turnover(
    reports: Iterable[PeerReport], *, window_seconds: float = 600.0
) -> list[TurnoverPoint]:
    """Stable-peer arrivals/departures per observation window."""
    points: list[TurnoverPoint] = []
    previous: set[int] = set()
    for window_start, window_reports in iter_windows(reports, window_seconds):
        current = {r.peer_ip for r in window_reports}
        points.append(
            TurnoverPoint(
                time=window_start,
                present=len(current),
                arrived=len(current - previous),
                departed=len(previous - current),
            )
        )
        previous = current
    return points


@dataclass(frozen=True)
class PartnerStability:
    """How much partner lists persist between consecutive reports."""

    num_transitions: int
    mean_jaccard: float  # |A and B| / |A or B| over consecutive reports
    mean_kept_fraction: float  # |A and B| / |A|


def partner_stability(reports: Iterable[PeerReport]) -> PartnerStability:
    """Partner-set similarity between each peer's consecutive reports."""
    last_partners: dict[int, set[int]] = {}
    jaccards: list[float] = []
    kept: list[float] = []
    for report in reports:
        current = {p.ip for p in report.partners}
        previous = last_partners.get(report.peer_ip)
        if previous is not None and (previous or current):
            union = previous | current
            inter = previous & current
            if union:
                jaccards.append(len(inter) / len(union))
            if previous:
                kept.append(len(inter) / len(previous))
        last_partners[report.peer_ip] = current
    if not jaccards:
        return PartnerStability(0, 0.0, 0.0)
    return PartnerStability(
        num_transitions=len(jaccards),
        mean_jaccard=sum(jaccards) / len(jaccards),
        mean_kept_fraction=sum(kept) / len(kept) if kept else 0.0,
    )
