"""Resilience metrics: how deep a quality dip is and how fast it heals.

The paper observes UUSee absorbing a flash crowd with *improving*
quality; the fault-injection experiments here ask the complementary
question — when infrastructure degrades (tracker brownout, ISP
partition, crash waves), how far does streaming quality fall, and how
long after the fault window does it take to climb back to its
pre-fault level?
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Iterable, Sequence


@dataclass(frozen=True)
class ResilienceStats:
    """Quality dip-and-recovery summary around one fault window."""

    baseline: float  # mean quality over the pre-fault span
    min_during: float  # worst quality inside the fault window
    dip_depth: float  # baseline - min_during (>= 0 when quality fell)
    recovery_time_s: float  # time after fault end to reach the recovery
    #   threshold; inf if it never does within the series
    recovered_value: float  # quality at the recovery instant (or the
    #   last post-fault sample if recovery never happened)

    @property
    def recovered(self) -> bool:
        """Whether quality climbed back above the recovery threshold."""
        return math.isfinite(self.recovery_time_s)


def quality_dip(
    times: Sequence[float],
    values: Sequence[float],
    *,
    fault_start: float,
    fault_end: float,
    baseline_span_s: float = 7_200.0,
    recovery_fraction: float = 0.95,
) -> ResilienceStats:
    """Measure the dip a fault window carved into a quality series.

    ``baseline`` is the mean of samples in the ``baseline_span_s``
    before ``fault_start``; recovery is the first post-``fault_end``
    sample reaching ``recovery_fraction * baseline``.  Raises
    ``ValueError`` when the series has no pre-fault samples to build a
    baseline from.
    """
    if len(times) != len(values):
        raise ValueError("times and values must have equal length")
    if fault_end <= fault_start:
        raise ValueError("fault window must have positive length")
    pre = [
        v
        for t, v in zip(times, values)
        if fault_start - baseline_span_s <= t < fault_start and v is not None
    ]
    if not pre:
        raise ValueError(
            f"no samples in the {baseline_span_s:.0f}s before the fault "
            "window; extend the series or shrink baseline_span_s"
        )
    baseline = sum(pre) / len(pre)
    during = [
        v
        for t, v in zip(times, values)
        if fault_start <= t <= fault_end and v is not None
    ]
    min_during = min(during) if during else baseline
    threshold = recovery_fraction * baseline
    recovery_time = math.inf
    recovered_value = min_during
    for t, v in zip(times, values):
        if t <= fault_end or v is None:
            continue
        recovered_value = v
        if v >= threshold:
            recovery_time = t - fault_end
            break
    return ResilienceStats(
        baseline=baseline,
        min_during=min_during,
        dip_depth=max(0.0, baseline - min_during),
        recovery_time_s=recovery_time,
        recovered_value=recovered_value,
    )


def satisfied_series(round_stats: Iterable) -> tuple[list[float], list[float]]:
    """(times, satisfied fractions) from the simulator's round stats.

    Accepts ``UUSeeSystem.round_stats`` directly; pairs with
    :func:`quality_dip` for in-simulator resilience measurements that
    do not need a written trace.
    """
    times: list[float] = []
    values: list[float] = []
    for stats in round_stats:
        times.append(stats.time)
        values.append(stats.satisfied_fraction())
    return times, values
