"""Traffic locality: segment flows between ISPs and server dependence.

Fig. 6 counts intra-ISP *links*; ISPs, however, care about *traffic*.
These analytics weight each active link by the segments it carried in
the window, yielding the ISP-to-ISP traffic matrix, the intra-ISP
traffic fraction, and how much of the stream still comes straight from
UUSee's servers (unmapped IPs) rather than from peers.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

from repro.core.snapshots import TopologySnapshot
from repro.network.isp import IspDatabase


@dataclass(frozen=True)
class TrafficMatrix:
    """Directed segment flows between ISPs in one window."""

    flows: dict[tuple[str, str], float]  # (from ISP, to ISP) -> segments
    from_unmapped: float  # segments received from unmapped IPs (servers)
    total_received: float  # all segments received by stable peers

    def intra_fraction(self) -> float:
        """Intra-ISP share of the ISP-attributable traffic."""
        mapped = sum(self.flows.values())
        if mapped == 0:
            return 0.0
        intra = sum(v for (a, b), v in self.flows.items() if a == b)
        return intra / mapped

    def server_fraction(self) -> float:
        """Share of all received traffic that came from unmapped sources."""
        if self.total_received == 0:
            return 0.0
        return self.from_unmapped / self.total_received

    def top_flows(self, k: int = 5) -> list[tuple[str, str, float]]:
        """The ``k`` largest ISP-to-ISP flows, descending."""
        ranked = sorted(self.flows.items(), key=lambda kv: kv[1], reverse=True)
        return [(a, b, v) for (a, b), v in ranked[:k]]


def isp_traffic_matrix(snapshot: TopologySnapshot, db: IspDatabase) -> TrafficMatrix:
    """Aggregate per-partner received-segment counts into ISP flows.

    Uses the receiver side of every stable peer's report (received
    counts are authoritative for what actually arrived).
    """
    flows: dict[tuple[str, str], float] = defaultdict(float)
    from_unmapped = 0.0
    total = 0.0
    isp_cache: dict[int, str | None] = {}

    def isp_of(ip: int) -> str | None:
        if ip not in isp_cache:
            isp_cache[ip] = db.lookup(ip)
        return isp_cache[ip]

    for report in snapshot.reports.values():
        own = isp_of(report.peer_ip)
        for partner in report.partners:
            segments = float(partner.recv_segments)
            if segments <= 0:
                continue
            total += segments
            source = isp_of(partner.ip)
            if source is None or own is None:
                from_unmapped += segments if source is None else 0.0
                continue
            flows[(source, own)] += segments
    return TrafficMatrix(
        flows=dict(flows), from_unmapped=from_unmapped, total_received=total
    )
