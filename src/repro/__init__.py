"""Magellan (ICDCS 2007) reproduction: UUSee P2P live-streaming
topology measurement, rebuilt end to end.

Subpackages: :mod:`repro.graph` (graph substrate), :mod:`repro.network`
(synthetic Internet), :mod:`repro.workloads` (load models),
:mod:`repro.simulator` (the UUSee system), :mod:`repro.traces`
(measurement methodology), :mod:`repro.core` (the paper's analytics),
plus :mod:`repro.stats` and the :mod:`repro.cli` command line.
"""

__version__ = "1.0.0"
