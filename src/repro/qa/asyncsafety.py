"""REP102/REP103: async-safety over the call graph.

REP102 — blocking work on the event loop.  ``os.fsync``, ``time.sleep``,
sync socket/file I/O and anything that transitively reaches them must
not run inside ``async def`` without an executor hop.  The check is
interprocedural: an async function calling a sync helper that three
frames down calls ``os.fsync`` is flagged at the call site, with the
chain spelled out.  ``asyncio.to_thread(fn, ...)`` and
``run_in_executor`` naturally exempt: the hopped function is passed as
an *argument*, so the call graph has no direct edge into it.

REP103 — dropped awaitables and loop stalls: a coroutine call whose
result is discarded (never awaited, never scheduled) silently does
nothing, and an ``await`` while holding a synchronous ``threading``
lock parks the entire event loop behind a lock other threads contend
on.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator

from repro.qa.findings import Severity
from repro.qa.program import CallSite, FunctionInfo, ProgramGraph
from repro.qa.program_rules import ProgramFinding, ProgramRule, register_program

#: Dotted call targets that block the calling thread.
BLOCKING_CALLS = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.fdatasync",
        "os.sync",
        "os.replace",
        "socket.create_connection",
        "socket.getaddrinfo",
        "socket.gethostbyname",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "urllib.request.urlopen",
        "open",
    }
)

#: Methods that block when invoked on a ``socket.socket``.
BLOCKING_SOCKET_METHODS = frozenset(
    {"recv", "recvfrom", "send", "sendall", "sendto", "accept", "connect", "makefile"}
)

#: ``pathlib.Path`` methods that hit the filesystem synchronously.
BLOCKING_PATH_METHODS = frozenset(
    {
        "write_bytes",
        "write_text",
        "read_bytes",
        "read_text",
        "open",
        "replace",
        "rename",
        "unlink",
        "mkdir",
    }
)


def _blocking_target(target: str | None) -> str | None:
    """The canonical blocking operation ``target`` performs, if any."""
    if target is None:
        return None
    if target in BLOCKING_CALLS:
        return target
    head, _, method = target.rpartition(".")
    if head == "socket.socket" and method in BLOCKING_SOCKET_METHODS:
        return target
    if head == "pathlib.Path" and method in BLOCKING_PATH_METHODS:
        return target
    return None


class _BlockingIndex:
    """Memoized 'does this function transitively block?' with witness chains."""

    def __init__(self, graph: ProgramGraph) -> None:
        self.graph = graph
        #: qualname -> chain of call descriptions down to the blocking op,
        #: or None when proven non-blocking.
        self._memo: dict[str, list[str] | None] = {}

    def chain(self, qualname: str) -> list[str] | None:
        if qualname in self._memo:
            return self._memo[qualname]
        self._memo[qualname] = None  # cycle guard: assume clean while visiting
        fn = self.graph.functions.get(qualname)
        if fn is None:
            return None
        result: list[str] | None = None
        for site in fn.calls:
            direct = _blocking_target(site.target)
            if direct is not None:
                result = [direct]
                break
            if site.target is None or site.target == qualname:
                continue
            callee = self.graph.functions.get(site.target)
            if callee is None or callee.is_async:
                continue  # async callees are audited at their own body
            sub = self.chain(site.target)
            if sub is not None:
                result = [_short(site.target), *sub]
                break
        self._memo[qualname] = result
        return result


def _short(qualname: str) -> str:
    """Trailing ``Class.method`` / ``function`` for readable chains."""
    parts = qualname.split(".")
    return ".".join(parts[-2:]) if len(parts) > 1 else qualname


@register_program
class BlockingInAsyncRule(ProgramRule):
    """REP102: blocking call reachable inside ``async def``."""

    rule_id = "REP102"
    title = "blocking call reachable from async def"
    severity = Severity.ERROR
    rationale = (
        "A synchronous sleep, fsync or socket/file operation inside a "
        "coroutine stalls the whole event loop — every connected peer's "
        "reports queue behind it; hop to a worker thread with "
        "await asyncio.to_thread(...) instead."
    )

    def check(self, graph: ProgramGraph) -> Iterable[ProgramFinding]:
        index = _BlockingIndex(graph)
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            if not fn.is_async:
                continue
            yield from self._check_async_fn(graph, index, fn)

    def _check_async_fn(
        self, graph: ProgramGraph, index: _BlockingIndex, fn: FunctionInfo
    ) -> Iterator[ProgramFinding]:
        reported: set[tuple[int, str]] = set()
        for site in fn.calls:
            blocking = _describe(graph, index, site)
            if blocking is None:
                continue
            key = (site.line, blocking)
            if key in reported:
                continue
            reported.add(key)
            yield (
                fn.path,
                site.line,
                site.col,
                f"async def {fn.name}() reaches blocking {blocking}; hop off "
                "the event loop with await asyncio.to_thread(...)",
            )


def _describe(
    graph: ProgramGraph, index: _BlockingIndex, site: CallSite
) -> str | None:
    direct = _blocking_target(site.target)
    if direct is not None:
        return f"{direct}()"
    if site.target is None:
        return None
    callee = graph.functions.get(site.target)
    if callee is None or callee.is_async:
        return None
    chain = index.chain(site.target)
    if chain is None:
        return None
    return " -> ".join([_short(site.target), *chain]) + "()"


@register_program
class DroppedAwaitableRule(ProgramRule):
    """REP103: discarded coroutines and awaits under sync locks."""

    rule_id = "REP103"
    title = "dropped awaitable / await under sync lock"
    severity = Severity.ERROR
    rationale = (
        "Calling a coroutine function without awaiting or scheduling it "
        "silently does nothing (the body never runs); awaiting while "
        "holding a threading lock parks the event loop inside a critical "
        "section other threads contend on."
    )

    def check(self, graph: ProgramGraph) -> Iterable[ProgramFinding]:
        for qualname in sorted(graph.functions):
            fn = graph.functions[qualname]
            for site in fn.calls:
                if not site.discarded or site.awaited or site.async_wrapped:
                    continue
                callee = graph.functions.get(site.target or "")
                if callee is not None and callee.is_async:
                    yield (
                        fn.path,
                        site.line,
                        site.col,
                        f"coroutine {callee.name}() is called but never awaited "
                        "or scheduled; its body will not run",
                    )
            for line, lock in fn.sync_lock_awaits:
                yield (
                    fn.path,
                    line,
                    0,
                    f"await while holding synchronous lock {lock}; the event "
                    "loop stalls inside the critical section — use "
                    "asyncio.Lock or release before awaiting",
                )
