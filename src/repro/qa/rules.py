"""Rule base class and the process-wide rule registry.

A rule is a stateless object that inspects one parsed module at a time.
Rules register themselves via the :func:`register` decorator at import
time; the engine iterates :func:`all_rules` so adding a rule is a single
new class, with no engine changes.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from collections.abc import Iterable

from repro.qa.findings import Severity

#: (line, col, message) before the engine attaches rule/path/severity.
RawFinding = tuple[int, int, str]


class Rule:
    """Base class for AST lint rules.

    Subclasses set the class attributes and implement :meth:`check`;
    :meth:`applies_to` restricts a rule to part of the tree (e.g. REP002
    only polices simulation-facing packages).
    """

    rule_id: str = "REP000"
    title: str = ""
    severity: Severity = Severity.WARNING
    rationale: str = ""

    def applies_to(self, path: PurePath) -> bool:
        """Whether ``path`` is in scope for this rule (default: yes)."""
        return True

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        """Yield ``(line, col, message)`` for each violation in ``tree``."""
        raise NotImplementedError


#: rule_id -> singleton rule instance, in registration order.
_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator: instantiate ``cls`` and add it to the registry."""
    rule = cls()
    if not rule.rule_id or rule.rule_id in _REGISTRY:
        raise ValueError(f"duplicate or empty rule id: {rule.rule_id!r}")
    _REGISTRY[rule.rule_id] = rule
    return cls


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, in registration (i.e. numeric) order."""
    import repro.qa.checks  # noqa: F401  (registers the built-in rules)

    return tuple(_REGISTRY.values())


def get_rule(rule_id: str) -> Rule | None:
    """Look up one rule by id (None when unknown)."""
    all_rules()
    return _REGISTRY.get(rule_id)


def known_rule_ids() -> frozenset[str]:
    """The ids of every registered rule, per-file and whole-program."""
    from repro.qa.program_rules import known_program_rule_ids

    return frozenset(r.rule_id for r in all_rules()) | known_program_rule_ids()


# -- shared helpers used by several rules ---------------------------------


def dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` for Name/Attribute chains, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


def has_path_segment(path: PurePath, segments: frozenset[str]) -> bool:
    """True when any path component (sans suffix) is in ``segments``."""
    return any(part in segments for part in path.parts) or path.stem in segments


def is_test_module(path: PurePath) -> bool:
    """pytest test modules and conftest files (exempt from some rules)."""
    return path.name.startswith("test_") or path.name == "conftest.py"
