"""repro.qa — determinism & correctness static analysis + runtime sanitizer.

Static side: an AST lint engine (:mod:`repro.qa.engine`) with a rule
registry (:mod:`repro.qa.rules`), eight project-specific REP rules
(:mod:`repro.qa.checks`), line-scoped ``# repro: noqa[RULE]``
suppressions with unused-suppression detection, and JSON/human output.

Whole-program side (``qa --program``): :mod:`repro.qa.program` builds a
module/class/call graph over the scanned tree, and the REP1xx analyzers
(:mod:`repro.qa.checkpoints`, :mod:`repro.qa.asyncsafety`,
:mod:`repro.qa.rngflow`) check checkpoint-completeness, async-safety,
and interprocedural RNG flow against it, gated by the committed
``qa-baseline.json`` ratchet (:mod:`repro.qa.baseline`).

Runtime side (:mod:`repro.qa.sanitizer`): :func:`deterministic_guard`
turns unseeded entropy access into an immediate exception, and
:class:`DrawAudit` / :func:`assert_identical_draws` verify that two
identically-seeded runs consume identical RNG draw sequences.

CLI: ``python -m repro.cli qa [--json] [--fix-suppressions] [--program]
[--baseline FILE] [--update-baseline] PATHS``.
"""

from repro.qa.baseline import apply_baseline, load_baseline, save_baseline
from repro.qa.engine import (
    ScanResult,
    fix_unused_suppressions,
    scan_paths,
    scan_source,
)
from repro.qa.findings import Finding, Severity
from repro.qa.program import ProgramGraph
from repro.qa.program_rules import ProgramRule, all_program_rules
from repro.qa.rules import Rule, all_rules, get_rule
from repro.qa.sanitizer import (
    DrawAudit,
    DrawSnapshot,
    NondeterminismError,
    assert_identical_draws,
    audited,
    deterministic_guard,
)

__all__ = [
    "ScanResult",
    "fix_unused_suppressions",
    "scan_paths",
    "scan_source",
    "Finding",
    "Severity",
    "Rule",
    "all_rules",
    "get_rule",
    "ProgramGraph",
    "ProgramRule",
    "all_program_rules",
    "apply_baseline",
    "load_baseline",
    "save_baseline",
    "DrawAudit",
    "DrawSnapshot",
    "NondeterminismError",
    "assert_identical_draws",
    "audited",
    "deterministic_guard",
]
