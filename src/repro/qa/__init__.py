"""repro.qa — determinism & correctness static analysis + runtime sanitizer.

Static side: an AST lint engine (:mod:`repro.qa.engine`) with a rule
registry (:mod:`repro.qa.rules`), eight project-specific REP rules
(:mod:`repro.qa.checks`), line-scoped ``# repro: noqa[RULE]``
suppressions with unused-suppression detection, and JSON/human output.

Runtime side (:mod:`repro.qa.sanitizer`): :func:`deterministic_guard`
turns unseeded entropy access into an immediate exception, and
:class:`DrawAudit` / :func:`assert_identical_draws` verify that two
identically-seeded runs consume identical RNG draw sequences.

CLI: ``python -m repro.cli qa [--json] [--fix-suppressions] PATHS``.
"""

from repro.qa.engine import (
    ScanResult,
    fix_unused_suppressions,
    scan_paths,
    scan_source,
)
from repro.qa.findings import Finding, Severity
from repro.qa.rules import Rule, all_rules, get_rule
from repro.qa.sanitizer import (
    DrawAudit,
    DrawSnapshot,
    NondeterminismError,
    assert_identical_draws,
    audited,
    deterministic_guard,
)

__all__ = [
    "ScanResult",
    "fix_unused_suppressions",
    "scan_paths",
    "scan_source",
    "Finding",
    "Severity",
    "Rule",
    "all_rules",
    "get_rule",
    "DrawAudit",
    "DrawSnapshot",
    "NondeterminismError",
    "assert_identical_draws",
    "audited",
    "deterministic_guard",
]
