"""Baseline (ratchet) support: pre-existing findings don't block, new drift does.

The baseline file is a JSON multiset of finding *fingerprints* —
``(relative path, rule id, message)`` with line numbers normalised out,
so editing unrelated code above a blessed finding doesn't invalidate
it.  Paths are stored relative to the baseline file's own directory
(the repo root, for the committed ``qa-baseline.json``) and matched
against findings resolved the same way, so the gate behaves identically
from any working directory.

Workflow: ``--baseline qa-baseline.json`` filters blessed findings out
of the gate; ``--update-baseline`` regenerates the file from the
current scan, which is how an intentional checkpoint-schema change is
blessed (see DESIGN §5b).
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path

from repro.qa.findings import Finding

#: Filename probed in the working directory when --baseline isn't given.
DEFAULT_BASELINE_NAME = "qa-baseline.json"

_LINE_REF = re.compile(r"\bline \d+\b")

Fingerprint = tuple[str, str, str]


def fingerprint(finding: Finding, anchor: Path) -> Fingerprint:
    """Stable identity of a finding, independent of line numbers."""
    path = Path(finding.path)
    try:
        rel = path.resolve().relative_to(anchor.resolve()).as_posix()
    except ValueError:
        rel = path.as_posix()
    return (rel, finding.rule_id, _LINE_REF.sub("line ?", finding.message))


def save_baseline(path: Path, findings: list[Finding]) -> int:
    """Write the findings' fingerprint multiset; returns the entry count."""
    counts = Counter(fingerprint(f, path.parent) for f in findings)
    entries = [
        {"path": p, "rule": rule, "message": message, "count": count}
        for (p, rule, message), count in sorted(counts.items())
    ]
    payload = {"version": 1, "findings": entries}
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return len(entries)


def load_baseline(path: Path) -> Counter[Fingerprint]:
    """Read a baseline file into a fingerprint multiset.

    Raises ``ValueError`` on a malformed file — a corrupt baseline must
    fail the gate loudly, not silently bless everything.
    """
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or not isinstance(payload.get("findings"), list):
        raise ValueError(f"baseline {path} has no 'findings' list")
    counts: Counter[Fingerprint] = Counter()
    for entry in payload["findings"]:
        if not isinstance(entry, dict):
            raise ValueError(f"baseline {path} has a non-object finding entry")
        try:
            key = (str(entry["path"]), str(entry["rule"]), str(entry["message"]))
            count = int(entry.get("count", 1))
        except KeyError as exc:
            raise ValueError(f"baseline {path} entry missing {exc}") from exc
        counts[key] += max(count, 0)
    return counts


def apply_baseline(
    findings: list[Finding], baseline: Counter[Fingerprint], anchor: Path
) -> tuple[list[Finding], int]:
    """Split findings into (non-baselined, baselined count).

    Consumes baseline budget per fingerprint: if the baseline blesses
    two occurrences and the scan now has three, one still gates.
    """
    budget = Counter(baseline)
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        key = fingerprint(finding, anchor)
        if budget[key] > 0:
            budget[key] -= 1
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
