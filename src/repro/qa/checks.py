"""The built-in REP rules.

Each rule targets a determinism or correctness hazard this codebase has
actually hit (or must never hit): Magellan's analytics only mean
something if two identically-seeded runs emit identical traces, so
global RNG, wall clock, and unordered iteration are treated as bugs, not
style.  All rules are line-suppressible with ``# repro: noqa[RULE]``.
"""

from __future__ import annotations

import ast
from pathlib import PurePath
from collections.abc import Iterable, Iterator

from repro.qa.findings import Severity
from repro.qa.rules import (
    RawFinding,
    Rule,
    dotted_name,
    has_path_segment,
    is_test_module,
    register,
)

#: Functions on the ``random`` module that draw from the hidden global
#: Mersenne Twister.  ``random.Random``/``SystemRandom`` are excluded:
#: constructing an injected, seeded generator is exactly the fix.
GLOBAL_RANDOM_FNS = frozenset(
    {
        "random",
        "randint",
        "randrange",
        "randbytes",
        "getrandbits",
        "choice",
        "choices",
        "sample",
        "shuffle",
        "uniform",
        "triangular",
        "gauss",
        "normalvariate",
        "lognormvariate",
        "expovariate",
        "vonmisesvariate",
        "gammavariate",
        "betavariate",
        "paretovariate",
        "weibullvariate",
        "binomialvariate",
        "seed",
        "getstate",
        "setstate",
    }
)

#: Wall-clock reads that make a run depend on when it was launched.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.localtime",
        "time.gmtime",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
        "date.today",
    }
)

#: Packages whose runtime must be driven purely by simulated time.  The
#: obs package is scoped in too: its only sanctioned wall-clock read is
#: the injectable seam in ``repro/obs/clock.py`` (audited noqa).  The
#: ingest package joins it: timeouts, backoff schedules and commit
#: timings must flow through the Clock seam (WallClock/LoopClock in
#: production, ManualClock in tests) so retry and breaker behaviour is
#: exactly reproducible.  The fleet package joins for the same reason:
#: supervisor liveness deadlines (heartbeat/progress timeouts, backoff
#: scheduling) read time only through the injected Clock, so hang
#: detection and restart cadence are testable with a ManualClock.  The
#: overlay package joins because partner policies run inside the
#: simulated exchange rounds: any wall-clock read there would leak real
#: time into partner selection and break campaign reproducibility.  The
#: soa package is the simulator's hot path rehosted on flat arrays (plus
#: the incremental analytics), so it inherits the simulator's rules.
SIMULATED_TIME_SEGMENTS = frozenset(
    {"simulator", "traces", "core", "obs", "ingest", "fleet", "overlay", "soa"}
)

#: RNG methods whose result order depends on the order of their input.
ORDER_SENSITIVE_RNG_METHODS = frozenset({"choice", "choices", "sample", "shuffle"})


def _walk(node: ast.AST) -> Iterator[ast.AST]:
    yield from ast.walk(node)


@register
class GlobalRandomRule(Rule):
    """REP001: calls into the module-level (shared, unseeded) RNG."""

    rule_id = "REP001"
    title = "module-level random.* call"
    severity = Severity.ERROR
    rationale = (
        "The module-level random functions share one hidden generator whose "
        "state any import can perturb; draw from an injected "
        "random.Random(seed) instead so runs replay bit-for-bit."
    )

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        for node in _walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name is not None
                    and name.startswith("random.")
                    and name.split(".", 1)[1] in GLOBAL_RANDOM_FNS
                ):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{name}() draws from the shared global RNG; "
                        "use an injected random.Random(seed)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "random":
                bad = sorted(
                    alias.name for alias in node.names if alias.name in GLOBAL_RANDOM_FNS
                )
                if bad:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"importing {', '.join(bad)} from random binds the shared "
                        "global RNG; import random.Random and inject a seed",
                    )


@register
class WallClockRule(Rule):
    """REP002: wall-clock reads inside simulated-time packages."""

    rule_id = "REP002"
    title = "wall-clock read in simulated-time code"
    severity = Severity.ERROR
    rationale = (
        "simulator/, traces/, core/ and obs/ run on the event engine's "
        "virtual clock; reading the host clock makes traces differ "
        "between runs and machines (obs durations must flow through the "
        "injectable clock seam in repro/obs/clock.py)."
    )

    def applies_to(self, path: PurePath) -> bool:
        return has_path_segment(path, SIMULATED_TIME_SEGMENTS)

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        for node in _walk(tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in WALL_CLOCK_CALLS:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"{name}() reads the wall clock; simulated-time code "
                        "must take time from the event engine",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = sorted(
                    alias.name
                    for alias in node.names
                    if f"time.{alias.name}" in WALL_CLOCK_CALLS
                )
                if bad:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"importing {', '.join(bad)} from time pulls the wall "
                        "clock into simulated-time code",
                    )


def _contains_sorted(node: ast.AST) -> bool:
    for sub in _walk(node):
        if isinstance(sub, ast.Call) and isinstance(sub.func, ast.Name):
            if sub.func.id == "sorted":
                return True
    return False


def _unordered_source(node: ast.AST) -> str | None:
    """A description of the first unordered collection inside ``node``."""
    for sub in _walk(node):
        if isinstance(sub, (ast.Set, ast.SetComp)):
            return "a set literal/comprehension"
        if isinstance(sub, ast.Call):
            if isinstance(sub.func, ast.Name) and sub.func.id in ("set", "frozenset"):
                return f"{sub.func.id}(...)"
            if isinstance(sub.func, ast.Attribute) and sub.func.attr in (
                "values",
                "keys",
                "items",
            ):
                base = dotted_name(sub.func.value) or "<expr>"
                return f"{base}.{sub.func.attr}()"
    return None


@register
class UnorderedRngFeedRule(Rule):
    """REP003: RNG selection fed by set/dict-view iteration order."""

    rule_id = "REP003"
    title = "RNG choice over unordered collection"
    severity = Severity.ERROR
    rationale = (
        "choice/sample/shuffle over a set (hash order, perturbable by "
        "PYTHONHASHSEED) or a dict view (insertion order, perturbable by "
        "unrelated code) couples the draw sequence to iteration order; "
        "wrap the candidates in sorted(...) first."
    )

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        for node in _walk(tree):
            if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
                continue
            if node.func.attr not in ORDER_SENSITIVE_RNG_METHODS or not node.args:
                continue
            receiver = dotted_name(node.func.value)
            if receiver == "random":
                continue  # REP001 already owns module-level calls
            candidates = node.args[0]
            if _contains_sorted(candidates):
                continue
            culprit = _unordered_source(candidates)
            if culprit is not None:
                yield (
                    node.lineno,
                    node.col_offset,
                    f".{node.func.attr}() over {culprit}: iteration order is "
                    "not a stable contract; sort the candidates first",
                )


@register
class FloatEqualityRule(Rule):
    """REP004: exact float equality comparisons."""

    rule_id = "REP004"
    title = "float == / != comparison"
    severity = Severity.WARNING
    rationale = (
        "Exact comparison against a float literal is almost always a "
        "tolerance bug in metric code; use repro.stats.near_zero or an "
        "epsilon band.  Test modules are exempt (fixtures pin exact values)."
    )

    def applies_to(self, path: PurePath) -> bool:
        return not is_test_module(path)

    @staticmethod
    def _is_float_literal(node: ast.expr) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        return isinstance(node, ast.Constant) and type(node.value) is float

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        for node in _walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op in node.ops:
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if any(self._is_float_literal(operand) for operand in operands):
                    kind = "==" if isinstance(op, ast.Eq) else "!="
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"float {kind} comparison; compare within an epsilon "
                        "(e.g. repro.stats.near_zero)",
                    )
                    break


@register
class BroadExceptRule(Rule):
    """REP005: bare or overly broad exception handlers."""

    rule_id = "REP005"
    title = "bare/broad except"
    severity = Severity.WARNING
    rationale = (
        "except: / except Exception: swallow determinism violations, "
        "KeyboardInterrupt (bare form) and genuine bugs alike; catch the "
        "specific exceptions the block can actually raise."
    )

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        for node in _walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield (node.lineno, node.col_offset, "bare except: catches everything")
            else:
                name = dotted_name(node.type)
                if name in ("Exception", "BaseException"):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"except {name}: is too broad; name the exceptions "
                        "this block expects",
                    )


@register
class MutableDefaultRule(Rule):
    """REP006: mutable default argument values."""

    rule_id = "REP006"
    title = "mutable default argument"
    severity = Severity.ERROR
    rationale = (
        "A list/dict/set default is created once and shared across calls; "
        "state leaks between invocations and between test runs.  Default "
        "to None and construct inside the function."
    )

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        for node in _walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = [*node.args.defaults, *node.args.kw_defaults]
            for default in defaults:
                if default is None:
                    continue
                if isinstance(
                    default,
                    (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp),
                ) or (
                    isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set", "bytearray")
                ):
                    yield (
                        default.lineno,
                        default.col_offset,
                        f"mutable default in {node.name}(); use None and "
                        "construct inside the body",
                    )


@register
class MissingReturnAnnotationRule(Rule):
    """REP007: public functions without a return annotation."""

    rule_id = "REP007"
    title = "missing return annotation on public function"
    severity = Severity.WARNING
    rationale = (
        "Un-annotated returns hide Any from mypy and readers; every "
        "public function states what it produces.  Private helpers and "
        "test modules are exempt."
    )

    def applies_to(self, path: PurePath) -> bool:
        return not is_test_module(path)

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        yield from self._scan(tree.body, nested=False)

    def _scan(self, body: Iterable[ast.stmt], *, nested: bool) -> Iterator[RawFinding]:
        for node in body:
            if isinstance(node, ast.ClassDef):
                yield from self._scan(node.body, nested=nested)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not nested and self._needs_annotation(node):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"public function {node.name}() has no return annotation",
                    )
                # nested defs are implementation detail: skip, but recurse
                # so classes defined inside functions stay exempt too.
                yield from self._scan(node.body, nested=True)

    @staticmethod
    def _needs_annotation(node: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        if node.returns is not None or node.name.startswith("_"):
            return False
        decorators = {dotted_name(d) or "" for d in node.decorator_list}
        return not decorators & {"overload", "typing.overload"}


@register
class MutateWhileIterateRule(Rule):
    """REP008: mutating a dict/set while iterating over it."""

    rule_id = "REP008"
    title = "dict/set mutated during iteration"
    severity = Severity.ERROR
    rationale = (
        "del/pop on the container a for-loop is walking raises "
        "RuntimeError only *sometimes* — the silent cases skip entries "
        "nondeterministically.  Snapshot with list(...) first."
    )

    _MUTATORS = frozenset({"pop", "popitem", "clear", "remove", "discard", "add", "update"})

    def check(self, tree: ast.Module, source: str, path: PurePath) -> Iterable[RawFinding]:
        for node in _walk(tree):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            target = self._iterated_container(node.iter)
            if target is None:
                continue
            for sub in ast.walk(node):
                if sub is node.iter:
                    continue
                finding = self._mutation_of(sub, target)
                if finding is not None:
                    yield finding

    @staticmethod
    def _iterated_container(iter_expr: ast.expr) -> str | None:
        """Dotted name of the container being iterated directly (no copy)."""
        name = dotted_name(iter_expr)
        if name is not None:
            return name
        if (
            isinstance(iter_expr, ast.Call)
            and isinstance(iter_expr.func, ast.Attribute)
            and iter_expr.func.attr in ("items", "keys", "values")
        ):
            return dotted_name(iter_expr.func.value)
        return None

    def _mutation_of(self, node: ast.AST, target: str) -> RawFinding | None:
        if isinstance(node, ast.Delete):
            for victim in node.targets:
                if (
                    isinstance(victim, ast.Subscript)
                    and dotted_name(victim.value) == target
                ):
                    return (
                        node.lineno,
                        node.col_offset,
                        f"del {target}[...] while iterating {target}; "
                        f"iterate over list({target}) instead",
                    )
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in self._MUTATORS
            and dotted_name(node.func.value) == target
        ):
            return (
                node.lineno,
                node.col_offset,
                f"{target}.{node.func.attr}(...) while iterating {target}; "
                f"iterate over list({target}) instead",
            )
        return None
