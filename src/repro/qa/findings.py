"""Finding and severity primitives shared by the QA engine and rules."""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Severity(enum.Enum):
    """How bad a finding is; both levels gate CI, the split is for triage."""

    WARNING = "warning"
    ERROR = "error"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a specific source location."""

    path: str
    line: int
    col: int
    rule_id: str
    severity: Severity
    message: str

    def render(self) -> str:
        """``path:line:col: RULE [severity] message`` (editor-clickable)."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.severity}] {self.message}"
        )

    def to_json(self) -> dict[str, object]:
        """JSON-serialisable representation (stable key order)."""
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule_id,
            "severity": str(self.severity),
            "message": self.message,
        }
