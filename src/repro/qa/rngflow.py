"""REP104: interprocedural RNG-flow.

The draw-identity contract says every random draw must come from a
*named, seeded* stream, and the draw order must not depend on hash or
insertion order.  The per-file rules police one expression at a time
(REP001 bans the global RNG, REP003 bans ``rng.choice(a_set)``); this
analyzer follows RNG streams **across function boundaries** through the
call graph:

* a call site that binds an RNG-consuming parameter (annotated
  ``random.Random`` or conventionally named ``rng``/``*_rng``) to a
  fresh unseeded ``random.Random()``, to the global ``random`` module,
  or to a value whose stream cannot be traced, makes every draw inside
  the callee unattributable — flagged at the call site;
* a call site that passes an unordered collection (set literal,
  ``set(...)``, dict views) into a parameter the callee feeds to an
  order-sensitive draw (``choice``/``choices``/``sample``/``shuffle``)
  re-creates REP003 with the set and the draw in different functions —
  also flagged at the call site, naming both ends.
"""

from __future__ import annotations

import ast
from collections.abc import Iterable, Iterator

from repro.qa.checks import ORDER_SENSITIVE_RNG_METHODS, _contains_sorted
from repro.qa.findings import Severity
from repro.qa.program import (
    RANDOM_CLASS,
    ArgInfo,
    FunctionInfo,
    ProgramGraph,
    is_rng_name,
)
from repro.qa.program_rules import ProgramFinding, ProgramRule, register_program


def rng_params(fn: FunctionInfo) -> list[str]:
    """Parameters of ``fn`` that carry an RNG stream."""
    out = []
    for param in fn.param_names():
        if param in ("self", "cls"):
            continue
        if RANDOM_CLASS in fn.param_classes.get(param, ()) or is_rng_name(param):
            out.append(param)
    return out


def order_sensitive_params(fn: FunctionInfo) -> set[str]:
    """Parameters whose iteration order reaches an order-sensitive draw.

    Purely syntactic on the callee body: the parameter appears (unsorted)
    inside the candidates argument of ``<stream>.choice/choices/sample/
    shuffle``.
    """
    params = set(fn.param_names())
    out: set[str] = set()
    for node in ast.walk(fn.node):
        if not (isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute)):
            continue
        if node.func.attr not in ORDER_SENSITIVE_RNG_METHODS or not node.args:
            continue
        candidates = node.args[0]
        if _contains_sorted(candidates):
            continue
        for sub in ast.walk(candidates):
            if isinstance(sub, ast.Name) and sub.id in params:
                out.add(sub.id)
    return out


def _bind_args(
    callee: FunctionInfo,
    site_args: tuple[ArgInfo, ...],
    site_keywords: dict[str, ArgInfo],
) -> dict[str, ArgInfo]:
    """Map a call site's ArgInfo records onto the callee's parameter names."""
    params = callee.param_names()
    if params and params[0] in ("self", "cls"):
        params = params[1:]
    bound: dict[str, ArgInfo] = {}
    for param, arg in zip(params, site_args):
        bound[param] = arg
    for name, arg in site_keywords.items():
        if name in params:
            bound[name] = arg
    return bound


@register_program
class RngFlowRule(ProgramRule):
    """REP104: unattributable or order-sensitive RNG flow across calls."""

    rule_id = "REP104"
    title = "RNG stream unattributable across call boundary"
    severity = Severity.ERROR
    rationale = (
        "Draw identity only holds when every stream entering a function is "
        "a named seeded random.Random and the candidates it draws over have "
        "a stable order; an unseeded/global stream or a set passed through "
        "a call boundary breaks replay in a way neither file shows alone."
    )

    def check(self, graph: ProgramGraph) -> Iterable[ProgramFinding]:
        consumers: dict[str, tuple[list[str], set[str]]] = {}
        for qualname, fn in graph.functions.items():
            streams = rng_params(fn)
            unordered = order_sensitive_params(fn)
            if streams or unordered:
                consumers[qualname] = (streams, unordered)
        for qualname in sorted(graph.functions):
            caller = graph.functions[qualname]
            yield from self._check_caller(graph, caller, consumers)

    def _check_caller(
        self,
        graph: ProgramGraph,
        caller: FunctionInfo,
        consumers: dict[str, tuple[list[str], set[str]]],
    ) -> Iterator[ProgramFinding]:
        for site in caller.calls:
            if site.target not in consumers:
                continue
            callee = graph.functions[site.target]
            streams, unordered = consumers[site.target]
            bound = _bind_args(callee, site.args, site.keywords)
            for param in streams:
                arg = bound.get(param)
                if arg is None:
                    continue
                problem = {
                    "unseeded": (
                        "a fresh unseeded random.Random() — the stream has no "
                        "name and no replayable seed"
                    ),
                    "global": (
                        "the global random module — any import can perturb "
                        "that hidden shared stream"
                    ),
                    "opaque": (
                        f"'{arg.text}', whose stream cannot be traced to a "
                        "named seeded generator"
                    ),
                }.get(arg.rng or "")
                if problem is not None:
                    yield (
                        caller.path,
                        site.line,
                        site.col,
                        f"{caller.name}() passes {problem} into RNG parameter "
                        f"'{param}' of {callee.name}(); draws inside are "
                        "unattributable",
                    )
            for param in unordered:
                arg = bound.get(param)
                if arg is None or arg.unordered is None:
                    continue
                if arg.node is not None and _contains_sorted(arg.node):
                    continue
                yield (
                    caller.path,
                    site.line,
                    site.col,
                    f"{caller.name}() passes {arg.unordered} into parameter "
                    f"'{param}' of {callee.name}(), which feeds it to an "
                    "order-sensitive draw; iteration order crosses the call "
                    "boundary unsorted",
                )
