"""The ``qa`` subcommand: scan, report, gate.

Exit codes: 0 clean, 1 findings (CI gate), 2 usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.qa.engine import fix_unused_suppressions, scan_paths
from repro.qa.report import render_human, render_json, render_rules


def add_qa_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the qa options to a (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to scan (e.g. src)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit machine-readable JSON instead of text",
    )
    parser.add_argument(
        "--fix-suppressions",
        action="store_true",
        help="rewrite files to delete unused # repro: noqa[...] entries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )


def run_qa(args: argparse.Namespace) -> int:
    """Execute a scan described by parsed qa arguments."""
    if args.list_rules:
        print(render_rules())
        return 0
    if not args.paths:
        print("error: qa needs at least one path to scan", file=sys.stderr)
        return 2
    missing = [str(p) for p in args.paths if not p.exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2
    result = scan_paths(args.paths)
    if args.fix_suppressions and result.unused_suppressions:
        removed = fix_unused_suppressions(result)
        print(f"qa: removed {removed} unused suppression id(s); re-scanning")
        result = scan_paths(args.paths)
    print(render_json(result) if args.json else render_human(result))
    return 0 if result.ok else 1


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.qa.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro qa",
        description="determinism & correctness static analysis",
    )
    add_qa_arguments(parser)
    return run_qa(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
